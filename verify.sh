#!/usr/bin/env bash
# Repo verification gate. Runs the tier-1 check from ROADMAP.md plus a
# clippy pass (deny warnings) over the workspace. Fully offline.
set -euo pipefail
cd "$(dirname "$0")"

echo "== tier-1: release build =="
cargo build --release --offline

echo "== tier-1: tests (root package) =="
cargo test -q --offline

echo "== rustfmt (check only) =="
cargo fmt --all -- --check

echo "== clippy (deny warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== rustdoc (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps --workspace

echo "== workspace tests =="
cargo test -q --offline --workspace

echo "== sharded engine determinism (IOSIM_THREADS=1 and =4) =="
# The parallel engine must produce bit-identical virtual times and
# schedule fingerprints at any worker count. Run the scheduler snapshot
# suite with the sharded path pinned serial and pinned to four real
# threads; both must match the committed oracles.
IOSIM_THREADS=1 cargo test -q --offline --test sched_determinism
IOSIM_THREADS=4 cargo test -q --offline --test sched_determinism

echo "== workload replay smoke (three modes over the committed sample) =="
# Replays tests/data/sample_opstream.trace through every replay mode and
# fails on a nonzero exit or an empty latency histogram: the engine must
# both run the committed trace and actually measure per-op latency.
for mode in direct list twophase; do
  out="$(cargo run --release --offline -q --bin iosim -- \
    replay --trace tests/data/sample_opstream.trace \
    --machine paragon-small --mode "$mode" 2>&1)"
  echo "$out" | grep -E "^latency: n=[1-9]" >/dev/null || {
    echo "replay smoke ($mode): empty or missing latency histogram:"
    echo "$out"
    exit 1
  }
done

echo "== bench wallclock smoke =="
# Gate is "runs without panicking and emits a well-formed v4 document"
# — wall-clock timings are machine-dependent and never fail the build,
# but `bench check` does fail on NaN/negative wall times, non-integer
# counters, a missing data_plane/workload section, all-zero data-plane
# byte tallies (which would mean the zero-copy accounting came unwired),
# or an empty workload latency histogram.
# The smoke run writes under target/ so the committed trajectory file
# (BENCH_wallclock.json) is left untouched; both are validated.
cargo run --release --offline -p iosim-bench --bin bench -- \
  wallclock --smoke --out target/BENCH_wallclock.smoke.json
cargo run --release --offline -p iosim-bench --bin bench -- \
  check target/BENCH_wallclock.smoke.json
cargo run --release --offline -p iosim-bench --bin bench -- \
  check BENCH_wallclock.json

echo "verify.sh: all checks passed"
