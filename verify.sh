#!/usr/bin/env bash
# Repo verification gate. Runs the tier-1 check from ROADMAP.md plus a
# clippy pass (deny warnings) over the workspace. Fully offline.
set -euo pipefail
cd "$(dirname "$0")"

echo "== tier-1: release build =="
cargo build --release --offline

echo "== tier-1: tests (root package) =="
cargo test -q --offline

echo "== rustfmt (check only) =="
cargo fmt --all -- --check

echo "== clippy (deny warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== rustdoc (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps --workspace

echo "== workspace tests =="
cargo test -q --offline --workspace

echo "verify.sh: all checks passed"
