//! # iosim — architectural & software techniques for I/O-intensive applications
//!
//! A simulation framework reproducing Kandaswamy, Kandemir, Choudhary &
//! Bernholdt, *"Performance Implications of Architectural and Software
//! Techniques on I/O-Intensive Applications"* (ICPP 1998): a deterministic
//! discrete-event model of 1990s message-passing machines (Intel Paragon,
//! IBM SP-2) with striped parallel file systems, a PASSION-style parallel
//! I/O optimization runtime (two-phase collective I/O, prefetching, file
//! layout selection, packed interfaces, balanced I/O), and the paper's
//! five applications (SCF 1.1, SCF 3.0, out-of-core FFT, BTIO, AST).
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! - [`simkit`] — virtual-time async executor (DES engine)
//! - [`machine`] — hardware model and presets
//! - [`pfs`] — parallel file system (PFS / PIOFS)
//! - [`msg`] — message passing over the simulated mesh
//! - [`optim`] — the I/O optimization runtime (the paper's subject)
//! - [`trace`] — Pablo-style instrumentation and report tables
//! - [`apps`] — the five applications
//! - [`workload`] — trace ingestion, open-loop traffic generation, and
//!   the replay engine ("bring your own workload")
//!
//! ## Quickstart
//!
//! ```
//! use iosim::prelude::*;
//!
//! // Run BTIO Class-sized workload with and without two-phase I/O.
//! let mut cfg = iosim::apps::btio::BtioConfig::new(
//!     iosim::apps::btio::BtClass::Custom(16), 4, false);
//! cfg.dumps = 2;
//! let unopt = iosim::apps::btio::run(&cfg);
//! cfg.optimized = true;
//! let opt = iosim::apps::btio::run(&cfg);
//! assert!(opt.exec_time < unopt.exec_time);
//! ```

pub use iosim_apps as apps;
pub use iosim_buf as buf;
pub use iosim_core as optim;
pub use iosim_machine as machine;
pub use iosim_msg as msg;
pub use iosim_pfs as pfs;
pub use iosim_simkit as simkit;
pub use iosim_trace as trace;
pub use iosim_workload as workload;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use iosim_apps::common::{run_ranks, AppCtx, RunResult};
    pub use iosim_core::{
        read_collective, write_collective, write_collective_batched, FileLayout, OocArray,
        PackedWriter, Piece, Prefetcher, SemiDirect, Span,
    };
    pub use iosim_machine::{presets, Interface, Machine, MachineConfig};
    pub use iosim_msg::{Comm, MatchSrc, Payload, World};
    pub use iosim_pfs::{CreateOptions, FileHandle, FileSystem, FsError, IoRequest};
    pub use iosim_simkit::prelude::*;
    pub use iosim_trace::{LatencyHistogram, OpKind, TraceCollector};
    pub use iosim_workload::{
        parse_any, run_open_loop, saturation_knee, ArrivalModel, OpStream, ReplayMode, ReplaySpec,
        SynthSpec,
    };
}
