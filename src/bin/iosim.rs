//! `iosim` — run any of the five applications on a simulated machine with
//! custom parameters, and print the timing summary, the Pablo-style trace
//! table, and the request-size histograms.
//!
//! ```text
//! iosim scf11 --input large --version prefetch --procs 64 --io-nodes 16 --scale 0.25
//! iosim scf30 --cached 90 --procs 64 --io-nodes 64 --scale 0.5
//! iosim fft   --n 1024 --procs 8 --io-nodes 2 --optimized
//! iosim btio  --class a --procs 36 --optimized --dumps 10
//! iosim ast   --procs 64 --io-nodes 16 --grid 1024 --optimized
//! ```

use std::collections::HashMap;

use iosim::apps::RunResult;
use iosim::apps::{ast, btio, fft, scf11, scf30};

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(app) = args.next() else {
        usage();
        return;
    };
    let opts = parse_flags(args);
    let result = match app.as_str() {
        "scf11" => run_scf11(&opts),
        "scf30" => run_scf30(&opts),
        "fft" => run_fft(&opts),
        "btio" => run_btio(&opts),
        "ast" => run_ast(&opts),
        "replay" => run_replay(&opts),
        "synth" => run_synth(&opts),
        "--help" | "-h" | "help" => {
            usage();
            return;
        }
        other => die(&format!("unknown application '{other}'")),
    };
    print_result(&result);
}

struct Opts(HashMap<String, String>);

impl Opts {
    fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        match self.0.get(key) {
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| die(&format!("bad value for --{key}: {v}"))),
            None => default,
        }
    }
    fn flag(&self, key: &str) -> bool {
        self.0.contains_key(key)
    }
    fn str_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.0.get(key).map(String::as_str).unwrap_or(default)
    }
}

/// `--threads N` selects the sharded parallel engine with N host
/// workers; without the flag, the `IOSIM_THREADS` environment pin (the
/// same override the bench sweeps honor) is consulted, and with neither
/// the original monolithic engine runs. The sharded engine partitions
/// the machine along I/O-node boundaries, so its virtual times are
/// bit-identical for every N >= 1 — but they are a different (shard-
/// partitioned) model than the monolithic engine's.
fn threads(o: &Opts) -> Option<usize> {
    if o.0.contains_key("threads") {
        return Some(o.get("threads", 1).max(1));
    }
    std::env::var("IOSIM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 1)
}

fn parse_flags(args: impl Iterator<Item = String>) -> Opts {
    let mut map = HashMap::new();
    let mut key: Option<String> = None;
    for a in args {
        if let Some(stripped) = a.strip_prefix("--") {
            if let Some(k) = key.take() {
                map.insert(k, String::new()); // boolean flag
            }
            key = Some(stripped.to_string());
        } else if let Some(k) = key.take() {
            map.insert(k, a);
        } else {
            die(&format!("unexpected argument '{a}'"));
        }
    }
    if let Some(k) = key {
        map.insert(k, String::new());
    }
    Opts(map)
}

fn run_scf11(o: &Opts) -> RunResult {
    let input = match o.str_or("input", "small") {
        "small" => scf11::ScfInput::Small,
        "medium" => scf11::ScfInput::Medium,
        "large" => scf11::ScfInput::Large,
        other => die(&format!("unknown input '{other}' (small|medium|large)")),
    };
    let version = match o.str_or("version", "original") {
        "original" | "fortran" => scf11::Scf11Version::Original,
        "passion" => scf11::Scf11Version::Passion,
        "prefetch" => scf11::Scf11Version::PassionPrefetch,
        other => die(&format!(
            "unknown version '{other}' (original|passion|prefetch)"
        )),
    };
    let cfg = scf11::Scf11Config {
        procs: o.get("procs", 4),
        io_nodes: o.get("io-nodes", 12),
        mem_kb: o.get("mem-kb", 64),
        stripe_unit_kb: o.get("stripe-kb", 64),
        scale: o.get("scale", 1.0),
        cache_mb: o.get("cache", 0),
        queue_depth: o.get("queue-depth", 1),
        ..scf11::Scf11Config::new(input, version)
    };
    eprintln!(
        "SCF 1.1 {} {:?} tuple {}",
        input.name(),
        version,
        cfg.tuple()
    );
    let r = match threads(o) {
        Some(t) => scf11::run_threaded(&cfg, t),
        None => scf11::run(&cfg),
    };
    eprintln!("foreground I/O time: {}", r.fg_io_time);
    r.run
}

fn run_scf30(o: &Opts) -> RunResult {
    let cfg = scf30::Scf30Config {
        io_nodes: o.get("io-nodes", 16),
        balanced: !o.flag("unbalanced"),
        prefetch: !o.flag("no-prefetch"),
        scale: o.get("scale", 1.0),
        cache_mb: o.get("cache", 0),
        queue_depth: o.get("queue-depth", 1),
        ..scf30::Scf30Config::new(
            scf11::ScfInput::Medium,
            o.get("procs", 32),
            o.get("cached", 90),
        )
    };
    eprintln!(
        "SCF 3.0 MEDIUM {}% cached, {} procs, {} I/O nodes",
        cfg.cached_percent, cfg.procs, cfg.io_nodes
    );
    let r = match threads(o) {
        Some(t) => scf30::run_threaded(&cfg, t),
        None => scf30::run(&cfg),
    };
    eprintln!("balance moved: {} KB", r.balance_moved / 1024);
    r.run
}

fn run_fft(o: &Opts) -> RunResult {
    let mut cfg = fft::FftConfig::new(o.get("n", 1024), o.get("procs", 4), o.flag("optimized"));
    cfg.io_nodes = o.get("io-nodes", 2);
    cfg.mem_per_proc = o.get("mem-mb", 16u64) << 20;
    cfg.cache_mb = o.get("cache", 0);
    cfg.queue_depth = o.get("queue-depth", 1);
    eprintln!(
        "2-D out-of-core FFT {}x{} complex, {} procs, {} I/O nodes, optimized={}",
        cfg.n, cfg.n, cfg.procs, cfg.io_nodes, cfg.optimized
    );
    match threads(o) {
        Some(t) => fft::run_threaded(&cfg, t),
        None => fft::run(&cfg),
    }
}

fn run_btio(o: &Opts) -> RunResult {
    let class = match o.str_or("class", "a") {
        "a" | "A" => btio::BtClass::A,
        "b" | "B" => btio::BtClass::B,
        other => {
            let n: u64 = other
                .parse()
                .unwrap_or_else(|_| die("class must be a, b, or a grid size"));
            btio::BtClass::Custom(n)
        }
    };
    let cfg = btio::BtioConfig {
        dumps: o.get("dumps", 40),
        verify: o.flag("verify"),
        cache_mb: o.get("cache", 0),
        queue_depth: o.get("queue-depth", 1),
        ..btio::BtioConfig::new(class, o.get("procs", 16), o.flag("optimized"))
    };
    eprintln!(
        "BTIO {} ({}³ grid), {} procs, {} dumps, optimized={}",
        class.name(),
        class.n(),
        cfg.procs,
        cfg.dumps,
        cfg.optimized
    );
    match threads(o) {
        Some(t) => btio::run_threaded(&cfg, t),
        None => btio::run(&cfg),
    }
}

fn run_ast(o: &Opts) -> RunResult {
    let cfg = ast::AstConfig {
        grid: o.get("grid", 2048),
        arrays: o.get("arrays", 4),
        dumps: o.get("dumps", 10),
        restart: o.flag("restart"),
        cache_mb: o.get("cache", 0),
        queue_depth: o.get("queue-depth", 1),
        ..ast::AstConfig::new(
            o.get("procs", 16),
            o.get("io-nodes", 16),
            o.flag("optimized"),
        )
    };
    eprintln!(
        "AST {}x{} grid, {} arrays, {} procs, {} I/O nodes, optimized={}",
        cfg.grid, cfg.grid, cfg.arrays, cfg.procs, cfg.io_nodes, cfg.optimized
    );
    match threads(o) {
        Some(t) => ast::run_threaded(&cfg, t),
        None => ast::run(&cfg),
    }
}

fn machine_preset(o: &Opts) -> iosim::machine::MachineConfig {
    match o.str_or("machine", "sp2") {
        "sp2" => iosim::machine::presets::sp2(),
        "paragon" => iosim::machine::presets::paragon_large(),
        "paragon-small" => iosim::machine::presets::paragon_small(),
        other => die(&format!("unknown machine '{other}'")),
    }
}

/// `--mode` plus batching flags into a [`workload::ReplaySpec`] builder.
fn replay_spec(
    o: &Opts,
    machine: iosim::machine::MachineConfig,
) -> iosim::workload::engine::ReplaySpec {
    use iosim::workload::engine::ReplaySpec;
    // `--collective BATCH` is the original spelling of two-phase mode.
    let collective: usize = o.get("collective", 0);
    let batch: usize = o.get("batch", 32);
    let mode = if collective > 0 {
        "twophase"
    } else {
        o.str_or("mode", "direct")
    };
    match mode {
        "direct" => ReplaySpec::direct(machine),
        "list" | "listio" => ReplaySpec::list_io(machine, batch),
        "twophase" | "two-phase" | "collective" => {
            ReplaySpec::two_phase(machine, if collective > 0 { collective } else { batch })
        }
        other => die(&format!("unknown mode '{other}' (direct|list|twophase)")),
    }
}

fn run_replay(o: &Opts) -> RunResult {
    use iosim::workload;
    let path = o.str_or("trace", "");
    if path.is_empty() {
        die("replay needs --trace FILE");
    }
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("read {path}: {e}")));
    let stream =
        workload::parse_any(&text, o.get("seed", 42)).unwrap_or_else(|e| die(&e.to_string()));
    let machine = machine_preset(o).with_compute_nodes(stream.ranks().max(1));
    let spec = replay_spec(o, machine);
    eprintln!(
        "replaying {} ops ({} data ops) across {} ranks, {:?} mode",
        stream.ops.len(),
        stream.data_ops(),
        stream.ranks(),
        spec.mode,
    );
    if threads(o).is_some() {
        eprintln!("replay is monolithic (cross-rank trace dependencies); ignoring --threads");
    }
    let report = workload::replay(&stream, &spec);
    println!("{}", report.latency.render_line());
    println!(
        "replay rate    : {:.1} ops/s (virtual)",
        report.ops_per_sec()
    );
    report.stats.into()
}

fn run_synth(o: &Opts) -> RunResult {
    use iosim::workload::{ArrivalModel, SynthSpec};
    let rate: f64 = o.get("rate", 20.0);
    let arrival = if o.flag("bursty") {
        ArrivalModel::Bursty {
            on_rate: rate,
            mean_on: o.get("mean-on", 0.1),
            mean_off: o.get("mean-off", 0.3),
        }
        .with_mean_rate(rate)
    } else {
        ArrivalModel::Poisson { rate }
    };
    let synth = SynthSpec {
        clients: o.get("clients", 64),
        duration: iosim::simkit::time::SimDuration::from_secs_f64(o.get("duration", 1.0)),
        arrival,
        read_frac: o.get("read-frac", 0.5),
        op_bytes: o.get("op-kb", 64u64) << 10,
        fragments: o.get("fragments", 8),
        files: o.get("files", 4),
        file_bytes: o.get("file-mb", 64u64) << 20,
        seed: o.get("seed", 42),
    };
    let mut machine = machine_preset(o);
    machine = iosim::apps::common::with_cache_mb(machine, o.get("cache", 0));
    machine = iosim::apps::common::with_queue_depth(machine, o.get("queue-depth", 1));
    let spec = replay_spec(o, machine);
    eprintln!(
        "open-loop: {} clients offering {:.0} ops/s for {}, {:?} mode",
        synth.clients,
        synth.offered_ops_per_sec(),
        synth.duration,
        spec.mode,
    );
    let report = match threads(o) {
        Some(t) => iosim::workload::run_open_loop_threaded(&synth, &spec, t),
        None => iosim::workload::run_open_loop(&synth, &spec),
    };
    println!("{}", report.latency.render_line());
    println!(
        "offered        : {:.1} ops/s ({} ops)",
        report.offered_rate, report.offered_ops
    );
    println!(
        "achieved       : {:.1} ops/s (ratio {:.2}{})",
        report.achieved_rate,
        report.overload_ratio(),
        if report.overload_ratio() < 0.9 {
            ", past the saturation knee"
        } else {
            ""
        }
    );
    report.stats.into()
}

fn print_result(r: &RunResult) {
    println!("execution time : {}", r.exec_time);
    println!(
        "I/O time (wall): {}  ({:.1}% of exec)",
        r.io_time,
        100.0 * r.io_fraction()
    );
    println!(
        "I/O volume     : {:.2} MB over {} operations",
        r.io_bytes as f64 / 1e6,
        r.io_ops
    );
    println!("I/O bandwidth  : {:.2} MB/s", r.bandwidth_mb_s());
    println!(
        "scheduler      : {} polls in {:.1} ms host ({:.0} events/s)",
        r.sim_events,
        r.host_elapsed.as_secs_f64() * 1e3,
        r.events_per_sec()
    );
    if !r.cache.is_empty() {
        println!("{}", r.cache.render_line());
    }
    if !r.listio.is_empty() {
        println!("{}", r.listio.render_line());
    }
    if !r.queue.is_empty() {
        println!("{}", r.queue.render_line());
        if let Some(batching) = r.queue.render_batching_line() {
            println!("{batching}");
        }
    }
    println!();
    println!(
        "{}",
        r.summary
            .render("I/O trace (cumulative across ranks)", r.cum_exec_time())
    );
}

fn usage() {
    println!(
        "usage: iosim <scf11|scf30|fft|btio|ast> [--flag value]...\n\
         \n\
         common flags: --procs N --io-nodes N --scale X --optimized\n\
         \x20             --cache MB   per-I/O-node LRU buffer cache (0 = off, the default)\n\
         \x20             --queue-depth N   I/O-node command-queue depth (1 = FIFO, the default)\n\
         \x20             --threads N  host threads for the sharded engine (default: $IOSIM_THREADS, else 1);\n\
         \x20                          virtual times and fingerprints are identical at any thread count\n\
         scf11: --input small|medium|large --version original|passion|prefetch --mem-kb N --stripe-kb N\n\
         scf30: --cached PCT --unbalanced --no-prefetch\n\
         fft:   --n N --mem-mb N\n\
         btio:  --class a|b|N --dumps N --verify\n\
         ast:   --grid N --arrays N --dumps N --restart\n\
         replay: --trace FILE [--mode direct|list|twophase] [--batch N] [--seed N]\n\
         \x20       [--machine sp2|paragon|paragon-small]  (--collective BATCH = legacy twophase)\n\
         \x20       trace formats: legacy 4-column, #iosim opstream, #iosim darshan (auto-detected)\n\
         synth: --clients N --rate R [--bursty --mean-on S --mean-off S] --duration S\n\
         \x20      --read-frac F --op-kb N --fragments N --files N --file-mb N --seed N\n\
         \x20      [--mode direct|list|twophase] [--batch N] [--cache MB] [--queue-depth N]"
    );
}

fn die(msg: &str) -> ! {
    eprintln!("iosim: {msg}");
    std::process::exit(2);
}
