//! Out-of-core 2-D FFT with and without the file-layout optimization —
//! the paper's §4.4 scenario as a library user would run it.
//!
//! Shows (a) the functional pipeline on a small stored matrix (validated
//! against an in-memory FFT), and (b) the timing effect of storing the
//! scratch array row-major, including the advisor that picks the layouts
//! automatically.
//!
//! ```text
//! cargo run --release --example out_of_core_fft
//! ```

use iosim::apps::fft::{run, run_capture, FftConfig};
use iosim::optim::advisor;

fn main() {
    // The compiler-style layout advisor (paper §4.4, reference [7]):
    // the transpose reads A down columns and writes B along rows.
    let advice = advisor::fft_transpose_advice();
    println!(
        "layout advisor: A -> {:?}, B -> {:?}\n",
        advice["A"], advice["B"]
    );

    // (a) Functional run: 16×16 stored matrix through the unoptimized
    // pipeline; capture the result (the 2-D FFT, transposed).
    let cfg = FftConfig {
        stored: true,
        ..FftConfig::new(16, 2, false)
    };
    let (res, spectrum) = run_capture(&cfg);
    let dc = f64::from_le_bytes(spectrum[0..8].try_into().expect("8 bytes"));
    println!(
        "functional 16x16 FFT: exec {} | DC component {dc:.3} | {} I/O calls",
        res.exec_time, res.io_ops
    );

    // (b) Timing comparison at a larger size, memory-starved tiles.
    println!("\ntiming comparison (512x512 complex, 256 KB tile memory):");
    for (label, optimized, io_nodes) in [
        ("both col-major, 2 I/O nodes ", false, 2),
        ("both col-major, 4 I/O nodes ", false, 4),
        ("B row-major,    2 I/O nodes ", true, 2),
    ] {
        let mut c = FftConfig::new(512, 4, optimized);
        c.io_nodes = io_nodes;
        c.mem_per_proc = 256 << 10;
        let r = run(&c);
        println!(
            "  {label} exec {:>10} | io {:>10} | {:>6} I/O calls",
            format!("{}", r.exec_time),
            format!("{}", r.io_time),
            r.io_ops
        );
    }
    println!(
        "\nthe optimized layout on HALF the I/O hardware wins — the paper's \
         headline FFT result"
    );
}
