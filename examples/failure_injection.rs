//! Failure injection: what one slow I/O node does to a striped workload.
//!
//! Round-robin striping couples every multi-stripe operation to the
//! slowest I/O node, so a single degraded node hurts far beyond its share
//! of the aggregate bandwidth — the dark side of the paper's "add more
//! I/O nodes" prescription.
//!
//! ```text
//! cargo run --release --example failure_injection
//! ```

use iosim::prelude::*;

fn run_with_hot_node(speed: f64) -> f64 {
    let mut cfg = presets::paragon_large()
        .with_compute_nodes(8)
        .with_io_nodes(16);
    if speed < 1.0 {
        cfg = cfg.with_degraded_io_node(0, speed);
    }
    let res = iosim::apps::common::run_ranks(cfg, 8, |ctx| {
        Box::pin(async move {
            let fh = ctx
                .fs
                .open(
                    ctx.rank,
                    Interface::Passion,
                    &format!("data.{}", ctx.rank),
                    Some(CreateOptions::default()),
                )
                .await
                .expect("open");
            fh.preallocate(32 << 20);
            // Scan the file twice in 256 KB chunks.
            for _ in 0..2 {
                let mut off = 0u64;
                while off < 32 << 20 {
                    fh.read_discard_at(off, 256 << 10).await.expect("read");
                    off += 256 << 10;
                }
            }
        })
    });
    res.exec_time.as_secs_f64()
}

fn main() {
    println!("8 processes scanning 32 MB files striped over 16 I/O nodes\n");
    let nominal = run_with_hot_node(1.0);
    println!(
        "{:>12} {:>12} {:>10} {:>16}",
        "node speed", "exec (s)", "slowdown", "capacity lost"
    );
    for speed in [1.0, 0.5, 0.25, 0.1] {
        let t = run_with_hot_node(speed);
        println!(
            "{:>12.2} {:>12.2} {:>9.2}x {:>15.1}%",
            speed,
            t,
            t / nominal,
            (1.0 - speed) / 16.0 * 100.0
        );
    }
    println!(
        "\nnote how losing ~6% of aggregate capacity (one node at 10%) costs \
         several times that in wall-clock — striped I/O has no slack for \
         heterogeneity"
    );
}
