//! Quickstart: build a simulated Paragon, run four processes doing
//! parallel I/O through PFS, and print the Pablo-style trace table.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::rc::Rc;

use iosim::prelude::*;

fn main() {
    // A 56-node Intel Paragon with 4 I/O nodes.
    let cfg = presets::paragon_small().with_io_nodes(4);
    println!("machine: {} ({} I/O nodes)\n", cfg.name, cfg.io_nodes);

    // Build the simulation: machine + file system + 4 processes.
    let mut sim = Sim::new();
    let trace = TraceCollector::new();
    let machine = Machine::new(sim.handle(), cfg);
    let fs = FileSystem::new(Rc::clone(&machine), trace.clone());
    let world = World::new(Rc::clone(&machine), 4);

    for comm in world.comms() {
        let fs = Rc::clone(&fs);
        let machine = Rc::clone(&machine);
        sim.spawn(async move {
            let rank = comm.rank();
            // Each process writes a private 4 MB file in 64 KB records…
            let fh = fs
                .open(
                    rank,
                    Interface::Passion,
                    &format!("data.{rank}"),
                    Some(CreateOptions::default()),
                )
                .await
                .expect("create file");
            for i in 0..64u64 {
                fh.write_discard_at(i * 65536, 65536).await.expect("write");
            }
            fh.flush().await;
            comm.barrier().await;
            // …then re-reads it with double-buffered prefetching while
            // "computing" on each chunk.
            let fh = Rc::new(fh);
            let mut pf = Prefetcher::new(Rc::clone(&fh), 0, 4 << 20, 256 << 10, 2);
            while pf.next().await.expect("prefetch").is_some() {
                machine.compute(2.0e6).await; // 2 MFLOP per chunk
            }
            let st = pf.stats();
            println!(
                "rank {rank}: prefetched {} chunks, waited {}, copied {}",
                st.chunks, st.wait_time, st.copy_time
            );
        });
    }
    let end = sim.run();
    let fs_report = fs.render_report();

    println!("\nvirtual execution time: {end}");
    println!(
        "\n{}",
        trace
            .summary()
            .render("I/O trace (cumulative across ranks)", {
                SimDuration::from_nanos(end.as_nanos() * 4)
            })
    );
    println!(
        "(prefetched reads overlap compute, so cumulative I/O time can \
         exceed 100% of cumulative execution time)"
    );
    println!("\n{}", fs_report);
}
