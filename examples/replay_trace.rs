//! Replay a recorded I/O trace through the simulator in all three
//! replay modes — "what would each optimization buy my workload?"
//! without touching the application.
//!
//! Uses the committed sample trace in the extended op-stream format
//! (per-rank program order plus cross-rank `<-LABEL` dependency edges),
//! then synthesizes a bigger legacy-format checkpoint to show the two
//! front-ends feed the same engine.
//!
//! ```text
//! cargo run --release --example replay_trace
//! ```

use iosim::machine::presets;
use iosim::workload::{parse_any, replay, OpStream, ReplayReport, ReplaySpec};

fn show(name: &str, r: &ReplayReport) {
    println!(
        "{name:>18}: exec {} | {} data ops | {:.2} MB/s | {}",
        r.stats.exec_time,
        r.data_ops,
        r.stats.bandwidth_mb_s(),
        r.latency.render_line(),
    );
}

fn main() {
    // The committed sample: a 4-rank checkpoint dump + readback with
    // cross-rank dependencies (see tests/data/sample_opstream.trace).
    let text = std::fs::read_to_string("tests/data/sample_opstream.trace")
        .expect("run from the repo root: tests/data/sample_opstream.trace");
    let stream = parse_any(&text, 42).expect("parse sample trace");
    let machine = || presets::paragon_small().with_compute_nodes(stream.ranks());
    println!(
        "sample trace: {} ops, {} ranks, {} files, {} KB",
        stream.ops.len(),
        stream.ranks(),
        stream.files.len(),
        stream.data_bytes() / 1024,
    );
    show("direct", &replay(&stream, &ReplaySpec::direct(machine())));
    show(
        "list-I/O",
        &replay(&stream, &ReplaySpec::list_io(machine(), 8)),
    );
    show(
        "two-phase",
        &replay(&stream, &ReplaySpec::two_phase(machine(), 8)),
    );

    // A synthesized 16-rank checkpoint in the legacy 4-column format:
    // both formats land in the same OpStream and replay engine.
    let legacy = iosim::apps::replay::synthesize_strided(16, 256, 1024);
    let stream = OpStream::from_legacy(&legacy);
    let machine = || presets::sp2().with_compute_nodes(16);
    println!(
        "\nsynthesized legacy checkpoint: {} ops, 16 ranks, {} KB",
        legacy.len(),
        stream.data_bytes() / 1024,
    );
    let direct = replay(&stream, &ReplaySpec::direct(machine()));
    show("direct", &direct);
    for window in [16, 64, 256] {
        let coll = replay(&stream, &ReplaySpec::two_phase(machine(), window));
        println!(
            "  two-phase (w={window:>3}): exec {} | {:.2} MB/s  ({:.1}x faster)",
            coll.stats.exec_time,
            coll.stats.bandwidth_mb_s(),
            direct.stats.exec_time.as_secs_f64() / coll.stats.exec_time.as_secs_f64(),
        );
    }
    println!("\n(the same comparison runs on real recordings via `iosim replay --trace FILE`)");
}
