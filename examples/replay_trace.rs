//! Replay a recorded I/O trace through the simulator, directly and with
//! two-phase collective batching — "what would the optimization buy my
//! workload?" without touching the application.
//!
//! Synthesizes a checkpoint-style strided trace, writes it to a temp file
//! in the text format the `iosim replay` CLI accepts, parses it back, and
//! replays it both ways on the simulated SP-2.
//!
//! ```text
//! cargo run --release --example replay_trace
//! ```

use iosim::apps::replay::{parse_trace, render_trace, replay, synthesize_strided, ReplayConfig};
use iosim::machine::presets;

fn main() {
    // A 16-rank checkpoint writing 4 MB in interleaved 1 KB records — the
    // BTIO/AST access shape.
    let ops = synthesize_strided(16, 256, 1024);
    let text = render_trace(&ops);
    let path = std::env::temp_dir().join("iosim_example.trace");
    std::fs::write(&path, &text).expect("write trace file");
    println!(
        "synthesized {} ops ({} KB) -> {}",
        ops.len(),
        ops.len() * 1024 / 1024,
        path.display()
    );

    let parsed =
        parse_trace(&std::fs::read_to_string(&path).expect("read back")).expect("parse trace");
    assert_eq!(parsed, ops);

    let direct = replay(&parsed, &ReplayConfig::direct(presets::sp2()));
    println!(
        "\ndirect replay   : exec {} | {} ops | {:.2} MB/s",
        direct.exec_time,
        direct.io_ops,
        direct.bandwidth_mb_s()
    );
    for batch in [16, 64, 256] {
        let coll = replay(&parsed, &ReplayConfig::collective(presets::sp2(), batch));
        println!(
            "two-phase (b={batch:>3}): exec {} | {} ops | {:.2} MB/s  ({:.1}x faster)",
            coll.exec_time,
            coll.io_ops,
            coll.bandwidth_mb_s(),
            direct.exec_time.as_secs_f64() / coll.exec_time.as_secs_f64()
        );
    }
    println!("\n(the same comparison runs on real recordings via `iosim replay --trace FILE`)");
}
