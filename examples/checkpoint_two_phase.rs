//! Checkpointing a distributed array: direct small writes vs two-phase
//! collective I/O — the AST scenario of the paper's §4.6, usable as a
//! template for any shared-file checkpoint.
//!
//! Sixteen processes hold a 2-D block-decomposed array stored
//! column-major in one shared file. The direct version writes each
//! process's fragment of every column separately (hundreds of small
//! seeks); the collective version exchanges data into conforming regions
//! and writes once per process — and we verify both produce the *same
//! file bytes*.
//!
//! ```text
//! cargo run --release --example checkpoint_two_phase
//! ```

use std::rc::Rc;

use iosim::prelude::*;

const GRID: u64 = 256; // 256×256 f64 array
const PROCS: usize = 16; // 4×4 process grid

fn value(r: u64, c: u64) -> f64 {
    (r * 1000 + c) as f64 * 0.25
}

async fn checkpoint(ctx: AppCtx, collective: bool) -> Vec<u8> {
    let q = (PROCS as f64).sqrt() as u64;
    let (pi, pj) = ((ctx.rank as u64) % q, (ctx.rank as u64) / q);
    let rows = GRID / q;
    let (r0, c0) = (pi * rows, pj * rows);
    let fh = ctx
        .fs
        .open(
            ctx.rank,
            if collective {
                Interface::Passion
            } else {
                Interface::UnixStyle
            },
            "checkpoint",
            Some(CreateOptions {
                stored: true,
                ..Default::default()
            }),
        )
        .await
        .expect("open checkpoint");

    // My fragment of column c: rows [r0, r0+rows), contiguous in the
    // column-major file.
    let fragment = |c: u64| -> (u64, Vec<u8>) {
        let off = (c * GRID + r0) * 8;
        let bytes: Vec<u8> = (r0..r0 + rows)
            .flat_map(|r| value(r, c).to_le_bytes())
            .collect();
        (off, bytes)
    };

    if collective {
        let pieces: Vec<Piece> = (c0..c0 + rows)
            .map(|c| {
                let (off, bytes) = fragment(c);
                Piece::bytes(off, bytes)
            })
            .collect();
        let stats = write_collective(&ctx.comm, &fh, pieces)
            .await
            .expect("collective checkpoint");
        if ctx.rank == 0 {
            println!(
                "  two-phase: rank 0 exchanged {} KB out / {} KB in, {} write call(s)",
                stats.bytes_sent / 1024,
                stats.bytes_received / 1024,
                stats.io_calls
            );
        }
    } else {
        for c in c0..c0 + rows {
            let (off, bytes) = fragment(c);
            fh.seek(off).await;
            fh.write(&bytes).await.expect("write fragment");
        }
    }
    ctx.comm.barrier().await;
    let data = if ctx.rank == 0 {
        fh.read_at(0, GRID * GRID * 8)
            .await
            .expect("read back")
            .to_vec()
    } else {
        Vec::new()
    };
    fh.close().await;
    data
}

fn run(collective: bool) -> (SimDuration, Vec<u8>) {
    let out: Rc<std::cell::RefCell<Vec<u8>>> = Rc::default();
    let out2 = Rc::clone(&out);
    let res = run_ranks(
        presets::paragon_large()
            .with_compute_nodes(PROCS)
            .with_io_nodes(16),
        PROCS,
        move |ctx| {
            let out = Rc::clone(&out2);
            Box::pin(async move {
                let data = checkpoint(ctx, collective).await;
                if !data.is_empty() {
                    *out.borrow_mut() = data;
                }
            })
        },
    );
    let bytes = out.borrow().clone();
    (res.io_time, bytes)
}

fn main() {
    println!("checkpointing a {GRID}x{GRID} array from {PROCS} processes\n");
    println!("direct (Chameleon-style) small writes:");
    let (t_direct, f_direct) = run(false);
    println!("  I/O time: {t_direct}\n");
    println!("two-phase collective I/O:");
    let (t_coll, f_coll) = run(true);
    println!("  I/O time: {t_coll}\n");
    assert_eq!(f_direct, f_coll, "checkpoint files must be byte-identical");
    println!(
        "files are byte-identical; collective I/O is {:.1}x faster",
        t_direct.as_secs_f64() / t_coll.as_secs_f64()
    );
}
