//! Capacity planning: how many I/O nodes does a workload need, and when
//! does software optimization substitute for hardware?
//!
//! The paper's central question, turned into a tool: sweep compute-node
//! and I/O-node counts for an SCF-like read-dominant workload, and print
//! where (a) software optimization beats adding I/O nodes and (b) the
//! architecture becomes so imbalanced that only more I/O nodes help.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use iosim::apps::scf11::{run, Scf11Config, Scf11Version, ScfInput};

fn exec(procs: usize, io_nodes: usize, version: Scf11Version) -> f64 {
    let cfg = Scf11Config {
        procs,
        io_nodes,
        mem_kb: 256,
        scale: 0.25, // quarter-size LARGE for a fast sweep
        ..Scf11Config::new(ScfInput::Large, version)
    };
    run(&cfg).run.exec_time.as_secs_f64()
}

fn main() {
    let procs = [4usize, 16, 64, 256];
    let io_nodes = [4usize, 16, 64];

    println!("SCF-like workload (quarter LARGE): execution time (s)\n");
    println!(
        "{:>8} {:>12} {:>14} {:>14}",
        "procs", "io_nodes", "unoptimized", "optimized"
    );
    let mut best_software: Vec<(usize, f64, f64)> = Vec::new();
    for &p in &procs {
        for &sf in &io_nodes {
            let u = exec(p, sf, Scf11Version::Original);
            let o = exec(p, sf, Scf11Version::PassionPrefetch);
            println!("{p:>8} {sf:>12} {u:>14.1} {o:>14.1}");
            if sf == 16 {
                best_software.push((p, u, o));
            }
        }
        println!();
    }

    println!("planning guidance:");
    for (p, _u, o) in &best_software {
        let u64nodes = exec(*p, 64, Scf11Version::Original);
        if *o < u64nodes {
            println!(
                "  {p:>4} procs: software optimization on 16 I/O nodes ({o:.0} s) \
                 beats buying 64 I/O nodes ({u64nodes:.0} s)"
            );
        } else {
            println!(
                "  {p:>4} procs: the architecture is I/O-starved — 64 I/O nodes \
                 ({u64nodes:.0} s) beat optimized software on 16 ({o:.0} s)"
            );
        }
    }
    println!(
        "\n(the paper's conclusion: software wins below the balance point, \
         hardware beyond it)"
    );
}
