//! Drive the simulated file system with an open-loop bursty traffic
//! generator and sweep the offered rate through saturation — the
//! overload behaviour closed-loop applications can never show, because
//! a closed loop slows its own arrivals down when the disks fall
//! behind.
//!
//! Sweeps an on/off-modulated Poisson arrival process over a rate
//! ladder, prints the offered-vs-achieved curve with p99 latency, and
//! locates the saturation knee (the first point where achieved
//! throughput falls below 90% of offered).
//!
//! ```text
//! cargo run --release --example open_loop_overload
//! ```

use iosim::machine::presets;
use iosim::simkit::time::SimDuration;
use iosim::workload::{run_open_loop, saturation_knee, ArrivalModel, ReplaySpec, SynthSpec};

fn main() {
    // 32 clients, bursty arrivals: 100 ms ON spurts, 300 ms silences.
    let bursty = ArrivalModel::Bursty {
        on_rate: 0.0, // scaled per sweep point via with_mean_rate
        mean_on: 0.1,
        mean_off: 0.3,
    };
    let spec = ReplaySpec::direct(presets::paragon_small());
    println!("open-loop bursty sweep on {}:", spec.machine.name);
    println!(
        "{:>14} {:>14} {:>10} {:>12}",
        "offered op/s", "achieved op/s", "ratio", "p99 (ms)"
    );

    let mut points = Vec::new();
    for rate in [0.25, 0.5, 1.0, 2.0, 4.0, 8.0] {
        let mut synth = SynthSpec::small(rate, 7);
        synth.clients = 32;
        synth.duration = SimDuration::from_secs_f64(2.0);
        synth.arrival = bursty.with_mean_rate(rate);
        synth.op_bytes = 32 << 10;
        synth.fragments = 4;
        let rep = run_open_loop(&synth, &spec);
        let p = rep.sweep_point();
        println!(
            "{:>14.1} {:>14.1} {:>10.2} {:>12.1}",
            p.offered,
            p.achieved,
            rep.overload_ratio(),
            p.p99_ms,
        );
        points.push(p);
    }

    match saturation_knee(&points) {
        Some(k) => println!(
            "\nsaturation knee at ~{:.0} ops/s offered: beyond it the system completes \
             ~{:.0} ops/s no matter what is offered, and p99 grows without bound",
            points[k].offered,
            points.last().unwrap().achieved,
        ),
        None => println!("\nno saturation knee inside the sweep — raise the rate ladder"),
    }
    println!(
        "(bursts make the knee earlier than the mean rate suggests: the ON spurts \
         arrive at {:.0}x the mean)",
        (0.1f64 + 0.3) / 0.1,
    );
}
