//! Rollback recovery with the coordinated checkpoint library: an
//! iterative solver checkpoints its state every few steps, "crashes", and
//! recovers from the newest committed epoch — the CLIP-style pattern the
//! paper cites for check-pointing I/O.
//!
//! ```text
//! cargo run --release --example rollback_recovery
//! ```

use std::rc::Rc;

use iosim::optim::Checkpointer;
use iosim::prelude::*;

const PROCS: usize = 8;
const STEPS: u64 = 20;
const CKPT_EVERY: u64 = 5;
const FAIL_AT: u64 = 17;

/// One rank's solver state: a vector evolved deterministically per step.
fn evolve(state: &mut [f64], step: u64) {
    for (i, v) in state.iter_mut().enumerate() {
        *v = 0.9 * *v + ((step as f64) * 0.01 + i as f64 * 1e-4).sin();
    }
}

fn state_bytes(state: &[f64]) -> Vec<u8> {
    state.iter().flat_map(|v| v.to_le_bytes()).collect()
}

fn main() {
    let result: Rc<std::cell::RefCell<Vec<String>>> = Rc::default();
    let log = Rc::clone(&result);
    iosim::apps::common::run_ranks(
        presets::paragon_large()
            .with_compute_nodes(PROCS)
            .with_io_nodes(16),
        PROCS,
        move |ctx| {
            let log = Rc::clone(&log);
            Box::pin(async move {
                let rank = ctx.rank;
                let mut ck = Checkpointer::open(ctx.comm.clone(), &ctx.fs, "solver.ck", true)
                    .await
                    .expect("open checkpointer");
                let mut state = vec![rank as f64; 512];
                let mut last_epoch_step = 0u64;

                // Run with periodic checkpoints until the injected fault.
                for step in 1..=FAIL_AT {
                    evolve(&mut state, step);
                    ctx.machine.compute(5.0e6).await;
                    if step % CKPT_EVERY == 0 {
                        ck.save(Payload::bytes(state_bytes(&state)))
                            .await
                            .expect("checkpoint");
                        last_epoch_step = step;
                    }
                }
                if rank == 0 {
                    log.borrow_mut().push(format!(
                        "fault injected at step {FAIL_AT}; last checkpoint at step {last_epoch_step}"
                    ));
                }

                // "Crash": lose the in-memory state, recover, and replay.
                state = vec![f64::NAN; 512];
                let recovered = ck.restore_latest().await.expect("restore").into_bytes();
                for (v, c) in state.iter_mut().zip(recovered.chunks_exact(8)) {
                    *v = f64::from_le_bytes(c.try_into().expect("8 bytes"));
                }
                for step in last_epoch_step + 1..=STEPS {
                    evolve(&mut state, step);
                    ctx.machine.compute(5.0e6).await;
                }

                // Reference: the same run without a fault.
                let mut reference = vec![rank as f64; 512];
                for step in 1..=STEPS {
                    evolve(&mut reference, step);
                }
                assert_eq!(
                    state_bytes(&state),
                    state_bytes(&reference),
                    "rank {rank}: recovered run must equal the fault-free run"
                );
                if rank == 0 {
                    log.borrow_mut().push(format!(
                        "recovered from epoch at step {last_epoch_step}, replayed to step {STEPS}: \
                         state matches the fault-free run bit-for-bit"
                    ));
                }
                ck.close().await;
            })
        },
    );
    for line in result.borrow().iter() {
        println!("{line}");
    }
    println!("rollback recovery verified for {PROCS} ranks");
}
