//! The paper's optimizations must not change results, only costs: the
//! optimized and unoptimized I/O paths have to produce byte-identical
//! files and data. These tests drive the full stack (executor → machine →
//! file system → message layer → optimization runtime → application).

use std::rc::Rc;

use iosim::prelude::*;

/// Two-phase collective writes equal direct writes, for an irregular
/// interleaved pattern across ranks (not just the apps' regular ones).
#[test]
fn collective_write_equals_direct_write_for_irregular_pattern() {
    // Pattern: rank r owns every 4th 100-byte record starting at r.
    const RECORDS: u64 = 64;
    let build = |collective: bool| -> Vec<u8> {
        let out: Rc<std::cell::RefCell<Vec<u8>>> = Rc::default();
        let out2 = Rc::clone(&out);
        run_ranks(presets::sp2().with_compute_nodes(4), 4, move |ctx| {
            let out = Rc::clone(&out2);
            Box::pin(async move {
                let fh = ctx
                    .fs
                    .open(
                        ctx.rank,
                        Interface::UnixStyle,
                        "shared",
                        Some(CreateOptions {
                            stored: true,
                            ..Default::default()
                        }),
                    )
                    .await
                    .expect("open");
                let mine: Vec<(u64, Vec<u8>)> = (0..RECORDS)
                    .filter(|k| k % 4 == ctx.rank as u64)
                    .map(|k| {
                        let data: Vec<u8> =
                            (0..100u64).map(|i| ((k * 7 + i) % 251) as u8).collect();
                        (k * 100, data)
                    })
                    .collect();
                if collective {
                    let pieces: Vec<Piece> = mine
                        .into_iter()
                        .map(|(off, d)| Piece::bytes(off, d))
                        .collect();
                    write_collective(&ctx.comm, &fh, pieces)
                        .await
                        .expect("collective");
                } else {
                    for (off, d) in mine {
                        fh.write_at(off, &d).await.expect("direct write");
                    }
                }
                ctx.comm.barrier().await;
                if ctx.rank == 0 {
                    *out.borrow_mut() = fh
                        .read_at(0, RECORDS * 100)
                        .await
                        .expect("read back")
                        .to_vec();
                }
            })
        });
        let data = out.borrow().clone();
        data
    };
    let direct = build(false);
    let collective = build(true);
    assert_eq!(direct.len(), (RECORDS * 100) as usize);
    assert_eq!(direct, collective);
}

/// Bounded-buffer collective writes (multiple rounds) produce the same
/// file as the single-round version and as direct writes.
#[test]
fn buffered_collective_write_matches_direct() {
    use iosim::optim::write_collective_buffered;
    const RECORDS: u64 = 48;
    let build = |buffer: Option<u64>| -> Vec<u8> {
        let out: Rc<std::cell::RefCell<Vec<u8>>> = Rc::default();
        let out2 = Rc::clone(&out);
        run_ranks(presets::sp2().with_compute_nodes(4), 4, move |ctx| {
            let out = Rc::clone(&out2);
            Box::pin(async move {
                let fh = ctx
                    .fs
                    .open(
                        ctx.rank,
                        Interface::Passion,
                        "buffered",
                        Some(CreateOptions {
                            stored: true,
                            ..Default::default()
                        }),
                    )
                    .await
                    .expect("open");
                let mine: Vec<Piece> = (0..RECORDS)
                    .filter(|k| k % 4 == ctx.rank as u64)
                    .map(|k| {
                        let data: Vec<u8> = (0..64u64).map(|i| ((k * 3 + i) % 251) as u8).collect();
                        Piece::bytes(k * 64, data)
                    })
                    .collect();
                match buffer {
                    // Tiny buffer: forces many exchange/write rounds.
                    Some(b) => {
                        let st = write_collective_buffered(&ctx.comm, &fh, mine, b)
                            .await
                            .expect("buffered collective");
                        assert!(st.io_calls > 1, "tiny buffer must need rounds");
                    }
                    None => {
                        for p in mine {
                            fh.write_at(p.offset, p.payload.data.expect("bytes"))
                                .await
                                .expect("direct");
                        }
                    }
                }
                ctx.comm.barrier().await;
                if ctx.rank == 0 {
                    *out.borrow_mut() = fh
                        .read_at(0, RECORDS * 64)
                        .await
                        .expect("read back")
                        .to_vec();
                }
            })
        });
        let v = out.borrow().clone();
        v
    };
    let direct = build(None);
    let buffered = build(Some(200)); // ≈3 records per rank per round
    assert_eq!(direct, buffered);
}

/// A rank with nothing to write must not skew the collective domain: with
/// all data far from offset 0, the regions tile the accessed range only.
#[test]
fn empty_ranks_do_not_skew_the_collective_domain() {
    use iosim::optim::write_collective;
    let base = 1u64 << 20;
    let res = run_ranks(presets::sp2().with_compute_nodes(4), 4, move |ctx| {
        Box::pin(async move {
            let fh = ctx
                .fs
                .open(
                    ctx.rank,
                    Interface::Passion,
                    "far",
                    Some(CreateOptions::default()),
                )
                .await
                .expect("open");
            // Rank 0 contributes nothing; ranks 1..4 write 64 KB each in
            // [1 MB, 1 MB + 192 KB).
            let pieces = if ctx.rank == 0 {
                Vec::new()
            } else {
                vec![Piece::synthetic(
                    base + (ctx.rank as u64 - 1) * 65536,
                    65536,
                )]
            };
            write_collective(&ctx.comm, &fh, pieces)
                .await
                .expect("collective");
            ctx.comm.barrier().await;
            if ctx.rank == 0 {
                assert_eq!(fh.size(), base + 3 * 65536);
            }
        })
    });
    // Exactly the contributed bytes were written — nothing near offset 0.
    assert_eq!(res.io_bytes, 3 * 65536);
}

/// Collective reads return exactly the bytes written.
#[test]
fn collective_read_returns_written_bytes() {
    run_ranks(presets::sp2().with_compute_nodes(3), 3, |ctx| {
        Box::pin(async move {
            let fh = ctx
                .fs
                .open(
                    ctx.rank,
                    Interface::Passion,
                    "rc",
                    Some(CreateOptions {
                        stored: true,
                        ..Default::default()
                    }),
                )
                .await
                .expect("open");
            if ctx.rank == 0 {
                let data: Vec<u8> = (0..3000u64).map(|i| (i % 251) as u8).collect();
                fh.write_at(0, &data).await.expect("seed file");
            }
            ctx.comm.barrier().await;
            // Every rank asks for its own interleaved spans.
            let wants: Vec<Span> = (0..5u64)
                .map(|k| Span::new((k * 3 + ctx.rank as u64) * 200, 200))
                .collect();
            let (got, _) = read_collective(&ctx.comm, &fh, wants.clone())
                .await
                .expect("collective read");
            for (w, p) in wants.iter().zip(&got) {
                let bytes = p.data.as_ref().expect("stored read");
                for (i, b) in bytes.iter_bytes().enumerate() {
                    assert_eq!(b, ((w.offset + i as u64) % 251) as u8);
                }
            }
        })
    });
}

/// The BTIO application writes the same solution file with either path,
/// under a ragged (non-dividing) decomposition.
#[test]
fn btio_ragged_decomposition_files_match() {
    use iosim::apps::btio::{run_capture, BtClass, BtioConfig};
    let mk = |optimized: bool| BtioConfig {
        dumps: 2,
        stored: true,
        ..BtioConfig::new(BtClass::Custom(10), 9, optimized) // 10 % 3 != 0
    };
    let (_, a) = run_capture(&mk(false));
    let (_, b) = run_capture(&mk(true));
    assert!(!a.is_empty());
    assert_eq!(a, b);
}

/// AST's shared-file dump matches across paths with an uneven grid.
#[test]
fn ast_files_match_on_uneven_grid() {
    use iosim::apps::ast::{run_capture, AstConfig};
    let mk = |optimized: bool| AstConfig {
        grid: 50, // 50 % 5 == 0 rows? 50/√25=10 per side; uneven vs arrays
        arrays: 3,
        dumps: 2,
        stored: true,
        ..AstConfig::new(25, 16, optimized)
    };
    let (_, a) = run_capture(&mk(false));
    let (_, b) = run_capture(&mk(true));
    assert!(!a.is_empty());
    assert_eq!(a, b);
}

/// Out-of-core array blocks survive arbitrary tilings: writing tiles of
/// one shape and reading another returns the same matrix.
#[test]
fn ooc_array_tiling_is_shape_independent() {
    let mut sim = Sim::new();
    let trace = TraceCollector::new();
    let machine = Machine::new(sim.handle(), presets::paragon_small());
    let fs = FileSystem::new(machine, trace);
    let jh = sim.spawn(async move {
        let a = OocArray::create(
            &fs,
            0,
            Interface::UnixStyle,
            "m",
            12,
            12,
            FileLayout::ColMajor,
            true,
        )
        .await
        .expect("create");
        // Write in 3x4 tiles.
        for r0 in (0..12).step_by(3) {
            for c0 in (0..12).step_by(4) {
                let tile: Vec<f64> = (0..12)
                    .map(|k| {
                        let (i, j) = (k / 4, k % 4);
                        ((r0 + i) * 100 + (c0 + j)) as f64
                    })
                    .collect();
                a.write_block(r0, c0, 3, 4, &tile)
                    .await
                    .expect("write tile");
            }
        }
        // Read in 6x2 tiles and verify.
        for r0 in (0..12).step_by(6) {
            for c0 in (0..12).step_by(2) {
                let tile = a.read_block(r0, c0, 6, 2).await.expect("read tile");
                for (k, v) in tile.iter().enumerate() {
                    let (i, j) = (k as u64 / 2, k as u64 % 2);
                    assert_eq!(*v, ((r0 + i) * 100 + (c0 + j)) as f64);
                }
            }
        }
    });
    sim.run();
    jh.try_take().expect("completed");
}
