//! Workload-subsystem integration gates over the *committed* sample
//! traces: format round-trips, deterministic expansion, bit-identical
//! generator runs, and the three replay modes all moving the same
//! bytes. These pin the "bring your own workload" contract end to end —
//! the files under `tests/data/` are the ones `verify.sh` and the
//! wall-clock suite replay.

use iosim::machine::presets;
use iosim::workload::{
    parse_any, parse_opstream, render_opstream, replay, run_open_loop, OpStream, ReplaySpec,
    SynthSpec,
};

fn sample(name: &str) -> String {
    let path = format!("{}/tests/data/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

#[test]
fn sample_opstream_roundtrips_identically() {
    let stream = parse_any(&sample("sample_opstream.trace"), 0).expect("parse sample");
    let rendered = render_opstream(&stream);
    let again = parse_opstream(&rendered).expect("parse rendered");
    assert_eq!(stream, again, "parse -> render -> parse must be identity");
    assert_eq!(stream.ranks(), 4);
    assert!(stream.has_deps(), "sample carries cross-rank dependencies");
}

#[test]
fn sample_darshan_expands_deterministically() {
    let text = sample("sample_darshan.txt");
    let a = parse_any(&text, 99).expect("expand darshan");
    let b = parse_any(&text, 99).expect("expand darshan again");
    assert_eq!(a, b, "same seed must expand bit-identically");
    let c = parse_any(&text, 100).expect("expand with another seed");
    assert_ne!(a, c, "different seeds draw different offsets");
    // The histograms pin the totals regardless of seed.
    assert_eq!(a.data_ops(), c.data_ops());
    assert_eq!(a.data_bytes(), c.data_bytes());
}

#[test]
fn three_modes_replay_the_committed_sample() {
    let stream = parse_any(&sample("sample_opstream.trace"), 0).expect("parse sample");
    let machine = || presets::paragon_small().with_compute_nodes(stream.ranks());
    let direct = replay(&stream, &ReplaySpec::direct(machine()));
    let list = replay(&stream, &ReplaySpec::list_io(machine(), 8));
    let two = replay(&stream, &ReplaySpec::two_phase(machine(), 8));
    for r in [&direct, &list, &two] {
        assert_eq!(r.data_ops, 14);
        assert_eq!(r.data_bytes, stream.data_bytes());
        assert_eq!(r.latency.count(), 14, "every data op records a latency");
    }
}

#[test]
fn legacy_wrapper_and_engine_agree() {
    use iosim::apps::replay::{replay as legacy_replay, synthesize_strided, ReplayConfig};
    let ops = synthesize_strided(4, 50, 2048);
    let via_wrapper = legacy_replay(&ops, &ReplayConfig::direct(presets::sp2()));
    let via_engine = replay(
        &OpStream::from_legacy(&ops),
        &ReplaySpec::direct(presets::sp2()),
    );
    assert_eq!(via_wrapper.exec_time, via_engine.stats.exec_time);
    assert_eq!(via_wrapper.io_bytes, via_engine.stats.io_bytes);
    assert_eq!(via_wrapper.io_ops, via_engine.stats.io_ops);
}

#[test]
fn open_loop_generator_is_bit_deterministic() {
    let mut synth = SynthSpec::small(8.0, 1234);
    synth.clients = 12;
    let spec = ReplaySpec::direct(presets::paragon_small());
    let a = run_open_loop(&synth, &spec);
    let b = run_open_loop(&synth, &spec);
    assert_eq!(a.stats.sched_fingerprint, b.stats.sched_fingerprint);
    assert_eq!(a.completed_ops, b.completed_ops);
    assert_eq!(a.latency.p99(), b.latency.p99());
    // A different seed must actually change the schedule.
    synth.seed = 4321;
    let c = run_open_loop(&synth, &spec);
    assert_ne!(a.stats.sched_fingerprint, c.stats.sched_fingerprint);
}
