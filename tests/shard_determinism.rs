//! Cross-thread determinism stress suite for the sharded engine.
//!
//! The conservative-lookahead engine must produce bit-identical results
//! at every worker count: the shard decomposition is fixed by the
//! machine topology, windows advance by the same lookahead, and
//! cross-shard mailboxes deliver in a deterministic `(deliver_at, src,
//! seq)` order — host scheduling may interleave shard *polls*
//! differently, but no simulated observable may move.
//!
//! Each test pins one application at the same small configuration the
//! scheduler snapshot suite uses (queue depth 1, cache off), runs a
//! single-worker oracle, then replays the sharded engine at 2 and 4
//! workers five times each. Five repetitions matter: a racy mailbox or
//! barrier would pass a single comparison with high probability and
//! still trip here.

use iosim::apps::{ast, btio, fft, scf11, scf30, RunResult};

const REPS: usize = 5;
const WORKER_LADDER: [usize; 2] = [2, 4];

fn run_threaded(app: &str, workers: usize) -> RunResult {
    match app {
        "scf11" => {
            scf11::run_threaded(
                &scf11::Scf11Config {
                    scale: 0.02,
                    ..scf11::Scf11Config::new(
                        scf11::ScfInput::Small,
                        scf11::Scf11Version::PassionPrefetch,
                    )
                },
                workers,
            )
            .run
        }
        "scf30" => {
            scf30::run_threaded(
                &scf30::Scf30Config {
                    scale: 0.02,
                    ..scf30::Scf30Config::new(scf11::ScfInput::Small, 8, 75)
                },
                workers,
            )
            .run
        }
        "fft" => fft::run_threaded(&fft::FftConfig::new(128, 4, true), workers),
        "btio" => btio::run_threaded(
            &btio::BtioConfig {
                dumps: 2,
                ..btio::BtioConfig::new(btio::BtClass::Custom(16), 9, false)
            },
            workers,
        ),
        "ast" => ast::run_threaded(
            &ast::AstConfig {
                grid: 64,
                arrays: 2,
                dumps: 2,
                ..ast::AstConfig::new(4, 16, true)
            },
            workers,
        ),
        other => panic!("unknown app {other}"),
    }
}

fn assert_matches_oracle(app: &str) {
    let oracle = run_threaded(app, 1);
    for workers in WORKER_LADDER {
        for rep in 0..REPS {
            let r = run_threaded(app, workers);
            let tag = format!("{app} workers={workers} rep={rep}");
            assert_eq!(
                r.exec_time, oracle.exec_time,
                "{tag}: exec_time diverged from single-worker oracle"
            );
            assert_eq!(r.io_time, oracle.io_time, "{tag}: io_time diverged");
            assert_eq!(r.io_bytes, oracle.io_bytes, "{tag}: io_bytes diverged");
            assert_eq!(r.io_ops, oracle.io_ops, "{tag}: io_ops diverged");
            assert_eq!(
                r.sim_events, oracle.sim_events,
                "{tag}: poll count diverged"
            );
            assert_eq!(
                r.sched_fingerprint, oracle.sched_fingerprint,
                "{tag}: schedule fingerprint diverged"
            );
        }
    }
}

// One test per application so failures localize and the stress runs
// spread across test threads.

#[test]
fn scf11_is_worker_count_invariant() {
    assert_matches_oracle("scf11");
}

#[test]
fn scf30_is_worker_count_invariant() {
    assert_matches_oracle("scf30");
}

#[test]
fn fft_is_worker_count_invariant() {
    assert_matches_oracle("fft");
}

#[test]
fn btio_is_worker_count_invariant() {
    assert_matches_oracle("btio");
}

#[test]
fn ast_is_worker_count_invariant() {
    assert_matches_oracle("ast");
}
