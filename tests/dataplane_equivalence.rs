//! Zero-copy data-plane regression suite: snapshot oracle for the
//! buffer rewrite.
//!
//! Every row runs one application at a fixed stored-mode configuration
//! and asserts against constants captured on the pre-rewrite data plane
//! (flat `Vec<u8>` payloads and per-file byte vectors, commit 4962e8e):
//!
//! - **Virtual times, poll counts and schedule fingerprints** must stay
//!   bit-identical: sharing buffers instead of copying them is not
//!   allowed to change any simulated observable.
//! - **Stored file contents** (length + FNV-1a hash of the captured
//!   dump file) must stay bit-identical: extent trees and rope slicing
//!   must produce exactly the bytes the flat store produced.
//! - **Bytes memcpy'd** (the `iosim_buf::tally` counter) must *drop*:
//!   strictly below the pre-rewrite count for every app that moved real
//!   data, and at least 2x lower for FFT and BTIO, whose data planes
//!   are dominated by payload shuffling the rewrite eliminates.
//!
//! Bytes-allocated is not pinned exactly (it is an implementation
//! detail of scratch-buffer strategy) but may not grow above baseline.

use iosim::apps::{ast, btio, fft, scf11, scf30, RunResult};
use iosim::buf::{fnv1a, tally};

/// One pre-rewrite recording — all fields captured on the flat-`Vec<u8>`
/// data plane at the configurations in `run_app`.
struct Baseline {
    app: &'static str,
    exec_ns: u64,
    io_ns: u64,
    events: u64,
    fingerprint: u64,
    stored_len: u64,
    stored_fnv1a: u64,
    bytes_alloc: u64,
    bytes_copied: u64,
}

const BASELINES: &[Baseline] = &[
    Baseline {
        app: "scf11",
        exec_ns: 7098785486,
        io_ns: 4705258281,
        events: 1381,
        fingerprint: 0xa4034c76184e8c31,
        stored_len: 0,
        stored_fnv1a: 0,
        bytes_alloc: 0,
        bytes_copied: 0,
    },
    Baseline {
        app: "scf30",
        exec_ns: 6271400042,
        io_ns: 1310298634,
        events: 963,
        fingerprint: 0xd8062dd9798e0c46,
        stored_len: 0,
        stored_fnv1a: 0,
        bytes_alloc: 448,
        bytes_copied: 448,
    },
    Baseline {
        app: "fft",
        exec_ns: 650474867,
        io_ns: 578260800,
        events: 138,
        fingerprint: 0x0c08e313c0da7c45,
        stored_len: 262144,
        stored_fnv1a: 0x968ee5643c6d3115,
        bytes_alloc: 3670016,
        bytes_copied: 4194304,
    },
    Baseline {
        app: "btio",
        exec_ns: 3036292187,
        io_ns: 1871292187,
        events: 4746,
        fingerprint: 0x06bbb9be3ce15845,
        stored_len: 327680,
        stored_fnv1a: 0xaa2d3592eb34e93e,
        bytes_alloc: 655360,
        bytes_copied: 655360,
    },
    Baseline {
        app: "ast",
        exec_ns: 619019250,
        io_ns: 284353500,
        events: 237,
        fingerprint: 0x008c89cf26218de4,
        stored_len: 131072,
        stored_fnv1a: 0xa0c1a754bbd447a5,
        bytes_alloc: 935680,
        bytes_copied: 1053952,
    },
];

/// Run one app at the oracle configuration, returning the run result
/// plus the captured stored-file length and FNV-1a hash (0, 0 for the
/// SCF codes, which run synthetic).
fn run_app(app: &str) -> (RunResult, u64, u64) {
    match app {
        "scf11" => {
            let r = scf11::run(&scf11::Scf11Config {
                scale: 0.02,
                ..scf11::Scf11Config::new(
                    scf11::ScfInput::Small,
                    scf11::Scf11Version::PassionPrefetch,
                )
            });
            (r.run, 0, 0)
        }
        "scf30" => {
            let r = scf30::run(&scf30::Scf30Config {
                scale: 0.02,
                ..scf30::Scf30Config::new(scf11::ScfInput::Small, 8, 75)
            });
            (r.run, 0, 0)
        }
        "fft" => {
            let (r, b) = fft::run_capture(&fft::FftConfig {
                stored: true,
                ..fft::FftConfig::new(128, 4, true)
            });
            (r, b.len() as u64, fnv1a(b.iter().copied()))
        }
        "btio" => {
            let (r, b) = btio::run_capture(&btio::BtioConfig {
                dumps: 2,
                stored: true,
                ..btio::BtioConfig::new(btio::BtClass::Custom(16), 9, false)
            });
            (r, b.len(), fnv1a(b.iter_bytes()))
        }
        "ast" => {
            let (r, b) = ast::run_capture(&ast::AstConfig {
                grid: 64,
                arrays: 2,
                dumps: 2,
                stored: true,
                ..ast::AstConfig::new(4, 16, true)
            });
            (r, b.len(), fnv1a(b.iter_bytes()))
        }
        other => panic!("unknown app {other}"),
    }
}

#[test]
fn data_plane_rewrite_is_invisible_to_the_simulation() {
    for &Baseline {
        app,
        exec_ns,
        io_ns,
        events,
        fingerprint,
        stored_len,
        stored_fnv1a: stored_hash,
        bytes_alloc: base_alloc,
        bytes_copied: base_copied,
    } in BASELINES
    {
        tally::reset();
        let (r, len, hash) = run_app(app);
        let t = tally::snapshot();
        println!(
            "{app}: alloc={} copied={} buffers={} (baseline alloc={base_alloc} copied={base_copied})",
            t.bytes_allocated, t.bytes_copied, t.buffers_allocated
        );
        assert_eq!(
            r.exec_time.as_nanos(),
            exec_ns,
            "{app}: exec_time drifted from pre-rewrite data plane"
        );
        assert_eq!(
            r.io_time.as_nanos(),
            io_ns,
            "{app}: io_time drifted from pre-rewrite data plane"
        );
        assert_eq!(r.sim_events, events, "{app}: poll count changed");
        assert_eq!(
            r.sched_fingerprint, fingerprint,
            "{app}: schedule order changed"
        );
        assert_eq!(len, stored_len, "{app}: stored file length changed");
        assert_eq!(hash, stored_hash, "{app}: stored file bytes changed");
        assert!(
            t.bytes_allocated <= base_alloc,
            "{app}: bytes allocated grew ({} > {base_alloc})",
            t.bytes_allocated
        );
        if base_copied > 0 {
            assert!(
                t.bytes_copied < base_copied,
                "{app}: bytes copied did not drop ({} >= {base_copied})",
                t.bytes_copied
            );
        } else {
            assert_eq!(t.bytes_copied, 0, "{app}: copies appeared from nowhere");
        }
        if app == "fft" || app == "btio" {
            assert!(
                t.bytes_copied * 2 <= base_copied,
                "{app}: rewrite must at least halve bytes copied ({} vs {base_copied})",
                t.bytes_copied
            );
        }
    }
}
