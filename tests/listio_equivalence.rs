//! The vectored list-I/O path is an *optimization*, not a semantic
//! change: `readv`/`writev` over any extent list must move exactly the
//! bytes a per-fragment `read_at`/`write_at` loop would move, and under
//! the PASSION interface it must never be slower than that loop (the
//! whole point of charging interface overhead once per request instead
//! of once per fragment). Under Unix-style interfaces the vectored call
//! degenerates to the fragment loop and must cost *exactly* the same.
//!
//! These are property-style checks over random disjoint strided
//! patterns drawn from the in-tree deterministic [`SimRng`].

use std::rc::Rc;

use iosim::prelude::*;
use iosim_machine::presets;
use iosim_trace::TraceCollector;

fn fresh_fs(sim: &Sim) -> Rc<FileSystem> {
    let machine = Machine::new(sim.handle(), presets::paragon_small());
    FileSystem::new(machine, TraceCollector::new())
}

/// A random list of disjoint, increasing extents: random fragment
/// lengths with random (possibly zero, i.e. adjacent) gaps between them.
fn random_pattern(rng: &mut SimRng) -> IoRequest {
    let count = rng.range(2, 12);
    let mut extents = Vec::new();
    let mut off = rng.range(0, 4096);
    for _ in 0..count {
        let len = rng.range(64, 4096);
        extents.push((off, len));
        off += len + rng.range(0, 2048);
    }
    IoRequest::from_extents(extents)
}

/// Deterministic fill bytes for the backing file covering `[0, end)`.
fn fill_bytes(seed: u64, end: u64) -> Vec<u8> {
    let mut data = vec![0u8; end as usize];
    SimRng::seed_from(seed).fill_bytes(&mut data);
    data
}

/// Read `req` from a file pre-filled with `fill_bytes(seed, ..)`,
/// either as one vectored request or as a per-fragment loop. Returns
/// the bytes read and the simulated time the read portion took.
fn timed_read(
    iface: Interface,
    stored: bool,
    vectored: bool,
    req: &IoRequest,
    seed: u64,
) -> (Vec<u8>, SimDuration) {
    let req = req.clone();
    let mut sim = Sim::new();
    let fs = fresh_fs(&sim);
    let h = sim.handle();
    let jh = sim.spawn(async move {
        let opts = CreateOptions {
            stored,
            ..Default::default()
        };
        let fh = fs.open(0, iface, "f", Some(opts)).await.unwrap();
        if stored {
            fh.write_at(0, &fill_bytes(seed, req.end())).await.unwrap();
        } else {
            fh.write_discard_at(0, req.end()).await.unwrap();
        }
        let t0 = h.now();
        let mut got = Vec::new();
        match (stored, vectored) {
            (true, true) => got = fh.readv(&req).await.unwrap().to_vec(),
            (true, false) => {
                for &(off, len) in req.extents() {
                    got.extend_from_slice(&fh.read_at(off, len).await.unwrap());
                }
            }
            (false, true) => fh.readv_discard(&req).await.unwrap(),
            (false, false) => {
                for &(off, len) in req.extents() {
                    fh.read_discard_at(off, len).await.unwrap();
                }
            }
        }
        (got, h.now() - t0)
    });
    sim.run();
    jh.try_take().expect("read task completed")
}

/// Write random payload bytes over `req`, vectored or fragment-by-
/// fragment, into a zeroed file. Returns the whole file's final
/// contents (stored files) and the simulated time of the write portion.
fn timed_write(
    iface: Interface,
    stored: bool,
    vectored: bool,
    req: &IoRequest,
    seed: u64,
) -> (Vec<u8>, SimDuration) {
    let req = req.clone();
    let mut sim = Sim::new();
    let fs = fresh_fs(&sim);
    let h = sim.handle();
    let jh = sim.spawn(async move {
        let opts = CreateOptions {
            stored,
            ..Default::default()
        };
        let fh = fs.open(0, iface, "f", Some(opts)).await.unwrap();
        // Zero the full range first so both styles read back a fully
        // defined file afterwards.
        if stored {
            fh.write_at(0, &vec![0u8; req.end() as usize])
                .await
                .unwrap();
        } else {
            fh.write_discard_at(0, req.end()).await.unwrap();
        }
        let payload = fill_bytes(seed, req.total_bytes());
        let t0 = h.now();
        match (stored, vectored) {
            (true, true) => fh.writev(&req, &payload).await.unwrap(),
            (true, false) => {
                let mut cursor = 0usize;
                for &(off, len) in req.extents() {
                    fh.write_at(off, &payload[cursor..cursor + len as usize])
                        .await
                        .unwrap();
                    cursor += len as usize;
                }
            }
            (false, true) => fh.writev_discard(&req).await.unwrap(),
            (false, false) => {
                for &(off, len) in req.extents() {
                    fh.write_discard_at(off, len).await.unwrap();
                }
            }
        }
        let elapsed = h.now() - t0;
        let file = if stored {
            fh.read_at(0, req.end()).await.unwrap().to_vec()
        } else {
            Vec::new()
        };
        (file, elapsed)
    });
    sim.run();
    jh.try_take().expect("write task completed")
}

/// `readv` returns byte-for-byte what a fragment loop returns — which
/// is itself byte-for-byte the pattern's slices of the backing file —
/// under both the list-I/O (PASSION) and degenerate (Unix) interfaces.
#[test]
fn readv_is_byte_identical_to_the_fragment_loop() {
    let mut rng = SimRng::seed_from(0x11510);
    for case in 0..6u64 {
        let req = random_pattern(&mut rng);
        let file = fill_bytes(case, req.end());
        let expected: Vec<u8> = req
            .extents()
            .iter()
            .flat_map(|&(off, len)| file[off as usize..(off + len) as usize].to_vec())
            .collect();
        for iface in [Interface::Passion, Interface::UnixStyle] {
            let (vec_bytes, _) = timed_read(iface, true, true, &req, case);
            let (frag_bytes, _) = timed_read(iface, true, false, &req, case);
            assert_eq!(vec_bytes, expected, "case {case} {iface:?} vectored");
            assert_eq!(frag_bytes, expected, "case {case} {iface:?} fragment loop");
        }
    }
}

/// `writev` leaves the file byte-for-byte identical to a fragment loop
/// writing the same payload slices at the same offsets.
#[test]
fn writev_is_byte_identical_to_the_fragment_loop() {
    let mut rng = SimRng::seed_from(0xbeef);
    for case in 0..6u64 {
        let req = random_pattern(&mut rng);
        for iface in [Interface::Passion, Interface::UnixStyle] {
            let (vec_file, _) = timed_write(iface, true, true, &req, case);
            let (frag_file, _) = timed_write(iface, true, false, &req, case);
            assert_eq!(vec_file, frag_file, "case {case} {iface:?}");
            assert_eq!(vec_file.len() as u64, req.end());
        }
    }
}

/// Under PASSION, list-I/O is never slower than the fragment loop, and
/// strictly faster whenever there is more than one fragment — on stored
/// files, for both reads and writes.
#[test]
fn passion_listio_is_no_slower_on_stored_files() {
    let mut rng = SimRng::seed_from(0x9a551);
    for case in 0..6u64 {
        let req = random_pattern(&mut rng);
        let (_, t_vec_r) = timed_read(Interface::Passion, true, true, &req, case);
        let (_, t_frag_r) = timed_read(Interface::Passion, true, false, &req, case);
        let (_, t_vec_w) = timed_write(Interface::Passion, true, true, &req, case);
        let (_, t_frag_w) = timed_write(Interface::Passion, true, false, &req, case);
        assert!(
            t_vec_r <= t_frag_r,
            "case {case} read: {t_vec_r} > {t_frag_r}"
        );
        assert!(
            t_vec_w <= t_frag_w,
            "case {case} write: {t_vec_w} > {t_frag_w}"
        );
        if req.fragments() > 1 {
            assert!(t_vec_r < t_frag_r, "case {case} read not strictly faster");
            assert!(t_vec_w < t_frag_w, "case {case} write not strictly faster");
        }
    }
}

/// The same holds on synthetic (discard) files: the cost model does not
/// depend on whether bytes are materialized.
#[test]
fn passion_listio_is_no_slower_on_synthetic_files() {
    let mut rng = SimRng::seed_from(0x5f9e);
    for case in 0..6u64 {
        let req = random_pattern(&mut rng);
        let (_, t_vec_r) = timed_read(Interface::Passion, false, true, &req, case);
        let (_, t_frag_r) = timed_read(Interface::Passion, false, false, &req, case);
        let (_, t_vec_w) = timed_write(Interface::Passion, false, true, &req, case);
        let (_, t_frag_w) = timed_write(Interface::Passion, false, false, &req, case);
        assert!(
            t_vec_r <= t_frag_r,
            "case {case} read: {t_vec_r} > {t_frag_r}"
        );
        assert!(
            t_vec_w <= t_frag_w,
            "case {case} write: {t_vec_w} > {t_frag_w}"
        );
        if req.fragments() > 1 {
            assert!(t_vec_r < t_frag_r, "case {case} read not strictly faster");
            assert!(t_vec_w < t_frag_w, "case {case} write not strictly faster");
        }
    }
}

/// Under a Unix-style interface the vectored call *is* the fragment
/// loop: simulated time matches exactly, fragment by fragment.
#[test]
fn unix_style_vectored_calls_cost_exactly_the_fragment_loop() {
    let mut rng = SimRng::seed_from(0x0eu64);
    for case in 0..4u64 {
        let req = random_pattern(&mut rng);
        let (_, t_vec_r) = timed_read(Interface::UnixStyle, true, true, &req, case);
        let (_, t_frag_r) = timed_read(Interface::UnixStyle, true, false, &req, case);
        let (_, t_vec_w) = timed_write(Interface::UnixStyle, true, true, &req, case);
        let (_, t_frag_w) = timed_write(Interface::UnixStyle, true, false, &req, case);
        assert_eq!(t_vec_r, t_frag_r, "case {case} read");
        assert_eq!(t_vec_w, t_frag_w, "case {case} write");
    }
}

/// The constructors' extent math holds for the regular patterns the
/// applications use: a strided request is exactly its fragment list.
#[test]
fn strided_requests_behave_like_their_explicit_extent_lists() {
    let mut rng = SimRng::seed_from(0x57de);
    for case in 0..4u64 {
        let count = rng.range(2, 8);
        let len = rng.range(128, 2048);
        let stride = len + rng.range(64, 4096);
        let start = rng.range(0, 8192);
        let strided = IoRequest::strided(start, len, stride, count);
        let explicit =
            IoRequest::from_extents((0..count).map(|k| (start + k * stride, len)).collect());
        assert_eq!(strided.extents(), explicit.extents());
        let (a, ta) = timed_read(Interface::Passion, true, true, &strided, case);
        let (b, tb) = timed_read(Interface::Passion, true, true, &explicit, case);
        assert_eq!(a, b, "case {case}");
        assert_eq!(ta, tb, "case {case}");
    }
}
