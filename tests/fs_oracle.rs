#![cfg(feature = "heavy-tests")]
//! Property tests driving the whole stack against an in-memory oracle:
//! random sequences of writes and reads through the simulated parallel
//! file system must behave exactly like a plain byte vector, regardless
//! of striping, interface, or interleaving across ranks.

use std::rc::Rc;

use iosim::prelude::*;
use proptest::prelude::*;

/// An operation in the random program.
#[derive(Clone, Debug)]
enum Op {
    Write { offset: u64, len: u64, fill: u8 },
    Read { offset: u64, len: u64 },
}

fn op_strategy(max_file: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..max_file, 1..2048u64, any::<u8>()).prop_map(|(offset, len, fill)| Op::Write {
            offset,
            len,
            fill
        }),
        (0..max_file, 1..2048u64).prop_map(|(offset, len)| Op::Read { offset, len }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_io_matches_in_memory_oracle(
        ops in proptest::collection::vec(op_strategy(16_384), 1..40),
        stripe_unit in 64u64..4096,
        io_nodes in 1usize..6,
    ) {
        let mut sim = Sim::new();
        let machine = Machine::new(
            sim.handle(),
            presets::paragon_small().with_io_nodes(io_nodes),
        );
        let fs = FileSystem::new(machine, TraceCollector::new());
        let ops2 = ops.clone();
        let jh = sim.spawn(async move {
            let fh = fs
                .open(
                    0,
                    Interface::UnixStyle,
                    "oracle",
                    Some(CreateOptions {
                        stored: true,
                        stripe_unit: Some(stripe_unit),
                        ..Default::default()
                    }),
                )
                .await
                .expect("open");
            let mut oracle: Vec<u8> = Vec::new();
            for op in ops2 {
                match op {
                    Op::Write { offset, len, fill } => {
                        let data = vec![fill; len as usize];
                        fh.write_at(offset, &data).await.expect("write");
                        let end = (offset + len) as usize;
                        if oracle.len() < end {
                            oracle.resize(end, 0);
                        }
                        oracle[offset as usize..end].copy_from_slice(&data);
                        assert_eq!(fh.size(), oracle.len() as u64);
                    }
                    Op::Read { offset, len } => {
                        if offset + len <= oracle.len() as u64 {
                            let got = fh.read_at(offset, len).await.expect("read");
                            assert_eq!(
                                got,
                                &oracle[offset as usize..(offset + len) as usize]
                            );
                        } else {
                            assert!(fh.read_at(offset, len).await.is_err());
                        }
                    }
                }
            }
        });
        sim.run();
        jh.try_take().expect("program completed");
    }

    #[test]
    fn concurrent_writers_to_disjoint_regions_compose(
        region in 512u64..4096,
        ranks in 2usize..6,
        seed in any::<u8>(),
    ) {
        let mut sim = Sim::new();
        let machine = Machine::new(sim.handle(), presets::paragon_small());
        let fs = FileSystem::new(machine, TraceCollector::new());
        let h = sim.handle();
        let futs: Vec<_> = (0..ranks)
            .map(|r| {
                let fs = Rc::clone(&fs);
                async move {
                    let fh = fs
                        .open(
                            r,
                            Interface::Passion,
                            "shared",
                            Some(CreateOptions {
                                stored: true,
                                ..Default::default()
                            }),
                        )
                        .await
                        .expect("open");
                    let data: Vec<u8> =
                        (0..region).map(|i| (i as u8) ^ (r as u8) ^ seed).collect();
                    fh.write_at(r as u64 * region, &data).await.expect("write");
                }
            })
            .collect();
        let fs2 = Rc::clone(&fs);
        let jh = sim.spawn(async move {
            iosim::simkit::executor::join_all(&h, futs).await;
            let fh = fs2
                .open(0, Interface::Passion, "shared", None)
                .await
                .expect("reopen");
            fh.read_at(0, ranks as u64 * region).await.expect("read all")
        });
        sim.run();
        let all = jh.try_take().expect("completed");
        for r in 0..ranks {
            for i in 0..region {
                assert_eq!(
                    all[(r as u64 * region + i) as usize],
                    (i as u8) ^ (r as u8) ^ seed
                );
            }
        }
    }

    #[test]
    fn stripe_groups_confine_traffic_to_their_nodes(
        stripe_factor in 1usize..5,
        ops in proptest::collection::vec((0u64..1_000_000, 1u64..100_000), 1..12),
    ) {
        let mut sim = Sim::new();
        let machine = Machine::new(
            sim.handle(),
            presets::paragon_small().with_io_nodes(6),
        );
        let m2 = std::rc::Rc::clone(&machine);
        let fs = FileSystem::new(machine, TraceCollector::new());
        let ops2 = ops.clone();
        let jh = sim.spawn(async move {
            let fh = fs
                .open(
                    0,
                    Interface::Passion,
                    "grouped",
                    Some(CreateOptions {
                        stripe_factor: Some(stripe_factor),
                        ..Default::default()
                    }),
                )
                .await
                .expect("open");
            for (offset, len) in ops2 {
                fh.write_discard_at(offset, len).await.expect("write");
            }
        });
        sim.run();
        jh.try_take().expect("completed");
        let busy_nodes = (0..6)
            .filter(|&i| m2.io_queue(i).stats().requests > 0)
            .count();
        prop_assert!(
            busy_nodes <= stripe_factor,
            "traffic leaked outside the stripe group: {busy_nodes} > {stripe_factor}"
        );
    }

    #[test]
    fn two_phase_random_pieces_equal_direct(
        piece_lens in proptest::collection::vec(1u64..300, 4..16),
        ranks in 2usize..5,
    ) {
        // Deterministically deal random-length contiguous pieces to ranks
        // round-robin; both write paths must produce the same file.
        let offsets: Vec<u64> = piece_lens
            .iter()
            .scan(0u64, |acc, &l| {
                let o = *acc;
                *acc += l;
                Some(o)
            })
            .collect();
        let total: u64 = piece_lens.iter().sum();
        let build = |collective: bool| -> Vec<u8> {
            let out: Rc<std::cell::RefCell<Vec<u8>>> = Rc::default();
            let out2 = Rc::clone(&out);
            let lens = piece_lens.clone();
            let offs = offsets.clone();
            iosim::apps::common::run_ranks(
                presets::sp2().with_compute_nodes(ranks),
                ranks,
                move |ctx| {
                    let lens = lens.clone();
                    let offs = offs.clone();
                    let out = Rc::clone(&out2);
                    Box::pin(async move {
                        let fh = ctx
                            .fs
                            .open(
                                ctx.rank,
                                Interface::UnixStyle,
                                "tp",
                                Some(CreateOptions {
                                    stored: true,
                                    ..Default::default()
                                }),
                            )
                            .await
                            .expect("open");
                        let mine: Vec<Piece> = lens
                            .iter()
                            .zip(&offs)
                            .enumerate()
                            .filter(|(k, _)| k % ctx.comm.size() == ctx.rank)
                            .map(|(k, (&l, &o))| {
                                let data: Vec<u8> =
                                    (0..l).map(|i| ((k as u64 * 13 + i) % 251) as u8).collect();
                                Piece::bytes(o, data)
                            })
                            .collect();
                        if collective {
                            write_collective(&ctx.comm, &fh, mine)
                                .await
                                .expect("collective");
                        } else {
                            for p in mine {
                                fh.write_at(p.offset, &p.payload.data.expect("bytes"))
                                    .await
                                    .expect("direct");
                            }
                        }
                        ctx.comm.barrier().await;
                        if ctx.rank == 0 {
                            *out.borrow_mut() =
                                fh.read_at(0, fh.size()).await.expect("read back");
                        }
                    })
                },
            );
            let v = out.borrow().clone();
            v
        };
        let direct = build(false);
        let collective = build(true);
        prop_assert_eq!(direct.len() as u64, total);
        prop_assert_eq!(direct, collective);
    }
}
