//! Cross-crate determinism: a simulation is a pure function of its
//! configuration. Every app must produce bit-identical measurements on
//! repeated runs, including when runs execute on different host threads.

use iosim::apps::{ast, btio, fft, scf11, scf30};

fn scf11_cfg() -> scf11::Scf11Config {
    scf11::Scf11Config {
        scale: 0.02,
        ..scf11::Scf11Config::new(scf11::ScfInput::Small, scf11::Scf11Version::PassionPrefetch)
    }
}

#[test]
fn scf11_runs_are_bit_identical() {
    let a = scf11::run(&scf11_cfg());
    let b = scf11::run(&scf11_cfg());
    assert_eq!(a.run.exec_time, b.run.exec_time);
    assert_eq!(a.run.io_time, b.run.io_time);
    assert_eq!(a.run.io_ops, b.run.io_ops);
    assert_eq!(a.fg_io_time, b.fg_io_time);
}

#[test]
fn scf30_runs_are_bit_identical() {
    let cfg = scf30::Scf30Config {
        scale: 0.02,
        ..scf30::Scf30Config::new(scf11::ScfInput::Small, 8, 75)
    };
    let a = scf30::run(&cfg);
    let b = scf30::run(&cfg);
    assert_eq!(a.run.exec_time, b.run.exec_time);
    assert_eq!(a.balance_moved, b.balance_moved);
}

#[test]
fn fft_runs_are_bit_identical() {
    let cfg = fft::FftConfig::new(128, 4, true);
    let a = fft::run(&cfg);
    let b = fft::run(&cfg);
    assert_eq!(a.exec_time, b.exec_time);
    assert_eq!(a.io_ops, b.io_ops);
}

#[test]
fn btio_runs_are_bit_identical() {
    let cfg = btio::BtioConfig {
        dumps: 2,
        ..btio::BtioConfig::new(btio::BtClass::Custom(16), 9, false)
    };
    let a = btio::run(&cfg);
    let b = btio::run(&cfg);
    assert_eq!(a.exec_time, b.exec_time);
    assert_eq!(a.summary.rows[2].count, b.summary.rows[2].count);
}

#[test]
fn ast_runs_are_bit_identical() {
    let cfg = ast::AstConfig {
        grid: 64,
        arrays: 2,
        dumps: 2,
        ..ast::AstConfig::new(4, 16, true)
    };
    let a = ast::run(&cfg);
    let b = ast::run(&cfg);
    assert_eq!(a.exec_time, b.exec_time);
}

#[test]
fn results_are_identical_across_host_threads() {
    let baseline = scf11::run(&scf11_cfg()).run.exec_time;
    let handles: Vec<_> = (0..4)
        .map(|_| std::thread::spawn(|| scf11::run(&scf11_cfg()).run.exec_time))
        .collect();
    for h in handles {
        assert_eq!(h.join().expect("thread ok"), baseline);
    }
}

#[test]
fn functional_capture_is_deterministic() {
    let cfg = fft::FftConfig {
        stored: true,
        ..fft::FftConfig::new(16, 2, false)
    };
    let (_, a) = fft::run_capture(&cfg);
    let (_, b) = fft::run_capture(&cfg);
    assert_eq!(a, b);
}
