//! Buffer-cache guard rails, alongside `determinism.rs`:
//!
//! - `CachePolicy::None` (every preset's default) must keep the original
//!   uncached data path: an explicit `CacheParams::none()` machine
//!   produces measurements identical to the preset default, and no
//!   cache counters ever tick.
//! - Cached runs are deterministic: the cache's LRU/flush/read-ahead
//!   decisions are a pure function of the configuration.
//! - An LRU cache must strictly reduce simulated I/O time on a
//!   re-reading workload, while leaving stored bytes exact.

use iosim::apps::fft;
use iosim::machine::{CacheParams, CachePolicy};

fn cfg(cache_mb: u64) -> fft::FftConfig {
    let mut c = fft::FftConfig::new(256, 4, false);
    c.mem_per_proc = 256 << 10;
    c.cache_mb = cache_mb;
    c
}

#[test]
fn none_policy_matches_preset_default() {
    // The presets default to CachePolicy::None; an explicit none() must
    // be the same machine, and both must leave the counters untouched.
    let preset = iosim::machine::presets::paragon_small();
    assert_eq!(preset.cache, CacheParams::none());
    assert_eq!(preset.cache.policy, CachePolicy::None);
    let explicit = preset.with_cache(CacheParams::none());
    assert_eq!(explicit.cache, CacheParams::none());

    let a = fft::run(&cfg(0));
    assert!(a.cache.is_empty(), "uncached run ticked cache counters");
}

#[test]
fn uncached_runs_stay_bit_identical() {
    // The determinism guard for the legacy path in the presence of the
    // cache subsystem: cache_mb = 0 twice, identical times.
    let a = fft::run(&cfg(0));
    let b = fft::run(&cfg(0));
    assert_eq!(a.exec_time, b.exec_time);
    assert_eq!(a.io_time, b.io_time);
    assert_eq!(a.cum_io_time, b.cum_io_time);
    assert_eq!(a.io_ops, b.io_ops);
    assert_eq!(a.io_bytes, b.io_bytes);
}

#[test]
fn cached_runs_are_bit_identical() {
    let a = fft::run(&cfg(4));
    let b = fft::run(&cfg(4));
    assert_eq!(a.exec_time, b.exec_time);
    assert_eq!(a.io_time, b.io_time);
    assert_eq!(a.cache, b.cache);
}

#[test]
fn lru_cache_strictly_reduces_fft_io_time() {
    let uncached = fft::run(&cfg(0));
    let cached = fft::run(&cfg(4));
    assert!(
        cached.io_time < uncached.io_time,
        "4 MB cache should cut I/O time: {} vs {}",
        cached.io_time,
        uncached.io_time
    );
    assert!(cached.cache.hits > 0);
    assert_eq!(uncached.io_bytes, cached.io_bytes, "same logical workload");
}

#[test]
fn cache_preserves_stored_bytes() {
    // The cache is a timing model only: the final stored `B` array must
    // be byte-identical with and without it.
    let stored_cfg = |cache_mb: u64| {
        let mut c = fft::FftConfig::new(64, 4, true);
        c.stored = true;
        c.mem_per_proc = 64 << 10;
        c.cache_mb = cache_mb;
        c
    };
    let (plain, b_plain) = fft::run_capture(&stored_cfg(0));
    let (cached, b_cached) = fft::run_capture(&stored_cfg(4));
    assert!(plain.cache.is_empty());
    assert!(
        cached.cache.hits + cached.cache.misses > 0,
        "cache saw traffic"
    );
    assert_eq!(b_plain, b_cached, "cache must not change file contents");
}
