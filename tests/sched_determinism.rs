//! Scheduler-rewrite regression suite: snapshot oracle for the executor.
//!
//! Every row runs one of the five applications at a fixed small
//! configuration (queue depth 1 and 16, cache off and 4 MB/node) and
//! asserts against committed snapshots:
//!
//! - **Virtual times** (`exec_ns`, `io_ns`) were captured on the
//!   pre-rewrite executor (`Arc<Mutex<VecDeque>>` ready queue + `HashMap`
//!   task store) and must stay **bit-identical** — the scheduler hot-path
//!   rewrite (slab tasks, cached vtable wakers, wake dedup, batched timer
//!   pops) is not allowed to change any simulated observable.
//! - **Poll counts and schedule fingerprints** (`events`, `fingerprint`)
//!   are the current executor's schedule, committed as the go-forward
//!   oracle: any future scheduler change that reorders or duplicates
//!   polls trips this suite and must update the constants consciously.
//!   (They are *not* the pre-rewrite values: wake deduplication
//!   intentionally eliminates spurious duplicate polls, so the poll
//!   sequence differs from the old executor while every virtual-time
//!   output is unchanged. Same-instant timers are still woken one at a
//!   time with a full ready-queue drain in between, exactly like the old
//!   executor, so timer delivery itself introduces no reordering.)

use iosim::apps::{ast, btio, fft, scf11, scf30, RunResult};

/// (app, queue_depth, cache_mb, exec_ns, io_ns, events, fingerprint).
///
/// `exec_ns`/`io_ns` captured pre-rewrite (commit 816e7cf), verified
/// bit-identical post-rewrite; `events`/`fingerprint` captured on the
/// rewritten executor.
const SNAPSHOTS: &[(&str, usize, u64, u64, u64, u64, u64)] = &[
    (
        "scf11",
        1,
        0,
        7098785486,
        4705258281,
        1381,
        0xa4034c76184e8c31,
    ),
    (
        "scf30",
        1,
        0,
        6271400042,
        1310298634,
        963,
        0xd8062dd9798e0c46,
    ),
    ("fft", 1, 0, 481400667, 465548400, 129, 0x0ec03098599c90a5),
    (
        "btio",
        1,
        0,
        2955758036,
        1804308479,
        4751,
        0x72982d8df22e0964,
    ),
    ("ast", 1, 0, 516965850, 223260700, 240, 0xee65ddc10b12ad66),
    (
        "scf11",
        1,
        4,
        6609132346,
        3086406426,
        1385,
        0xaefe391760e99e15,
    ),
    (
        "scf30",
        1,
        4,
        5783269823,
        863600524,
        969,
        0x7311474036f1440f,
    ),
    ("fft", 1, 4, 328787467, 312901200, 127, 0x9d5de67a09566ea5),
    (
        "btio",
        1,
        4,
        1888110076,
        723070076,
        4751,
        0xdc8f49df6407c6e4,
    ),
    ("ast", 1, 4, 427972050, 134279200, 228, 0xfea67e292f763ba2),
    (
        "scf11",
        16,
        0,
        7060661099,
        4681751281,
        2215,
        0x53acb10b7c6b268d,
    ),
    (
        "scf30",
        16,
        0,
        6271400042,
        1310298634,
        1773,
        0x0a3ba9daac51d9cb,
    ),
    ("fft", 16, 0, 481400667, 465548400, 209, 0x29f884b523ff9167),
    (
        "btio",
        16,
        0,
        2921966229,
        1759551743,
        10127,
        0x10801220d0dc1480,
    ),
    ("ast", 16, 0, 482414750, 124254400, 242, 0xea177c6a4aa38766),
    (
        "scf11",
        16,
        4,
        6609132346,
        3086406426,
        1385,
        0xaefe391760e99e15,
    ),
    (
        "scf30",
        16,
        4,
        5783269823,
        863600524,
        969,
        0x7311474036f1440f,
    ),
    ("fft", 16, 4, 328787467, 312901200, 127, 0x9d5de67a09566ea5),
    (
        "btio",
        16,
        4,
        1888110076,
        723070076,
        4751,
        0xdc8f49df6407c6e4,
    ),
    ("ast", 16, 4, 430638750, 98366400, 214, 0x99bf6f823a0f7bc6),
];

/// The same configuration matrix on the sharded parallel engine.
fn run_app_threaded(app: &str, depth: usize, cache: u64, workers: usize) -> RunResult {
    match app {
        "scf11" => {
            scf11::run_threaded(
                &scf11::Scf11Config {
                    scale: 0.02,
                    cache_mb: cache,
                    queue_depth: depth,
                    ..scf11::Scf11Config::new(
                        scf11::ScfInput::Small,
                        scf11::Scf11Version::PassionPrefetch,
                    )
                },
                workers,
            )
            .run
        }
        "scf30" => {
            scf30::run_threaded(
                &scf30::Scf30Config {
                    scale: 0.02,
                    cache_mb: cache,
                    queue_depth: depth,
                    ..scf30::Scf30Config::new(scf11::ScfInput::Small, 8, 75)
                },
                workers,
            )
            .run
        }
        "fft" => fft::run_threaded(
            &fft::FftConfig {
                cache_mb: cache,
                queue_depth: depth,
                ..fft::FftConfig::new(128, 4, true)
            },
            workers,
        ),
        "btio" => btio::run_threaded(
            &btio::BtioConfig {
                dumps: 2,
                cache_mb: cache,
                queue_depth: depth,
                ..btio::BtioConfig::new(btio::BtClass::Custom(16), 9, false)
            },
            workers,
        ),
        "ast" => ast::run_threaded(
            &ast::AstConfig {
                grid: 64,
                arrays: 2,
                dumps: 2,
                cache_mb: cache,
                queue_depth: depth,
                ..ast::AstConfig::new(4, 16, true)
            },
            workers,
        ),
        other => panic!("unknown app {other}"),
    }
}

fn run_app(app: &str, depth: usize, cache: u64) -> RunResult {
    match app {
        "scf11" => {
            scf11::run(&scf11::Scf11Config {
                scale: 0.02,
                cache_mb: cache,
                queue_depth: depth,
                ..scf11::Scf11Config::new(
                    scf11::ScfInput::Small,
                    scf11::Scf11Version::PassionPrefetch,
                )
            })
            .run
        }
        "scf30" => {
            scf30::run(&scf30::Scf30Config {
                scale: 0.02,
                cache_mb: cache,
                queue_depth: depth,
                ..scf30::Scf30Config::new(scf11::ScfInput::Small, 8, 75)
            })
            .run
        }
        "fft" => fft::run(&fft::FftConfig {
            cache_mb: cache,
            queue_depth: depth,
            ..fft::FftConfig::new(128, 4, true)
        }),
        "btio" => btio::run(&btio::BtioConfig {
            dumps: 2,
            cache_mb: cache,
            queue_depth: depth,
            ..btio::BtioConfig::new(btio::BtClass::Custom(16), 9, false)
        }),
        "ast" => ast::run(&ast::AstConfig {
            grid: 64,
            arrays: 2,
            dumps: 2,
            cache_mb: cache,
            queue_depth: depth,
            ..ast::AstConfig::new(4, 16, true)
        }),
        other => panic!("unknown app {other}"),
    }
}

fn check_rows(rows: impl Iterator<Item = &'static (&'static str, usize, u64, u64, u64, u64, u64)>) {
    for &(app, depth, cache, exec_ns, io_ns, events, fingerprint) in rows {
        let r = run_app(app, depth, cache);
        let tag = format!("{app} depth={depth} cache={cache}MB");
        assert_eq!(
            r.exec_time.as_nanos(),
            exec_ns,
            "{tag}: exec_time drifted from pre-rewrite snapshot"
        );
        assert_eq!(
            r.io_time.as_nanos(),
            io_ns,
            "{tag}: io_time drifted from pre-rewrite snapshot"
        );
        assert_eq!(r.sim_events, events, "{tag}: poll count changed");
        assert_eq!(
            r.sched_fingerprint, fingerprint,
            "{tag}: schedule order changed"
        );
    }
}

// The matrix is split across four tests so failures localize and the
// runs spread over test threads.

#[test]
fn snapshots_depth1_uncached() {
    check_rows(SNAPSHOTS.iter().filter(|r| r.1 == 1 && r.2 == 0));
}

#[test]
fn snapshots_depth1_cached() {
    check_rows(SNAPSHOTS.iter().filter(|r| r.1 == 1 && r.2 == 4));
}

#[test]
fn snapshots_depth16_uncached() {
    check_rows(SNAPSHOTS.iter().filter(|r| r.1 == 16 && r.2 == 0));
}

#[test]
fn snapshots_depth16_cached() {
    check_rows(SNAPSHOTS.iter().filter(|r| r.1 == 16 && r.2 == 4));
}

#[test]
fn fingerprint_is_stable_across_repeat_runs() {
    let a = run_app("fft", 1, 0);
    let b = run_app("fft", 1, 0);
    assert_eq!(a.sched_fingerprint, b.sched_fingerprint);
    assert_eq!(a.sim_events, b.sim_events);
}

/// The sharded engine over the whole snapshot matrix, at the worker
/// count pinned by `IOSIM_THREADS` (default 4), against the
/// single-worker sharded oracle. `verify.sh` runs this binary under
/// both `IOSIM_THREADS=1` (serial: the engine's window protocol with no
/// real concurrency) and `IOSIM_THREADS=4` (genuine cross-thread
/// execution); every virtual observable must be bit-identical either
/// way. The 20 monolithic snapshot rows above are unaffected by the
/// pin — they always run the original engine.
#[test]
fn sharded_matrix_is_worker_count_invariant() {
    let workers = std::env::var("IOSIM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(4);
    for &(app, depth, cache, ..) in SNAPSHOTS {
        let oracle = run_app_threaded(app, depth, cache, 1);
        let r = run_app_threaded(app, depth, cache, workers);
        let tag = format!("{app} depth={depth} cache={cache}MB workers={workers}");
        assert_eq!(r.exec_time, oracle.exec_time, "{tag}: exec_time diverged");
        assert_eq!(r.io_time, oracle.io_time, "{tag}: io_time diverged");
        assert_eq!(
            r.sim_events, oracle.sim_events,
            "{tag}: poll count diverged"
        );
        assert_eq!(
            r.sched_fingerprint, oracle.sched_fingerprint,
            "{tag}: schedule fingerprint diverged"
        );
    }
}
