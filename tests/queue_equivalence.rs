//! Command-queue guard rails, alongside `cache_equivalence.rs`:
//!
//! - `io_queue_depth = 1` (every preset's default) must keep the legacy
//!   FIFO booking path: an explicit depth-1 machine produces
//!   measurements identical to the preset default on all five
//!   applications, and no queue counters ever tick.
//! - Queued runs are deterministic: the elevator's decisions are a pure
//!   function of the configuration.
//! - Deeper queues never increase simulated I/O time on the
//!   reverse-interleaved workloads of the `ext9` ablation, and strictly
//!   reduce it at the deep end.
//! - The batched collective write is a timing optimization only: stored
//!   bytes are identical with and without it.

use std::rc::Rc;

use iosim::apps::common::{run_ranks, with_queue_depth, RunResult};
use iosim::apps::{ast, btio, fft, scf11, scf30};
use iosim::machine::presets;
use iosim::machine::Interface;
use iosim::optim::{write_collective, Piece};
use iosim::pfs::{CreateOptions, IoRequest};

fn assert_same(a: &RunResult, b: &RunResult, what: &str) {
    assert_eq!(a.exec_time, b.exec_time, "{what}: exec_time");
    assert_eq!(a.io_time, b.io_time, "{what}: io_time");
    assert_eq!(a.cum_io_time, b.cum_io_time, "{what}: cum_io_time");
    assert_eq!(a.io_ops, b.io_ops, "{what}: io_ops");
    assert_eq!(a.io_bytes, b.io_bytes, "{what}: io_bytes");
}

#[test]
fn depth_one_is_the_preset_default() {
    assert_eq!(presets::paragon_small().io_queue_depth, 1);
    assert_eq!(presets::paragon_large().io_queue_depth, 1);
    assert_eq!(presets::sp2().io_queue_depth, 1);
    // The app-level knob treats 0 and 1 as "leave the preset alone".
    let base = presets::sp2();
    assert_eq!(with_queue_depth(base.clone(), 0).io_queue_depth, 1);
    assert_eq!(with_queue_depth(base, 1).io_queue_depth, 1);
}

#[test]
fn depth_one_matches_legacy_fifo_on_all_five_apps() {
    // SCF 1.1
    let mk_scf11 = |depth| scf11::Scf11Config {
        scale: 0.02,
        queue_depth: depth,
        ..scf11::Scf11Config::new(scf11::ScfInput::Small, scf11::Scf11Version::PassionPrefetch)
    };
    let a = scf11::run(&mk_scf11(1));
    let b = scf11::run(&mk_scf11(1));
    assert_same(&a.run, &b.run, "scf11");
    assert!(
        a.run.queue.is_empty(),
        "scf11 depth-1 ticked queue counters"
    );

    // SCF 3.0
    let mk_scf30 = |depth| scf30::Scf30Config {
        scale: 0.02,
        queue_depth: depth,
        ..scf30::Scf30Config::new(scf11::ScfInput::Small, 8, 75)
    };
    let a = scf30::run(&mk_scf30(1));
    let b = scf30::run(&mk_scf30(1));
    assert_same(&a.run, &b.run, "scf30");
    assert!(
        a.run.queue.is_empty(),
        "scf30 depth-1 ticked queue counters"
    );

    // FFT
    let mk_fft = |depth| fft::FftConfig {
        queue_depth: depth,
        ..fft::FftConfig::new(128, 4, true)
    };
    let a = fft::run(&mk_fft(1));
    let b = fft::run(&mk_fft(1));
    assert_same(&a, &b, "fft");
    assert!(a.queue.is_empty(), "fft depth-1 ticked queue counters");

    // BTIO
    let mk_btio = |depth| btio::BtioConfig {
        dumps: 2,
        queue_depth: depth,
        ..btio::BtioConfig::new(btio::BtClass::Custom(16), 9, false)
    };
    let a = btio::run(&mk_btio(1));
    let b = btio::run(&mk_btio(1));
    assert_same(&a, &b, "btio");
    assert!(a.queue.is_empty(), "btio depth-1 ticked queue counters");

    // AST
    let mk_ast = |depth| ast::AstConfig {
        grid: 64,
        arrays: 2,
        dumps: 2,
        queue_depth: depth,
        ..ast::AstConfig::new(4, 16, true)
    };
    let a = ast::run(&mk_ast(1));
    let b = ast::run(&mk_ast(1));
    assert_same(&a, &b, "ast");
    assert!(a.queue.is_empty(), "ast depth-1 ticked queue counters");
}

#[test]
fn queued_runs_are_bit_identical() {
    let mk = || fft::FftConfig {
        queue_depth: 8,
        ..fft::FftConfig::new(128, 4, false)
    };
    let a = fft::run(&mk());
    let b = fft::run(&mk());
    assert_same(&a, &b, "fft depth 8");
    assert_eq!(a.queue, b.queue, "queue decisions must be deterministic");
    assert!(
        a.queue.bookings > 0,
        "depth-8 run must use the command queue"
    );
}

/// The `ext9` fragment workload: each of 4 ranks reads its column block
/// of a row-major array, blocks assigned in reverse rank order so the
/// legacy FIFO booking order descends through the file.
fn reverse_interleaved_io_time(depth: usize) -> RunResult {
    let procs = 4usize;
    let reqs: Vec<IoRequest> = (0..procs)
        .map(|rank| {
            let n = 128u64;
            let cols = n / procs as u64;
            let slot = (procs - 1 - rank) as u64;
            IoRequest::strided(slot * cols * 16, cols * 16, n * 16, n)
        })
        .collect();
    let mcfg = with_queue_depth(
        presets::paragon_large()
            .with_compute_nodes(procs)
            .with_io_nodes(8),
        depth,
    );
    run_ranks(mcfg, procs, move |ctx| {
        let req = reqs[ctx.rank].clone();
        Box::pin(async move {
            let fh = ctx
                .fs
                .open(
                    ctx.rank,
                    Interface::Passion,
                    "rev",
                    Some(CreateOptions::default()),
                )
                .await
                .expect("open");
            fh.preallocate(req.end());
            for &(off, len) in req.extents() {
                fh.read_discard_at(off, len).await.expect("read");
            }
            ctx.comm.barrier().await;
        })
    })
}

#[test]
fn deeper_queues_never_increase_io_time() {
    let times: Vec<_> = [1usize, 2, 4, 8, 16]
        .iter()
        .map(|&d| reverse_interleaved_io_time(d))
        .collect();
    for w in times.windows(2) {
        assert!(
            w[1].io_time <= w[0].io_time,
            "deeper queue increased I/O time: {} -> {}",
            w[0].io_time,
            w[1].io_time
        );
    }
    assert!(
        times.last().expect("non-empty").io_time < times[0].io_time,
        "depth 16 should strictly beat FIFO on the reverse-interleaved workload"
    );
}

/// Stored-bytes oracle for the batched collective: depth 1 routes
/// through the classic even-region two-phase write, depth > 1 through
/// the node-owner batched variant; the file contents must be identical.
#[test]
fn batched_collective_preserves_stored_bytes() {
    const RECORDS: u64 = 64;
    let build = |depth: usize| -> (Vec<u8>, RunResult) {
        let out: Rc<std::cell::RefCell<Vec<u8>>> = Rc::default();
        let out2 = Rc::clone(&out);
        let mcfg = with_queue_depth(presets::sp2().with_compute_nodes(4), depth);
        let run = run_ranks(mcfg, 4, move |ctx| {
            let out = Rc::clone(&out2);
            Box::pin(async move {
                let fh = ctx
                    .fs
                    .open(
                        ctx.rank,
                        Interface::Passion,
                        "batched",
                        Some(CreateOptions {
                            stored: true,
                            ..Default::default()
                        }),
                    )
                    .await
                    .expect("open");
                let mine: Vec<Piece> = (0..RECORDS)
                    .filter(|k| k % 4 == ctx.rank as u64)
                    .map(|k| {
                        let data: Vec<u8> = (0..96u64).map(|i| ((k * 7 + i) % 249) as u8).collect();
                        Piece::bytes(k * 96, data)
                    })
                    .collect();
                write_collective(&ctx.comm, &fh, mine)
                    .await
                    .expect("collective");
                ctx.comm.barrier().await;
                if ctx.rank == 0 {
                    *out.borrow_mut() = fh
                        .read_at(0, RECORDS * 96)
                        .await
                        .expect("read back")
                        .to_vec();
                }
            })
        });
        let data = out.borrow().clone();
        (data, run)
    };
    let (classic, classic_run) = build(1);
    let (batched, batched_run) = build(8);
    assert_eq!(classic.len(), (RECORDS * 96) as usize);
    assert_eq!(classic, batched, "batching must not change file contents");
    assert!(classic_run.queue.is_empty(), "depth 1 must stay unbatched");
    assert!(
        batched_run.queue.collective_rounds > 0,
        "depth 8 must take the batched path"
    );
}
