//! Operation-stream model and text formats.
//!
//! Two ingestion formats parse into the same [`OpStream`]:
//!
//! # Legacy 4-column format
//!
//! One operation per line: `<rank> <r|w> <offset> <bytes>`. Blank lines
//! and `#` comments are ignored; fields are separated by any whitespace
//! (spaces or tabs) and CRLF line endings are accepted. This is the
//! format the original `iosim replay` shipped with and it must keep
//! parsing identically forever.
//!
//! ```text
//! # rank op offset bytes
//! 0 w 0     65536
//! 1 w 65536 65536
//! 0 r 0     4096
//! ```
//!
//! # Extended op-stream format (strace-style)
//!
//! One operation per line, `<rank> <verb> <args…>`, with named files,
//! explicit open/close/seek, and optional cross-rank dependency edges:
//!
//! ```text
//! #iosim opstream v1
//! 0 open  ckpt.dat
//! 1 open  ckpt.dat
//! 0 write ckpt.dat 0     65536  @w0
//! 1 write ckpt.dat 65536 65536
//! 0 seek  ckpt.dat 0
//! 1 read  ckpt.dat 0     4096   <-w0
//! 0 close ckpt.dat
//! 1 close ckpt.dat
//! ```
//!
//! Lines are in **per-rank program order** (each rank executes its own
//! lines top to bottom). A trailing `@LABEL` names an operation; a
//! trailing `<-LABEL[,LABEL…]` makes the operation wait until every named
//! operation (on any rank) has completed — the cross-rank dependency
//! edges a recorded distributed application carries. Labels must be
//! defined before use, which also guarantees the dependency graph is
//! acyclic.

use std::collections::HashMap;
use std::fmt;

/// Operation kind in a legacy trace (read or write only).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A read.
    Read,
    /// A write.
    Write,
}

/// One legacy traced operation (`rank op offset bytes`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceOp {
    /// Issuing rank.
    pub rank: usize,
    /// Read or write.
    pub kind: TraceKind,
    /// Absolute file offset.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
}

/// Trace parse error with line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// What one extended operation does.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkKind {
    /// Open the file (and preallocate its full traced extent).
    Open,
    /// Close the file.
    Close,
    /// Reposition the file pointer.
    Seek(u64),
    /// Read `len` bytes at `offset`.
    Read {
        /// Absolute file offset.
        offset: u64,
        /// Length in bytes.
        len: u64,
    },
    /// Write `len` bytes at `offset`.
    Write {
        /// Absolute file offset.
        offset: u64,
        /// Length in bytes.
        len: u64,
    },
}

/// One operation of an [`OpStream`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkOp {
    /// Issuing rank.
    pub rank: usize,
    /// Index into [`OpStream::files`].
    pub file: usize,
    /// The operation.
    pub kind: WorkKind,
    /// Label other operations can depend on (`@LABEL`).
    pub label: Option<String>,
    /// Indices (into [`OpStream::ops`]) this operation waits for.
    pub deps: Vec<usize>,
}

/// A parsed workload: a file table plus operations in per-rank program
/// order (the global order of `ops` is the recorded interleaving and is
/// preserved by [`render_opstream`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OpStream {
    /// File names, indexed by [`WorkOp::file`].
    pub files: Vec<String>,
    /// The operations.
    pub ops: Vec<WorkOp>,
}

impl OpStream {
    /// Number of ranks the stream needs (max rank + 1; at least 1).
    pub fn ranks(&self) -> usize {
        self.ops.iter().map(|o| o.rank + 1).max().unwrap_or(1)
    }

    /// Extent each file requires (max end offset over its data ops).
    pub fn extents(&self) -> Vec<u64> {
        let mut ext = vec![0u64; self.files.len()];
        for op in &self.ops {
            let end = match op.kind {
                WorkKind::Read { offset, len } | WorkKind::Write { offset, len } => offset + len,
                WorkKind::Seek(pos) => pos,
                _ => 0,
            };
            ext[op.file] = ext[op.file].max(end);
        }
        ext
    }

    /// Total bytes moved by read + write ops.
    pub fn data_bytes(&self) -> u64 {
        self.ops
            .iter()
            .map(|o| match o.kind {
                WorkKind::Read { len, .. } | WorkKind::Write { len, .. } => len,
                _ => 0,
            })
            .sum()
    }

    /// Count of read + write ops.
    pub fn data_ops(&self) -> u64 {
        self.ops
            .iter()
            .filter(|o| matches!(o.kind, WorkKind::Read { .. } | WorkKind::Write { .. }))
            .count() as u64
    }

    /// Whether any operation carries a dependency edge.
    pub fn has_deps(&self) -> bool {
        self.ops.iter().any(|o| !o.deps.is_empty())
    }

    /// Build a stream from legacy ops: one shared file, every rank opens
    /// it up front and closes it at the end (exactly the structure the
    /// original replay executed), reads/writes in recorded order.
    pub fn from_legacy(ops: &[TraceOp]) -> OpStream {
        let ranks = ops.iter().map(|o| o.rank + 1).max().unwrap_or(1);
        let mut out = OpStream {
            files: vec!["replay.data".to_string()],
            ops: Vec::with_capacity(ops.len() + 2 * ranks),
        };
        for r in 0..ranks {
            out.ops.push(WorkOp {
                rank: r,
                file: 0,
                kind: WorkKind::Open,
                label: None,
                deps: Vec::new(),
            });
        }
        for op in ops {
            out.ops.push(WorkOp {
                rank: op.rank,
                file: 0,
                kind: match op.kind {
                    TraceKind::Read => WorkKind::Read {
                        offset: op.offset,
                        len: op.len,
                    },
                    TraceKind::Write => WorkKind::Write {
                        offset: op.offset,
                        len: op.len,
                    },
                },
                label: None,
                deps: Vec::new(),
            });
        }
        for r in 0..ranks {
            out.ops.push(WorkOp {
                rank: r,
                file: 0,
                kind: WorkKind::Close,
                label: None,
                deps: Vec::new(),
            });
        }
        out
    }

    /// Project the stream back to legacy ops (reads/writes only). Returns
    /// `None` if the stream touches more than one file — the legacy
    /// format cannot express that.
    pub fn to_legacy(&self) -> Option<Vec<TraceOp>> {
        if self.files.len() > 1 {
            return None;
        }
        Some(
            self.ops
                .iter()
                .filter_map(|o| match o.kind {
                    WorkKind::Read { offset, len } => Some(TraceOp {
                        rank: o.rank,
                        kind: TraceKind::Read,
                        offset,
                        len,
                    }),
                    WorkKind::Write { offset, len } => Some(TraceOp {
                        rank: o.rank,
                        kind: TraceKind::Write,
                        offset,
                        len,
                    }),
                    _ => None,
                })
                .collect(),
        )
    }
}

/// Number of ranks a legacy trace needs.
pub fn ranks_of(ops: &[TraceOp]) -> usize {
    ops.iter().map(|o| o.rank + 1).max().unwrap_or(1)
}

/// File size a legacy trace requires (max end offset).
pub fn extent_of(ops: &[TraceOp]) -> u64 {
    ops.iter().map(|o| o.offset + o.len).max().unwrap_or(0)
}

// ---------------------------------------------------------------------
// Legacy 4-column format

/// Parse the legacy text format (`rank r|w offset bytes`). Tolerates
/// CRLF line endings, tab separators, `#` comments, and blank lines.
pub fn parse_legacy(text: &str) -> Result<Vec<TraceOp>, ParseError> {
    let mut ops = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let body = raw.split('#').next().unwrap_or("").trim();
        if body.is_empty() {
            continue;
        }
        let fields: Vec<&str> = body.split_whitespace().collect();
        if fields.len() != 4 {
            return Err(err(
                line,
                format!("expected 4 fields, got {}", fields.len()),
            ));
        }
        let rank: usize = fields[0]
            .parse()
            .map_err(|_| err(line, format!("bad rank '{}'", fields[0])))?;
        let kind = match fields[1] {
            "r" | "R" => TraceKind::Read,
            "w" | "W" => TraceKind::Write,
            other => return Err(err(line, format!("bad op '{other}' (expected r or w)"))),
        };
        let offset: u64 = fields[2]
            .parse()
            .map_err(|_| err(line, format!("bad offset '{}'", fields[2])))?;
        let len: u64 = fields[3]
            .parse()
            .map_err(|_| err(line, format!("bad length '{}'", fields[3])))?;
        if len == 0 {
            return Err(err(line, "zero-length operation"));
        }
        ops.push(TraceOp {
            rank,
            kind,
            offset,
            len,
        });
    }
    Ok(ops)
}

/// Render legacy operations back to the 4-column text format.
pub fn render_legacy(ops: &[TraceOp]) -> String {
    let mut out = String::from("# rank op offset bytes\n");
    for op in ops {
        out.push_str(&format!(
            "{} {} {} {}\n",
            op.rank,
            match op.kind {
                TraceKind::Read => "r",
                TraceKind::Write => "w",
            },
            op.offset,
            op.len
        ));
    }
    out
}

// ---------------------------------------------------------------------
// Extended op-stream format

/// Parse the extended strace-style op-stream format.
///
/// ```
/// use iosim_workload::opstream::{parse_opstream, WorkKind};
/// let s = parse_opstream(
///     "0 open f\n0 write f 0 4096 @a\n1 open f\n1 read f 0 4096 <-a\n",
/// )
/// .unwrap();
/// assert_eq!(s.files, vec!["f"]);
/// assert_eq!(s.ops.len(), 4);
/// assert_eq!(s.ops[3].deps, vec![1]);
/// assert!(matches!(s.ops[3].kind, WorkKind::Read { .. }));
/// ```
pub fn parse_opstream(text: &str) -> Result<OpStream, ParseError> {
    let mut stream = OpStream::default();
    let mut file_ids: HashMap<String, usize> = HashMap::new();
    let mut labels: HashMap<String, usize> = HashMap::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let body = raw.split('#').next().unwrap_or("").trim();
        if body.is_empty() {
            continue;
        }
        let mut fields: Vec<&str> = body.split_whitespace().collect();
        // Trailing annotations: `@LABEL` then/or `<-A,B`.
        let mut label: Option<String> = None;
        let mut deps: Vec<usize> = Vec::new();
        while let Some(last) = fields.last() {
            if let Some(l) = last.strip_prefix('@') {
                if l.is_empty() {
                    return Err(err(line, "empty label after '@'"));
                }
                if label.is_some() {
                    return Err(err(line, "more than one '@LABEL'"));
                }
                label = Some(l.to_string());
                fields.pop();
            } else if let Some(ds) = last.strip_prefix("<-") {
                if !deps.is_empty() {
                    return Err(err(line, "more than one '<-' dependency list"));
                }
                for d in ds.split(',') {
                    match labels.get(d) {
                        Some(&idx) => deps.push(idx),
                        None => {
                            return Err(err(line, format!("dependency on undefined label '{d}'")))
                        }
                    }
                }
                fields.pop();
            } else {
                break;
            }
        }
        if fields.len() < 2 {
            return Err(err(line, "expected '<rank> <verb> ...'"));
        }
        let rank: usize = fields[0]
            .parse()
            .map_err(|_| err(line, format!("bad rank '{}'", fields[0])))?;
        let verb = fields[1];
        let need = |n: usize| -> Result<(), ParseError> {
            if fields.len() != n {
                Err(err(
                    line,
                    format!("'{verb}' takes {} args, got {}", n - 2, fields.len() - 2),
                ))
            } else {
                Ok(())
            }
        };
        let num = |s: &str, what: &str| -> Result<u64, ParseError> {
            s.parse()
                .map_err(|_| err(line, format!("bad {what} '{s}'")))
        };
        let kind = match verb {
            "open" => {
                need(3)?;
                WorkKind::Open
            }
            "close" => {
                need(3)?;
                WorkKind::Close
            }
            "seek" => {
                need(4)?;
                WorkKind::Seek(num(fields[3], "offset")?)
            }
            "read" | "r" => {
                need(5)?;
                let len = num(fields[4], "length")?;
                if len == 0 {
                    return Err(err(line, "zero-length operation"));
                }
                WorkKind::Read {
                    offset: num(fields[3], "offset")?,
                    len,
                }
            }
            "write" | "w" => {
                need(5)?;
                let len = num(fields[4], "length")?;
                if len == 0 {
                    return Err(err(line, "zero-length operation"));
                }
                WorkKind::Write {
                    offset: num(fields[3], "offset")?,
                    len,
                }
            }
            other => {
                return Err(err(
                    line,
                    format!("unknown verb '{other}' (open|close|seek|read|write)"),
                ))
            }
        };
        let fname = fields[2].to_string();
        let next_id = file_ids.len();
        let file = *file_ids.entry(fname.clone()).or_insert(next_id);
        if file == stream.files.len() {
            stream.files.push(fname);
        }
        if let Some(l) = &label {
            if labels.insert(l.clone(), stream.ops.len()).is_some() {
                return Err(err(line, format!("duplicate label '{l}'")));
            }
        }
        stream.ops.push(WorkOp {
            rank,
            file,
            kind,
            label,
            deps,
        });
    }
    Ok(stream)
}

/// Render an [`OpStream`] back to the extended text format. Parsing the
/// result reproduces the stream exactly (`parse → render → parse` is the
/// identity; the round-trip tests pin this).
pub fn render_opstream(stream: &OpStream) -> String {
    let mut out = String::from("#iosim opstream v1\n");
    for op in &stream.ops {
        let file = &stream.files[op.file];
        match op.kind {
            WorkKind::Open => out.push_str(&format!("{} open {}", op.rank, file)),
            WorkKind::Close => out.push_str(&format!("{} close {}", op.rank, file)),
            WorkKind::Seek(pos) => out.push_str(&format!("{} seek {} {}", op.rank, file, pos)),
            WorkKind::Read { offset, len } => {
                out.push_str(&format!("{} read {} {} {}", op.rank, file, offset, len))
            }
            WorkKind::Write { offset, len } => {
                out.push_str(&format!("{} write {} {} {}", op.rank, file, offset, len))
            }
        }
        if let Some(l) = &op.label {
            out.push_str(&format!(" @{l}"));
        }
        if !op.deps.is_empty() {
            let names: Vec<&str> = op
                .deps
                .iter()
                .map(|&d| {
                    stream.ops[d]
                        .label
                        .as_deref()
                        .expect("dependency target must be labelled")
                })
                .collect();
            out.push_str(&format!(" <-{}", names.join(",")));
        }
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------
// Format detection

/// The trace formats the front-end understands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceFormat {
    /// Legacy 4-column `rank r|w offset bytes`.
    Legacy,
    /// Extended strace-style op stream.
    OpStream,
    /// Darshan-like per-file summary (see [`crate::darshan`]).
    Darshan,
}

/// Sniff which format a trace text is in, from the first non-comment,
/// non-blank line (a `#iosim opstream` / `#iosim darshan` header wins
/// even as a comment).
pub fn detect_format(text: &str) -> TraceFormat {
    for raw in text.lines() {
        let t = raw.trim();
        if let Some(h) = t.strip_prefix("#iosim") {
            let h = h.trim_start();
            if h.starts_with("darshan") {
                return TraceFormat::Darshan;
            }
            if h.starts_with("opstream") {
                return TraceFormat::OpStream;
            }
        }
        let body = t.split('#').next().unwrap_or("").trim();
        if body.is_empty() {
            continue;
        }
        let mut fields = body.split_whitespace();
        let first = fields.next().unwrap_or("");
        if matches!(first, "file" | "rhist" | "whist") {
            return TraceFormat::Darshan;
        }
        return match fields.next().unwrap_or("") {
            "open" | "close" | "seek" | "read" | "write" => TraceFormat::OpStream,
            _ => TraceFormat::Legacy,
        };
    }
    TraceFormat::Legacy
}

/// Parse any supported format into an [`OpStream`], expanding a Darshan
/// summary with `seed` (ignored for the literal formats).
pub fn parse_any(text: &str, seed: u64) -> Result<OpStream, ParseError> {
    match detect_format(text) {
        TraceFormat::Legacy => Ok(OpStream::from_legacy(&parse_legacy(text)?)),
        TraceFormat::OpStream => parse_opstream(text),
        TraceFormat::Darshan => Ok(crate::darshan::parse_darshan(text)?.expand(seed)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_parse_matches_original_semantics() {
        let ops = parse_legacy("# demo\n0 w 0 4096\n1 r 4096 512\n").unwrap();
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[1].kind, TraceKind::Read);
        assert!(parse_legacy("0 q 0 1\n").is_err());
        let e = parse_legacy("0 w 0 10\n0 x 0 10\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bad op"));
        assert!(parse_legacy("0 w 0\n")
            .unwrap_err()
            .message
            .contains("4 fields"));
        assert!(parse_legacy("0 w 0 0\n")
            .unwrap_err()
            .message
            .contains("zero-length"));
    }

    #[test]
    fn legacy_tolerates_crlf_and_tabs() {
        let unix = parse_legacy("0 w 0 10\n1 r 10 5\n").unwrap();
        let crlf = parse_legacy("0 w 0 10\r\n1 r 10 5\r\n").unwrap();
        let tabs = parse_legacy("0\tw\t0\t10\n1\tr\t10\t5\n").unwrap();
        let mixed = parse_legacy("0 \tw  0\t10 # c\r\n\r\n1\tr 10 \t 5\r\n").unwrap();
        assert_eq!(unix, crlf);
        assert_eq!(unix, tabs);
        assert_eq!(unix, mixed);
    }

    #[test]
    fn legacy_roundtrip_is_identity() {
        let ops = vec![
            TraceOp {
                rank: 0,
                kind: TraceKind::Write,
                offset: 0,
                len: 100,
            },
            TraceOp {
                rank: 3,
                kind: TraceKind::Read,
                offset: 4096,
                len: 512,
            },
        ];
        assert_eq!(parse_legacy(&render_legacy(&ops)).unwrap(), ops);
    }

    #[test]
    fn opstream_roundtrip_is_identity() {
        let text = "\
#iosim opstream v1
0 open a.dat
1 open a.dat
0 write a.dat 0 65536 @w0
1 write a.dat 65536 65536 @w1
0 seek a.dat 0
0 read a.dat 65536 4096 <-w1
1 read a.dat 0 4096 <-w0,w1
0 close a.dat
1 close a.dat
";
        let s = parse_opstream(text).unwrap();
        assert_eq!(s.ranks(), 2);
        assert_eq!(s.files, vec!["a.dat"]);
        assert_eq!(s.data_ops(), 4);
        assert_eq!(s.ops[5].deps, vec![3]);
        assert_eq!(s.ops[6].deps, vec![2, 3]);
        let rendered = render_opstream(&s);
        let s2 = parse_opstream(&rendered).unwrap();
        assert_eq!(s, s2);
        // And the rendering itself is a fixed point.
        assert_eq!(rendered, render_opstream(&s2));
    }

    #[test]
    fn opstream_rejects_bad_lines() {
        assert!(parse_opstream("0 read f 0\n")
            .unwrap_err()
            .message
            .contains("takes"));
        assert!(parse_opstream("0 fsync f\n")
            .unwrap_err()
            .message
            .contains("unknown verb"));
        assert!(parse_opstream("0 read f 0 10 <-nope\n")
            .unwrap_err()
            .message
            .contains("undefined label"));
        assert!(parse_opstream("0 write f 0 10 @a\n0 write f 0 10 @a\n")
            .unwrap_err()
            .message
            .contains("duplicate label"));
        assert!(parse_opstream("0 write f 0 0\n")
            .unwrap_err()
            .message
            .contains("zero-length"));
        assert!(parse_opstream("0 write f 0 10 @\n")
            .unwrap_err()
            .message
            .contains("empty label"));
    }

    #[test]
    fn opstream_tolerates_crlf_and_tabs() {
        let a = parse_opstream("0 open f\n0 write f 0 10\n").unwrap();
        let b = parse_opstream("0\topen\tf\r\n0\twrite\tf\t0\t10\r\n").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn detection_distinguishes_the_three_formats() {
        assert_eq!(detect_format("0 w 0 4096\n"), TraceFormat::Legacy);
        assert_eq!(detect_format("# c\n\n1 r 0 512\n"), TraceFormat::Legacy);
        assert_eq!(detect_format("0 open f\n"), TraceFormat::OpStream);
        assert_eq!(
            detect_format("#iosim opstream v1\n0 w 0 1\n"),
            TraceFormat::OpStream
        );
        assert_eq!(detect_format("file scratch 4 0.9\n"), TraceFormat::Darshan);
        assert_eq!(detect_format("#iosim darshan v1\n"), TraceFormat::Darshan);
        assert_eq!(detect_format(""), TraceFormat::Legacy);
    }

    #[test]
    fn legacy_to_stream_and_back() {
        let ops = parse_legacy("0 w 0 10\n1 r 0 10\n").unwrap();
        let s = OpStream::from_legacy(&ops);
        // 2 opens + 2 data ops + 2 closes.
        assert_eq!(s.ops.len(), 6);
        assert_eq!(s.extents(), vec![10]);
        assert_eq!(s.to_legacy().unwrap(), ops);
        assert!(!s.has_deps());
    }

    #[test]
    fn parse_any_dispatches_on_format() {
        let legacy = parse_any("0 w 0 10\n", 1).unwrap();
        assert_eq!(legacy.files, vec!["replay.data"]);
        let ext = parse_any("0 open f\n0 write f 0 10\n0 close f\n", 1).unwrap();
        assert_eq!(ext.files, vec!["f"]);
    }
}
