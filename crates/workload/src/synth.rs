//! Open-loop synthetic workload generator.
//!
//! A [`SynthSpec`] describes a population of independent clients — each
//! with its own seeded arrival stream ([`crate::arrival`]) and op mix —
//! and [`generate`] expands it into per-client timed op lists. Generation
//! is pure (no simulation state), bit-deterministic for a fixed seed, and
//! cheap enough to pre-materialize thousands of clients.
//!
//! Each operation may be **noncontiguous**: `fragments > 1` splits the
//! request into that many equal strided extents (the classic
//! column-strip shape), which is what makes the replay-mode comparison
//! meaningful — direct mode walks the fragments one by one, list-I/O
//! mode issues them as a single vectored request, and two-phase mode
//! batches several clients' requests into collective windows.

use iosim_simkit::rng::SimRng;
use iosim_simkit::time::SimDuration;

use crate::arrival::ArrivalModel;
use crate::opstream::TraceKind;

/// One generated timed operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimedOp {
    /// Scheduled (open-loop) arrival instant, relative to run start.
    pub at: SimDuration,
    /// Read or write.
    pub kind: TraceKind,
    /// Target file (index into the spec's file population).
    pub file: usize,
    /// Starting offset of the first fragment.
    pub offset: u64,
    /// Total bytes across fragments.
    pub len: u64,
}

/// An open-loop synthetic workload.
#[derive(Clone, Debug, PartialEq)]
pub struct SynthSpec {
    /// Number of independent clients.
    pub clients: usize,
    /// Offered-load window: arrivals are generated in `[0, duration)`.
    pub duration: SimDuration,
    /// Arrival process of **each client** (aggregate offered rate =
    /// `clients × arrival.mean_rate()`).
    pub arrival: ArrivalModel,
    /// Fraction of operations that are reads, in `[0, 1]`.
    pub read_frac: f64,
    /// Bytes per operation (total across fragments).
    pub op_bytes: u64,
    /// Fragments per operation (1 = contiguous).
    pub fragments: u32,
    /// Shared files the clients hit.
    pub files: usize,
    /// Bytes per file (offsets are drawn record-aligned inside this).
    pub file_bytes: u64,
    /// Master seed; every client splits its own stream from it.
    pub seed: u64,
}

impl SynthSpec {
    /// A small, fast default population: 32 clients, 1 s window, Poisson
    /// arrivals, 64 KB strided ops (8 fragments) over 4 shared files.
    pub fn small(rate_per_client: f64, seed: u64) -> SynthSpec {
        SynthSpec {
            clients: 32,
            duration: SimDuration::from_secs_f64(1.0),
            arrival: ArrivalModel::Poisson {
                rate: rate_per_client,
            },
            read_frac: 0.5,
            op_bytes: 64 << 10,
            fragments: 8,
            files: 4,
            file_bytes: 64 << 20,
            seed,
        }
    }

    /// Aggregate offered operation rate (ops per simulated second).
    pub fn offered_ops_per_sec(&self) -> f64 {
        self.clients as f64 * self.arrival.mean_rate()
    }
}

/// Expand the spec into per-client timed op lists (index = client id).
pub fn generate(spec: &SynthSpec) -> Vec<Vec<TimedOp>> {
    assert!(spec.clients > 0, "need at least one client");
    assert!(spec.files > 0, "need at least one file");
    assert!(spec.op_bytes > 0, "need non-zero op size");
    assert!(
        (0.0..=1.0).contains(&spec.read_frac),
        "read_frac outside [0, 1]"
    );
    let mut root = SimRng::seed_from(spec.seed);
    let record = spec.op_bytes.max(1);
    let records_per_file = (spec.file_bytes / record).max(1);
    (0..spec.clients)
        .map(|c| {
            let mut rng = root.split(c as u64);
            let arrivals = spec.arrival.arrivals(&mut rng, spec.duration);
            arrivals
                .into_iter()
                .map(|at| {
                    let kind = if rng.unit() < spec.read_frac {
                        TraceKind::Read
                    } else {
                        TraceKind::Write
                    };
                    let file = rng.range(0, spec.files as u64) as usize;
                    let offset = rng.range(0, records_per_file) * record;
                    TimedOp {
                        at,
                        kind,
                        file,
                        offset,
                        len: spec.op_bytes,
                    }
                })
                .collect()
        })
        .collect()
}

/// Total operations in a generated workload.
pub fn total_ops(clients: &[Vec<TimedOp>]) -> u64 {
    clients.iter().map(|c| c.len() as u64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_bit_deterministic() {
        let spec = SynthSpec::small(50.0, 1234);
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a, b);
        let c = generate(&SynthSpec { seed: 1235, ..spec });
        assert_ne!(a, c);
    }

    #[test]
    fn clients_are_independent_streams() {
        let spec = SynthSpec::small(100.0, 7);
        let gen = generate(&spec);
        assert_eq!(gen.len(), 32);
        assert_ne!(gen[0], gen[1], "distinct per-client streams");
        // All arrivals inside the window, sorted per client.
        for client in &gen {
            assert!(client.windows(2).all(|w| w[0].at <= w[1].at));
            for op in client {
                assert!(op.at < spec.duration);
                assert!(op.file < spec.files);
                assert_eq!(op.len, spec.op_bytes);
                assert!(op.offset + op.len <= spec.file_bytes);
            }
        }
    }

    #[test]
    fn offered_rate_matches_population() {
        let spec = SynthSpec {
            clients: 64,
            ..SynthSpec::small(25.0, 3)
        };
        assert!((spec.offered_ops_per_sec() - 1600.0).abs() < 1e-9);
        let n = total_ops(&generate(&spec));
        // 1600 expected over the 1 s window; 4 sigma = 160.
        assert!((1400..1800).contains(&n), "generated {n}");
    }

    #[test]
    fn read_fraction_is_respected() {
        let spec = SynthSpec {
            read_frac: 1.0,
            ..SynthSpec::small(100.0, 5)
        };
        let gen = generate(&spec);
        assert!(gen.iter().flatten().all(|op| op.kind == TraceKind::Read));
        let spec = SynthSpec {
            read_frac: 0.0,
            ..spec
        };
        assert!(generate(&spec)
            .iter()
            .flatten()
            .all(|op| op.kind == TraceKind::Write));
    }
}
