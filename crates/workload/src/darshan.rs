//! Darshan-like summarized trace format and its expansion.
//!
//! Real sites rarely archive full op streams; what they have are
//! Darshan-style *summaries*: per-file operation counters and access-size
//! histograms (see "Tools for Analyzing Parallel I/O", PAPERS.md). This
//! module parses such a summary and expands it into a representative
//! [`OpStream`] with the in-tree seeded xoshiro RNG — deterministic for a
//! fixed seed, so an expanded workload is exactly reproducible.
//!
//! # Format
//!
//! ```text
//! #iosim darshan v1
//! # file <name> <ranks> <seq_frac>
//! # rhist/whist <name> <size_bytes> <count>
//! file  scratch.dat 4 0.9
//! whist scratch.dat 65536 200
//! rhist scratch.dat 4096  800
//! ```
//!
//! `ranks` is how many ranks shared the file; `seq_frac` in `[0, 1]` is
//! the fraction of accesses that were sequential (Darshan's
//! `*_SEQ_{READS,WRITES}` counters over totals). Each `rhist`/`whist`
//! line adds `count` accesses of `size_bytes` each (Darshan's
//! `*_SIZE_*_{0_100,100_1K,…}` bins, keyed by a representative size).
//!
//! # Expansion
//!
//! Writes are expanded before reads per file (so reads hit written
//! extents), each rank walks its own sequential cursor, and a
//! non-sequential access jumps to a random record-aligned offset. Ranks
//! interleave round-robin — the classic striding of a parallel dump.

use iosim_simkit::rng::SimRng;

use crate::opstream::{OpStream, ParseError, WorkKind, WorkOp};

/// Per-file access-size histogram entry: `count` accesses of `size` bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SizeBin {
    /// Representative access size in bytes.
    pub size: u64,
    /// Number of accesses in this bin.
    pub count: u64,
}

/// Summary of one file's recorded activity.
#[derive(Clone, Debug, PartialEq)]
pub struct FileSummary {
    /// File name.
    pub name: String,
    /// Ranks that shared the file.
    pub ranks: usize,
    /// Fraction of accesses that were sequential, in `[0, 1]`.
    pub seq_frac: f64,
    /// Read-size histogram.
    pub reads: Vec<SizeBin>,
    /// Write-size histogram.
    pub writes: Vec<SizeBin>,
}

impl FileSummary {
    /// Total accesses (reads + writes).
    pub fn total_ops(&self) -> u64 {
        self.reads.iter().chain(&self.writes).map(|b| b.count).sum()
    }

    /// Total bytes (reads + writes).
    pub fn total_bytes(&self) -> u64 {
        self.reads
            .iter()
            .chain(&self.writes)
            .map(|b| b.size * b.count)
            .sum()
    }
}

/// A parsed Darshan-like summary: one entry per file.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DarshanSummary {
    /// Per-file summaries, in declaration order.
    pub files: Vec<FileSummary>,
}

impl DarshanSummary {
    /// Number of ranks the expanded workload needs.
    pub fn ranks(&self) -> usize {
        self.files.iter().map(|f| f.ranks).max().unwrap_or(1)
    }

    /// Expand into a representative [`OpStream`], deterministically for
    /// `seed`. Two calls with the same seed yield bit-identical streams.
    pub fn expand(&self, seed: u64) -> OpStream {
        let mut root = SimRng::seed_from(seed);
        let mut out = OpStream::default();
        for (fid, f) in self.files.iter().enumerate() {
            let mut rng = root.split(fid as u64);
            out.files.push(f.name.clone());
            let ranks = f.ranks.max(1);
            for r in 0..ranks {
                out.ops.push(WorkOp {
                    rank: r,
                    file: fid,
                    kind: WorkKind::Open,
                    label: None,
                    deps: Vec::new(),
                });
            }
            // Writes first so subsequent reads cover written extents.
            let mut cursor = vec![0u64; ranks]; // per-rank sequential cursor
            let mut extent = 0u64;
            for (bins, is_write) in [(&f.writes, true), (&f.reads, false)] {
                // Flatten bins into a draw-order list: round-robin over
                // bins so sizes interleave like a mixed recorded stream.
                let mut remaining: Vec<SizeBin> = bins.clone();
                let mut rank_rr = 0usize;
                loop {
                    let mut progressed = false;
                    for bin in remaining.iter_mut() {
                        if bin.count == 0 {
                            continue;
                        }
                        bin.count -= 1;
                        progressed = true;
                        let rank = rank_rr % ranks;
                        rank_rr += 1;
                        let sequential = rng.unit() < f.seq_frac;
                        let offset = if sequential || extent == 0 {
                            cursor[rank]
                        } else {
                            // Random record-aligned jump within the
                            // already-populated extent.
                            let records = (extent / bin.size.max(1)).max(1);
                            rng.range(0, records) * bin.size
                        };
                        cursor[rank] = offset + bin.size;
                        extent = extent.max(offset + bin.size);
                        out.ops.push(WorkOp {
                            rank,
                            file: fid,
                            kind: if is_write {
                                WorkKind::Write {
                                    offset,
                                    len: bin.size,
                                }
                            } else {
                                WorkKind::Read {
                                    offset,
                                    len: bin.size,
                                }
                            },
                            label: None,
                            deps: Vec::new(),
                        });
                    }
                    if !progressed {
                        break;
                    }
                }
            }
            for r in 0..ranks {
                out.ops.push(WorkOp {
                    rank: r,
                    file: fid,
                    kind: WorkKind::Close,
                    label: None,
                    deps: Vec::new(),
                });
            }
        }
        out
    }
}

/// Parse the Darshan-like summary format.
///
/// ```
/// use iosim_workload::darshan::parse_darshan;
/// let s = parse_darshan(
///     "#iosim darshan v1\nfile f 2 0.5\nwhist f 4096 10\nrhist f 4096 10\n",
/// )
/// .unwrap();
/// assert_eq!(s.files.len(), 1);
/// assert_eq!(s.files[0].total_ops(), 20);
/// ```
pub fn parse_darshan(text: &str) -> Result<DarshanSummary, ParseError> {
    let err = |line: usize, m: String| ParseError { line, message: m };
    let mut out = DarshanSummary::default();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let body = raw.split('#').next().unwrap_or("").trim();
        if body.is_empty() {
            continue;
        }
        let fields: Vec<&str> = body.split_whitespace().collect();
        match fields[0] {
            "file" => {
                if fields.len() != 4 {
                    return Err(err(
                        line,
                        format!(
                            "'file' takes 3 args (name ranks seq_frac), got {}",
                            fields.len() - 1
                        ),
                    ));
                }
                let ranks: usize = fields[2]
                    .parse()
                    .map_err(|_| err(line, format!("bad ranks '{}'", fields[2])))?;
                let seq_frac: f64 = fields[3]
                    .parse()
                    .map_err(|_| err(line, format!("bad seq_frac '{}'", fields[3])))?;
                if !(0.0..=1.0).contains(&seq_frac) {
                    return Err(err(line, format!("seq_frac {seq_frac} outside [0, 1]")));
                }
                if ranks == 0 {
                    return Err(err(line, "file needs at least 1 rank".into()));
                }
                if out.files.iter().any(|f| f.name == fields[1]) {
                    return Err(err(line, format!("duplicate file '{}'", fields[1])));
                }
                out.files.push(FileSummary {
                    name: fields[1].to_string(),
                    ranks,
                    seq_frac,
                    reads: Vec::new(),
                    writes: Vec::new(),
                });
            }
            kw @ ("rhist" | "whist") => {
                if fields.len() != 4 {
                    return Err(err(
                        line,
                        format!(
                            "'{kw}' takes 3 args (name size count), got {}",
                            fields.len() - 1
                        ),
                    ));
                }
                let size: u64 = fields[2]
                    .parse()
                    .map_err(|_| err(line, format!("bad size '{}'", fields[2])))?;
                let count: u64 = fields[3]
                    .parse()
                    .map_err(|_| err(line, format!("bad count '{}'", fields[3])))?;
                if size == 0 {
                    return Err(err(line, "zero-byte access size".into()));
                }
                let f = out
                    .files
                    .iter_mut()
                    .find(|f| f.name == fields[1])
                    .ok_or_else(|| err(line, format!("'{kw}' before 'file {}'", fields[1])))?;
                let bin = SizeBin { size, count };
                if kw == "rhist" {
                    f.reads.push(bin);
                } else {
                    f.writes.push(bin);
                }
            }
            other => {
                return Err(err(
                    line,
                    format!("unknown record '{other}' (file|rhist|whist)"),
                ))
            }
        }
    }
    Ok(out)
}

/// Render a summary back to text (the inverse of [`parse_darshan`]).
pub fn render_darshan(s: &DarshanSummary) -> String {
    let mut out = String::from("#iosim darshan v1\n");
    for f in &s.files {
        out.push_str(&format!("file {} {} {}\n", f.name, f.ranks, f.seq_frac));
        for b in &f.writes {
            out.push_str(&format!("whist {} {} {}\n", f.name, b.size, b.count));
        }
        for b in &f.reads {
            out.push_str(&format!("rhist {} {} {}\n", f.name, b.size, b.count));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> &'static str {
        "#iosim darshan v1\n\
         file scratch.dat 4 0.75\n\
         whist scratch.dat 65536 40\n\
         whist scratch.dat 512 24\n\
         rhist scratch.dat 4096 64\n"
    }

    #[test]
    fn parse_and_render_roundtrip() {
        let s = parse_darshan(sample()).unwrap();
        assert_eq!(s.files.len(), 1);
        assert_eq!(s.files[0].total_ops(), 128);
        assert_eq!(s.files[0].total_bytes(), 40 * 65536 + 24 * 512 + 64 * 4096);
        let s2 = parse_darshan(&render_darshan(&s)).unwrap();
        assert_eq!(s, s2);
    }

    #[test]
    fn expansion_is_bit_deterministic() {
        let s = parse_darshan(sample()).unwrap();
        let a = s.expand(42);
        let b = s.expand(42);
        assert_eq!(a, b);
        let c = s.expand(43);
        assert_ne!(a, c, "different seeds give different streams");
    }

    #[test]
    fn expansion_matches_the_counters() {
        let s = parse_darshan(sample()).unwrap();
        let stream = s.expand(7);
        assert_eq!(stream.data_ops(), 128);
        assert_eq!(stream.data_bytes(), s.files[0].total_bytes());
        assert_eq!(stream.ranks(), 4);
        // Every rank participates.
        for r in 0..4 {
            assert!(stream
                .ops
                .iter()
                .any(|o| o.rank == r && matches!(o.kind, WorkKind::Write { .. })));
        }
        // Reads come after all writes (per file), so they hit data.
        let first_read = stream
            .ops
            .iter()
            .position(|o| matches!(o.kind, WorkKind::Read { .. }))
            .unwrap();
        let last_write = stream
            .ops
            .iter()
            .rposition(|o| matches!(o.kind, WorkKind::Write { .. }))
            .unwrap();
        assert!(first_read > last_write);
    }

    #[test]
    fn sequentiality_shapes_offsets() {
        // seq_frac 1.0: each rank's ops are strictly sequential.
        let s = parse_darshan("file f 2 1.0\nwhist f 1024 20\n").unwrap();
        let stream = s.expand(1);
        for r in 0..2 {
            let mut expect = 0u64;
            for op in stream.ops.iter().filter(|o| o.rank == r) {
                if let WorkKind::Write { offset, len } = op.kind {
                    assert_eq!(offset, expect);
                    expect = offset + len;
                }
            }
        }
    }

    #[test]
    fn parse_errors_have_line_numbers() {
        let e = parse_darshan("file f 2 0.5\nrhist g 4096 1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("before 'file"));
        assert!(parse_darshan("file f 0 0.5\n").is_err());
        assert!(parse_darshan("file f 2 1.5\n").is_err());
        assert!(parse_darshan("blob x\n").is_err());
        assert!(parse_darshan("file f 2 0.5\nwhist f 0 5\n").is_err());
        assert!(parse_darshan("file f 2 0.5\nfile f 2 0.5\n").is_err());
    }
}
