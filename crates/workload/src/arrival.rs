//! Open-loop arrival processes.
//!
//! An open-loop client issues its k-th request at a scheduled instant
//! regardless of whether earlier requests have completed — the defining
//! property of offered-load studies ("Problems in Modern High Performance
//! Parallel I/O Systems", PAPERS.md: overload behaviour, not fixed-rank
//! runs, is where parallel I/O stacks break). Two processes are modelled:
//!
//! - **Poisson**: exponential inter-arrival gaps at a constant rate.
//! - **Bursty**: an on/off-modulated Poisson process (a 2-state MMPP).
//!   The source alternates between exponentially-distributed ON periods,
//!   during which it emits at `on_rate`, and OFF periods emitting
//!   nothing. Mean rate = `on_rate · E[on] / (E[on] + E[off])`.
//!
//! Draws come from a [`SimRng`] stream, so an arrival schedule is
//! bit-deterministic for a fixed seed.

use iosim_simkit::rng::SimRng;
use iosim_simkit::time::SimDuration;

/// An open-loop arrival process (per client).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ArrivalModel {
    /// Poisson arrivals at `rate` requests per simulated second.
    Poisson {
        /// Mean arrival rate (req/s).
        rate: f64,
    },
    /// On/off-modulated Poisson: `on_rate` req/s while ON; ON and OFF
    /// period lengths are exponential with the given means (seconds).
    Bursty {
        /// Arrival rate during ON periods (req/s).
        on_rate: f64,
        /// Mean ON-period length (s).
        mean_on: f64,
        /// Mean OFF-period length (s).
        mean_off: f64,
    },
}

impl ArrivalModel {
    /// Long-run mean arrival rate in requests per second.
    pub fn mean_rate(&self) -> f64 {
        match *self {
            ArrivalModel::Poisson { rate } => rate,
            ArrivalModel::Bursty {
                on_rate,
                mean_on,
                mean_off,
            } => on_rate * mean_on / (mean_on + mean_off),
        }
    }

    /// Scale the process to a new mean rate, preserving its shape (for
    /// bursty processes the on/off cadence is kept and only `on_rate`
    /// scales).
    pub fn with_mean_rate(&self, rate: f64) -> ArrivalModel {
        match *self {
            ArrivalModel::Poisson { .. } => ArrivalModel::Poisson { rate },
            ArrivalModel::Bursty {
                mean_on, mean_off, ..
            } => ArrivalModel::Bursty {
                on_rate: rate * (mean_on + mean_off) / mean_on,
                mean_on,
                mean_off,
            },
        }
    }

    /// Generate every arrival instant in `[0, horizon)`, in order.
    pub fn arrivals(&self, rng: &mut SimRng, horizon: SimDuration) -> Vec<SimDuration> {
        let horizon_s = horizon.as_secs_f64();
        let mut out = Vec::new();
        match *self {
            ArrivalModel::Poisson { rate } => {
                if rate <= 0.0 {
                    return out;
                }
                let mut t = rng.exp(rate);
                while t < horizon_s {
                    out.push(SimDuration::from_secs_f64(t));
                    t += rng.exp(rate);
                }
            }
            ArrivalModel::Bursty {
                on_rate,
                mean_on,
                mean_off,
            } => {
                assert!(mean_on > 0.0 && mean_off >= 0.0, "bad on/off means");
                if on_rate <= 0.0 {
                    return out;
                }
                // Alternate ON/OFF; arrivals only during ON windows.
                let mut t = 0.0f64;
                let mut on = true; // sources start hot; the first window jitters anyway
                while t < horizon_s {
                    if on {
                        let window = rng.exp(1.0 / mean_on);
                        let end = (t + window).min(horizon_s);
                        let mut a = t + rng.exp(on_rate);
                        while a < end {
                            out.push(SimDuration::from_secs_f64(a));
                            a += rng.exp(on_rate);
                        }
                        t += window;
                    } else if mean_off > 0.0 {
                        t += rng.exp(1.0 / mean_off);
                    }
                    on = !on;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count(model: ArrivalModel, seed: u64, secs: f64) -> usize {
        let mut rng = SimRng::seed_from(seed);
        model
            .arrivals(&mut rng, SimDuration::from_secs_f64(secs))
            .len()
    }

    #[test]
    fn poisson_rate_is_respected() {
        let n = count(ArrivalModel::Poisson { rate: 100.0 }, 1, 50.0);
        // 5000 expected; 4 sigma ≈ 283.
        assert!((4600..5400).contains(&n), "poisson count {n}");
    }

    #[test]
    fn arrivals_are_sorted_and_deterministic() {
        let model = ArrivalModel::Bursty {
            on_rate: 200.0,
            mean_on: 0.1,
            mean_off: 0.3,
        };
        let mut r1 = SimRng::seed_from(9);
        let mut r2 = SimRng::seed_from(9);
        let a = model.arrivals(&mut r1, SimDuration::from_secs_f64(20.0));
        let b = model.arrivals(&mut r2, SimDuration::from_secs_f64(20.0));
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "sorted");
        assert!(!a.is_empty());
    }

    #[test]
    fn bursty_mean_rate_matches_formula() {
        let model = ArrivalModel::Bursty {
            on_rate: 400.0,
            mean_on: 0.1,
            mean_off: 0.3,
        };
        assert!((model.mean_rate() - 100.0).abs() < 1e-9);
        let n = count(model, 3, 100.0);
        // 10_000 expected; bursty variance is higher, allow ±25%.
        assert!((7_500..12_500).contains(&n), "bursty count {n}");
    }

    #[test]
    fn with_mean_rate_rescales_preserving_shape() {
        let m = ArrivalModel::Bursty {
            on_rate: 400.0,
            mean_on: 0.1,
            mean_off: 0.3,
        };
        let m2 = m.with_mean_rate(50.0);
        assert!((m2.mean_rate() - 50.0).abs() < 1e-9);
        match m2 {
            ArrivalModel::Bursty {
                mean_on, mean_off, ..
            } => {
                assert_eq!((mean_on, mean_off), (0.1, 0.3));
            }
            _ => panic!("shape changed"),
        }
        let p = ArrivalModel::Poisson { rate: 10.0 }.with_mean_rate(5.0);
        assert!((p.mean_rate() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn zero_rate_emits_nothing() {
        assert_eq!(count(ArrivalModel::Poisson { rate: 0.0 }, 1, 10.0), 0);
    }
}
