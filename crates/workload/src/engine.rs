//! The replay engine: run an [`OpStream`] or an open-loop synthetic
//! workload through the simulated PFS and measure it.
//!
//! # Replay modes
//!
//! - [`ReplayMode::Direct`] — each rank walks its program order one
//!   operation at a time (seek + read/write), exactly like the
//!   unoptimized applications and bit-identical to the original
//!   `iosim replay` for legacy traces.
//! - [`ReplayMode::ListIo`] — consecutive same-file, same-direction data
//!   operations of a rank are coalesced into vectored list-I/O requests
//!   of at most `batch` extents ([`IoRequest::from_extents`]).
//! - [`ReplayMode::TwoPhase`] — data operations are grouped into
//!   two-phase collective windows of `window` operations per rank
//!   ([`write_collective`] / [`read_collective`]); all ranks execute the
//!   same number of windows per file. In this mode every rank opens
//!   every file, and explicit seeks and dependency *waits* are skipped —
//!   the collective windows already impose a global order (labels are
//!   still signalled so mixed traces stay well-defined).
//!
//! # Measurement
//!
//! Every run returns [`RunStats`] (the same machine-level measurements
//! the in-tree applications report) plus a per-operation
//! [`LatencyHistogram`]: for trace replay, latency is the virtual time
//! from issue to completion; for open-loop runs it is measured from the
//! operation's *scheduled arrival*, so queueing delay under overload is
//! included — that is what makes the saturation knee visible.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;

use iosim_core::two_phase::{read_collective, write_collective, Piece, Span};
use iosim_machine::{Interface, Machine, MachineConfig};
use iosim_msg::World;
use iosim_pfs::{CreateOptions, FileHandle, FileSystem, IoRequest};
use iosim_simkit::executor::{join_all, Sim};
use iosim_simkit::sync::{channel, Event};
use iosim_simkit::time::{SimDuration, SimTime};
use iosim_trace::{
    BalanceStats, CacheSnapshot, IoSummary, LatencyHistogram, ListIoSnapshot, QueueSnapshot,
    SizeHistogram, TraceCollector,
};

use crate::opstream::{OpStream, TraceKind, WorkKind};
use crate::synth::{self, SynthSpec, TimedOp};

/// How the engine turns operations into file-system requests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplayMode {
    /// One request per operation, in program order.
    Direct,
    /// Coalesce runs of same-file, same-direction operations into
    /// vectored requests of at most `batch` extents.
    ListIo {
        /// Maximum extents per vectored request.
        batch: usize,
    },
    /// Two-phase collective windows of `window` operations per rank.
    TwoPhase {
        /// Operations per rank per collective window.
        window: usize,
    },
}

/// A replay configuration: the machine, the client interface, and the
/// mode.
#[derive(Clone, Debug)]
pub struct ReplaySpec {
    /// The machine to replay on.
    pub machine: MachineConfig,
    /// Client interface used for opens and data operations.
    pub iface: Interface,
    /// Request-issue strategy.
    pub mode: ReplayMode,
}

impl ReplaySpec {
    /// Direct replay with the UNIX-style interface (the original
    /// `iosim replay` default).
    pub fn direct(machine: MachineConfig) -> ReplaySpec {
        ReplaySpec {
            machine,
            iface: Interface::UnixStyle,
            mode: ReplayMode::Direct,
        }
    }

    /// List-I/O replay: vectored requests of at most `batch` extents on
    /// the PASSION interface (the file system only takes the list-I/O
    /// service path — one call, coalesced extents, one booking per I/O
    /// node — for PASSION's vectored interface).
    pub fn list_io(machine: MachineConfig, batch: usize) -> ReplaySpec {
        assert!(batch > 0, "batch must be positive");
        ReplaySpec {
            machine,
            iface: Interface::Passion,
            mode: ReplayMode::ListIo { batch },
        }
    }

    /// Two-phase collective replay with windows of `window` operations
    /// per rank (the original `iosim replay --collective`).
    pub fn two_phase(machine: MachineConfig, window: usize) -> ReplaySpec {
        assert!(window > 0, "window must be positive");
        ReplaySpec {
            machine,
            iface: Interface::Passion,
            mode: ReplayMode::TwoPhase { window },
        }
    }
}

/// Machine-level measurements of one engine run. Field-for-field the
/// same data `iosim_apps::common::RunResult` carries — the `iosim-apps`
/// wrapper converts between the two — but defined here so the workload
/// crate does not depend on the applications crate.
#[derive(Clone, Debug)]
pub struct RunStats {
    /// Compute nodes used.
    pub procs: usize,
    /// I/O nodes of the machine.
    pub io_nodes: usize,
    /// Wall-clock execution time of the whole run.
    pub exec_time: SimDuration,
    /// Wall-clock I/O time: the slowest rank's cumulative I/O time.
    pub io_time: SimDuration,
    /// Cumulative I/O time summed over ranks.
    pub cum_io_time: SimDuration,
    /// Per-op-kind summary.
    pub summary: IoSummary,
    /// Total bytes moved through the file system.
    pub io_bytes: u64,
    /// Total file-system operations.
    pub io_ops: u64,
    /// Request-size distribution of reads.
    pub read_sizes: SizeHistogram,
    /// Request-size distribution of writes.
    pub write_sizes: SizeHistogram,
    /// I/O load balance across ranks.
    pub balance: BalanceStats,
    /// Buffer-cache behaviour (all zero when uncached).
    pub cache: CacheSnapshot,
    /// Vectored list-I/O request shapes.
    pub listio: ListIoSnapshot,
    /// I/O-node command-queue behaviour.
    pub queue: QueueSnapshot,
    /// Scheduler events (task polls) executed by the simulation engine.
    pub sim_events: u64,
    /// Order-sensitive hash of the task schedule.
    pub sched_fingerprint: u64,
    /// Host wall-clock time the simulation took to run.
    pub host_elapsed: std::time::Duration,
}

impl RunStats {
    /// Aggregate I/O bandwidth in MB/s (bytes over wall-clock I/O time).
    pub fn bandwidth_mb_s(&self) -> f64 {
        let t = self.io_time.as_secs_f64();
        if t > 0.0 {
            self.io_bytes as f64 / 1e6 / t
        } else {
            0.0
        }
    }
}

/// Result of a trace replay.
#[derive(Clone, Debug)]
pub struct ReplayReport {
    /// Machine-level measurements.
    pub stats: RunStats,
    /// Per-data-operation latency (virtual time from issue to
    /// completion; in list-I/O and two-phase modes every operation of a
    /// batch records the batch's latency).
    pub latency: LatencyHistogram,
    /// Data (read/write) operations replayed.
    pub data_ops: u64,
    /// Bytes moved by data operations.
    pub data_bytes: u64,
}

impl ReplayReport {
    /// Achieved data-operation throughput over the run (ops/s of virtual
    /// time).
    pub fn ops_per_sec(&self) -> f64 {
        let t = self.stats.exec_time.as_secs_f64();
        if t > 0.0 {
            self.data_ops as f64 / t
        } else {
            0.0
        }
    }
}

/// Result of an open-loop run.
#[derive(Clone, Debug)]
pub struct OpenLoopReport {
    /// Machine-level measurements.
    pub stats: RunStats,
    /// Per-operation latency, measured from scheduled arrival to
    /// completion (queueing delay included).
    pub latency: LatencyHistogram,
    /// Operations the generator offered.
    pub offered_ops: u64,
    /// Operations that completed (equal to `offered_ops`; the run drains
    /// the backlog, overload shows up as latency and makespan).
    pub completed_ops: u64,
    /// Offered operation rate over the arrival window (ops/s).
    pub offered_rate: f64,
    /// Achieved operation rate: completions over the time the last one
    /// finished (ops/s). Tracks `offered_rate` until saturation, then
    /// flattens — the knee.
    pub achieved_rate: f64,
}

impl OpenLoopReport {
    /// `achieved / offered` — below ~0.9 the system is past its knee.
    pub fn overload_ratio(&self) -> f64 {
        if self.offered_rate > 0.0 {
            self.achieved_rate / self.offered_rate
        } else {
            1.0
        }
    }

    /// Project this run to a sweep point.
    pub fn sweep_point(&self) -> SweepPoint {
        SweepPoint {
            offered: self.offered_rate,
            achieved: self.achieved_rate,
            p99_ms: self.latency.p99() as f64 / 1e6,
        }
    }
}

/// One point of an offered-load sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SweepPoint {
    /// Offered rate (ops/s).
    pub offered: f64,
    /// Achieved rate (ops/s).
    pub achieved: f64,
    /// p99 latency in milliseconds.
    pub p99_ms: f64,
}

/// Index of the first sweep point past the saturation knee — where the
/// achieved rate falls below 90% of the offered rate — or `None` if the
/// sweep never saturates. Points must be in increasing offered-rate
/// order.
pub fn saturation_knee(points: &[SweepPoint]) -> Option<usize> {
    points
        .iter()
        .position(|p| p.offered > 0.0 && p.achieved < 0.9 * p.offered)
}

// ---------------------------------------------------------------------
// Shared run harness

type RankFuture = Pin<Box<dyn Future<Output = ()>>>;

/// Build machine + file system + world, run `program` on every rank,
/// and collect [`RunStats`] (the workload crate's copy of the
/// `run_ranks` harness; kept independent so `iosim-apps` can wrap this
/// crate instead of the other way round).
fn run_world(
    cfg: MachineConfig,
    procs: usize,
    program: impl Fn(WorldCtx) -> RankFuture,
) -> RunStats {
    let mut sim = Sim::new();
    let trace = TraceCollector::new();
    let machine = Machine::new(sim.handle(), cfg);
    let io_nodes = machine.io_nodes();
    let fs = FileSystem::new(Rc::clone(&machine), trace.clone());
    let world = World::new(Rc::clone(&machine), procs);
    let h = sim.handle();
    let futs: Vec<RankFuture> = world
        .comms()
        .into_iter()
        .enumerate()
        .map(|(rank, comm)| {
            program(WorldCtx {
                rank,
                comm,
                fs: Rc::clone(&fs),
            })
        })
        .collect();
    let n = futs.len();
    let jh = sim.spawn(async move {
        let done = join_all(&h, futs).await;
        done.len()
    });
    let host_t0 = std::time::Instant::now();
    let end = sim.run();
    let host_elapsed = host_t0.elapsed();
    assert_eq!(
        jh.try_take().expect("workload deadlocked"),
        n,
        "all ranks must finish"
    );
    RunStats {
        procs,
        io_nodes,
        exec_time: end - SimTime::ZERO,
        io_time: trace.max_rank_io_time(),
        cum_io_time: trace.cumulative_io_time(),
        summary: trace.summary(),
        io_bytes: trace.total_bytes(),
        io_ops: trace.total_ops(),
        read_sizes: trace.read_sizes(),
        write_sizes: trace.write_sizes(),
        balance: trace.balance(),
        cache: trace.cache().snapshot(),
        listio: trace.listio().snapshot(),
        queue: trace.queue().snapshot(),
        sim_events: sim.events_processed(),
        sched_fingerprint: sim.schedule_fingerprint(),
        host_elapsed,
    }
}

/// Everything one simulated rank needs (the machine is reachable
/// through the file system).
struct WorldCtx {
    rank: usize,
    comm: iosim_msg::Comm,
    fs: Rc<FileSystem>,
}

// ---------------------------------------------------------------------
// Trace replay

struct ReplayShared {
    stream: OpStream,
    extents: Vec<u64>,
    /// One completion event per op index that something depends on.
    events: Vec<Option<Event<()>>>,
    /// Per-rank op indices in program order.
    per_rank: Vec<Vec<usize>>,
    /// Per-file collective window counts (two-phase mode only).
    windows: Vec<usize>,
    latency: RefCell<LatencyHistogram>,
    iface: Interface,
    mode: ReplayMode,
}

/// Replay `stream` under `spec` and return the measurements.
///
/// # Panics
/// Panics if the stream needs more ranks than the machine has compute
/// nodes. Reads of unwritten data are allowed (files are preallocated to
/// their full traced extent; only timing is modelled).
pub fn replay(stream: &OpStream, spec: &ReplaySpec) -> ReplayReport {
    let n = stream.ranks();
    assert!(
        n <= spec.machine.compute_nodes,
        "trace needs {n} ranks but the machine has {}",
        spec.machine.compute_nodes
    );
    let mut events: Vec<Option<Event<()>>> = vec![None; stream.ops.len()];
    for op in &stream.ops {
        for &d in &op.deps {
            if events[d].is_none() {
                events[d] = Some(Event::new());
            }
        }
    }
    let mut per_rank: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, op) in stream.ops.iter().enumerate() {
        per_rank[op.rank].push(i);
    }
    // Two-phase window counts per file: all ranks must execute the same
    // number of collective windows.
    let windows = match spec.mode {
        ReplayMode::TwoPhase { window } => (0..stream.files.len())
            .map(|f| {
                (0..n)
                    .map(|r| {
                        per_rank[r]
                            .iter()
                            .filter(|&&i| {
                                let op = &stream.ops[i];
                                op.file == f && data_parts(&op.kind).is_some()
                            })
                            .count()
                            .div_ceil(window)
                    })
                    .max()
                    .unwrap_or(0)
            })
            .collect(),
        _ => Vec::new(),
    };
    let shared = Rc::new(ReplayShared {
        stream: stream.clone(),
        extents: stream.extents(),
        events,
        per_rank,
        windows,
        latency: RefCell::new(LatencyHistogram::new()),
        iface: spec.iface,
        mode: spec.mode,
    });
    let sh = Rc::clone(&shared);
    let stats = run_world(spec.machine.clone(), n.max(1), move |ctx| {
        let sh = Rc::clone(&sh);
        Box::pin(async move {
            match sh.mode {
                ReplayMode::TwoPhase { window } => replay_two_phase(ctx, sh, window).await,
                ReplayMode::Direct => replay_serial(ctx, sh, 1).await,
                ReplayMode::ListIo { batch } => replay_serial(ctx, sh, batch).await,
            }
        })
    });
    let latency = shared.latency.borrow().clone();
    ReplayReport {
        stats,
        latency,
        data_ops: stream.data_ops(),
        data_bytes: stream.data_bytes(),
    }
}

/// Data-op helper: `(is_read, offset, len)`.
fn data_parts(kind: &WorkKind) -> Option<(bool, u64, u64)> {
    match *kind {
        WorkKind::Read { offset, len } => Some((true, offset, len)),
        WorkKind::Write { offset, len } => Some((false, offset, len)),
        _ => None,
    }
}

async fn ensure_open(
    ctx: &WorldCtx,
    sh: &ReplayShared,
    handles: &mut HashMap<usize, FileHandle>,
    file: usize,
) {
    if let std::collections::hash_map::Entry::Vacant(slot) = handles.entry(file) {
        let fh = ctx
            .fs
            .open(
                ctx.rank,
                sh.iface,
                &sh.stream.files[file],
                Some(CreateOptions::default()),
            )
            .await
            .expect("open replay file");
        fh.preallocate(sh.extents[file]);
        slot.insert(fh);
    }
}

/// A pending coalesced run: (file, is_read, extents, op indices).
type PendingRun = (usize, bool, Vec<(u64, u64)>, Vec<usize>);

/// Direct and list-I/O replay: walk the rank's program order; with
/// `batch > 1`, coalesce runs of same-file same-direction data ops into
/// vectored requests.
async fn replay_serial(ctx: WorldCtx, sh: Rc<ReplayShared>, batch: usize) {
    let mine = sh.per_rank.get(ctx.rank).cloned().unwrap_or_default();
    let h = ctx.fs.machine().handle().clone();
    let mut handles: HashMap<usize, FileHandle> = HashMap::new();
    let mut pending: Option<PendingRun> = None;
    macro_rules! flush {
        () => {
            if let Some((file, is_read, extents, idxs)) = pending.take() {
                let fh = handles.get(&file).expect("flush on open file");
                let t0 = h.now();
                if extents.len() == 1 {
                    // A lone op takes the legacy seek + read/write path,
                    // so `batch = 1` is exactly direct replay.
                    let (off, len) = extents[0];
                    fh.seek(off).await;
                    if is_read {
                        fh.read_discard(len).await.expect("replay read");
                    } else {
                        fh.write_discard(len).await.expect("replay write");
                    }
                } else {
                    let req = IoRequest::from_extents(extents);
                    if is_read {
                        fh.readv_discard(&req).await.expect("replay readv");
                    } else {
                        fh.writev_discard(&req).await.expect("replay writev");
                    }
                }
                let elapsed = h.now() - t0;
                let mut lat = sh.latency.borrow_mut();
                for i in idxs {
                    lat.record(elapsed.as_nanos());
                    if let Some(ev) = &sh.events[i] {
                        ev.set(());
                    }
                }
            }
        };
    }
    for &i in &mine {
        let op = &sh.stream.ops[i];
        if !op.deps.is_empty() {
            flush!();
            for &d in &op.deps {
                sh.events[d].as_ref().expect("dep event").wait().await;
            }
        }
        match data_parts(&op.kind) {
            Some((is_read, offset, len)) => {
                ensure_open(&ctx, &sh, &mut handles, op.file).await;
                let fits = matches!(
                    &pending,
                    Some((f, r, exts, _)) if *f == op.file && *r == is_read && exts.len() < batch
                );
                if !fits {
                    flush!();
                    pending = Some((op.file, is_read, Vec::new(), Vec::new()));
                }
                let (_, _, exts, idxs) = pending.as_mut().expect("pending run");
                exts.push((offset, len));
                idxs.push(i);
                // Direct mode issues immediately; list mode waits for
                // the run to grow or break.
                if batch == 1 {
                    flush!();
                }
            }
            None => {
                flush!();
                match op.kind {
                    WorkKind::Open => ensure_open(&ctx, &sh, &mut handles, op.file).await,
                    WorkKind::Close => {
                        if let Some(fh) = handles.remove(&op.file) {
                            fh.close().await;
                        }
                    }
                    WorkKind::Seek(pos) => {
                        ensure_open(&ctx, &sh, &mut handles, op.file).await;
                        handles[&op.file].seek(pos).await;
                    }
                    _ => unreachable!("data ops handled above"),
                }
                if let Some(ev) = &sh.events[i] {
                    ev.set(());
                }
            }
        }
    }
    flush!();
    ctx.comm.barrier().await;
    let mut left: Vec<(usize, FileHandle)> = handles.drain().collect();
    left.sort_by_key(|(f, _)| *f);
    for (_, fh) in left {
        fh.close().await;
    }
}

/// Two-phase collective replay: every rank opens every file, then the
/// ranks walk each file's windows in lockstep.
async fn replay_two_phase(ctx: WorldCtx, sh: Rc<ReplayShared>, window: usize) {
    let h = ctx.fs.machine().handle().clone();
    let mut fhs: Vec<FileHandle> = Vec::with_capacity(sh.stream.files.len());
    for (f, name) in sh.stream.files.iter().enumerate() {
        let fh = ctx
            .fs
            .open(ctx.rank, sh.iface, name, Some(CreateOptions::default()))
            .await
            .expect("open replay file");
        fh.preallocate(sh.extents[f]);
        fhs.push(fh);
    }
    let mine = sh.per_rank.get(ctx.rank).cloned().unwrap_or_default();
    for (f, fh) in fhs.iter().enumerate() {
        let ops: Vec<usize> = mine
            .iter()
            .copied()
            .filter(|&i| sh.stream.ops[i].file == f && data_parts(&sh.stream.ops[i].kind).is_some())
            .collect();
        for w in 0..sh.windows[f] {
            let chunk: &[usize] = ops
                .get(w * window..)
                .map_or(&[], |rest| &rest[..rest.len().min(window)]);
            let writes: Vec<Piece> = chunk
                .iter()
                .filter_map(|&i| match data_parts(&sh.stream.ops[i].kind) {
                    Some((false, off, len)) => Some(Piece::synthetic(off, len)),
                    _ => None,
                })
                .collect();
            let reads: Vec<Span> = chunk
                .iter()
                .filter_map(|&i| match data_parts(&sh.stream.ops[i].kind) {
                    Some((true, off, len)) => Some(Span::new(off, len)),
                    _ => None,
                })
                .collect();
            let t0 = h.now();
            write_collective(&ctx.comm, fh, writes)
                .await
                .expect("collective writes");
            read_collective(&ctx.comm, fh, reads)
                .await
                .expect("collective reads");
            let elapsed = h.now() - t0;
            let mut lat = sh.latency.borrow_mut();
            for &i in chunk {
                lat.record(elapsed.as_nanos());
                if let Some(ev) = &sh.events[i] {
                    ev.set(());
                }
            }
        }
    }
    ctx.comm.barrier().await;
    for fh in fhs {
        fh.close().await;
    }
}

// ---------------------------------------------------------------------
// Open-loop runner

struct OpenLoopShared {
    latency: RefCell<LatencyHistogram>,
    completed: Cell<u64>,
    last_done: Cell<SimTime>,
    fragments: u32,
}

impl OpenLoopShared {
    fn finish(&self, scheduled: SimTime, now: SimTime) {
        self.latency
            .borrow_mut()
            .record((now - scheduled).as_nanos());
        self.completed.set(self.completed.get() + 1);
        self.last_done.set(self.last_done.get().max(now));
    }
}

/// Fragment extents of one synthetic op: the record emitted as
/// `fragments` back-to-back pieces — the many-small-calls pattern the
/// paper's packed/list-I/O interfaces target. Direct replay pays one
/// file-system request per piece; a vectored request coalesces the
/// adjacent pieces into a single extent.
fn fragments_of(op: &TimedOp, fragments: u32) -> Vec<(u64, u64)> {
    let n = (fragments.max(1) as u64).min(op.len);
    let frag = op.len / n;
    (0..n)
        .map(|k| {
            let len = if k == n - 1 {
                op.len - frag * (n - 1)
            } else {
                frag
            };
            (op.offset + k * frag, len)
        })
        .collect()
}

/// Run an open-loop synthetic workload through the machine.
///
/// Clients are assigned round-robin to compute ranks. Each client issues
/// its operations at their scheduled arrival instants *regardless of
/// completion* (spawned as detached tasks — a true open loop with no
/// back-pressure), so offered load is honoured exactly and overload
/// shows up as queueing latency. In [`ReplayMode::TwoPhase`] the rank
/// aggregates arrivals into exchange windows of `window` operations and
/// issues each window as vectored requests — the per-node half of
/// two-phase I/O; a global collective is impossible open-loop.
pub fn run_open_loop(synth: &SynthSpec, spec: &ReplaySpec) -> OpenLoopReport {
    let clients = synth::generate(synth);
    let offered_ops = synth::total_ops(&clients);
    let ranks = synth.clients.min(spec.machine.compute_nodes).max(1);
    let mut per_rank: Vec<Vec<Vec<TimedOp>>> = vec![Vec::new(); ranks];
    for (c, ops) in clients.into_iter().enumerate() {
        per_rank[c % ranks].push(ops);
    }
    let shared = Rc::new(OpenLoopShared {
        latency: RefCell::new(LatencyHistogram::new()),
        completed: Cell::new(0),
        last_done: Cell::new(SimTime::ZERO),
        fragments: synth.fragments,
    });
    let files: Vec<String> = open_loop_files(synth);
    let files = Rc::new(files);
    let extent = open_loop_extent(synth);
    let sh = Rc::clone(&shared);
    let iface = spec.iface;
    let mode = spec.mode;
    let stats = run_world(spec.machine.clone(), ranks, move |ctx| {
        let sh = Rc::clone(&sh);
        let my_clients = per_rank[ctx.rank].clone();
        let files = Rc::clone(&files);
        Box::pin(open_loop_rank(
            ctx, sh, my_clients, files, extent, iface, mode,
        ))
    });
    let latency = shared.latency.borrow().clone();
    open_loop_report(
        synth,
        stats,
        latency,
        offered_ops,
        shared.completed.get(),
        shared.last_done.get(),
    )
}

/// File names of the synthetic population.
fn open_loop_files(synth: &SynthSpec) -> Vec<String> {
    (0..synth.files).map(|f| format!("synth{f}.data")).collect()
}

/// Preallocation extent: a record starting at the last aligned offset
/// ends past `file_bytes`.
fn open_loop_extent(synth: &SynthSpec) -> u64 {
    synth.file_bytes + synth.op_bytes
}

/// Assemble an [`OpenLoopReport`] from the run's raw measurements.
fn open_loop_report(
    synth: &SynthSpec,
    stats: RunStats,
    latency: LatencyHistogram,
    offered_ops: u64,
    completed_ops: u64,
    last_done: SimTime,
) -> OpenLoopReport {
    let duration = synth.duration.as_secs_f64();
    let offered_rate = if duration > 0.0 {
        offered_ops as f64 / duration
    } else {
        0.0
    };
    let makespan = (last_done - SimTime::ZERO).as_secs_f64();
    let achieved_rate = if makespan > 0.0 {
        completed_ops as f64 / makespan
    } else {
        0.0
    };
    OpenLoopReport {
        stats,
        latency,
        offered_ops,
        completed_ops,
        offered_rate,
        achieved_rate,
    }
}

/// One rank's open-loop program: open every file, then drive this rank's
/// clients (shared by the monolithic and sharded runners).
async fn open_loop_rank(
    ctx: WorldCtx,
    sh: Rc<OpenLoopShared>,
    my_clients: Vec<Vec<TimedOp>>,
    files: Rc<Vec<String>>,
    extent: u64,
    iface: Interface,
    mode: ReplayMode,
) {
    let mut fhs = Vec::with_capacity(files.len());
    for name in files.iter() {
        let fh = ctx
            .fs
            .open(ctx.rank, iface, name, Some(CreateOptions::default()))
            .await
            .expect("open synth file");
        fh.preallocate(extent);
        fhs.push(fh);
    }
    let fhs = Rc::new(fhs);
    let h = ctx.fs.machine().handle().clone();
    let start = h.now();
    match mode {
        ReplayMode::TwoPhase { window } => {
            // Clients feed an exchange queue; the rank drains it
            // in windows.
            let (tx, rx) = channel::<(SimTime, TimedOp)>();
            let mut drivers = Vec::new();
            for ops in my_clients {
                let h2 = h.clone();
                let tx = tx.clone();
                drivers.push(h.spawn(async move {
                    for op in ops {
                        let at = start + op.at;
                        h2.sleep_until(at).await;
                        tx.send((at, op));
                    }
                }));
            }
            drop(tx);
            let mut batch: Vec<(SimTime, TimedOp)> = Vec::new();
            loop {
                let item = rx.recv().await;
                if let Some(it) = item {
                    batch.push(it);
                }
                let closed = item.is_none();
                if batch.len() >= window.max(1) || (closed && !batch.is_empty()) {
                    flush_window(&sh, &fhs, &h, &batch).await;
                    batch.clear();
                }
                if closed {
                    break;
                }
            }
            for d in drivers {
                d.await;
            }
        }
        _ => {
            let mut drivers = Vec::new();
            for ops in my_clients {
                let h2 = h.clone();
                let sh = Rc::clone(&sh);
                let fhs = Rc::clone(&fhs);
                drivers.push(h.spawn(async move {
                    for op in ops {
                        let at = start + op.at;
                        h2.sleep_until(at).await;
                        let sh = Rc::clone(&sh);
                        let fhs = Rc::clone(&fhs);
                        let h3 = h2.clone();
                        // Detached: the next arrival does not
                        // wait for this op — the open loop.
                        h2.spawn(async move {
                            issue_op(&sh, &fhs, &op, mode).await;
                            sh.finish(at, h3.now());
                        });
                    }
                }));
            }
            for d in drivers {
                d.await;
            }
        }
    }
}

/// Everything one shard of a sharded open-loop run reports back.
struct OpenLoopShardOut {
    per_rank_io: Vec<SimDuration>,
    cum_io_time: SimDuration,
    summary: IoSummary,
    io_bytes: u64,
    io_ops: u64,
    read_sizes: SizeHistogram,
    write_sizes: SizeHistogram,
    cache: CacheSnapshot,
    listio: ListIoSnapshot,
    queue: QueueSnapshot,
    latency: LatencyHistogram,
    completed: u64,
    last_done: SimTime,
}

/// Sharded variant of [`run_open_loop`]: partition the machine along its
/// topology ([`iosim_machine::shard::plan`]) and simulate each shard's
/// rank group — with its slice of the I/O nodes and its own file system —
/// on its own executor, run by up to `workers` host threads.
///
/// Open-loop clients never talk to each other, so the shards exchange no
/// cross-shard traffic at all; the conservative windows only pace the
/// shards through virtual time together. The result is bit-identical for
/// every `workers` value (the shard decomposition is fixed by the
/// machine), but differs from [`run_open_loop`]'s monolithic schedule:
/// each shard stripes its files over its own I/O-node slice. Degenerate
/// machines fall back to [`run_open_loop`] exactly.
pub fn run_open_loop_threaded(
    synth: &SynthSpec,
    spec: &ReplaySpec,
    workers: usize,
) -> OpenLoopReport {
    use iosim_simkit::shard::{run_sharded, ShardCtx, ShardRuntime};

    let host_t0 = std::time::Instant::now();
    let workers = workers.max(1);
    let clients = synth::generate(synth);
    let offered_ops = synth::total_ops(&clients);
    let ranks = synth.clients.min(spec.machine.compute_nodes).max(1);
    let plan = iosim_machine::shard::plan(&spec.machine, ranks);
    if plan.is_degenerate() {
        let mut rep = run_open_loop(synth, spec);
        rep.stats.host_elapsed = host_t0.elapsed();
        return rep;
    }
    let lookahead = plan.lookahead.max(iosim_machine::shard::LOOKAHEAD_FLOOR);
    let mut per_rank: Vec<Vec<Vec<TimedOp>>> = vec![Vec::new(); ranks];
    for (c, ops) in clients.into_iter().enumerate() {
        per_rank[c % ranks].push(ops);
    }
    let files = open_loop_files(synth);
    let extent = open_loop_extent(synth);
    let fragments = synth.fragments;
    let iface = spec.iface;
    let mode = spec.mode;
    let per_rank = &per_rank;
    let files = &files;
    let cfg = &spec.machine;
    let builders: Vec<_> = plan
        .shards
        .iter()
        .cloned()
        .map(|sspec| {
            move |_ctx: ShardCtx<()>| -> ShardRuntime<(), OpenLoopShardOut> {
                let sim = Sim::new();
                let trace = TraceCollector::new();
                // This shard's slice of the machine, on the parent mesh
                // (global ranks keep their real coordinates).
                let sub_cfg = cfg
                    .clone()
                    .with_compute_nodes(sspec.ranks.max(1))
                    .with_io_nodes(sspec.io_nodes.max(1));
                let machine = Machine::new(sim.handle(), sub_cfg);
                let fs = FileSystem::new(Rc::clone(&machine), trace.clone());
                let world = World::new(Rc::clone(&machine), sspec.ranks);
                let shared = Rc::new(OpenLoopShared {
                    latency: RefCell::new(LatencyHistogram::new()),
                    completed: Cell::new(0),
                    last_done: Cell::new(SimTime::ZERO),
                    fragments,
                });
                let shard_files = Rc::new(files.clone());
                let futs: Vec<RankFuture> = world
                    .comms()
                    .into_iter()
                    .enumerate()
                    .map(|(local, comm)| -> RankFuture {
                        let rank = sspec.rank_base + local;
                        Box::pin(open_loop_rank(
                            WorldCtx {
                                rank,
                                comm,
                                fs: Rc::clone(&fs),
                            },
                            Rc::clone(&shared),
                            per_rank[rank].clone(),
                            Rc::clone(&shard_files),
                            extent,
                            iface,
                            mode,
                        ))
                    })
                    .collect();
                let n = futs.len();
                let h = sim.handle();
                let jh = sim.spawn(async move {
                    let done = join_all(&h, futs).await;
                    done.len()
                });
                ShardRuntime {
                    sim,
                    deliver: Box::new(|_| {}),
                    finish: Box::new(move || {
                        assert_eq!(
                            jh.try_take().expect("open-loop shard deadlocked"),
                            n,
                            "all ranks of shard {} must finish",
                            sspec.index
                        );
                        // The collector indexes by global rank; keep this
                        // shard's slice for the cross-shard balance stats.
                        let mut times = trace.per_rank_io_times();
                        times.resize(sspec.rank_base + sspec.ranks, SimDuration::ZERO);
                        OpenLoopShardOut {
                            per_rank_io: times[sspec.rank_base..].to_vec(),
                            cum_io_time: trace.cumulative_io_time(),
                            summary: trace.summary(),
                            io_bytes: trace.total_bytes(),
                            io_ops: trace.total_ops(),
                            read_sizes: trace.read_sizes(),
                            write_sizes: trace.write_sizes(),
                            cache: trace.cache().snapshot(),
                            listio: trace.listio().snapshot(),
                            queue: trace.queue().snapshot(),
                            latency: shared.latency.borrow().clone(),
                            completed: shared.completed.get(),
                            last_done: shared.last_done.get(),
                        }
                    }),
                }
            }
        })
        .collect();
    let report = run_sharded(lookahead, workers, builders);

    let mut rank_times: Vec<SimDuration> = Vec::with_capacity(ranks);
    let mut summary: Option<IoSummary> = None;
    let mut cum_io_time = SimDuration::ZERO;
    let mut io_bytes = 0u64;
    let mut io_ops = 0u64;
    let mut read_sizes = SizeHistogram::new();
    let mut write_sizes = SizeHistogram::new();
    let mut cache = CacheSnapshot::default();
    let mut listio = ListIoSnapshot::default();
    let mut queue = QueueSnapshot::default();
    let mut latency = LatencyHistogram::new();
    let mut completed = 0u64;
    let mut last_done = SimTime::ZERO;
    for out in report.results {
        rank_times.extend_from_slice(&out.per_rank_io);
        match &mut summary {
            Some(s) => s.merge(&out.summary),
            None => summary = Some(out.summary),
        }
        cum_io_time += out.cum_io_time;
        io_bytes += out.io_bytes;
        io_ops += out.io_ops;
        read_sizes.merge(&out.read_sizes);
        write_sizes.merge(&out.write_sizes);
        cache.merge(&out.cache);
        listio.merge(&out.listio);
        queue.merge(&out.queue);
        latency.merge(&out.latency);
        completed += out.completed;
        last_done = last_done.max(out.last_done);
    }
    let io_time = rank_times
        .iter()
        .copied()
        .fold(SimDuration::ZERO, SimDuration::max);
    let stats = RunStats {
        procs: ranks,
        io_nodes: spec.machine.io_nodes,
        exec_time: report.end_time - SimTime::ZERO,
        io_time,
        cum_io_time,
        summary: summary.expect("at least one shard"),
        io_bytes,
        io_ops,
        read_sizes,
        write_sizes,
        balance: BalanceStats::from_times(&rank_times),
        cache,
        listio,
        queue,
        sim_events: report.events,
        sched_fingerprint: report.fingerprint,
        host_elapsed: host_t0.elapsed(),
    };
    open_loop_report(synth, stats, latency, offered_ops, completed, last_done)
}

/// Issue one open-loop op in direct or list-I/O style.
async fn issue_op(sh: &OpenLoopShared, fhs: &[FileHandle], op: &TimedOp, mode: ReplayMode) {
    let fh = &fhs[op.file];
    let exts = fragments_of(op, sh.fragments);
    match mode {
        ReplayMode::ListIo { .. } => {
            let req = IoRequest::from_extents(exts);
            match op.kind {
                TraceKind::Read => fh.readv_discard(&req).await.expect("open-loop readv"),
                TraceKind::Write => fh.writev_discard(&req).await.expect("open-loop writev"),
            }
        }
        _ => {
            for (off, len) in exts {
                match op.kind {
                    TraceKind::Read => fh.read_discard_at(off, len).await.expect("open-loop read"),
                    TraceKind::Write => fh
                        .write_discard_at(off, len)
                        .await
                        .expect("open-loop write"),
                }
            }
        }
    }
}

/// Extent lists gathered inside one exchange window, keyed by file id.
type ExtentsByFile = HashMap<usize, Vec<(u64, u64)>>;

/// Flush one exchange window: all write fragments per file as one
/// vectored request, then all read fragments per file.
async fn flush_window(
    sh: &OpenLoopShared,
    fhs: &[FileHandle],
    h: &iosim_simkit::executor::SimHandle,
    batch: &[(SimTime, TimedOp)],
) {
    let mut writes: ExtentsByFile = HashMap::new();
    let mut reads: ExtentsByFile = HashMap::new();
    for (_, op) in batch {
        let dst = match op.kind {
            TraceKind::Write => &mut writes,
            TraceKind::Read => &mut reads,
        };
        dst.entry(op.file)
            .or_default()
            .extend(fragments_of(op, sh.fragments));
    }
    let order: [(&ExtentsByFile, bool); 2] = [(&writes, false), (&reads, true)];
    for (map, is_read) in order {
        let mut fids: Vec<usize> = map.keys().copied().collect();
        fids.sort_unstable();
        for f in fids {
            let req = IoRequest::from_extents(map[&f].clone());
            if is_read {
                fhs[f].readv_discard(&req).await.expect("window readv");
            } else {
                fhs[f].writev_discard(&req).await.expect("window writev");
            }
        }
    }
    let now = h.now();
    for &(at, _) in batch {
        sh.finish(at, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::ArrivalModel;
    use crate::opstream::{parse_legacy, parse_opstream, OpStream};
    use iosim_machine::presets;

    fn strided(ranks: usize, ops_per_rank: u64, record: u64) -> OpStream {
        let mut text = String::new();
        for k in 0..ops_per_rank {
            for r in 0..ranks {
                let off = (k * ranks as u64 + r as u64) * record;
                text.push_str(&format!("{r} w {off} {record}\n"));
            }
        }
        OpStream::from_legacy(&parse_legacy(&text).unwrap())
    }

    #[test]
    fn direct_replay_matches_legacy_structure() {
        let s = strided(4, 25, 512);
        let rep = replay(&s, &ReplaySpec::direct(presets::sp2()));
        assert_eq!(rep.stats.summary.rows[3].count, 100); // writes
        assert_eq!(rep.stats.summary.rows[2].count, 100); // seeks
        assert_eq!(rep.stats.io_bytes, 100 * 512);
        assert_eq!(rep.latency.count(), 100);
        assert_eq!(rep.data_ops, 100);
        assert!(rep.ops_per_sec() > 0.0);
    }

    #[test]
    fn three_modes_move_the_same_bytes() {
        let s = strided(4, 40, 1024);
        let direct = replay(&s, &ReplaySpec::direct(presets::sp2()));
        let list = replay(&s, &ReplaySpec::list_io(presets::sp2(), 16));
        let two = replay(&s, &ReplaySpec::two_phase(presets::sp2(), 40));
        assert_eq!(direct.stats.io_bytes, list.stats.io_bytes);
        assert_eq!(direct.stats.io_bytes, two.stats.io_bytes);
        // Strided small ops: batching must beat per-op replay.
        assert!(list.stats.exec_time < direct.stats.exec_time);
        assert!(two.stats.exec_time.as_secs_f64() < direct.stats.exec_time.as_secs_f64() / 2.0);
        // Every data op got a latency sample in every mode.
        assert_eq!(direct.latency.count(), 160);
        assert_eq!(list.latency.count(), 160);
        assert_eq!(two.latency.count(), 160);
    }

    #[test]
    fn replay_is_deterministic() {
        let s = strided(2, 10, 256);
        let a = replay(&s, &ReplaySpec::list_io(presets::paragon_small(), 8));
        let b = replay(&s, &ReplaySpec::list_io(presets::paragon_small(), 8));
        assert_eq!(a.stats.exec_time, b.stats.exec_time);
        assert_eq!(a.stats.sched_fingerprint, b.stats.sched_fingerprint);
        assert_eq!(a.latency.quantile(0.5), b.latency.quantile(0.5));
    }

    #[test]
    fn dependency_edges_order_cross_rank_ops() {
        // Rank 1's read waits for rank 0's write even though rank 1
        // would otherwise race ahead.
        let text = "\
0 open f
1 open f
0 write f 0 1048576 @w0
1 read f 0 4096 <-w0
0 close f
1 close f
";
        let s = parse_opstream(text).unwrap();
        assert!(s.has_deps());
        let rep = replay(&s, &ReplaySpec::direct(presets::paragon_small()));
        assert_eq!(rep.stats.summary.rows[1].count, 1); // read happened
        assert_eq!(rep.latency.count(), 2);
        // The dependent read cannot have finished before the write.
        let nodep = parse_opstream(&text.replace(" <-w0", "")).unwrap();
        let rep2 = replay(&nodep, &ReplaySpec::direct(presets::paragon_small()));
        assert!(rep.stats.exec_time >= rep2.stats.exec_time);
    }

    #[test]
    fn multi_file_streams_replay_in_all_modes() {
        let text = "\
0 open a
0 open b
1 open a
0 write a 0 4096
0 write b 0 4096
1 write a 4096 4096
0 read a 0 1024
0 close a
0 close b
1 close a
";
        let s = parse_opstream(text).unwrap();
        for spec in [
            ReplaySpec::direct(presets::paragon_small()),
            ReplaySpec::list_io(presets::paragon_small(), 4),
            ReplaySpec::two_phase(presets::paragon_small(), 2),
        ] {
            let rep = replay(&s, &spec);
            assert_eq!(rep.stats.io_bytes, 3 * 4096 + 1024, "{:?}", spec.mode);
            assert_eq!(rep.latency.count(), 4, "{:?}", spec.mode);
        }
    }

    #[test]
    fn open_loop_reports_offered_and_achieved() {
        let synth = SynthSpec {
            clients: 8,
            files: 2,
            fragments: 4,
            op_bytes: 16 << 10,
            file_bytes: 4 << 20,
            ..SynthSpec::small(20.0, 42)
        };
        let rep = run_open_loop(&synth, &ReplaySpec::direct(presets::paragon_small()));
        assert_eq!(rep.offered_ops, rep.completed_ops);
        assert!(rep.offered_ops > 0);
        assert_eq!(rep.latency.count(), rep.completed_ops);
        assert!(rep.achieved_rate > 0.0);
        assert!(rep.overload_ratio() > 0.0);
    }

    #[test]
    fn open_loop_is_bit_deterministic() {
        let synth = SynthSpec {
            clients: 6,
            ..SynthSpec::small(15.0, 9)
        };
        let spec = ReplaySpec::list_io(presets::paragon_small(), 8);
        let a = run_open_loop(&synth, &spec);
        let b = run_open_loop(&synth, &spec);
        assert_eq!(a.stats.exec_time, b.stats.exec_time);
        assert_eq!(a.stats.sched_fingerprint, b.stats.sched_fingerprint);
        assert_eq!(a.completed_ops, b.completed_ops);
        assert_eq!(a.latency.quantile(0.99), b.latency.quantile(0.99));
    }

    #[test]
    fn open_loop_two_phase_batches_windows() {
        let synth = SynthSpec {
            clients: 8,
            ..SynthSpec::small(25.0, 11)
        };
        let rep = run_open_loop(&synth, &ReplaySpec::two_phase(presets::paragon_small(), 8));
        assert_eq!(rep.offered_ops, rep.completed_ops);
        assert!(rep.latency.count() > 0);
    }

    #[test]
    fn open_loop_threaded_is_worker_invariant_and_complete() {
        let synth = SynthSpec {
            clients: 8,
            files: 2,
            ..SynthSpec::small(20.0, 7)
        };
        let spec = ReplaySpec::direct(presets::paragon_small());
        let a = run_open_loop_threaded(&synth, &spec, 1);
        let b = run_open_loop_threaded(&synth, &spec, 4);
        assert_eq!(a.stats.sched_fingerprint, b.stats.sched_fingerprint);
        assert_eq!(a.stats.exec_time, b.stats.exec_time);
        assert_eq!(a.stats.sim_events, b.stats.sim_events);
        assert_eq!(a.stats.io_bytes, b.stats.io_bytes);
        assert_eq!(a.completed_ops, a.offered_ops);
        assert_eq!(a.latency.count(), a.completed_ops);
        assert_eq!(a.latency.quantile(0.99), b.latency.quantile(0.99));
    }

    #[test]
    fn open_loop_threaded_degenerate_matches_monolithic() {
        let synth = SynthSpec {
            clients: 4,
            ..SynthSpec::small(10.0, 5)
        };
        let spec = ReplaySpec::direct(presets::paragon_small().with_io_nodes(1));
        let a = run_open_loop(&synth, &spec);
        let b = run_open_loop_threaded(&synth, &spec, 4);
        assert_eq!(a.stats.sched_fingerprint, b.stats.sched_fingerprint);
        assert_eq!(a.stats.exec_time, b.stats.exec_time);
        assert_eq!(a.stats.sim_events, b.stats.sim_events);
        assert_eq!(a.completed_ops, b.completed_ops);
    }

    #[test]
    fn overload_bends_the_latency_curve() {
        // Same population at 1× and 20× the arrival rate: the overloaded
        // run must show a worse overload ratio and higher p99.
        let calm = SynthSpec {
            clients: 16,
            ..SynthSpec::small(5.0, 3)
        };
        let hot = SynthSpec {
            arrival: ArrivalModel::Poisson { rate: 100.0 },
            ..calm.clone()
        };
        let spec = ReplaySpec::direct(presets::paragon_small());
        let a = run_open_loop(&calm, &spec);
        let b = run_open_loop(&hot, &spec);
        assert!(b.offered_rate > a.offered_rate * 10.0);
        assert!(
            b.overload_ratio() < a.overload_ratio(),
            "overload ratio should degrade: calm {} vs hot {}",
            a.overload_ratio(),
            b.overload_ratio()
        );
        assert!(b.latency.p99() > a.latency.p99());
    }

    #[test]
    fn knee_detection_finds_first_saturated_point() {
        let pts = vec![
            SweepPoint {
                offered: 100.0,
                achieved: 99.0,
                p99_ms: 1.0,
            },
            SweepPoint {
                offered: 200.0,
                achieved: 196.0,
                p99_ms: 2.0,
            },
            SweepPoint {
                offered: 400.0,
                achieved: 310.0,
                p99_ms: 40.0,
            },
            SweepPoint {
                offered: 800.0,
                achieved: 315.0,
                p99_ms: 400.0,
            },
        ];
        assert_eq!(saturation_knee(&pts), Some(2));
        assert_eq!(saturation_knee(&pts[..2]), None);
        assert_eq!(saturation_knee(&[]), None);
    }
}
