//! # iosim-workload — trace ingestion and open-loop traffic generation
//!
//! The paper's methodology is trace-driven: Pablo records what the
//! applications did, and each optimization is judged by how it transforms
//! that operation stream. The five in-tree applications are closed-loop
//! kernels, though — each rank issues its next operation only after the
//! previous one completes, so they can never answer the production
//! question of *when an optimization collapses under offered load*. This
//! crate turns the simulator into a general workload engine:
//!
//! - [`opstream`] — the operation-stream model and two text formats: the
//!   legacy 4-column `rank op offset bytes` format of `iosim replay`, and
//!   an extended strace-style format with named files, explicit
//!   open/close/seek, per-rank program order, and optional cross-rank
//!   dependency edges.
//! - [`darshan`] — a Darshan-like *summarized* trace format (per-file
//!   counters plus access-size histograms, the form real sites actually
//!   archive) and its deterministic expansion into a representative op
//!   stream via the in-tree seeded xoshiro RNG.
//! - [`arrival`] — open-loop arrival processes: Poisson and bursty
//!   (on/off-modulated Poisson), bit-deterministic for a fixed seed.
//! - [`synth`] — the open-loop generator: thousands of independent
//!   simulated clients with per-client arrival streams and op mixes.
//! - [`engine`] — the replay engine. Runs either source as `simkit`
//!   tasks issuing requests through the existing PFS path in three modes
//!   (direct per-op, list-I/O batched, two-phase collective windows),
//!   records per-op latency percentiles (p50/p99/p999 via
//!   [`iosim_trace::LatencyHistogram`]), offered-vs-achieved throughput,
//!   and detects the saturation knee of a rate sweep.
//!
//! Everything is deterministic: a fixed seed and spec reproduce the same
//! virtual-time trajectory bit-for-bit (the round-trip and determinism
//! tests under `tests/` pin this).

pub mod arrival;
pub mod darshan;
pub mod engine;
pub mod opstream;
pub mod synth;

pub use arrival::ArrivalModel;
pub use darshan::DarshanSummary;
pub use engine::{
    replay, run_open_loop, run_open_loop_threaded, saturation_knee, OpenLoopReport, ReplayMode,
    ReplayReport, ReplaySpec, RunStats, SweepPoint,
};
pub use opstream::{
    detect_format, parse_any, parse_legacy, parse_opstream, render_legacy, render_opstream,
    OpStream, ParseError, TraceFormat, TraceKind, TraceOp, WorkKind, WorkOp,
};
pub use synth::{SynthSpec, TimedOp};
