//! AST — astrophysics convection/collapse simulation (paper §4.6).
//!
//! The application advances several distributed 2-D arrays (densities,
//! velocities, gravitational potential) and, at fixed dump points, writes
//! them all to **one shared file in column-major order** for
//! check-pointing, data analysis and visualization.
//!
//! - **Unoptimized**: I/O goes through a Chameleon-style portable I/O
//!   library — each process writes its own fragments of every column as
//!   "small non-contiguous chunks", each chunk paying the library's heavy
//!   (Fortran-record-class) per-call software cost plus a seek. With a
//!   2-D block decomposition a process owns `g/√P` fragments per column
//!   strip, so the per-process call count shrinks only as `1/√P` while
//!   chunks get smaller — I/O stays dominant at every processor count
//!   (Table 4's unoptimized column).
//! - **Optimized**: the run-time two-phase collective I/O library
//!   assembles conforming contiguous regions and writes each array with
//!   one call per process (Table 4's optimized column).
//!
//! Modelling note (see EXPERIMENTS.md): the paper also mentions a
//! single-node bottleneck inside Chameleon; we model the library's
//! per-chunk software cost and contention instead, which reproduces the
//! optimized/unoptimized gap and its scaling shape. Compute is calibrated
//! to ~6,000 cumulative processor-seconds (2048² input).

use std::rc::Rc;

use iosim_buf::BytesList;
use iosim_core::two_phase::{write_collective, Piece};
use iosim_machine::{presets, Interface, MachineConfig};
use iosim_pfs::{CreateOptions, IoRequest};

use crate::common::{
    run_ranks, run_ranks_sharded, AppCtx, RankFuture, RunResult, ShardFinish, ShardProgram,
};

/// AST configuration.
#[derive(Clone, Debug)]
pub struct AstConfig {
    /// Grid dimension (g × g per array); the paper's "reasonably large"
    /// input is 2K × 2K.
    pub grid: u64,
    /// Number of distributed arrays dumped (density, velocities,
    /// potential, …).
    pub arrays: u32,
    /// Number of processes (a perfect square for the 2-D block split).
    pub procs: usize,
    /// Number of I/O nodes (paper: 16 and 64).
    pub io_nodes: usize,
    /// Two-phase collective I/O.
    pub optimized: bool,
    /// Dump points (check-point + analysis + visualization writes).
    pub dumps: u32,
    /// Restart from the last checkpoint after the dumps: the application
    /// becomes read-intensive (paper: "when there is a restart … it
    /// becomes read-intensive"). Reads use the same path (direct or
    /// collective) as the writes.
    pub restart: bool,
    /// Carry real bytes (small grids only).
    pub stored: bool,
    /// Per-I/O-node LRU buffer cache in MB (0 = uncached).
    pub cache_mb: u64,
    /// I/O-node command-queue depth (1 = the paper's FIFO disk queue).
    pub queue_depth: usize,
}

impl AstConfig {
    /// Defaults matching the paper's Table 4 setup.
    pub fn new(procs: usize, io_nodes: usize, optimized: bool) -> AstConfig {
        let q = (procs as f64).sqrt() as usize;
        assert_eq!(q * q, procs, "AST uses a square process grid");
        AstConfig {
            grid: 2048,
            arrays: 4,
            procs,
            io_nodes,
            optimized,
            dumps: 10,
            restart: false,
            stored: false,
            cache_mb: 0,
            queue_depth: 1,
        }
    }

    /// Bytes written per dump (all arrays).
    pub fn dump_bytes(&self) -> u64 {
        self.grid * self.grid * 8 * self.arrays as u64
    }

    /// Total bytes written over the run.
    pub fn total_bytes(&self) -> u64 {
        self.dump_bytes() * self.dumps as u64
    }

    fn machine(&self) -> MachineConfig {
        crate::common::with_queue_depth(
            crate::common::with_cache_mb(
                presets::paragon_large()
                    .with_compute_nodes(self.procs.max(1))
                    .with_io_nodes(self.io_nodes),
                self.cache_mb,
            ),
            self.queue_depth,
        )
    }
}

/// Total solver compute for the 2048² input, in FLOPs (PPM hydrodynamics
/// plus multigrid Poisson solves between dump points): ~6,000 cumulative
/// processor-seconds on 20 MFLOPS nodes, scaled by grid area.
pub fn total_flops(grid: u64, dumps: u32) -> f64 {
    let base = 6_000.0 * 20.0e6; // 2048² reference
    base * (grid as f64 * grid as f64) / (2048.0 * 2048.0) * (dumps as f64 / 10.0)
}

/// Deterministic array value at `(r, c)` of array `a` at dump `d`.
pub fn cell_value(a: u32, r: u64, c: u64, d: u32) -> f64 {
    let h = r
        .wrapping_mul(2654435761)
        .wrapping_add(c.wrapping_mul(40503))
        .wrapping_add((a as u64) << 32)
        .wrapping_add(d as u64 * 97);
    (h % 1_000_000) as f64 / 500_000.0 - 1.0
}

/// Run AST and return the measurements.
pub fn run(cfg: &AstConfig) -> RunResult {
    let cfg2 = cfg.clone();
    run_ranks(cfg.machine(), cfg.procs, move |ctx| {
        let cfg = cfg2.clone();
        Box::pin(async move {
            rank_program(ctx, cfg).await;
        })
    })
}

/// Run AST on the sharded parallel engine (up to `workers` host threads;
/// see [`crate::common::run_ranks_sharded`]). Timing-only mode.
pub fn run_threaded(cfg: &AstConfig, workers: usize) -> RunResult {
    assert!(!cfg.stored, "sharded runs are timing-only");
    let cfg2 = cfg.clone();
    let (res, _) = run_ranks_sharded(cfg.machine(), cfg.procs, workers, move |_spec| {
        let cfg = cfg2.clone();
        (
            Box::new(move |ctx: AppCtx| -> RankFuture {
                let cfg = cfg.clone();
                Box::pin(async move {
                    rank_program(ctx, cfg).await;
                })
            }) as ShardProgram,
            Box::new(|| ()) as ShardFinish<()>,
        )
    });
    res
}

/// Run AST and capture the final shared file (stored mode). The capture
/// is a rope of shared extent views — reading it back copies nothing.
pub fn run_capture(cfg: &AstConfig) -> (RunResult, BytesList) {
    assert!(cfg.stored, "capture needs stored files");
    let captured: Rc<std::cell::RefCell<BytesList>> =
        Rc::new(std::cell::RefCell::new(BytesList::new()));
    let cap2 = Rc::clone(&captured);
    let cfg2 = cfg.clone();
    let res = run_ranks(cfg.machine(), cfg.procs, move |ctx| {
        let cfg = cfg2.clone();
        let cap = Rc::clone(&cap2);
        Box::pin(async move {
            let rank = ctx.rank;
            let fs = Rc::clone(&ctx.fs);
            let total = cfg.total_bytes();
            rank_program(ctx, cfg).await;
            if rank == 0 {
                let fh = fs
                    .open(0, Interface::UnixStyle, "ast.dump", None)
                    .await
                    .expect("reopen dump file");
                *cap.borrow_mut() = fh.read_rope_at(0, total).await.expect("read dump file");
            }
        })
    });
    let out = captured.borrow().clone();
    (res, out)
}

/// Run one rank's AST program against an externally built context — for
/// studies on customized machines.
pub async fn rank_program_on(ctx: AppCtx, cfg: AstConfig) {
    rank_program(ctx, cfg).await;
}

async fn rank_program(ctx: AppCtx, cfg: AstConfig) {
    let g = cfg.grid;
    let q = (cfg.procs as f64).sqrt() as u64;
    let (pi, pj) = ((ctx.rank as u64) % q, (ctx.rank as u64) / q);
    // 2-D block split: rows [r0, r1) × cols [c0, c1).
    let split = |i: u64| -> (u64, u64) {
        let base = g / q;
        let rem = g % q;
        let lo = i * base + i.min(rem);
        (lo, lo + base + u64::from(i < rem))
    };
    let (r0, r1) = split(pi);
    let (c0, c1) = split(pj);
    // The unoptimized path uses the Chameleon-style library (heavy
    // Fortran-record-class per-call cost); the optimized path uses the
    // two-phase run-time library.
    let iface = if cfg.optimized {
        Interface::Passion
    } else {
        Interface::Fortran
    };
    let fh = ctx
        .fs
        .open(
            ctx.rank,
            iface,
            "ast.dump",
            Some(CreateOptions {
                stored: cfg.stored,
                ..Default::default()
            }),
        )
        .await
        .expect("open dump file");

    let flops_per_dump = total_flops(g, cfg.dumps) / cfg.dumps as f64 / cfg.procs as f64;
    let array_bytes = g * g * 8;
    for dump in 0..cfg.dumps {
        // Advance the solution to the next dump point.
        ctx.machine.compute(flops_per_dump).await;
        let dump_base = dump as u64 * cfg.dump_bytes();
        for a in 0..cfg.arrays {
            let base = dump_base + a as u64 * array_bytes;
            // Column-major array: my fragment of column c is rows
            // [r0, r1) — one contiguous run of (r1-r0)*8 bytes.
            if cfg.optimized {
                let mut pieces = Vec::with_capacity((c1 - c0) as usize);
                for c in c0..c1 {
                    let off = base + (c * g + r0) * 8;
                    let len = (r1 - r0) * 8;
                    pieces.push(match fragment(&cfg, a, r0, r1, c, dump) {
                        Some(bytes) => Piece::bytes(off, bytes),
                        None => Piece::synthetic(off, len),
                    });
                }
                write_collective(&ctx.comm, &fh, pieces)
                    .await
                    .expect("collective dump");
            } else {
                for c in c0..c1 {
                    let off = base + (c * g + r0) * 8;
                    fh.seek(off).await;
                    match fragment(&cfg, a, r0, r1, c, dump) {
                        Some(bytes) => fh.write(bytes).await.expect("write fragment"),
                        None => fh
                            .write_discard((r1 - r0) * 8)
                            .await
                            .expect("write fragment"),
                    }
                }
            }
        }
    }
    // ---- Restart: read my fragments of the last checkpoint back. ----
    if cfg.restart && cfg.dumps > 0 {
        ctx.comm.barrier().await;
        let dump = cfg.dumps - 1;
        let dump_base = dump as u64 * cfg.dump_bytes();
        for a in 0..cfg.arrays {
            let base = dump_base + a as u64 * array_bytes;
            if cfg.optimized {
                let spans: Vec<iosim_core::two_phase::Span> = (c0..c1)
                    .map(|c| {
                        iosim_core::two_phase::Span::new(base + (c * g + r0) * 8, (r1 - r0) * 8)
                    })
                    .collect();
                let (got, _) = iosim_core::two_phase::read_collective(&ctx.comm, &fh, spans)
                    .await
                    .expect("collective restart read");
                if cfg.stored {
                    for (ci, p) in got.iter().enumerate() {
                        let c = c0 + ci as u64;
                        let want = fragment(&cfg, a, r0, r1, c, dump).expect("stored");
                        assert_eq!(
                            p.data.as_ref().expect("stored read"),
                            &want,
                            "restart data mismatch at array {a} column {c}"
                        );
                    }
                }
            } else {
                // All of my column fragments of this array as one
                // vectored request (the Chameleon-class interface still
                // degenerates to a per-fragment loop).
                let len = (r1 - r0) * 8;
                let req = IoRequest::strided(base + (c0 * g + r0) * 8, len, g * 8, c1 - c0);
                if cfg.stored {
                    let got = fh.readv(&req).await.expect("restart read");
                    for (ci, chunk) in got.chunks_exact(len as usize).enumerate() {
                        let c = c0 + ci as u64;
                        let want = fragment(&cfg, a, r0, r1, c, dump).expect("stored");
                        assert_eq!(chunk, &want[..], "restart data mismatch");
                    }
                } else {
                    fh.readv_discard(&req).await.expect("restart read");
                }
            }
        }
    }
    ctx.comm.barrier().await;
    fh.close().await;
}

fn fragment(cfg: &AstConfig, a: u32, r0: u64, r1: u64, c: u64, dump: u32) -> Option<Vec<u8>> {
    if !cfg.stored {
        return None;
    }
    let mut out = Vec::with_capacity(((r1 - r0) * 8) as usize);
    for r in r0..r1 {
        out.extend_from_slice(&cell_value(a, r, c, dump).to_le_bytes());
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(procs: usize, optimized: bool) -> AstConfig {
        AstConfig {
            grid: 64,
            arrays: 2,
            dumps: 2,
            ..AstConfig::new(procs, 16, optimized)
        }
    }

    #[test]
    fn optimized_and_unoptimized_files_are_identical() {
        let mut u = small(4, false);
        u.stored = true;
        let mut o = small(4, true);
        o.stored = true;
        let (_ru, fu) = run_capture(&u);
        let (_ro, fo) = run_capture(&o);
        assert_eq!(fu.len(), fo.len());
        assert_eq!(fu, fo, "collective dump must write the same bytes");
        // Spot-check one value.
        let flat = fu.flatten();
        let g = 64u64;
        let off = ((5 * g + 3) * 8) as usize; // array 0, dump 0, col 5, row 3
        let v = f64::from_le_bytes(flat[off..off + 8].try_into().unwrap());
        assert_eq!(v, cell_value(0, 3, 5, 0));
    }

    #[test]
    fn two_phase_gives_a_large_speedup() {
        let u = run(&small(16, false));
        let o = run(&small(16, true));
        assert!(
            o.exec_time.as_secs_f64() < u.exec_time.as_secs_f64() / 3.0,
            "optimized {:?} should be ≫ faster than {:?}",
            o.exec_time,
            u.exec_time
        );
    }

    #[test]
    fn unoptimized_issues_one_call_per_column_fragment() {
        let cfg = small(4, false);
        let r = run(&cfg);
        // 4 procs × 32 owned cols × 2 arrays × 2 dumps fragments.
        let expect = 4 * 32 * 2 * 2;
        assert_eq!(r.summary.rows[3].count, expect);
        assert_eq!(r.summary.rows[2].count, expect); // one seek each
    }

    #[test]
    fn optimized_write_calls_scale_with_procs_not_columns() {
        let r = run(&small(16, true));
        // ≤ one write per proc per array per dump (plus none elsewhere).
        let max_writes = 16 * 2 * 2;
        assert!(
            r.summary.rows[3].count <= max_writes,
            "writes {} > {max_writes}",
            r.summary.rows[3].count
        );
    }

    #[test]
    fn more_io_nodes_matter_less_than_the_software_fix() {
        let u16 = run(&small(16, false));
        let mut cfg64 = small(16, false);
        cfg64.io_nodes = 64;
        let u64n = run(&cfg64);
        let o16 = run(&small(16, true));
        let hw_gain = u16.exec_time.as_secs_f64() / u64n.exec_time.as_secs_f64();
        let sw_gain = u16.exec_time.as_secs_f64() / o16.exec_time.as_secs_f64();
        assert!(
            sw_gain > 2.0 * hw_gain,
            "software gain {sw_gain} should dwarf hardware gain {hw_gain}"
        );
    }

    #[test]
    fn volume_is_preserved_across_versions() {
        let u = run(&small(4, false));
        let o = run(&small(4, true));
        assert_eq!(u.io_bytes, small(4, false).total_bytes());
        assert_eq!(o.io_bytes, u.io_bytes);
    }

    #[test]
    fn restart_reads_back_the_checkpoint() {
        for optimized in [false, true] {
            let mut cfg = small(4, optimized);
            cfg.stored = true;
            cfg.restart = true;
            // The rank programs assert the restart data matches the last
            // dump; a completed run is the verification.
            let r = run(&cfg);
            // Restart adds a read-intensive phase.
            assert!(
                r.summary.rows[1].bytes >= cfg.dump_bytes(),
                "restart must read at least one full dump: {} bytes",
                r.summary.rows[1].bytes
            );
        }
    }

    #[test]
    fn restart_makes_the_run_read_intensive() {
        let mut cfg = small(4, false);
        cfg.restart = true;
        let r = run(&cfg);
        let reads = r.summary.rows[1];
        assert!(reads.count > 0);
        assert_eq!(reads.bytes, cfg.dump_bytes());
    }

    #[test]
    fn flops_scale_with_grid_area() {
        assert!(total_flops(2048, 10) > 0.0);
        let small_g = total_flops(1024, 10);
        let big_g = total_flops(2048, 10);
        assert!((big_g / small_g - 4.0).abs() < 1e-9);
    }
}
