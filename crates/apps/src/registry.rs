//! Application registry — the paper's Table 1.

/// Static description of one application of the experimental suite.
#[derive(Clone, Copy, Debug)]
pub struct AppInfo {
    /// Application name.
    pub name: &'static str,
    /// Source institution.
    pub source: &'static str,
    /// Lines of code reported by the paper.
    pub lines: u32,
    /// One-line description.
    pub description: &'static str,
    /// Platform used in the paper.
    pub platform: &'static str,
    /// Type of I/O.
    pub io_type: &'static str,
    /// Optimizations found effective (the paper's Table 5 ticks).
    pub effective_optimizations: &'static [&'static str],
}

/// The five applications, in the paper's order (Tables 1 and 5).
pub const APPLICATIONS: [AppInfo; 5] = [
    AppInfo {
        name: "SCF 1.1",
        source: "PNL",
        lines: 16_500,
        description: "self consistent field computation",
        platform: "Paragon",
        io_type: "writes integrals to disk, and reads them",
        effective_optimizations: &["efficient interface", "prefetching"],
    },
    AppInfo {
        name: "SCF 3.0",
        source: "PNL",
        lines: 19_000,
        description: "self consistent field computation",
        platform: "Paragon",
        io_type: "writes integrals to disk, and reads them",
        effective_optimizations: &["efficient interface", "prefetching", "balanced I/O"],
    },
    AppInfo {
        name: "FFT",
        source: "authors",
        lines: 500,
        description: "2D out-of-core FFT",
        platform: "Paragon",
        io_type: "reads and writes two matrices",
        effective_optimizations: &["file layout"],
    },
    AppInfo {
        name: "BTIO",
        source: "NASA Ames",
        lines: 6_713,
        description: "simulates the I/O required by a flow solver",
        platform: "SP-2",
        io_type: "periodic writes of arrays",
        effective_optimizations: &["collective I/O"],
    },
    AppInfo {
        name: "AST",
        source: "Univ. of Chicago",
        lines: 17_000,
        description: "simulates gravitational collapses of clouds",
        platform: "Paragon",
        io_type: "writes arrays for check-pointing",
        effective_optimizations: &["collective I/O"],
    },
];

/// All optimization techniques of Table 5, in column order.
pub const TECHNIQUES: [&str; 5] = [
    "collective I/O",
    "file layout",
    "efficient interface",
    "prefetching",
    "balanced I/O",
];

/// Render Table 1 as aligned text.
pub fn render_table1() -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<9} {:<17} {:>7} {:<46} {:<9} Type of I/O",
        "App", "Source", "Lines", "Description", "Platform"
    );
    for a in &APPLICATIONS {
        let _ = writeln!(
            out,
            "{:<9} {:<17} {:>7} {:<46} {:<9} {}",
            a.name, a.source, a.lines, a.description, a.platform, a.io_type
        );
    }
    out
}

/// Render Table 5 (applications × effective optimizations) as text.
pub fn render_table5() -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = write!(out, "{:<9}", "App");
    for t in &TECHNIQUES {
        let _ = write!(out, " {:>20}", t);
    }
    let _ = writeln!(out);
    for a in &APPLICATIONS {
        let _ = write!(out, "{:<9}", a.name);
        for t in &TECHNIQUES {
            let tick = if a.effective_optimizations.contains(t) {
                "x"
            } else {
                ""
            };
            let _ = write!(out, " {:>20}", tick);
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_applications_listed() {
        assert_eq!(APPLICATIONS.len(), 5);
        let names: Vec<&str> = APPLICATIONS.iter().map(|a| a.name).collect();
        assert_eq!(names, ["SCF 1.1", "SCF 3.0", "FFT", "BTIO", "AST"]);
    }

    #[test]
    fn table5_ticks_match_the_paper() {
        let by_name = |n: &str| {
            APPLICATIONS
                .iter()
                .find(|a| a.name == n)
                .expect("app exists")
        };
        assert!(by_name("BTIO")
            .effective_optimizations
            .contains(&"collective I/O"));
        assert!(by_name("FFT")
            .effective_optimizations
            .contains(&"file layout"));
        assert!(by_name("SCF 3.0")
            .effective_optimizations
            .contains(&"balanced I/O"));
        assert!(!by_name("SCF 1.1")
            .effective_optimizations
            .contains(&"collective I/O"));
    }

    #[test]
    fn every_tick_names_a_known_technique() {
        for a in &APPLICATIONS {
            for t in a.effective_optimizations {
                assert!(TECHNIQUES.contains(t), "{t} is not a Table 5 column");
            }
        }
    }

    #[test]
    fn tables_render_all_rows() {
        let t1 = render_table1();
        let t5 = render_table5();
        for a in &APPLICATIONS {
            assert!(t1.contains(a.name));
            assert!(t5.contains(a.name));
        }
        for t in &TECHNIQUES {
            assert!(t5.contains(t));
        }
    }
}
