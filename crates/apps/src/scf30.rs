//! SCF 3.0 — semi-direct self-consistent field with balanced I/O
//! (paper §4.3).
//!
//! SCF 3.0 lets the user choose what **percentage of the integrals is
//! cached on disk**; the remainder is recomputed on every iteration
//! ("semi-direct"). Expensive integrals are cached first, so the
//! recomputed set is cheaper than pro-rata. After the write phase the
//! integral files are **balanced to within 10% or 1 MB** so the read
//! phase is load-balanced even though integral evaluation is not.
//!
//! The paper's observations reproduced here (Figure 4):
//!
//! - at 0% cached (full recompute), adding processors helps a lot;
//! - at 100% cached (full disk), adding processors helps little, because
//!   the read phase is bounded by the I/O subsystem, not the CPUs;
//! - the number of I/O nodes matters much less than for SCF 1.1, because
//!   SCF 3.0 is not as I/O-dominant.

use std::cell::RefCell;
use std::rc::Rc;

use iosim_core::balanced::{default_tolerance, plan_balance, SemiDirect};
use iosim_core::prefetch::Prefetcher;
use iosim_machine::{presets, Interface};
use iosim_msg::{MatchSrc, Payload};
use iosim_pfs::{CreateOptions, IoRequest};

use crate::common::{
    run_ranks, run_ranks_sharded, AppCtx, RankFuture, RunResult, ShardFinish, ShardProgram,
};
use crate::scf11::{integral_volume, total_flops, ScfInput};

/// SCF 3.0 configuration.
#[derive(Clone, Debug)]
pub struct Scf30Config {
    /// Input size (the paper's Figure 4 uses MEDIUM).
    pub input: ScfInput,
    /// Number of processors.
    pub procs: usize,
    /// Number of I/O nodes.
    pub io_nodes: usize,
    /// Percentage of integrals cached on disk (0–100).
    pub cached_percent: u32,
    /// Balance integral file sizes after the write phase.
    pub balanced: bool,
    /// Use prefetching in the read phase.
    pub prefetch: bool,
    /// Read-phase iterations.
    pub read_iterations: u32,
    /// Scale factor on volume and compute, for cheap test runs.
    pub scale: f64,
    /// Per-I/O-node LRU buffer cache in MB (0 = uncached).
    pub cache_mb: u64,
    /// I/O-node command-queue depth (1 = the paper's FIFO disk queue).
    pub queue_depth: usize,
}

impl Scf30Config {
    /// Defaults matching the paper's Figure 4 setup.
    pub fn new(input: ScfInput, procs: usize, cached_percent: u32) -> Scf30Config {
        assert!(cached_percent <= 100, "cached percentage is 0–100");
        Scf30Config {
            input,
            procs,
            io_nodes: 16,
            cached_percent,
            balanced: true,
            prefetch: true,
            read_iterations: 15,
            scale: 1.0,
            cache_mb: 0,
            queue_depth: 1,
        }
    }
}

/// Per-process skew of integral-evaluation cost: deterministic ±25%
/// pattern standing in for the uneven shell-quartet distribution that
/// motivates SCF 3.0's file balancing.
pub fn eval_skew(rank: usize, procs: usize) -> f64 {
    if procs <= 1 {
        return 1.0;
    }
    let x = (rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40;
    1.0 + 0.25 * (2.0 * (x % 1000) as f64 / 999.0 - 1.0)
}

const EVAL_FRACTION: f64 = 0.30;
const WRITE_CHUNK: u64 = 62 << 10;
const READ_CHUNK: u64 = 128 << 10;

/// Result of an SCF 3.0 run.
#[derive(Clone, Debug)]
pub struct Scf30Result {
    /// Common measurements.
    pub run: RunResult,
    /// Bytes moved between files by the balancing step.
    pub balance_moved: u64,
}

fn machine(cfg: &Scf30Config) -> iosim_machine::MachineConfig {
    crate::common::with_queue_depth(
        crate::common::with_cache_mb(
            presets::paragon_large()
                .with_compute_nodes(cfg.procs.max(1))
                .with_io_nodes(cfg.io_nodes),
            cfg.cache_mb,
        ),
        cfg.queue_depth,
    )
}

/// Run SCF 3.0 under `cfg`.
pub fn run(cfg: &Scf30Config) -> Scf30Result {
    let mcfg = machine(cfg);
    let moved: Rc<RefCell<u64>> = Rc::new(RefCell::new(0));
    let moved2 = Rc::clone(&moved);
    let cfg2 = cfg.clone();
    let run = run_ranks(mcfg, cfg.procs, move |ctx| {
        let cfg = cfg2.clone();
        let moved = Rc::clone(&moved2);
        Box::pin(async move {
            let m = rank_program(ctx, cfg).await;
            *moved.borrow_mut() += m;
        })
    });
    let balance_moved = *moved.borrow();
    Scf30Result { run, balance_moved }
}

/// Run SCF 3.0 on the sharded parallel engine (up to `workers` host
/// threads; see [`crate::common::run_ranks_sharded`]). File balancing
/// runs within each shard's rank group rather than globally.
pub fn run_threaded(cfg: &Scf30Config, workers: usize) -> Scf30Result {
    let cfg2 = cfg.clone();
    let (run, moved) = run_ranks_sharded(machine(cfg), cfg.procs, workers, move |_spec| {
        let cfg = cfg2.clone();
        let moved: Rc<RefCell<u64>> = Rc::new(RefCell::new(0));
        let moved2 = Rc::clone(&moved);
        (
            Box::new(move |ctx: AppCtx| -> RankFuture {
                let cfg = cfg.clone();
                let moved = Rc::clone(&moved2);
                Box::pin(async move {
                    let m = rank_program(ctx, cfg).await;
                    *moved.borrow_mut() += m;
                })
            }) as ShardProgram,
            Box::new(move || *moved.borrow()) as ShardFinish<u64>,
        )
    });
    let balance_moved = moved.into_iter().sum();
    Scf30Result { run, balance_moved }
}

/// One process's program; returns bytes it shipped during balancing.
async fn rank_program(ctx: AppCtx, cfg: Scf30Config) -> u64 {
    let p = cfg.procs;
    let rank = ctx.rank;
    let semi = SemiDirect::new(cfg.cached_percent as f64 / 100.0);
    let volume = (integral_volume(cfg.input.basis()) as f64 * cfg.scale) as u64;
    let disk_total = semi.disk_bytes(volume);
    let flops_total = total_flops(cfg.input.basis()) * cfg.scale;
    let eval_total = flops_total * EVAL_FRACTION;
    let fock_per_iter = flops_total * (1.0 - EVAL_FRACTION) / cfg.read_iterations as f64;

    // ---- Write phase: skewed evaluation, skewed file sizes. ----
    let skew_sum: f64 = (0..p).map(|r| eval_skew(r, p)).sum();
    let my_share = eval_skew(rank, p) / skew_sum;
    let my_eval_flops = eval_total * my_share;
    let my_disk = (disk_total as f64 * my_share) as u64;
    let name = |r: usize| format!("scf30.ints.{r}");
    let fh = ctx
        .fs
        .open(
            rank,
            Interface::Passion,
            &name(rank),
            Some(CreateOptions::default()),
        )
        .await
        .expect("create integral file");
    let n_chunks = my_disk.div_ceil(WRITE_CHUNK).max(1);
    let mut written = 0u64;
    for _ in 0..n_chunks {
        ctx.machine.compute(my_eval_flops / n_chunks as f64).await;
        let len = WRITE_CHUNK.min(my_disk - written);
        if len > 0 {
            fh.writev_discard(&IoRequest::contiguous(written, len))
                .await
                .expect("write");
            written += len;
        }
    }
    fh.flush().await;
    ctx.comm.barrier().await;

    // ---- Balancing step (paper: to within 10% or 1 MB). ----
    let mut my_size = written;
    let mut moved_bytes = 0u64;
    if cfg.balanced && p > 1 && disk_total > 0 {
        let sizes_payload = ctx
            .comm
            .allgather(Payload::bytes(written.to_le_bytes().to_vec()))
            .await;
        let sizes: Vec<u64> = sizes_payload
            .into_iter()
            .map(|pl| u64::from_le_bytes(pl.into_bytes().try_into().expect("8 bytes")))
            .collect();
        // `allgather` (and the balance plan's indices) are group-local:
        // under the sharded engine each shard balances within its own
        // rank group, so use the communicator's size and rank here. In a
        // monolithic run the group is the whole job and this is identical.
        let lrank = ctx.comm.rank();
        let mean = sizes.iter().sum::<u64>() as f64 / sizes.len() as f64;
        let moves = plan_balance(
            &sizes,
            default_tolerance(mean)
                .min((mean * 0.10) as u64)
                .max(1 << 10),
        );
        // Every rank executes the plan deterministically: senders read the
        // surplus and ship it; receivers append it.
        for (i, m) in moves.iter().enumerate() {
            let tag = 7_000 + i as u64;
            if m.from == lrank {
                my_size -= m.bytes;
                fh.read_discard_at(my_size, m.bytes)
                    .await
                    .expect("read surplus");
                ctx.comm.send(m.to, tag, Payload::synthetic(m.bytes)).await;
                moved_bytes += m.bytes;
            } else if m.to == lrank {
                let (_, pl) = ctx.comm.recv(MatchSrc::Rank(m.from), tag).await;
                fh.write_discard_at(my_size, pl.len).await.expect("append");
                my_size += pl.len;
            }
        }
        ctx.comm.barrier().await;
    }

    // ---- Read phase: semi-direct iterations. ----
    let fh = Rc::new(fh);
    let recompute_per_iter =
        semi.recompute_flops(volume, 16, eval_total * 16.0 / volume.max(1) as f64) / p as f64;
    for _ in 0..cfg.read_iterations {
        // Recompute the un-cached integrals (spread evenly: the runtime
        // load-balances recomputation dynamically).
        ctx.machine
            .compute(recompute_per_iter + fock_per_iter / p as f64)
            .await;
        // Read the cached integrals from my (balanced) file.
        if my_size > 0 {
            if cfg.prefetch {
                let mut pf = Prefetcher::new(Rc::clone(&fh), 0, my_size, READ_CHUNK, 2);
                while pf.next().await.expect("prefetch").is_some() {}
            } else {
                let mut off = 0u64;
                while off < my_size {
                    let len = READ_CHUNK.min(my_size - off);
                    fh.readv_discard(&IoRequest::contiguous(off, len))
                        .await
                        .expect("read");
                    off += len;
                }
            }
        }
    }
    if let Ok(only) = Rc::try_unwrap(fh) {
        only.close().await;
    }
    moved_bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use iosim_simkit::time::SimDuration;

    fn cfg(procs: usize, cached: u32) -> Scf30Config {
        Scf30Config {
            scale: 0.05,
            io_nodes: 16,
            ..Scf30Config::new(ScfInput::Small, procs, cached)
        }
    }

    #[test]
    fn full_recompute_scales_with_processors() {
        let p8 = run(&cfg(8, 0));
        let p32 = run(&cfg(32, 0));
        let speedup = p8.run.exec_time.as_secs_f64() / p32.run.exec_time.as_secs_f64();
        assert!(speedup > 2.5, "0% cached should scale: {speedup}");
    }

    #[test]
    fn full_disk_scales_worse_than_full_recompute() {
        let gain = |cached: u32| {
            let a = run(&cfg(8, cached)).run.exec_time.as_secs_f64();
            let b = run(&cfg(32, cached)).run.exec_time.as_secs_f64();
            a / b
        };
        let g0 = gain(0);
        let g100 = gain(100);
        assert!(
            g0 > g100 + 0.5,
            "recompute should benefit more from procs: {g0} vs {g100}"
        );
    }

    #[test]
    fn caching_more_reduces_total_time_on_this_platform() {
        // Paper: "increasing the percentage of integrals stored on the
        // disk gave better performance" (when disk space allows).
        let lo = run(&cfg(16, 0));
        let hi = run(&cfg(16, 90));
        assert!(
            hi.run.exec_time < lo.run.exec_time,
            "90% cached {:?} should beat 0% {:?}",
            hi.run.exec_time,
            lo.run.exec_time
        );
    }

    #[test]
    fn balancing_moves_bytes_and_helps_read_phase() {
        // Without prefetch the read phase is client-bound, so the slowest
        // (largest) file sets the pace and balancing pays off. Use enough
        // volume per rank that the call-count imbalance dominates the
        // one-time balancing cost.
        let mut unbal = cfg(4, 100);
        unbal.scale = 0.4;
        unbal.balanced = false;
        unbal.prefetch = false;
        let u = run(&unbal);
        let mut bal = unbal.clone();
        bal.balanced = true;
        let b = run(&bal);
        assert_eq!(u.balance_moved, 0);
        assert!(b.balance_moved > 0, "skewed files should need moves");
        assert!(
            b.run.exec_time <= u.run.exec_time + SimDuration::from_millis(1),
            "balanced {:?} should not lose to unbalanced {:?}",
            b.run.exec_time,
            u.run.exec_time
        );
    }

    #[test]
    fn balancing_reduces_io_imbalance_across_ranks() {
        let mut unbal = cfg(8, 100);
        unbal.balanced = false;
        unbal.prefetch = false;
        unbal.scale = 0.3;
        let u = run(&unbal);
        let mut bal = unbal.clone();
        bal.balanced = true;
        let b = run(&bal);
        assert!(
            b.run.balance.imbalance() < u.run.balance.imbalance(),
            "balancing should reduce the imbalance factor: {} vs {}",
            b.run.balance.imbalance(),
            u.run.balance.imbalance()
        );
    }

    #[test]
    fn io_volume_tracks_cached_percentage() {
        let half = run(&cfg(8, 50));
        let full = run(&cfg(8, 100));
        assert!(
            full.run.io_bytes > half.run.io_bytes * 3 / 2,
            "full disk moves more bytes: {} vs {}",
            full.run.io_bytes,
            half.run.io_bytes
        );
    }

    #[test]
    fn zero_percent_does_no_data_io() {
        let r = run(&cfg(4, 0));
        // Only metadata (open/flush/close); no reads or writes.
        assert_eq!(r.run.summary.rows[1].bytes, 0);
        assert_eq!(r.run.summary.rows[3].bytes, 0);
    }

    #[test]
    fn skew_is_deterministic_and_bounded() {
        for p in [2usize, 8, 64] {
            for r in 0..p {
                let s = eval_skew(r, p);
                assert!((0.75..=1.25).contains(&s));
                assert_eq!(s, eval_skew(r, p));
            }
        }
        assert_eq!(eval_skew(0, 1), 1.0);
    }
}
