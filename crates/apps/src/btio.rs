//! BTIO — the disk-based NAS BT flow solver benchmark (paper §4.5).
//!
//! The solver advances a pseudo-time-stepping flow solution on an
//! `n × n × n` grid with 5 variables per cell, and every 5th step appends
//! the full solution array to a shared file. BT runs on `P = q²`
//! processes with a **multipartition** decomposition: the grid is a
//! `q × q × q` grid of cells and each process owns `q` cells along a
//! diagonal. The file is laid out x-fastest, so each process's data
//! decomposes into `q · (n/q)²` short runs of `(n/q) · 40` bytes.
//!
//! - **Unoptimized** (UNIX-style MPI-IO): every run is its own
//!   seek + write — "if a node needs 12 chunks of data, it will issue 12
//!   separate I/O calls". Total calls per dump grow as `q · n²`, which
//!   pins the aggregate bandwidth near 1 MB/s (Figure 7) and makes the
//!   I/O time erratic in P (Figure 6a).
//! - **Optimized**: two-phase collective I/O — the solution vector is
//!   described as a whole ("completely described using MPI data types"),
//!   exchanged to a conforming partition, and written with one large
//!   sequential call per process.

use std::cell::RefCell;
use std::rc::Rc;

use iosim_buf::BytesList;
use iosim_core::two_phase::{write_collective, Piece};
use iosim_machine::{presets, Interface, MachineConfig};
use iosim_pfs::{CreateOptions, IoRequest};

use crate::common::{
    run_ranks, run_ranks_sharded, AppCtx, RankFuture, RunResult, ShardFinish, ShardProgram,
};

/// Bytes per grid cell: 5 solution variables of `f64`.
const CELL: u64 = 40;

/// NAS problem classes used in the paper's Figures 6–7 (Class C added
/// for completeness with the NAS 2.x definitions).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BtClass {
    /// 64³ grid — 408.9 MB of I/O over 40 dumps.
    A,
    /// 102³ grid.
    B,
    /// 162³ grid.
    C,
    /// Custom grid size (tests).
    Custom(u64),
}

impl BtClass {
    /// Grid dimension.
    pub fn n(self) -> u64 {
        match self {
            BtClass::A => 64,
            BtClass::B => 102,
            BtClass::C => 162,
            BtClass::Custom(n) => n,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            BtClass::A => "Class A",
            BtClass::B => "Class B",
            BtClass::C => "Class C",
            BtClass::Custom(_) => "Custom",
        }
    }
}

/// BTIO configuration.
#[derive(Clone, Debug)]
pub struct BtioConfig {
    /// Problem class.
    pub class: BtClass,
    /// Number of processes; must be a perfect square (1, 4, 9, …, 64).
    pub procs: usize,
    /// Two-phase collective I/O.
    pub optimized: bool,
    /// Solution dumps (the paper's Class A writes 40).
    pub dumps: u32,
    /// Time steps between dumps.
    pub steps_per_dump: u32,
    /// Read the last dump back after the run and (in stored mode) verify
    /// it — the BTIO specification's verification step.
    pub verify: bool,
    /// Carry real bytes (small grids only).
    pub stored: bool,
    /// Per-I/O-node LRU buffer cache in MB (0 = uncached).
    pub cache_mb: u64,
    /// I/O-node command-queue depth (1 = the paper's FIFO disk queue).
    pub queue_depth: usize,
}

impl BtioConfig {
    /// Defaults matching the paper's SP-2 runs.
    pub fn new(class: BtClass, procs: usize, optimized: bool) -> BtioConfig {
        let q = (procs as f64).sqrt() as usize;
        assert_eq!(q * q, procs, "BT needs a square process count");
        BtioConfig {
            class,
            procs,
            optimized,
            dumps: 40,
            steps_per_dump: 5,
            verify: false,
            stored: false,
            cache_mb: 0,
            queue_depth: 1,
        }
    }

    /// Bytes written per dump (the full solution array).
    pub fn dump_bytes(&self) -> u64 {
        let n = self.class.n();
        n * n * n * CELL
    }

    /// Total bytes written.
    pub fn total_bytes(&self) -> u64 {
        self.dump_bytes() * self.dumps as u64
    }

    fn machine(&self) -> MachineConfig {
        crate::common::with_queue_depth(
            crate::common::with_cache_mb(
                presets::sp2().with_compute_nodes(self.procs.max(1)),
                self.cache_mb,
            ),
            self.queue_depth,
        )
    }
}

/// BT solve cost per cell per time step, in FLOPs (block-tridiagonal
/// solves in three dimensions). Calibrated so the 46% / 49% exec-time
/// reductions of §4.5 land in band on the 60 MFLOPS SP-2 nodes.
pub const FLOPS_PER_CELL_STEP: f64 = 15_000.0;

/// Split `n` into `q` extents (remainder to the low indices); returns
/// `(start, len)` per index.
pub fn extents(n: u64, q: u64) -> Vec<(u64, u64)> {
    let base = n / q;
    let rem = n % q;
    let mut out = Vec::with_capacity(q as usize);
    let mut start = 0;
    for i in 0..q {
        let len = base + u64::from(i < rem);
        out.push((start, len));
        start += len;
    }
    out
}

/// The `q` cells (cx, cy, cz) owned by process `(i, j)` in the BT
/// multipartition: one cell per z-slab, shifting diagonally.
pub fn owned_cells(i: u64, j: u64, q: u64) -> Vec<(u64, u64, u64)> {
    (0..q).map(|k| ((i + k) % q, (j + k) % q, k)).collect()
}

/// Deterministic solution value for (x, y, z, var) at a given dump.
pub fn cell_value(x: u64, y: u64, z: u64, var: u64, dump: u32) -> f64 {
    let h = x
        .wrapping_mul(73)
        .wrapping_add(y.wrapping_mul(1009))
        .wrapping_add(z.wrapping_mul(3511))
        .wrapping_add(var.wrapping_mul(29))
        .wrapping_add(dump as u64 * 65537);
    (h % 100_000) as f64 / 1000.0 - 50.0
}

/// Run BTIO and return the measurements.
pub fn run(cfg: &BtioConfig) -> RunResult {
    let cfg2 = cfg.clone();
    run_ranks(cfg.machine(), cfg.procs, move |ctx| {
        let cfg = cfg2.clone();
        Box::pin(async move {
            rank_program(ctx, cfg).await;
        })
    })
}

/// Run BTIO on the sharded parallel engine (up to `workers` host
/// threads; see [`crate::common::run_ranks_sharded`]). Timing-only mode.
pub fn run_threaded(cfg: &BtioConfig, workers: usize) -> RunResult {
    assert!(!cfg.stored, "sharded runs are timing-only");
    let cfg2 = cfg.clone();
    let (res, _) = run_ranks_sharded(cfg.machine(), cfg.procs, workers, move |_spec| {
        let cfg = cfg2.clone();
        (
            Box::new(move |ctx: AppCtx| -> RankFuture {
                let cfg = cfg.clone();
                Box::pin(async move {
                    rank_program(ctx, cfg).await;
                })
            }) as ShardProgram,
            Box::new(|| ()) as ShardFinish<()>,
        )
    });
    res
}

/// Run BTIO and capture the final file contents (stored mode, for
/// functional verification that optimized and unoptimized runs produce
/// identical files).
pub fn run_capture(cfg: &BtioConfig) -> (RunResult, BytesList) {
    assert!(cfg.stored, "capture needs stored files");
    let captured: Rc<RefCell<BytesList>> = Rc::new(RefCell::new(BytesList::new()));
    let cap2 = Rc::clone(&captured);
    let cfg2 = cfg.clone();
    let res = run_ranks(cfg.machine(), cfg.procs, move |ctx| {
        let cfg = cfg2.clone();
        let cap = Rc::clone(&cap2);
        Box::pin(async move {
            let rank = ctx.rank;
            let fs = Rc::clone(&ctx.fs);
            let total = cfg.total_bytes();
            rank_program(ctx, cfg).await;
            if rank == 0 {
                let fh = fs
                    .open(0, Interface::UnixStyle, "btio.solution", None)
                    .await
                    .expect("reopen solution");
                let data = fh.read_rope_at(0, total).await.expect("read solution");
                *cap.borrow_mut() = data;
            }
        })
    });
    let b = captured.borrow().clone();
    (res, b)
}

/// Run one rank's BTIO program against an externally built context — for
/// studies on customized machines.
pub async fn rank_program_on(ctx: AppCtx, cfg: BtioConfig) {
    rank_program(ctx, cfg).await;
}

async fn rank_program(ctx: AppCtx, cfg: BtioConfig) {
    let n = cfg.class.n();
    let q = (cfg.procs as f64).sqrt() as u64;
    let (i, j) = ((ctx.rank as u64) % q, (ctx.rank as u64) / q);
    let ext = extents(n, q);
    let cells = owned_cells(i, j, q);
    let iface = if cfg.optimized {
        Interface::Passion
    } else {
        Interface::UnixStyle
    };
    let fh = ctx
        .fs
        .open(
            ctx.rank,
            iface,
            "btio.solution",
            Some(CreateOptions {
                stored: cfg.stored,
                ..Default::default()
            }),
        )
        .await
        .expect("open solution file");

    let my_cells: u64 = cells
        .iter()
        .map(|&(cx, cy, cz)| ext[cx as usize].1 * ext[cy as usize].1 * ext[cz as usize].1)
        .sum();
    let flops_per_step = my_cells as f64 * FLOPS_PER_CELL_STEP;

    for dump in 0..cfg.dumps {
        // Solve steps between dumps.
        for _ in 0..cfg.steps_per_dump {
            ctx.machine.compute(flops_per_step).await;
        }
        let base = dump as u64 * cfg.dump_bytes();
        if cfg.optimized {
            dump_collective(&ctx, &cfg, &fh, &ext, &cells, base, dump).await;
        } else {
            dump_direct(&cfg, &fh, &ext, &cells, base, dump).await;
        }
    }
    // ---- Verification: read the last dump back. ----
    if cfg.verify && cfg.dumps > 0 {
        ctx.comm.barrier().await;
        let dump = cfg.dumps - 1;
        let base = (dump as u64) * cfg.dump_bytes();
        if cfg.optimized {
            let mut spans = Vec::new();
            for &(cx, cy, cz) in &cells {
                let (x0, xl) = ext[cx as usize];
                let (y0, yl) = ext[cy as usize];
                let (z0, zl) = ext[cz as usize];
                for z in z0..z0 + zl {
                    for y in y0..y0 + yl {
                        spans.push(iosim_core::two_phase::Span::new(
                            base + run_offset(n, x0, y, z),
                            xl * CELL,
                        ));
                    }
                }
            }
            let (got, _) = iosim_core::two_phase::read_collective(&ctx.comm, &fh, spans)
                .await
                .expect("collective verify read");
            if cfg.stored {
                let mut idx = 0usize;
                for &(cx, cy, cz) in &cells {
                    let (x0, xl) = ext[cx as usize];
                    let (y0, yl) = ext[cy as usize];
                    let (z0, zl) = ext[cz as usize];
                    for z in z0..z0 + zl {
                        for y in y0..y0 + yl {
                            let want = run_bytes_payload(&cfg, x0, xl, y, z, dump).expect("stored");
                            assert_eq!(
                                got[idx].data.as_ref().expect("stored read"),
                                &want,
                                "verification mismatch at (y={y}, z={z})"
                            );
                            idx += 1;
                        }
                    }
                }
            }
        } else {
            // Independent verification: all of this rank's x-runs as one
            // vectored request (UNIX-style interfaces degenerate to the
            // per-fragment loop; the request is the currency either way).
            let mut req = IoRequest::default();
            let mut runs = Vec::new();
            for &(cx, cy, cz) in &cells {
                let (x0, xl) = ext[cx as usize];
                let (y0, yl) = ext[cy as usize];
                let (z0, zl) = ext[cz as usize];
                for z in z0..z0 + zl {
                    for y in y0..y0 + yl {
                        req.push(base + run_offset(n, x0, y, z), xl * CELL);
                        runs.push((x0, xl, y, z));
                    }
                }
            }
            if cfg.stored {
                let got = fh.readv(&req).await.expect("verify read");
                let mut cursor = 0usize;
                for (x0, xl, y, z) in runs {
                    let want = run_bytes_payload(&cfg, x0, xl, y, z, dump).expect("stored");
                    assert_eq!(
                        &got[cursor..cursor + want.len()],
                        &want[..],
                        "verification mismatch at (y={y}, z={z})"
                    );
                    cursor += want.len();
                }
            } else {
                fh.readv_discard(&req).await.expect("verify read");
            }
        }
    }
    ctx.comm.barrier().await;
    fh.close().await;
}

/// One x-run: offset of `(x0, y, z)` and its byte length.
fn run_offset(n: u64, x0: u64, y: u64, z: u64) -> u64 {
    ((z * n + y) * n + x0) * CELL
}

fn run_bytes_payload(
    cfg: &BtioConfig,
    x0: u64,
    xlen: u64,
    y: u64,
    z: u64,
    dump: u32,
) -> Option<Vec<u8>> {
    if !cfg.stored {
        return None;
    }
    let mut out = Vec::with_capacity((xlen * CELL) as usize);
    for x in x0..x0 + xlen {
        for var in 0..5 {
            out.extend_from_slice(&cell_value(x, y, z, var, dump).to_le_bytes());
        }
    }
    Some(out)
}

/// Unoptimized dump: one seek + write per x-run of each owned cell.
async fn dump_direct(
    cfg: &BtioConfig,
    fh: &iosim_pfs::FileHandle,
    ext: &[(u64, u64)],
    cells: &[(u64, u64, u64)],
    base: u64,
    dump: u32,
) {
    let n = cfg.class.n();
    for &(cx, cy, cz) in cells {
        let (x0, xl) = ext[cx as usize];
        let (y0, yl) = ext[cy as usize];
        let (z0, zl) = ext[cz as usize];
        for z in z0..z0 + zl {
            for y in y0..y0 + yl {
                let off = base + run_offset(n, x0, y, z);
                fh.seek(off).await;
                match run_bytes_payload(cfg, x0, xl, y, z, dump) {
                    Some(bytes) => fh.write(bytes).await.expect("write run"),
                    None => fh.write_discard(xl * CELL).await.expect("write run"),
                }
            }
        }
    }
}

/// Optimized dump: describe all runs as pieces and write collectively.
async fn dump_collective(
    ctx: &AppCtx,
    cfg: &BtioConfig,
    fh: &iosim_pfs::FileHandle,
    ext: &[(u64, u64)],
    cells: &[(u64, u64, u64)],
    base: u64,
    dump: u32,
) {
    let n = cfg.class.n();
    let mut pieces = Vec::new();
    for &(cx, cy, cz) in cells {
        let (x0, xl) = ext[cx as usize];
        let (y0, yl) = ext[cy as usize];
        let (z0, zl) = ext[cz as usize];
        for z in z0..z0 + zl {
            for y in y0..y0 + yl {
                let off = base + run_offset(n, x0, y, z);
                match run_bytes_payload(cfg, x0, xl, y, z, dump) {
                    Some(bytes) => pieces.push(Piece::bytes(off, bytes)),
                    None => pieces.push(Piece::synthetic(off, xl * CELL)),
                }
            }
        }
    }
    write_collective(&ctx.comm, fh, pieces)
        .await
        .expect("collective dump");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(procs: usize, optimized: bool) -> BtioConfig {
        BtioConfig {
            dumps: 3,
            ..BtioConfig::new(BtClass::Custom(16), procs, optimized)
        }
    }

    #[test]
    fn extents_cover_exactly() {
        for (n, q) in [(64u64, 6u64), (102, 7), (16, 4), (5, 5)] {
            let e = extents(n, q);
            assert_eq!(e.len(), q as usize);
            let total: u64 = e.iter().map(|&(_, l)| l).sum();
            assert_eq!(total, n);
            assert_eq!(e[0].0, 0);
        }
    }

    #[test]
    fn multipartition_tiles_every_cell_once() {
        let q = 4u64;
        let mut seen = vec![false; (q * q * q) as usize];
        for i in 0..q {
            for j in 0..q {
                for (cx, cy, cz) in owned_cells(i, j, q) {
                    let idx = ((cz * q + cy) * q + cx) as usize;
                    assert!(!seen[idx], "cell ({cx},{cy},{cz}) owned twice");
                    seen[idx] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn optimized_and_unoptimized_files_are_identical() {
        let mut u = small(4, false);
        u.stored = true;
        u.dumps = 2;
        let mut o = small(4, true);
        o.stored = true;
        o.dumps = 2;
        let (_ru, fu) = run_capture(&u);
        let (_ro, fo) = run_capture(&o);
        assert_eq!(fu.len(), fo.len());
        assert_eq!(fu, fo, "two-phase I/O must write the same bytes");
        assert!(!fu.is_empty());
    }

    #[test]
    fn two_phase_slashes_io_calls_and_seeks() {
        let u = run(&small(9, false));
        let o = run(&small(9, true));
        let u_seeks = u.summary.rows[2].count;
        let o_seeks = o.summary.rows[2].count;
        assert!(
            u_seeks > 50 * o_seeks.max(1),
            "unopt seeks {u_seeks} vs opt {o_seeks}"
        );
        let u_writes = u.summary.rows[3].count;
        let o_writes = o.summary.rows[3].count;
        assert!(
            u_writes > 10 * o_writes,
            "unopt writes {u_writes} vs opt {o_writes}"
        );
    }

    #[test]
    fn optimized_reduces_execution_time() {
        let u = run(&small(16, false));
        let o = run(&small(16, true));
        assert!(
            o.exec_time < u.exec_time,
            "two-phase {:?} should beat direct {:?}",
            o.exec_time,
            u.exec_time
        );
    }

    #[test]
    fn optimized_bandwidth_is_much_higher() {
        let u = run(&small(16, false));
        let o = run(&small(16, true));
        assert!(
            o.bandwidth_mb_s() > 4.0 * u.bandwidth_mb_s(),
            "opt {} MB/s vs unopt {} MB/s",
            o.bandwidth_mb_s(),
            u.bandwidth_mb_s()
        );
    }

    #[test]
    fn class_sizes_follow_nas_definitions() {
        assert_eq!(BtClass::A.n(), 64);
        assert_eq!(BtClass::B.n(), 102);
        assert_eq!(BtClass::C.n(), 162);
        // Class A total: 64³ × 40 B × 40 dumps ≈ 419 MB (paper: 408.9).
        let cfg = BtioConfig::new(BtClass::A, 4, false);
        let mb = cfg.total_bytes() as f64 / 1e6;
        assert!((380.0..440.0).contains(&mb), "{mb} MB");
    }

    #[test]
    fn unoptimized_call_count_follows_the_multipartition_formula() {
        // Per dump: q·n² x-runs, each a seek + write.
        let cfg = small(9, false); // q = 3, n = 16, dumps = 3
        let r = run(&cfg);
        let expect = 3 * 3 * 16 * 16; // dumps × q × n²
        assert_eq!(r.summary.rows[3].count, expect);
        assert_eq!(r.summary.rows[2].count, expect);
    }

    #[test]
    fn verification_reads_the_last_dump_and_matches() {
        for optimized in [false, true] {
            let mut cfg = small(4, optimized);
            cfg.stored = true;
            cfg.verify = true;
            cfg.dumps = 2;
            // The rank programs assert data equality; completing the run
            // is the verification.
            let r = run(&cfg);
            assert_eq!(
                r.summary.rows[1].bytes,
                cfg.dump_bytes(),
                "verify phase must read exactly one dump (optimized={optimized})"
            );
        }
    }

    #[test]
    fn dump_volume_matches_formula() {
        let cfg = small(4, true);
        let res = run(&cfg);
        assert_eq!(res.io_bytes, cfg.total_bytes());
        assert_eq!(cfg.dump_bytes(), 16 * 16 * 16 * 40);
    }

    #[test]
    #[should_panic(expected = "square process count")]
    fn non_square_procs_rejected() {
        let _ = BtioConfig::new(BtClass::A, 10, false);
    }
}
