//! Complex FFT kernels used by the out-of-core FFT application.
//!
//! A plain iterative radix-2 Cooley–Tukey FFT on split `(re, im)` arrays,
//! plus a quadratic-time reference DFT for validation. The application's
//! I/O behaviour does not depend on these values, but carrying real data
//! lets tests verify the out-of-core pipeline end-to-end.

use std::f64::consts::PI;

/// In-place radix-2 FFT of length `re.len() == im.len()` (a power of two).
/// `inverse` selects the inverse transform (including the `1/n` scale).
///
/// # Panics
/// Panics if the lengths differ or are not a power of two.
pub fn fft_inplace(re: &mut [f64], im: &mut [f64], inverse: bool) {
    let n = re.len();
    assert_eq!(n, im.len(), "re/im length mismatch");
    assert!(n.is_power_of_two(), "length must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if j > i {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2usize;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        for start in (0..n).step_by(len) {
            let mut cr = 1.0f64;
            let mut ci = 0.0f64;
            for k in 0..len / 2 {
                let a = start + k;
                let b = a + len / 2;
                let tr = re[b] * cr - im[b] * ci;
                let ti = re[b] * ci + im[b] * cr;
                re[b] = re[a] - tr;
                im[b] = im[a] - ti;
                re[a] += tr;
                im[a] += ti;
                let ncr = cr * wr - ci * wi;
                ci = cr * wi + ci * wr;
                cr = ncr;
            }
        }
        len <<= 1;
    }
    if inverse {
        let inv = 1.0 / n as f64;
        for v in re.iter_mut() {
            *v *= inv;
        }
        for v in im.iter_mut() {
            *v *= inv;
        }
    }
}

/// Reference O(n²) DFT for validation.
pub fn dft_reference(re: &[f64], im: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let n = re.len();
    let mut or = vec![0.0; n];
    let mut oi = vec![0.0; n];
    for (k, (orx, oix)) in or.iter_mut().zip(oi.iter_mut()).enumerate() {
        for j in 0..n {
            let ang = -2.0 * PI * (k * j) as f64 / n as f64;
            let (c, s) = (ang.cos(), ang.sin());
            *orx += re[j] * c - im[j] * s;
            *oix += re[j] * s + im[j] * c;
        }
    }
    (or, oi)
}

/// FLOPs of one radix-2 FFT of length `n` (the standard `5 n log₂ n`).
pub fn fft_flops(n: u64) -> f64 {
    if n < 2 {
        return 0.0;
    }
    5.0 * n as f64 * (n as f64).log2()
}

/// Pack interleaved complex bytes (re, im little-endian pairs) from split
/// arrays.
pub fn pack_complex(re: &[f64], im: &[f64]) -> Vec<u8> {
    assert_eq!(re.len(), im.len());
    let mut out = Vec::with_capacity(re.len() * 16);
    for (r, i) in re.iter().zip(im) {
        out.extend_from_slice(&r.to_le_bytes());
        out.extend_from_slice(&i.to_le_bytes());
    }
    out
}

/// Unpack interleaved complex bytes into split arrays.
pub fn unpack_complex(bytes: &[u8]) -> (Vec<f64>, Vec<f64>) {
    assert!(bytes.len().is_multiple_of(16), "complex bytes come in 16s");
    let n = bytes.len() / 16;
    let mut re = Vec::with_capacity(n);
    let mut im = Vec::with_capacity(n);
    for c in bytes.chunks_exact(16) {
        re.push(f64::from_le_bytes(c[..8].try_into().expect("8")));
        im.push(f64::from_le_bytes(c[8..].try_into().expect("8")));
    }
    (re, im)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: &[f64], b: &[f64], tol: f64) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < tol)
    }

    #[test]
    fn fft_matches_reference_dft() {
        let n = 32;
        let re: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let im: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).cos()).collect();
        let (er, ei) = dft_reference(&re, &im);
        let mut fr = re.clone();
        let mut fi = im.clone();
        fft_inplace(&mut fr, &mut fi, false);
        assert!(close(&fr, &er, 1e-9), "{fr:?} vs {er:?}");
        assert!(close(&fi, &ei, 1e-9));
    }

    #[test]
    fn forward_then_inverse_is_identity() {
        let n = 256;
        let re: Vec<f64> = (0..n).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let im: Vec<f64> = (0..n).map(|i| ((i * 3 % 17) as f64) * 0.5).collect();
        let mut fr = re.clone();
        let mut fi = im.clone();
        fft_inplace(&mut fr, &mut fi, false);
        fft_inplace(&mut fr, &mut fi, true);
        assert!(close(&fr, &re, 1e-9));
        assert!(close(&fi, &im, 1e-9));
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let mut re = vec![0.0; 16];
        let mut im = vec![0.0; 16];
        re[0] = 1.0;
        fft_inplace(&mut re, &mut im, false);
        assert!(re.iter().all(|&v| (v - 1.0).abs() < 1e-12));
        assert!(im.iter().all(|&v| v.abs() < 1e-12));
    }

    #[test]
    fn parseval_holds() {
        let n = 64;
        let re: Vec<f64> = (0..n).map(|i| (i as f64).sqrt().sin()).collect();
        let im = vec![0.0; n];
        let time_energy: f64 = re.iter().map(|v| v * v).sum();
        let mut fr = re.clone();
        let mut fi = im.clone();
        fft_inplace(&mut fr, &mut fi, false);
        let freq_energy: f64 =
            fr.iter().zip(&fi).map(|(r, i)| r * r + i * i).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }

    #[test]
    fn complex_pack_roundtrip() {
        let re = vec![1.0, -2.5, 3.25];
        let im = vec![0.5, 0.0, -7.0];
        let (r2, i2) = unpack_complex(&pack_complex(&re, &im));
        assert_eq!(r2, re);
        assert_eq!(i2, im);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let mut re = vec![0.0; 12];
        let mut im = vec![0.0; 12];
        fft_inplace(&mut re, &mut im, false);
    }

    #[test]
    fn flops_formula() {
        assert_eq!(fft_flops(1), 0.0);
        assert!((fft_flops(1024) - 5.0 * 1024.0 * 10.0).abs() < 1e-9);
    }
}
