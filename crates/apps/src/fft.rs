//! 2-D out-of-core FFT (paper §4.4) — the file-layout optimization.
//!
//! Three steps over two disk-resident `n × n` complex arrays:
//!
//! 1. 1-D FFTs on the columns of `A` (column panels; contiguous, since
//!    `A` is column-major),
//! 2. an out-of-core transpose `B ← Aᵀ`,
//! 3. 1-D FFT pass over `B`.
//!
//! **Unoptimized** (both files column-major): in the transpose, reading a
//! tile of `A` wants tall tiles while writing its transpose into
//! column-major `B` wants wide ones — "optimizing the block dimension for
//! one array has a negative impact on the other". The best compromise is
//! square-ish memory-bounded tiles costing `tile_w + tile_r` I/O calls
//! per tile, and once per-process column strips get narrower than the
//! memory-square side, the total call count *grows with the number of
//! processes* — reproducing Figure 5's rising I/O time.
//!
//! **Optimized** (`B` row-major, per reference \[7\]): tall panels are
//! conforming for both sides — one read and one write per panel — and
//! step 3 scans `B` along its stored (contiguous) direction, four-step
//! FFT style. The physical reorder cost is accounted in the in-memory
//! panel transpose. (See DESIGN.md: the functional 2-D FFT check runs on
//! the unoptimized pipeline; the optimized pipeline's functional check
//! verifies the transpose content byte-for-byte.)

use std::rc::Rc;

use iosim_buf::Bytes;
use iosim_core::ooc::{FileLayout, OocArray};
use iosim_machine::{presets, Interface, MachineConfig};

use crate::common::{
    run_ranks, run_ranks_sharded, AppCtx, RankFuture, RunResult, ShardFinish, ShardProgram,
};
use crate::dsp;

/// Complex element size (two little-endian `f64`s).
const CPX: u64 = 16;

/// FFT application configuration.
#[derive(Clone, Debug)]
pub struct FftConfig {
    /// Matrix dimension (n × n complex elements); a power of two.
    pub n: u64,
    /// Number of processes.
    pub procs: usize,
    /// Number of I/O nodes (the paper uses 2 and 4 on the small Paragon).
    pub io_nodes: usize,
    /// File-layout optimization: store `B` row-major.
    pub optimized: bool,
    /// Carry real data (small n only) instead of timing-only files.
    pub stored: bool,
    /// Per-process tile memory in bytes.
    pub mem_per_proc: u64,
    /// Run only the fill + transpose (for functional transpose checks).
    pub transpose_only: bool,
    /// Per-I/O-node LRU buffer cache in MB (0 = uncached, the paper's
    /// baseline machine).
    pub cache_mb: u64,
    /// I/O-node command-queue depth (1 = the paper's FIFO disk queue).
    pub queue_depth: usize,
}

impl FftConfig {
    /// Defaults matching the paper's small-Paragon experiment.
    pub fn new(n: u64, procs: usize, optimized: bool) -> FftConfig {
        assert!(n.is_power_of_two(), "n must be a power of two");
        FftConfig {
            n,
            procs,
            io_nodes: 2,
            optimized,
            stored: false,
            mem_per_proc: 16 << 20,
            transpose_only: false,
            cache_mb: 0,
            queue_depth: 1,
        }
    }

    /// Total bytes moved by the full pipeline (each step reads and writes
    /// the whole array): `6 · n² · 16`. The paper's configuration moves
    /// ~1.5 GB, i.e. n = 4096.
    pub fn total_io_bytes(&self) -> u64 {
        6 * self.n * self.n * CPX
    }

    fn machine(&self) -> MachineConfig {
        crate::common::with_queue_depth(
            crate::common::with_cache_mb(
                presets::paragon_small()
                    .with_compute_nodes(self.procs)
                    .with_io_nodes(self.io_nodes),
                self.cache_mb,
            ),
            self.queue_depth,
        )
    }

    /// Column range owned by `rank` (block partition with remainder
    /// spread over the low ranks).
    pub fn owned_cols(&self, rank: usize) -> (u64, u64) {
        let p = self.procs as u64;
        let r = rank as u64;
        let base = self.n / p;
        let rem = self.n % p;
        let lo = r * base + r.min(rem);
        let hi = lo + base + u64::from(r < rem);
        (lo, hi)
    }
}

/// Deterministic input value for element `(r, c)`.
pub fn input_value(r: u64, c: u64) -> (f64, f64) {
    let x = (r.wrapping_mul(31).wrapping_add(c.wrapping_mul(17)) % 101) as f64;
    let y = (r.wrapping_add(c).wrapping_mul(7) % 89) as f64;
    (x / 101.0 - 0.5, y / 89.0 - 0.5)
}

/// Run the FFT and return the measurements.
pub fn run(cfg: &FftConfig) -> RunResult {
    let cfg2 = cfg.clone();
    run_ranks(cfg.machine(), cfg.procs, move |ctx| {
        let cfg = cfg2.clone();
        Box::pin(async move {
            rank_program(ctx, cfg).await;
        })
    })
}

/// Run the FFT on the sharded parallel engine: the machine is partitioned
/// along its topology and executed by up to `workers` host threads
/// ([`crate::common::run_ranks_sharded`]). Timing-only mode — the
/// functional (`stored`) checks verify cross-rank file contents, which a
/// partitioned file system does not carry.
pub fn run_threaded(cfg: &FftConfig, workers: usize) -> RunResult {
    assert!(!cfg.stored, "sharded runs are timing-only");
    let cfg2 = cfg.clone();
    let (res, _) = run_ranks_sharded(cfg.machine(), cfg.procs, workers, move |_spec| {
        let cfg = cfg2.clone();
        (
            Box::new(move |ctx: AppCtx| -> RankFuture {
                let cfg = cfg.clone();
                Box::pin(async move {
                    rank_program(ctx, cfg).await;
                })
            }) as ShardProgram,
            Box::new(|| ()) as ShardFinish<()>,
        )
    });
    res
}

async fn open_arrays(ctx: &AppCtx, cfg: &FftConfig) -> (OocArray, OocArray) {
    let b_layout = if cfg.optimized {
        FileLayout::RowMajor
    } else {
        FileLayout::ColMajor
    };
    let a = OocArray::create_elems(
        &ctx.fs,
        ctx.rank,
        Interface::UnixStyle,
        "fft.A",
        cfg.n,
        cfg.n,
        FileLayout::ColMajor,
        cfg.stored,
        CPX,
    )
    .await
    .expect("create A");
    let b = OocArray::create_elems(
        &ctx.fs,
        ctx.rank,
        Interface::UnixStyle,
        "fft.B",
        cfg.n,
        cfg.n,
        b_layout,
        cfg.stored,
        CPX,
    )
    .await
    .expect("create B");
    (a, b)
}

/// Run one rank's FFT program against an externally built context — for
/// ablations that need a customized machine (e.g. a modified seek
/// penalty) while keeping the application unchanged.
pub async fn rank_program_on(ctx: AppCtx, cfg: FftConfig) {
    rank_program(ctx, cfg).await;
}

async fn rank_program(ctx: AppCtx, cfg: FftConfig) {
    let n = cfg.n;
    let (c_lo, c_hi) = cfg.owned_cols(ctx.rank);
    let own = c_hi - c_lo;
    let (a, b) = open_arrays(&ctx, &cfg).await;

    // ---- Fill (stored mode only): write the deterministic input. ----
    if cfg.stored && own > 0 {
        let mut buf = Vec::with_capacity((n * own * CPX) as usize);
        // Row-major block buffer for the full owned column strip.
        for r in 0..n {
            for c in c_lo..c_hi {
                let (re, im) = input_value(r, c);
                buf.extend_from_slice(&re.to_le_bytes());
                buf.extend_from_slice(&im.to_le_bytes());
            }
        }
        a.write_block_raw(0, c_lo, n, own, buf)
            .await
            .expect("fill A");
    }
    ctx.comm.barrier().await;

    // Tall-panel width bounded by memory (full columns of n elements).
    let panel_w = (cfg.mem_per_proc / (CPX * n)).clamp(1, own.max(1));

    // ---- Step 1: 1-D FFTs on the columns of A. ----
    if !cfg.transpose_only && own > 0 {
        fft_pass_columns(&ctx, &cfg, &a, c_lo, c_hi, panel_w).await;
    }
    ctx.comm.barrier().await;

    // ---- Step 2: out-of-core transpose B ← Aᵀ. ----
    if own > 0 {
        if cfg.optimized {
            transpose_optimized(&ctx, &cfg, &a, &b, c_lo, c_hi, panel_w).await;
        } else {
            transpose_unoptimized(&ctx, &cfg, &a, &b, c_lo, c_hi).await;
        }
    }
    ctx.comm.barrier().await;

    // ---- Step 3: 1-D FFT pass over B, along its stored direction. ----
    if !cfg.transpose_only && own > 0 {
        if cfg.optimized {
            fft_pass_rows(&ctx, &cfg, &b, c_lo, c_hi, panel_w).await;
        } else {
            fft_pass_columns(&ctx, &cfg, &b, c_lo, c_hi, panel_w).await;
        }
    }
    ctx.comm.barrier().await;
    a.close().await;
    b.close().await;
}

/// Read column panels, FFT each column, write back.
async fn fft_pass_columns(
    ctx: &AppCtx,
    cfg: &FftConfig,
    arr: &OocArray,
    c_lo: u64,
    c_hi: u64,
    panel_w: u64,
) {
    let n = cfg.n;
    let mut c = c_lo;
    while c < c_hi {
        let w = panel_w.min(c_hi - c);
        if cfg.stored {
            let raw = arr.read_block_raw(0, c, n, w).await.expect("read panel");
            let out = fft_block_columns(&raw, n, w);
            ctx.machine.compute(dsp::fft_flops(n) * w as f64).await;
            arr.write_block_raw(0, c, n, w, out)
                .await
                .expect("write panel");
        } else {
            arr.read_block_discard(0, c, n, w)
                .await
                .expect("read panel");
            ctx.machine.compute(dsp::fft_flops(n) * w as f64).await;
            arr.write_block_discard(0, c, n, w)
                .await
                .expect("write panel");
        }
        c += w;
    }
}

/// Read row panels, FFT each row, write back (the optimized step 3:
/// `B` is row-major, so rows are its contiguous direction).
async fn fft_pass_rows(
    ctx: &AppCtx,
    cfg: &FftConfig,
    arr: &OocArray,
    r_lo: u64,
    r_hi: u64,
    panel_h: u64,
) {
    let n = cfg.n;
    let mut r = r_lo;
    while r < r_hi {
        let h = panel_h.min(r_hi - r);
        if cfg.stored {
            let raw = arr.read_block_raw(r, 0, h, n).await.expect("read panel");
            let out = fft_block_rows(&raw, h, n);
            ctx.machine.compute(dsp::fft_flops(n) * h as f64).await;
            arr.write_block_raw(r, 0, h, n, out)
                .await
                .expect("write panel");
        } else {
            arr.read_block_discard(r, 0, h, n)
                .await
                .expect("read panel");
            ctx.machine.compute(dsp::fft_flops(n) * h as f64).await;
            arr.write_block_discard(r, 0, h, n)
                .await
                .expect("write panel");
        }
        r += h;
    }
}

/// Optimized transpose: tall panels, one read + one write each.
async fn transpose_optimized(
    ctx: &AppCtx,
    cfg: &FftConfig,
    a: &OocArray,
    b: &OocArray,
    c_lo: u64,
    c_hi: u64,
    panel_w: u64,
) {
    let n = cfg.n;
    let mut c = c_lo;
    while c < c_hi {
        let w = panel_w.min(c_hi - c);
        if cfg.stored {
            let raw = a.read_block_raw(0, c, n, w).await.expect("read A panel");
            let t = transpose_raw(&raw, n, w);
            charge_copy(ctx, n * w * CPX).await;
            b.write_block_raw(c, 0, w, n, t)
                .await
                .expect("write B panel");
        } else {
            a.read_block_discard(0, c, n, w)
                .await
                .expect("read A panel");
            charge_copy(ctx, n * w * CPX).await;
            b.write_block_discard(c, 0, w, n)
                .await
                .expect("write B panel");
        }
        c += w;
    }
}

/// Unoptimized transpose: memory-bounded rectangular tiles; reading the
/// tile costs `tile_w` calls and writing its transpose costs `tile_r`
/// calls (both files column-major).
async fn transpose_unoptimized(
    ctx: &AppCtx,
    cfg: &FftConfig,
    a: &OocArray,
    b: &OocArray,
    c_lo: u64,
    c_hi: u64,
) {
    let n = cfg.n;
    let own = c_hi - c_lo;
    let elems = (cfg.mem_per_proc / CPX).max(1);
    // Square-ish compromise, clipped to the owned strip.
    let tile_w = ((elems as f64).sqrt() as u64).clamp(1, own);
    let tile_r = (elems / tile_w).clamp(1, n);
    let mut r = 0u64;
    while r < n {
        let tr = tile_r.min(n - r);
        let mut c = c_lo;
        while c < c_hi {
            let tw = tile_w.min(c_hi - c);
            if cfg.stored {
                let raw = a.read_block_raw(r, c, tr, tw).await.expect("read A tile");
                let t = transpose_raw(&raw, tr, tw);
                charge_copy(ctx, tr * tw * CPX).await;
                b.write_block_raw(c, r, tw, tr, t)
                    .await
                    .expect("write B tile");
            } else {
                a.read_block_discard(r, c, tr, tw)
                    .await
                    .expect("read A tile");
                charge_copy(ctx, tr * tw * CPX).await;
                b.write_block_discard(c, r, tw, tr)
                    .await
                    .expect("write B tile");
            }
            c += tw;
        }
        r += tr;
    }
}

async fn charge_copy(ctx: &AppCtx, bytes: u64) {
    let d = ctx.machine.cfg().cpu.copy_time(bytes);
    ctx.machine.handle().sleep(d).await;
}

/// Transpose a row-major `rows × cols` complex block into `cols × rows`.
fn transpose_raw(raw: &[u8], rows: u64, cols: u64) -> Vec<u8> {
    let e = CPX as usize;
    let mut out = vec![0u8; raw.len()];
    for i in 0..rows as usize {
        for j in 0..cols as usize {
            let src = (i * cols as usize + j) * e;
            let dst = (j * rows as usize + i) * e;
            out[dst..dst + e].copy_from_slice(&raw[src..src + e]);
        }
    }
    out
}

/// FFT every column of a row-major `n × w` complex block.
fn fft_block_columns(raw: &[u8], n: u64, w: u64) -> Vec<u8> {
    let mut out = raw.to_vec();
    for col in 0..w as usize {
        let mut re = Vec::with_capacity(n as usize);
        let mut im = Vec::with_capacity(n as usize);
        for row in 0..n as usize {
            let idx = (row * w as usize + col) * 16;
            re.push(f64::from_le_bytes(raw[idx..idx + 8].try_into().expect("8")));
            im.push(f64::from_le_bytes(
                raw[idx + 8..idx + 16].try_into().expect("8"),
            ));
        }
        dsp::fft_inplace(&mut re, &mut im, false);
        for row in 0..n as usize {
            let idx = (row * w as usize + col) * 16;
            out[idx..idx + 8].copy_from_slice(&re[row].to_le_bytes());
            out[idx + 8..idx + 16].copy_from_slice(&im[row].to_le_bytes());
        }
    }
    out
}

/// FFT every row of a row-major `h × n` complex block.
fn fft_block_rows(raw: &[u8], h: u64, n: u64) -> Vec<u8> {
    let mut out = raw.to_vec();
    for row in 0..h as usize {
        let start = row * n as usize * 16;
        let (mut re, mut im) = dsp::unpack_complex(&raw[start..start + n as usize * 16]);
        dsp::fft_inplace(&mut re, &mut im, false);
        out[start..start + n as usize * 16].copy_from_slice(&dsp::pack_complex(&re, &im));
    }
    out
}

/// Run the FFT and read back the full final `B` contents (stored mode;
/// for functional tests). Returns `(result, B as a row-major n×n complex
/// byte buffer)` — a shared view of the stored extents, copied nowhere.
pub fn run_capture(cfg: &FftConfig) -> (RunResult, Bytes) {
    assert!(cfg.stored, "capture needs stored arrays");
    let captured: Rc<std::cell::RefCell<Bytes>> = Rc::new(std::cell::RefCell::new(Bytes::new()));
    let cap2 = Rc::clone(&captured);
    let cfg2 = cfg.clone();
    let res = run_ranks(cfg.machine(), cfg.procs, move |ctx| {
        let cfg = cfg2.clone();
        let cap = Rc::clone(&cap2);
        Box::pin(async move {
            let rank = ctx.rank;
            rank_program_capture(ctx, cfg, rank, cap).await;
        })
    });
    let b = captured.borrow().clone();
    (res, b)
}

async fn rank_program_capture(
    ctx: AppCtx,
    cfg: FftConfig,
    rank: usize,
    cap: Rc<std::cell::RefCell<Bytes>>,
) {
    // Re-run the regular program; rank 0 then reads the final B.
    let n = cfg.n;
    let ctx2 = AppCtx {
        rank: ctx.rank,
        comm: ctx.comm,
        fs: Rc::clone(&ctx.fs),
        machine: Rc::clone(&ctx.machine),
    };
    rank_program(ctx2, cfg.clone()).await;
    if rank == 0 {
        let b_layout = if cfg.optimized {
            FileLayout::RowMajor
        } else {
            FileLayout::ColMajor
        };
        let b = OocArray::create_elems(
            &ctx.fs,
            0,
            Interface::UnixStyle,
            "fft.B",
            n,
            n,
            b_layout,
            true,
            CPX,
        )
        .await
        .expect("reopen B");
        let raw = b.read_block_raw(0, 0, n, n).await.expect("read all of B");
        *cap.borrow_mut() = raw;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owned_cols_partition_the_matrix() {
        let cfg = FftConfig::new(64, 5, false);
        let mut cursor = 0;
        for r in 0..5 {
            let (lo, hi) = cfg.owned_cols(r);
            assert_eq!(lo, cursor);
            cursor = hi;
        }
        assert_eq!(cursor, 64);
    }

    #[test]
    fn transpose_raw_is_involutive() {
        let rows = 3u64;
        let cols = 5u64;
        let buf: Vec<u8> = (0..rows * cols * CPX).map(|i| (i % 256) as u8).collect();
        let t = transpose_raw(&buf, rows, cols);
        let back = transpose_raw(&t, cols, rows);
        assert_eq!(back, buf);
    }

    #[test]
    fn functional_transpose_matches_both_layouts() {
        for optimized in [false, true] {
            let cfg = FftConfig {
                stored: true,
                transpose_only: true,
                ..FftConfig::new(16, 2, optimized)
            };
            let (_res, b) = run_capture(&cfg);
            // B (row-major capture) must hold Xᵀ.
            for r in 0..16u64 {
                for c in 0..16u64 {
                    let idx = ((r * 16 + c) * CPX) as usize;
                    let re = f64::from_le_bytes(b[idx..idx + 8].try_into().unwrap());
                    let (want_re, _) = input_value(c, r); // transposed
                    assert!(
                        (re - want_re).abs() < 1e-12,
                        "optimized={optimized} B[{r}][{c}] = {re} want {want_re}"
                    );
                }
            }
        }
    }

    #[test]
    fn functional_unoptimized_pipeline_is_a_2d_fft() {
        let n = 16u64;
        let cfg = FftConfig {
            stored: true,
            ..FftConfig::new(n, 2, false)
        };
        let (_res, b) = run_capture(&cfg);
        // Expected: F = 2-D FFT of X; pipeline produces Fᵀ in B, captured
        // row-major, so b[r][c] = F[c][r].
        // Compute reference with in-memory FFTs: columns then rows.
        let nn = n as usize;
        let mut re = vec![0.0; nn * nn];
        let mut im = vec![0.0; nn * nn];
        for r in 0..nn {
            for c in 0..nn {
                let (x, y) = input_value(r as u64, c as u64);
                re[r * nn + c] = x;
                im[r * nn + c] = y;
            }
        }
        // FFT columns.
        for c in 0..nn {
            let mut cr: Vec<f64> = (0..nn).map(|r| re[r * nn + c]).collect();
            let mut ci: Vec<f64> = (0..nn).map(|r| im[r * nn + c]).collect();
            dsp::fft_inplace(&mut cr, &mut ci, false);
            for r in 0..nn {
                re[r * nn + c] = cr[r];
                im[r * nn + c] = ci[r];
            }
        }
        // FFT rows.
        for r in 0..nn {
            let mut rr: Vec<f64> = re[r * nn..(r + 1) * nn].to_vec();
            let mut ri: Vec<f64> = im[r * nn..(r + 1) * nn].to_vec();
            dsp::fft_inplace(&mut rr, &mut ri, false);
            re[r * nn..(r + 1) * nn].copy_from_slice(&rr);
            im[r * nn..(r + 1) * nn].copy_from_slice(&ri);
        }
        for r in 0..nn {
            for c in 0..nn {
                let idx = (r * nn + c) * 16;
                let got_re = f64::from_le_bytes(b[idx..idx + 8].try_into().unwrap());
                let got_im = f64::from_le_bytes(b[idx + 8..idx + 16].try_into().unwrap());
                let want_re = re[c * nn + r];
                let want_im = im[c * nn + r];
                assert!(
                    (got_re - want_re).abs() < 1e-9 && (got_im - want_im).abs() < 1e-9,
                    "B[{r}][{c}] = ({got_re},{got_im}) want ({want_re},{want_im})"
                );
            }
        }
    }

    #[test]
    fn optimized_layout_issues_far_fewer_calls() {
        let mk = |optimized| FftConfig {
            mem_per_proc: 64 << 10, // force small tiles
            ..FftConfig::new(256, 4, optimized)
        };
        let unopt = run(&mk(false));
        let opt = run(&mk(true));
        assert!(
            unopt.io_ops > 4 * opt.io_ops,
            "unopt {} calls vs opt {}",
            unopt.io_ops,
            opt.io_ops
        );
        assert!(
            opt.exec_time < unopt.exec_time,
            "opt {:?} vs unopt {:?}",
            opt.exec_time,
            unopt.exec_time
        );
    }

    #[test]
    fn optimized_two_nodes_beats_unoptimized_four_nodes() {
        // The paper's headline for FFT (Figure 5).
        let mut unopt4 = FftConfig::new(256, 8, false);
        unopt4.io_nodes = 4;
        unopt4.mem_per_proc = 64 << 10;
        let mut opt2 = FftConfig::new(256, 8, true);
        opt2.io_nodes = 2;
        opt2.mem_per_proc = 64 << 10;
        let u = run(&unopt4);
        let o = run(&opt2);
        assert!(
            o.exec_time < u.exec_time,
            "opt on 2 I/O nodes {:?} should beat unopt on 4 {:?}",
            o.exec_time,
            u.exec_time
        );
    }

    #[test]
    fn unoptimized_io_time_rises_with_procs() {
        // Figure 5: beyond a small processor count the unoptimized I/O
        // time increases.
        let t = |p: usize| {
            let mut c = FftConfig::new(256, p, false);
            c.mem_per_proc = 128 << 10;
            run(&c).io_time.as_secs_f64()
        };
        let t4 = t(4);
        let t32 = t(32);
        assert!(
            t32 > t4,
            "I/O time should rise with procs in the unoptimized code: {t4} -> {t32}"
        );
    }

    #[test]
    fn io_volume_matches_formula() {
        let cfg = FftConfig::new(128, 2, true);
        let res = run(&cfg);
        assert_eq!(res.io_bytes, cfg.total_io_bytes());
    }

    #[test]
    fn io_volume_is_independent_of_processor_count() {
        // The pipeline moves each array a fixed number of times; the
        // decomposition must not change the bytes, only the calls.
        let v: Vec<u64> = [1usize, 2, 8]
            .iter()
            .map(|&p| run(&FftConfig::new(128, p, false)).io_bytes)
            .collect();
        assert_eq!(v[0], v[1]);
        assert_eq!(v[1], v[2]);
    }

    #[test]
    fn optimized_call_count_matches_the_panel_formula() {
        // Each pass (step 1, transpose, step 3) does one read and one
        // write per panel; with memory covering the whole per-proc strip
        // there is one panel per proc per pass.
        let mut cfg = FftConfig::new(128, 4, true);
        cfg.mem_per_proc = 16 << 20; // whole strip fits
        let res = run(&cfg);
        let data_calls = res.summary.rows[1].count + res.summary.rows[3].count;
        assert_eq!(data_calls, 3 * 2 * 4);
    }
}
