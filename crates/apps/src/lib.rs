//! # iosim-apps — the paper's five I/O-intensive applications
//!
//! Simulated workloads reproducing each application's I/O pattern and
//! compute/IO balance, in unoptimized and optimized variants.

pub mod ast;
pub mod btio;
pub mod common;
pub mod dsp;
pub mod fft;
pub mod registry;
pub mod replay;
pub mod scf11;
pub mod scf30;

pub use common::{run_ranks, with_cache_mb, with_queue_depth, AppCtx, RunResult};
