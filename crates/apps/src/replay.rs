//! I/O trace replay: drive the simulated machine with a recorded
//! application trace instead of a built-in workload.
//!
//! The paper's methodology is trace-driven at heart — Pablo records what
//! the applications did, and the optimizations are judged by how they
//! transform that operation stream. This module closes the loop for
//! library users: record (or synthesize) a trace in a simple text format,
//! then replay it
//!
//! - **directly** — each rank issues its operations in order
//!   (seek + read/write), like the unoptimized applications; or
//! - **collectively** — writes and reads are batched into two-phase
//!   collective windows, showing what the optimization would buy that
//!   workload before touching the real code.
//!
//! # Trace format
//!
//! One operation per line: `<rank> <r|w> <offset> <bytes>`. Blank lines
//! and `#` comments are ignored.
//!
//! ```text
//! # rank op offset bytes
//! 0 w 0     65536
//! 1 w 65536 65536
//! 0 r 0     4096
//! ```

use std::fmt;

use iosim_core::two_phase::{read_collective, write_collective, Piece, Span};
use iosim_machine::{Interface, MachineConfig};
use iosim_pfs::CreateOptions;

use crate::common::{run_ranks, RunResult};

/// Operation kind in a trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A read.
    Read,
    /// A write.
    Write,
}

/// One traced operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceOp {
    /// Issuing rank.
    pub rank: usize,
    /// Read or write.
    pub kind: TraceKind,
    /// Absolute file offset.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
}

/// Trace parse error with line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse the text trace format.
///
/// ```
/// use iosim_apps::replay::{parse_trace, TraceKind};
/// let ops = parse_trace("# demo\n0 w 0 4096\n1 r 4096 512\n").unwrap();
/// assert_eq!(ops.len(), 2);
/// assert_eq!(ops[1].kind, TraceKind::Read);
/// assert!(parse_trace("0 q 0 1\n").is_err());
/// ```
pub fn parse_trace(text: &str) -> Result<Vec<TraceOp>, ParseError> {
    let mut ops = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let body = raw.split('#').next().unwrap_or("").trim();
        if body.is_empty() {
            continue;
        }
        let fields: Vec<&str> = body.split_whitespace().collect();
        if fields.len() != 4 {
            return Err(ParseError {
                line,
                message: format!("expected 4 fields, got {}", fields.len()),
            });
        }
        let rank: usize = fields[0].parse().map_err(|_| ParseError {
            line,
            message: format!("bad rank '{}'", fields[0]),
        })?;
        let kind = match fields[1] {
            "r" | "R" => TraceKind::Read,
            "w" | "W" => TraceKind::Write,
            other => {
                return Err(ParseError {
                    line,
                    message: format!("bad op '{other}' (expected r or w)"),
                })
            }
        };
        let offset: u64 = fields[2].parse().map_err(|_| ParseError {
            line,
            message: format!("bad offset '{}'", fields[2]),
        })?;
        let len: u64 = fields[3].parse().map_err(|_| ParseError {
            line,
            message: format!("bad length '{}'", fields[3]),
        })?;
        if len == 0 {
            return Err(ParseError {
                line,
                message: "zero-length operation".into(),
            });
        }
        ops.push(TraceOp {
            rank,
            kind,
            offset,
            len,
        });
    }
    Ok(ops)
}

/// Render operations back to the text format.
pub fn render_trace(ops: &[TraceOp]) -> String {
    let mut out = String::from("# rank op offset bytes\n");
    for op in ops {
        out.push_str(&format!(
            "{} {} {} {}\n",
            op.rank,
            match op.kind {
                TraceKind::Read => "r",
                TraceKind::Write => "w",
            },
            op.offset,
            op.len
        ));
    }
    out
}

/// Replay configuration.
#[derive(Clone, Debug)]
pub struct ReplayConfig {
    /// The machine to replay on.
    pub machine: MachineConfig,
    /// Client interface for the direct path.
    pub iface: Interface,
    /// Batch writes/reads into two-phase collective windows of this many
    /// operations per rank (`None` = direct replay).
    pub collective_batch: Option<usize>,
}

impl ReplayConfig {
    /// Direct replay on `machine` with the UNIX-style interface.
    pub fn direct(machine: MachineConfig) -> ReplayConfig {
        ReplayConfig {
            machine,
            iface: Interface::UnixStyle,
            collective_batch: None,
        }
    }

    /// Collective replay with windows of `batch` operations per rank.
    pub fn collective(machine: MachineConfig, batch: usize) -> ReplayConfig {
        assert!(batch > 0, "batch must be positive");
        ReplayConfig {
            machine,
            iface: Interface::Passion,
            collective_batch: Some(batch),
        }
    }
}

/// Number of ranks a trace needs.
pub fn ranks_of(ops: &[TraceOp]) -> usize {
    ops.iter().map(|o| o.rank + 1).max().unwrap_or(1)
}

/// File size a trace requires (max end offset).
pub fn extent_of(ops: &[TraceOp]) -> u64 {
    ops.iter().map(|o| o.offset + o.len).max().unwrap_or(0)
}

/// Replay `ops` under `cfg` and return the measurements.
///
/// # Panics
/// Panics if the trace needs more ranks than the machine has compute
/// nodes, or if a read precedes any write covering its range (the replay
/// preallocates the full extent, so reads never fail, but a trace that
/// reads unwritten data is usually a recording bug — it is allowed here
/// since only timing is modelled).
pub fn replay(ops: &[TraceOp], cfg: &ReplayConfig) -> RunResult {
    let n = ranks_of(ops);
    let extent = extent_of(ops);
    assert!(
        n <= cfg.machine.compute_nodes,
        "trace needs {n} ranks but the machine has {}",
        cfg.machine.compute_nodes
    );
    let mut per_rank: Vec<Vec<TraceOp>> = vec![Vec::new(); n];
    for op in ops {
        per_rank[op.rank].push(*op);
    }
    // All ranks must execute the same number of collective windows.
    let windows = cfg.collective_batch.map(|b| {
        per_rank
            .iter()
            .map(|v| v.len().div_ceil(b))
            .max()
            .unwrap_or(0)
    });
    let cfg2 = cfg.clone();
    run_ranks(cfg.machine.clone(), n.max(1), move |ctx| {
        let mine = per_rank.get(ctx.rank).cloned().unwrap_or_default();
        let cfg = cfg2.clone();
        Box::pin(async move {
            let fh = ctx
                .fs
                .open(
                    ctx.rank,
                    cfg.iface,
                    "replay.data",
                    Some(CreateOptions::default()),
                )
                .await
                .expect("open replay file");
            fh.preallocate(extent);
            match (cfg.collective_batch, windows) {
                (Some(batch), Some(windows)) => {
                    for w in 0..windows {
                        let chunk: &[TraceOp] = mine
                            .get(w * batch..)
                            .map_or(&[], |rest| &rest[..rest.len().min(batch)]);
                        let writes: Vec<Piece> = chunk
                            .iter()
                            .filter(|o| o.kind == TraceKind::Write)
                            .map(|o| Piece::synthetic(o.offset, o.len))
                            .collect();
                        let reads: Vec<Span> = chunk
                            .iter()
                            .filter(|o| o.kind == TraceKind::Read)
                            .map(|o| Span::new(o.offset, o.len))
                            .collect();
                        write_collective(&ctx.comm, &fh, writes)
                            .await
                            .expect("collective writes");
                        read_collective(&ctx.comm, &fh, reads)
                            .await
                            .expect("collective reads");
                    }
                }
                _ => {
                    for op in &mine {
                        fh.seek(op.offset).await;
                        match op.kind {
                            TraceKind::Read => fh.read_discard(op.len).await.expect("replay read"),
                            TraceKind::Write => {
                                fh.write_discard(op.len).await.expect("replay write")
                            }
                        }
                    }
                }
            }
            ctx.comm.barrier().await;
            fh.close().await;
        })
    })
}

/// Synthesize a strided checkpoint-style trace: `ranks` ranks each
/// writing `ops_per_rank` interleaved records of `record` bytes.
pub fn synthesize_strided(ranks: usize, ops_per_rank: u64, record: u64) -> Vec<TraceOp> {
    let mut ops = Vec::with_capacity(ranks * ops_per_rank as usize);
    for k in 0..ops_per_rank {
        for r in 0..ranks {
            ops.push(TraceOp {
                rank: r,
                kind: TraceKind::Write,
                offset: (k * ranks as u64 + r as u64) * record,
                len: record,
            });
        }
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use iosim_machine::presets;

    #[test]
    fn parse_roundtrips_through_render() {
        let ops = vec![
            TraceOp {
                rank: 0,
                kind: TraceKind::Write,
                offset: 0,
                len: 100,
            },
            TraceOp {
                rank: 3,
                kind: TraceKind::Read,
                offset: 4096,
                len: 512,
            },
        ];
        let text = render_trace(&ops);
        assert_eq!(parse_trace(&text).unwrap(), ops);
    }

    #[test]
    fn parse_ignores_comments_and_blank_lines() {
        let ops = parse_trace("# header\n\n0 w 0 10 # trailing\n\n1 r 10 5\n").unwrap();
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[1].kind, TraceKind::Read);
    }

    #[test]
    fn parse_reports_line_numbers() {
        let err = parse_trace("0 w 0 10\n0 x 0 10\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("bad op"));
        let err = parse_trace("0 w 0\n").unwrap_err();
        assert!(err.message.contains("4 fields"));
        let err = parse_trace("0 w 0 0\n").unwrap_err();
        assert!(err.message.contains("zero-length"));
    }

    #[test]
    fn extent_and_ranks_derive_from_ops() {
        let ops = synthesize_strided(4, 10, 256);
        assert_eq!(ranks_of(&ops), 4);
        assert_eq!(extent_of(&ops), 4 * 10 * 256);
    }

    #[test]
    fn direct_replay_issues_every_op() {
        let ops = synthesize_strided(4, 25, 512);
        let res = replay(&ops, &ReplayConfig::direct(presets::sp2()));
        assert_eq!(res.summary.rows[3].count, 100); // writes
        assert_eq!(res.summary.rows[2].count, 100); // seeks
        assert_eq!(res.io_bytes, 100 * 512);
    }

    #[test]
    fn collective_replay_is_faster_for_strided_writes() {
        let ops = synthesize_strided(4, 100, 512);
        let direct = replay(&ops, &ReplayConfig::direct(presets::sp2()));
        let coll = replay(&ops, &ReplayConfig::collective(presets::sp2(), 100));
        assert!(
            coll.exec_time.as_secs_f64() < direct.exec_time.as_secs_f64() / 2.0,
            "collective replay should win: {:?} vs {:?}",
            coll.exec_time,
            direct.exec_time
        );
        assert_eq!(coll.io_bytes, direct.io_bytes);
    }

    #[test]
    fn uneven_rank_op_counts_stay_collectively_aligned() {
        // Rank 0 has 7 ops, rank 1 has 2: windows must still align.
        let mut ops = Vec::new();
        for k in 0..7u64 {
            ops.push(TraceOp {
                rank: 0,
                kind: TraceKind::Write,
                offset: k * 100,
                len: 100,
            });
        }
        for k in 0..2u64 {
            ops.push(TraceOp {
                rank: 1,
                kind: TraceKind::Write,
                offset: 1000 + k * 100,
                len: 100,
            });
        }
        let res = replay(&ops, &ReplayConfig::collective(presets::sp2(), 3));
        assert_eq!(res.io_bytes, 900);
    }

    #[test]
    fn mixed_reads_and_writes_replay() {
        let text = "0 w 0 1000\n1 w 1000 1000\n0 r 1000 500\n1 r 0 500\n";
        let ops = parse_trace(text).unwrap();
        let res = replay(&ops, &ReplayConfig::direct(presets::paragon_small()));
        assert_eq!(res.summary.rows[1].bytes, 1000);
        assert_eq!(res.summary.rows[3].bytes, 2000);
        let coll = replay(&ops, &ReplayConfig::collective(presets::paragon_small(), 4));
        assert_eq!(
            coll.summary.rows[1].bytes + coll.summary.rows[3].bytes,
            3000
        );
    }

    #[test]
    #[should_panic(expected = "trace needs")]
    fn too_many_ranks_rejected() {
        let ops = synthesize_strided(100, 1, 10);
        let _ = replay(&ops, &ReplayConfig::direct(presets::sp2()));
    }
}
