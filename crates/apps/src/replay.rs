//! I/O trace replay: drive the simulated machine with a recorded
//! application trace instead of a built-in workload.
//!
//! This module is a thin compatibility wrapper over the
//! [`iosim_workload`] crate, which owns trace parsing and the replay
//! engine. The original `iosim replay` surface — the 4-column text
//! format, [`ReplayConfig`], and [`replay`] returning a [`RunResult`] —
//! keeps working identically; new code should use `iosim_workload`
//! directly for the extended op-stream and Darshan-like formats, the
//! list-I/O replay mode, per-op latency percentiles, and the open-loop
//! generator.
//!
//! # Trace format
//!
//! One operation per line: `<rank> <r|w> <offset> <bytes>`. Blank lines
//! and `#` comments are ignored; fields may be separated by spaces or
//! tabs and CRLF line endings are accepted.
//!
//! ```text
//! # rank op offset bytes
//! 0 w 0     65536
//! 1 w 65536 65536
//! 0 r 0     4096
//! ```

use iosim_machine::{Interface, MachineConfig};
use iosim_workload::engine::{ReplayMode, ReplaySpec, RunStats};
use iosim_workload::opstream::OpStream;

// The legacy types live in `iosim_workload` now; re-exported so
// `iosim_apps::replay::{TraceOp, ParseError, ...}` paths keep compiling.
pub use iosim_workload::opstream::{
    extent_of, parse_legacy as parse_trace, ranks_of, render_legacy as render_trace, ParseError,
    TraceKind, TraceOp,
};

use crate::common::RunResult;

/// Replay configuration.
#[derive(Clone, Debug)]
pub struct ReplayConfig {
    /// The machine to replay on.
    pub machine: MachineConfig,
    /// Client interface for the direct path.
    pub iface: Interface,
    /// Batch writes/reads into two-phase collective windows of this many
    /// operations per rank (`None` = direct replay).
    pub collective_batch: Option<usize>,
}

impl ReplayConfig {
    /// Direct replay on `machine` with the UNIX-style interface.
    pub fn direct(machine: MachineConfig) -> ReplayConfig {
        ReplayConfig {
            machine,
            iface: Interface::UnixStyle,
            collective_batch: None,
        }
    }

    /// Collective replay with windows of `batch` operations per rank.
    pub fn collective(machine: MachineConfig, batch: usize) -> ReplayConfig {
        assert!(batch > 0, "batch must be positive");
        ReplayConfig {
            machine,
            iface: Interface::Passion,
            collective_batch: Some(batch),
        }
    }
}

/// Replay `ops` under `cfg` and return the measurements.
///
/// # Panics
/// Panics if the trace needs more ranks than the machine has compute
/// nodes, or if a read precedes any write covering its range (the replay
/// preallocates the full extent, so reads never fail, but a trace that
/// reads unwritten data is usually a recording bug — it is allowed here
/// since only timing is modelled).
pub fn replay(ops: &[TraceOp], cfg: &ReplayConfig) -> RunResult {
    let stream = OpStream::from_legacy(ops);
    let spec = ReplaySpec {
        machine: cfg.machine.clone(),
        iface: cfg.iface,
        mode: match cfg.collective_batch {
            Some(batch) => ReplayMode::TwoPhase { window: batch },
            None => ReplayMode::Direct,
        },
    };
    RunResult::from(iosim_workload::engine::replay(&stream, &spec).stats)
}

/// The workload engine's measurements are field-for-field the
/// applications' [`RunResult`]; the wrapper converts so callers keep one
/// report type.
impl From<RunStats> for RunResult {
    fn from(s: RunStats) -> RunResult {
        RunResult {
            procs: s.procs,
            io_nodes: s.io_nodes,
            exec_time: s.exec_time,
            io_time: s.io_time,
            cum_io_time: s.cum_io_time,
            summary: s.summary,
            io_bytes: s.io_bytes,
            io_ops: s.io_ops,
            read_sizes: s.read_sizes,
            write_sizes: s.write_sizes,
            balance: s.balance,
            cache: s.cache,
            listio: s.listio,
            queue: s.queue,
            sim_events: s.sim_events,
            sched_fingerprint: s.sched_fingerprint,
            host_elapsed: s.host_elapsed,
        }
    }
}

/// Synthesize a strided checkpoint-style trace: `ranks` ranks each
/// writing `ops_per_rank` interleaved records of `record` bytes.
pub fn synthesize_strided(ranks: usize, ops_per_rank: u64, record: u64) -> Vec<TraceOp> {
    let mut ops = Vec::with_capacity(ranks * ops_per_rank as usize);
    for k in 0..ops_per_rank {
        for r in 0..ranks {
            ops.push(TraceOp {
                rank: r,
                kind: TraceKind::Write,
                offset: (k * ranks as u64 + r as u64) * record,
                len: record,
            });
        }
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use iosim_machine::presets;

    #[test]
    fn parse_roundtrips_through_render() {
        let ops = vec![
            TraceOp {
                rank: 0,
                kind: TraceKind::Write,
                offset: 0,
                len: 100,
            },
            TraceOp {
                rank: 3,
                kind: TraceKind::Read,
                offset: 4096,
                len: 512,
            },
        ];
        let text = render_trace(&ops);
        assert_eq!(parse_trace(&text).unwrap(), ops);
    }

    #[test]
    fn parse_ignores_comments_and_blank_lines() {
        let ops = parse_trace("# header\n\n0 w 0 10 # trailing\n\n1 r 10 5\n").unwrap();
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[1].kind, TraceKind::Read);
    }

    #[test]
    fn parse_tolerates_crlf_and_tab_separators() {
        let unix = parse_trace("0 w 0 10\n1 r 10 5\n").unwrap();
        let crlf = parse_trace("0 w 0 10\r\n1 r 10 5\r\n").unwrap();
        let tabs = parse_trace("0\tw\t0\t10\n1\tr\t10\t5\n").unwrap();
        assert_eq!(unix, crlf);
        assert_eq!(unix, tabs);
    }

    #[test]
    fn parse_error_is_std_error() {
        let err = parse_trace("0 q 0 1\n").unwrap_err();
        let e: &dyn std::error::Error = &err;
        assert!(e.to_string().contains("trace line 1"));
    }

    #[test]
    fn parse_reports_line_numbers() {
        let err = parse_trace("0 w 0 10\n0 x 0 10\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("bad op"));
        let err = parse_trace("0 w 0\n").unwrap_err();
        assert!(err.message.contains("4 fields"));
        let err = parse_trace("0 w 0 0\n").unwrap_err();
        assert!(err.message.contains("zero-length"));
    }

    #[test]
    fn extent_and_ranks_derive_from_ops() {
        let ops = synthesize_strided(4, 10, 256);
        assert_eq!(ranks_of(&ops), 4);
        assert_eq!(extent_of(&ops), 4 * 10 * 256);
    }

    #[test]
    fn direct_replay_issues_every_op() {
        let ops = synthesize_strided(4, 25, 512);
        let res = replay(&ops, &ReplayConfig::direct(presets::sp2()));
        assert_eq!(res.summary.rows[3].count, 100); // writes
        assert_eq!(res.summary.rows[2].count, 100); // seeks
        assert_eq!(res.io_bytes, 100 * 512);
    }

    #[test]
    fn collective_replay_is_faster_for_strided_writes() {
        let ops = synthesize_strided(4, 100, 512);
        let direct = replay(&ops, &ReplayConfig::direct(presets::sp2()));
        let coll = replay(&ops, &ReplayConfig::collective(presets::sp2(), 100));
        assert!(
            coll.exec_time.as_secs_f64() < direct.exec_time.as_secs_f64() / 2.0,
            "collective replay should win: {:?} vs {:?}",
            coll.exec_time,
            direct.exec_time
        );
        assert_eq!(coll.io_bytes, direct.io_bytes);
    }

    #[test]
    fn uneven_rank_op_counts_stay_collectively_aligned() {
        // Rank 0 has 7 ops, rank 1 has 2: windows must still align.
        let mut ops = Vec::new();
        for k in 0..7u64 {
            ops.push(TraceOp {
                rank: 0,
                kind: TraceKind::Write,
                offset: k * 100,
                len: 100,
            });
        }
        for k in 0..2u64 {
            ops.push(TraceOp {
                rank: 1,
                kind: TraceKind::Write,
                offset: 1000 + k * 100,
                len: 100,
            });
        }
        let res = replay(&ops, &ReplayConfig::collective(presets::sp2(), 3));
        assert_eq!(res.io_bytes, 900);
    }

    #[test]
    fn mixed_reads_and_writes_replay() {
        let text = "0 w 0 1000\n1 w 1000 1000\n0 r 1000 500\n1 r 0 500\n";
        let ops = parse_trace(text).unwrap();
        let res = replay(&ops, &ReplayConfig::direct(presets::paragon_small()));
        assert_eq!(res.summary.rows[1].bytes, 1000);
        assert_eq!(res.summary.rows[3].bytes, 2000);
        let coll = replay(&ops, &ReplayConfig::collective(presets::paragon_small(), 4));
        assert_eq!(
            coll.summary.rows[1].bytes + coll.summary.rows[3].bytes,
            3000
        );
    }

    #[test]
    #[should_panic(expected = "trace needs")]
    fn too_many_ranks_rejected() {
        let ops = synthesize_strided(100, 1, 10);
        let _ = replay(&ops, &ReplayConfig::direct(presets::sp2()));
    }
}
