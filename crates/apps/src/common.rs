//! Shared run harness: spawn one task per compute rank, run the
//! simulation, and collect the measurements every experiment reports.

use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;

use iosim_machine::{Machine, MachineConfig};
use iosim_msg::{Comm, World};
use iosim_pfs::FileSystem;
use iosim_simkit::executor::{join_all, Sim};
use iosim_simkit::time::SimDuration;
use iosim_trace::{CacheSnapshot, IoSummary, ListIoSnapshot, QueueSnapshot, TraceCollector};

/// Everything one simulated process needs.
pub struct AppCtx {
    /// This process's rank.
    pub rank: usize,
    /// Message-passing endpoint.
    pub comm: Comm,
    /// The parallel file system.
    pub fs: Rc<FileSystem>,
    /// The machine (for compute delays and configuration).
    pub machine: Rc<Machine>,
}

/// A boxed per-rank program.
pub type RankFuture = Pin<Box<dyn Future<Output = ()>>>;

/// Measurements of one application run, in the units the paper reports.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Compute nodes used.
    pub procs: usize,
    /// I/O nodes of the machine.
    pub io_nodes: usize,
    /// Wall-clock execution time of the whole run.
    pub exec_time: SimDuration,
    /// Wall-clock I/O time: the slowest rank's cumulative I/O time.
    pub io_time: SimDuration,
    /// Cumulative I/O time summed over ranks (paper table convention).
    pub cum_io_time: SimDuration,
    /// Per-op-kind summary (Tables 2–3 layout).
    pub summary: IoSummary,
    /// Total bytes moved through the file system.
    pub io_bytes: u64,
    /// Total file-system operations.
    pub io_ops: u64,
    /// Request-size distribution of reads.
    pub read_sizes: iosim_trace::SizeHistogram,
    /// Request-size distribution of writes.
    pub write_sizes: iosim_trace::SizeHistogram,
    /// I/O load balance across ranks.
    pub balance: iosim_trace::BalanceStats,
    /// Buffer-cache behaviour (all zero when the machine runs uncached).
    pub cache: CacheSnapshot,
    /// Vectored list-I/O request shapes (all zero when no caller used
    /// the `readv`/`writev` path).
    pub listio: ListIoSnapshot,
    /// I/O-node command-queue behaviour (all zero when the machine runs
    /// with the default queue depth of 1, i.e. the legacy FIFO path).
    pub queue: QueueSnapshot,
    /// Scheduler events (task polls) executed by the simulation engine.
    pub sim_events: u64,
    /// Order-sensitive hash of the task schedule
    /// ([`Sim::schedule_fingerprint`]); the regression oracle for
    /// executor changes.
    pub sched_fingerprint: u64,
    /// Host wall-clock time the simulation took to run (not virtual
    /// time; machine-dependent, reported for `events_per_sec`).
    pub host_elapsed: std::time::Duration,
}

impl RunResult {
    /// Aggregate I/O bandwidth: bytes moved over wall-clock I/O time,
    /// in MB/s (the metric of the paper's Figure 7).
    pub fn bandwidth_mb_s(&self) -> f64 {
        let t = self.io_time.as_secs_f64();
        if t > 0.0 {
            self.io_bytes as f64 / 1e6 / t
        } else {
            0.0
        }
    }

    /// Cumulative execution time (wall × procs), the denominator of the
    /// "% of exec time" column.
    pub fn cum_exec_time(&self) -> SimDuration {
        SimDuration(self.exec_time.as_nanos() * self.procs as u64)
    }

    /// Share of execution spent in I/O (wall-clock basis), in `[0, 1]`.
    pub fn io_fraction(&self) -> f64 {
        let e = self.exec_time.as_secs_f64();
        if e > 0.0 {
            (self.io_time.as_secs_f64() / e).min(1.0)
        } else {
            0.0
        }
    }

    /// Scheduler throughput on the host: task polls per second of host
    /// wall-clock time. Zero if the run was too fast to time.
    pub fn events_per_sec(&self) -> f64 {
        let s = self.host_elapsed.as_secs_f64();
        if s > 0.0 {
            self.sim_events as f64 / s
        } else {
            0.0
        }
    }
}

/// Apply an application-level cache knob to a machine config:
/// `cache_mb` megabytes of LRU buffer cache per I/O node, `0` keeping
/// the machine uncached (the presets' default).
pub fn with_cache_mb(cfg: MachineConfig, cache_mb: u64) -> MachineConfig {
    if cache_mb == 0 {
        cfg
    } else {
        cfg.with_lru_cache(cache_mb << 20)
    }
}

/// Apply an application-level queue-depth knob to a machine config:
/// NCQ-style command queuing with `depth` outstanding commands per I/O
/// node. `0` and `1` both keep the presets' depth-1 legacy FIFO path.
pub fn with_queue_depth(cfg: MachineConfig, depth: usize) -> MachineConfig {
    if depth <= 1 {
        cfg
    } else {
        cfg.with_io_queue_depth(depth)
    }
}

/// Build a machine + file system + world, run `program(ctx)` on every
/// rank, and collect the run's measurements.
///
/// # Panics
/// Panics if any rank's task fails to complete (deadlock) or `procs`
/// exceeds the machine's compute nodes.
pub fn run_ranks(
    cfg: MachineConfig,
    procs: usize,
    program: impl Fn(AppCtx) -> RankFuture,
) -> RunResult {
    let mut sim = Sim::new();
    let trace = TraceCollector::new();
    let machine = Machine::new(sim.handle(), cfg);
    let io_nodes = machine.io_nodes();
    let fs = FileSystem::new(Rc::clone(&machine), trace.clone());
    let world = World::new(Rc::clone(&machine), procs);
    let h = sim.handle();
    let futs: Vec<RankFuture> = world
        .comms()
        .into_iter()
        .enumerate()
        .map(|(rank, comm)| {
            program(AppCtx {
                rank,
                comm,
                fs: Rc::clone(&fs),
                machine: Rc::clone(&machine),
            })
        })
        .collect();
    let n = futs.len();
    let jh = sim.spawn(async move {
        let done = join_all(&h, futs).await;
        done.len()
    });
    let host_t0 = std::time::Instant::now();
    let end = sim.run();
    let host_elapsed = host_t0.elapsed();
    assert_eq!(
        jh.try_take().expect("application deadlocked"),
        n,
        "all ranks must finish"
    );
    RunResult {
        procs,
        io_nodes,
        exec_time: end - iosim_simkit::time::SimTime::ZERO,
        io_time: trace.max_rank_io_time(),
        cum_io_time: trace.cumulative_io_time(),
        summary: trace.summary(),
        io_bytes: trace.total_bytes(),
        io_ops: trace.total_ops(),
        read_sizes: trace.read_sizes(),
        write_sizes: trace.write_sizes(),
        balance: trace.balance(),
        cache: trace.cache().snapshot(),
        listio: trace.listio().snapshot(),
        queue: trace.queue().snapshot(),
        sim_events: sim.events_processed(),
        sched_fingerprint: sim.schedule_fingerprint(),
        host_elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iosim_machine::presets;
    use iosim_machine::Interface;
    use iosim_pfs::CreateOptions;

    #[test]
    fn run_ranks_collects_per_rank_io() {
        let res = run_ranks(presets::paragon_small(), 4, |ctx| {
            Box::pin(async move {
                let fh = ctx
                    .fs
                    .open(
                        ctx.rank,
                        Interface::Passion,
                        &format!("f{}", ctx.rank),
                        Some(CreateOptions::default()),
                    )
                    .await
                    .unwrap();
                fh.write_discard_at(0, 1 << 20).await.unwrap();
                ctx.comm.barrier().await;
            })
        });
        assert_eq!(res.procs, 4);
        assert_eq!(res.io_bytes, 4 << 20);
        assert_eq!(res.summary.rows[3].count, 4); // 4 writes
        assert!(res.exec_time > SimDuration::ZERO);
        assert!(res.io_time <= res.exec_time);
        assert!(res.cum_io_time >= res.io_time);
        assert!(res.bandwidth_mb_s() > 0.0);
        assert!(res.io_fraction() > 0.0 && res.io_fraction() <= 1.0);
        assert_eq!(res.write_sizes.total_count(), 4);
        assert_eq!(res.write_sizes.count_for(1 << 20), 4);
        assert_eq!(res.read_sizes.total_count(), 0);
    }

    #[test]
    fn exec_time_is_slowest_rank() {
        let res = run_ranks(presets::paragon_small(), 3, |ctx| {
            Box::pin(async move {
                let ms = 100 * (ctx.rank as u64 + 1);
                ctx.machine
                    .handle()
                    .sleep(SimDuration::from_millis(ms))
                    .await;
            })
        });
        assert_eq!(res.exec_time, SimDuration::from_millis(300));
    }
}
