//! Shared run harness: spawn one task per compute rank, run the
//! simulation, and collect the measurements every experiment reports.

use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;

use iosim_machine::shard::{plan_with_max_shards, ShardSpec};
use iosim_machine::{Machine, MachineConfig};
use iosim_msg::{Comm, ShardLink, ShardSignal, World};
use iosim_pfs::FileSystem;
use iosim_simkit::executor::{join_all, Sim};
use iosim_simkit::shard::{run_sharded, ShardCtx, ShardRuntime};
use iosim_simkit::time::SimDuration;
use iosim_trace::{
    BalanceStats, CacheSnapshot, IoSummary, ListIoSnapshot, QueueSnapshot, TraceCollector,
};

/// Everything one simulated process needs.
pub struct AppCtx {
    /// This process's rank.
    pub rank: usize,
    /// Message-passing endpoint.
    pub comm: Comm,
    /// The parallel file system.
    pub fs: Rc<FileSystem>,
    /// The machine (for compute delays and configuration).
    pub machine: Rc<Machine>,
}

/// A boxed per-rank program.
pub type RankFuture = Pin<Box<dyn Future<Output = ()>>>;

/// Measurements of one application run, in the units the paper reports.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Compute nodes used.
    pub procs: usize,
    /// I/O nodes of the machine.
    pub io_nodes: usize,
    /// Wall-clock execution time of the whole run.
    pub exec_time: SimDuration,
    /// Wall-clock I/O time: the slowest rank's cumulative I/O time.
    pub io_time: SimDuration,
    /// Cumulative I/O time summed over ranks (paper table convention).
    pub cum_io_time: SimDuration,
    /// Per-op-kind summary (Tables 2–3 layout).
    pub summary: IoSummary,
    /// Total bytes moved through the file system.
    pub io_bytes: u64,
    /// Total file-system operations.
    pub io_ops: u64,
    /// Request-size distribution of reads.
    pub read_sizes: iosim_trace::SizeHistogram,
    /// Request-size distribution of writes.
    pub write_sizes: iosim_trace::SizeHistogram,
    /// I/O load balance across ranks.
    pub balance: iosim_trace::BalanceStats,
    /// Buffer-cache behaviour (all zero when the machine runs uncached).
    pub cache: CacheSnapshot,
    /// Vectored list-I/O request shapes (all zero when no caller used
    /// the `readv`/`writev` path).
    pub listio: ListIoSnapshot,
    /// I/O-node command-queue behaviour (all zero when the machine runs
    /// with the default queue depth of 1, i.e. the legacy FIFO path).
    pub queue: QueueSnapshot,
    /// Scheduler events (task polls) executed by the simulation engine.
    pub sim_events: u64,
    /// Order-sensitive hash of the task schedule
    /// ([`Sim::schedule_fingerprint`]); the regression oracle for
    /// executor changes.
    pub sched_fingerprint: u64,
    /// Host wall-clock time the simulation took to run (not virtual
    /// time; machine-dependent, reported for `events_per_sec`).
    pub host_elapsed: std::time::Duration,
}

impl RunResult {
    /// Aggregate I/O bandwidth: bytes moved over wall-clock I/O time,
    /// in MB/s (the metric of the paper's Figure 7).
    pub fn bandwidth_mb_s(&self) -> f64 {
        let t = self.io_time.as_secs_f64();
        if t > 0.0 {
            self.io_bytes as f64 / 1e6 / t
        } else {
            0.0
        }
    }

    /// Cumulative execution time (wall × procs), the denominator of the
    /// "% of exec time" column.
    pub fn cum_exec_time(&self) -> SimDuration {
        SimDuration(self.exec_time.as_nanos() * self.procs as u64)
    }

    /// Share of execution spent in I/O (wall-clock basis), in `[0, 1]`.
    pub fn io_fraction(&self) -> f64 {
        let e = self.exec_time.as_secs_f64();
        if e > 0.0 {
            (self.io_time.as_secs_f64() / e).min(1.0)
        } else {
            0.0
        }
    }

    /// Scheduler throughput on the host: task polls per second of host
    /// wall-clock time. Zero if the run was too fast to time.
    pub fn events_per_sec(&self) -> f64 {
        let s = self.host_elapsed.as_secs_f64();
        if s > 0.0 {
            self.sim_events as f64 / s
        } else {
            0.0
        }
    }
}

/// Apply an application-level cache knob to a machine config:
/// `cache_mb` megabytes of LRU buffer cache per I/O node, `0` keeping
/// the machine uncached (the presets' default).
pub fn with_cache_mb(cfg: MachineConfig, cache_mb: u64) -> MachineConfig {
    if cache_mb == 0 {
        cfg
    } else {
        cfg.with_lru_cache(cache_mb << 20)
    }
}

/// Apply an application-level queue-depth knob to a machine config:
/// NCQ-style command queuing with `depth` outstanding commands per I/O
/// node. `0` and `1` both keep the presets' depth-1 legacy FIFO path.
pub fn with_queue_depth(cfg: MachineConfig, depth: usize) -> MachineConfig {
    if depth <= 1 {
        cfg
    } else {
        cfg.with_io_queue_depth(depth)
    }
}

/// Build a machine + file system + world, run `program(ctx)` on every
/// rank, and collect the run's measurements.
///
/// # Panics
/// Panics if any rank's task fails to complete (deadlock) or `procs`
/// exceeds the machine's compute nodes.
pub fn run_ranks(
    cfg: MachineConfig,
    procs: usize,
    program: impl Fn(AppCtx) -> RankFuture,
) -> RunResult {
    let mut sim = Sim::new();
    let trace = TraceCollector::new();
    let machine = Machine::new(sim.handle(), cfg);
    let io_nodes = machine.io_nodes();
    let fs = FileSystem::new(Rc::clone(&machine), trace.clone());
    let world = World::new(Rc::clone(&machine), procs);
    let h = sim.handle();
    let futs: Vec<RankFuture> = world
        .comms()
        .into_iter()
        .enumerate()
        .map(|(rank, comm)| {
            program(AppCtx {
                rank,
                comm,
                fs: Rc::clone(&fs),
                machine: Rc::clone(&machine),
            })
        })
        .collect();
    let n = futs.len();
    let jh = sim.spawn(async move {
        let done = join_all(&h, futs).await;
        done.len()
    });
    let host_t0 = std::time::Instant::now();
    let end = sim.run();
    let host_elapsed = host_t0.elapsed();
    assert_eq!(
        jh.try_take().expect("application deadlocked"),
        n,
        "all ranks must finish"
    );
    RunResult {
        procs,
        io_nodes,
        exec_time: end - iosim_simkit::time::SimTime::ZERO,
        io_time: trace.max_rank_io_time(),
        cum_io_time: trace.cumulative_io_time(),
        summary: trace.summary(),
        io_bytes: trace.total_bytes(),
        io_ops: trace.total_ops(),
        read_sizes: trace.read_sizes(),
        write_sizes: trace.write_sizes(),
        balance: trace.balance(),
        cache: trace.cache().snapshot(),
        listio: trace.listio().snapshot(),
        queue: trace.queue().snapshot(),
        sim_events: sim.events_processed(),
        sched_fingerprint: sim.schedule_fingerprint(),
        host_elapsed,
    }
}

/// A per-rank program factory scoped to one shard; the closure lives on
/// the shard's worker thread, so it may share `Rc` state with the
/// [`ShardFinish`] extractor created alongside it.
pub type ShardProgram = Box<dyn Fn(AppCtx) -> RankFuture>;

/// Extracts a shard's application-specific result after the run.
pub type ShardFinish<X> = Box<dyn FnOnce() -> X>;

/// Lower bound on the engine lookahead used by sharded app runs (see
/// [`iosim_machine::shard::LOOKAHEAD_FLOOR`] for the rationale).
pub const SHARD_LOOKAHEAD_FLOOR: SimDuration = iosim_machine::shard::LOOKAHEAD_FLOOR;

/// Everything a sharded run collects per shard before merging.
struct ShardOutput<X> {
    per_rank_io: Vec<SimDuration>,
    cum_io_time: SimDuration,
    summary: IoSummary,
    io_bytes: u64,
    io_ops: u64,
    read_sizes: iosim_trace::SizeHistogram,
    write_sizes: iosim_trace::SizeHistogram,
    cache: CacheSnapshot,
    listio: ListIoSnapshot,
    queue: QueueSnapshot,
    extra: X,
}

/// Sharded variant of [`run_ranks`]: partition the machine along its
/// topology ([`iosim_machine::shard::plan`]), simulate each shard's rank
/// group on its own executor (run by up to `workers` host threads), and
/// merge the shards' measurements into one [`RunResult`].
///
/// `make` is called once per shard, on the shard's worker thread, and
/// returns the per-rank program plus an extractor for an
/// application-specific per-shard result (returned in shard order).
/// Programs receive **global** ranks (`ShardSpec::rank_base` + local
/// index) on a **group-local** world of the shard's ranks; global
/// barriers rendezvous across shards through the world's
/// [`iosim_msg::ShardLink`].
///
/// The result is bit-identical for every `workers` value — shard
/// decomposition is fixed by the machine, workers only execute it — but
/// differs from [`run_ranks`]'s monolithic schedule: each shard has its
/// own event order and fingerprint ([`iosim_simkit::executor::combine_fingerprints`]
/// folds them in shard order). Degenerate machines (one I/O node, one
/// rank, zero-latency network) fall back to [`run_ranks`] exactly.
pub fn run_ranks_sharded<X: Send + 'static>(
    cfg: MachineConfig,
    procs: usize,
    workers: usize,
    make: impl Fn(&ShardSpec) -> (ShardProgram, ShardFinish<X>) + Send + Sync,
) -> (RunResult, Vec<X>) {
    let host_t0 = std::time::Instant::now();
    let workers = workers.max(1);
    let plan = plan_with_max_shards(&cfg, procs, usize::MAX);
    if plan.is_degenerate() {
        let (program, finish) = make(&plan.shards[0]);
        let mut res = run_ranks(cfg, procs, program);
        res.host_elapsed = host_t0.elapsed();
        return (res, vec![finish()]);
    }
    let lookahead = plan.lookahead.max(SHARD_LOOKAHEAD_FLOOR);
    let io_nodes_total = cfg.io_nodes;
    let make = &make;
    let cfg = &cfg;
    let builders: Vec<_> = plan
        .shards
        .iter()
        .cloned()
        .map(|spec| {
            move |ctx: ShardCtx<ShardSignal>| -> ShardRuntime<ShardSignal, ShardOutput<X>> {
                let sim = Sim::new();
                let trace = TraceCollector::new();
                // Each shard simulates its slice of the machine: its rank
                // group and its I/O nodes, on the parent mesh (so global
                // ranks keep their real coordinates for hop counts).
                let sub_cfg = cfg
                    .clone()
                    .with_compute_nodes(spec.ranks.max(1))
                    .with_io_nodes(spec.io_nodes.max(1));
                let machine = Machine::new(sim.handle(), sub_cfg);
                let fs = FileSystem::new(Rc::clone(&machine), trace.clone());
                let world = World::new(Rc::clone(&machine), spec.ranks);
                let link = ShardLink::new(
                    sim.handle(),
                    ctx.index,
                    ctx.shards,
                    ctx.lookahead,
                    ctx.outbox,
                );
                world.set_shard_link(link.clone());
                let (program, finish) = make(&spec);
                let h = sim.handle();
                let futs: Vec<RankFuture> = world
                    .comms()
                    .into_iter()
                    .enumerate()
                    .map(|(local, comm)| {
                        program(AppCtx {
                            rank: spec.rank_base + local,
                            comm,
                            fs: Rc::clone(&fs),
                            machine: Rc::clone(&machine),
                        })
                    })
                    .collect();
                let n = futs.len();
                let jh = sim.spawn(async move {
                    let done = join_all(&h, futs).await;
                    done.len()
                });
                ShardRuntime {
                    sim,
                    deliver: Box::new(move |sig| link.deliver(sig)),
                    finish: Box::new(move || {
                        assert_eq!(
                            jh.try_take().expect("application deadlocked"),
                            n,
                            "all ranks of shard {} must finish",
                            spec.index
                        );
                        // The collector indexes by global rank; keep this
                        // shard's slice for the cross-shard balance stats.
                        let mut per_rank = trace.per_rank_io_times();
                        per_rank.resize(spec.rank_base + spec.ranks, SimDuration::ZERO);
                        let per_rank_io = per_rank[spec.rank_base..].to_vec();
                        ShardOutput {
                            per_rank_io,
                            cum_io_time: trace.cumulative_io_time(),
                            summary: trace.summary(),
                            io_bytes: trace.total_bytes(),
                            io_ops: trace.total_ops(),
                            read_sizes: trace.read_sizes(),
                            write_sizes: trace.write_sizes(),
                            cache: trace.cache().snapshot(),
                            listio: trace.listio().snapshot(),
                            queue: trace.queue().snapshot(),
                            extra: finish(),
                        }
                    }),
                }
            }
        })
        .collect();
    let report = run_sharded(lookahead, workers, builders);

    let mut outputs = report.results;
    let mut per_rank: Vec<SimDuration> = Vec::with_capacity(procs);
    let mut summary: Option<IoSummary> = None;
    let mut cum_io_time = SimDuration::ZERO;
    let mut io_bytes = 0u64;
    let mut io_ops = 0u64;
    let mut read_sizes = iosim_trace::SizeHistogram::new();
    let mut write_sizes = iosim_trace::SizeHistogram::new();
    let mut cache = CacheSnapshot::default();
    let mut listio = ListIoSnapshot::default();
    let mut queue = QueueSnapshot::default();
    let mut extras = Vec::with_capacity(outputs.len());
    for out in outputs.drain(..) {
        per_rank.extend_from_slice(&out.per_rank_io);
        match &mut summary {
            Some(s) => s.merge(&out.summary),
            None => summary = Some(out.summary),
        }
        cum_io_time += out.cum_io_time;
        io_bytes += out.io_bytes;
        io_ops += out.io_ops;
        read_sizes.merge(&out.read_sizes);
        write_sizes.merge(&out.write_sizes);
        cache.merge(&out.cache);
        listio.merge(&out.listio);
        queue.merge(&out.queue);
        extras.push(out.extra);
    }
    let io_time = per_rank
        .iter()
        .copied()
        .fold(SimDuration::ZERO, SimDuration::max);
    let result = RunResult {
        procs,
        io_nodes: io_nodes_total,
        exec_time: report.end_time - iosim_simkit::time::SimTime::ZERO,
        io_time,
        cum_io_time,
        summary: summary.expect("at least one shard"),
        io_bytes,
        io_ops,
        read_sizes,
        write_sizes,
        balance: BalanceStats::from_times(&per_rank),
        cache,
        listio,
        queue,
        sim_events: report.events,
        sched_fingerprint: report.fingerprint,
        host_elapsed: host_t0.elapsed(),
    };
    (result, extras)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iosim_machine::presets;
    use iosim_machine::Interface;
    use iosim_pfs::CreateOptions;

    #[test]
    fn run_ranks_collects_per_rank_io() {
        let res = run_ranks(presets::paragon_small(), 4, |ctx| {
            Box::pin(async move {
                let fh = ctx
                    .fs
                    .open(
                        ctx.rank,
                        Interface::Passion,
                        &format!("f{}", ctx.rank),
                        Some(CreateOptions::default()),
                    )
                    .await
                    .unwrap();
                fh.write_discard_at(0, 1 << 20).await.unwrap();
                ctx.comm.barrier().await;
            })
        });
        assert_eq!(res.procs, 4);
        assert_eq!(res.io_bytes, 4 << 20);
        assert_eq!(res.summary.rows[3].count, 4); // 4 writes
        assert!(res.exec_time > SimDuration::ZERO);
        assert!(res.io_time <= res.exec_time);
        assert!(res.cum_io_time >= res.io_time);
        assert!(res.bandwidth_mb_s() > 0.0);
        assert!(res.io_fraction() > 0.0 && res.io_fraction() <= 1.0);
        assert_eq!(res.write_sizes.total_count(), 4);
        assert_eq!(res.write_sizes.count_for(1 << 20), 4);
        assert_eq!(res.read_sizes.total_count(), 0);
    }

    fn write_and_sync(ctx: AppCtx) -> RankFuture {
        Box::pin(async move {
            let fh = ctx
                .fs
                .open(
                    ctx.rank,
                    Interface::Passion,
                    &format!("f{}", ctx.rank),
                    Some(CreateOptions::default()),
                )
                .await
                .unwrap();
            fh.write_discard_at(0, 1 << 20).await.unwrap();
            ctx.comm.barrier().await;
        })
    }

    #[test]
    fn sharded_run_merges_per_shard_measurements() {
        // paragon_small has 2 I/O nodes → 2 shards of 2 ranks each.
        let make = |_spec: &iosim_machine::ShardSpec| -> (ShardProgram, ShardFinish<u64>) {
            let finished = Rc::new(std::cell::Cell::new(0u64));
            let f2 = Rc::clone(&finished);
            (
                Box::new(move |ctx: AppCtx| -> RankFuture {
                    let f = Rc::clone(&f2);
                    Box::pin(async move {
                        write_and_sync(ctx).await;
                        f.set(f.get() + 1);
                    })
                }),
                Box::new(move || finished.get()),
            )
        };
        let (res, extras) = run_ranks_sharded(presets::paragon_small(), 4, 2, make);
        assert_eq!(res.procs, 4);
        assert_eq!(res.io_bytes, 4 << 20);
        assert_eq!(res.summary.rows[3].count, 4); // 4 writes across shards
        assert_eq!(res.write_sizes.total_count(), 4);
        assert_eq!(res.balance.ranks, 4);
        assert!(res.exec_time > SimDuration::ZERO);
        assert!(res.io_time <= res.exec_time);
        assert_eq!(extras, vec![2, 2]); // 2 ranks finished per shard
    }

    #[test]
    fn sharded_worker_count_is_invisible() {
        let run = |workers: usize| {
            run_ranks_sharded(presets::paragon_small(), 6, workers, |_s| {
                (
                    Box::new(write_and_sync) as ShardProgram,
                    Box::new(|| ()) as ShardFinish<()>,
                )
            })
            .0
        };
        let a = run(1);
        let b = run(3);
        assert_eq!(a.sched_fingerprint, b.sched_fingerprint);
        assert_eq!(a.exec_time, b.exec_time);
        assert_eq!(a.sim_events, b.sim_events);
        assert_eq!(a.io_bytes, b.io_bytes);
    }

    #[test]
    fn degenerate_machine_falls_back_to_monolithic() {
        // One I/O node → single shard → the sharded entry point must
        // reproduce the monolithic schedule bit for bit.
        let cfg = presets::paragon_small().with_io_nodes(1);
        let mono = run_ranks(cfg.clone(), 3, write_and_sync);
        let (shard, extras) = run_ranks_sharded(cfg, 3, 4, |_s| {
            (
                Box::new(write_and_sync) as ShardProgram,
                Box::new(|| ()) as ShardFinish<()>,
            )
        });
        assert_eq!(extras.len(), 1);
        assert_eq!(mono.sched_fingerprint, shard.sched_fingerprint);
        assert_eq!(mono.exec_time, shard.exec_time);
        assert_eq!(mono.sim_events, shard.sim_events);
    }

    #[test]
    fn exec_time_is_slowest_rank() {
        let res = run_ranks(presets::paragon_small(), 3, |ctx| {
            Box::pin(async move {
                let ms = 100 * (ctx.rank as u64 + 1);
                ctx.machine
                    .handle()
                    .sleep(SimDuration::from_millis(ms))
                    .await;
            })
        });
        assert_eq!(res.exec_time, SimDuration::from_millis(300));
    }
}
