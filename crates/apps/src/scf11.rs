//! SCF 1.1 — disk-based Hartree-Fock self-consistent field (paper §4.2).
//!
//! I/O pattern (from the paper and Tables 2–3):
//!
//! - **Write phase** (first SCF iteration): each process evaluates its
//!   share of the ~N⁴ two-electron integrals and writes them to a
//!   *private* file in packed ~62 KB chunks.
//! - **Read phase**: ~15 subsequent iterations; in each, every process
//!   re-reads its private file in its entirety in large chunks.
//!
//! Three versions are modelled, matching the paper's incremental
//! evaluation:
//!
//! 1. [`Scf11Version::Original`] — Fortran I/O calls, sequential access;
//! 2. [`Scf11Version::Passion`] — the PASSION interface: cheaper per-call
//!    software path, with an explicit (cheap) seek per data call, which is
//!    why Table 3 shows ~604 k seeks against Table 2's ~1 k;
//! 3. [`Scf11Version::PassionPrefetch`] — PASSION prefetch calls:
//!    double-buffered read-ahead; following the paper, wait and copy time
//!    count as I/O time for this version.
//!
//! Calibration: integral volume ≈ `0.379 · N⁴` bytes (pins the 2.5 GB
//! LARGE write volume), total compute ≈ `162,494 · N⁴` FLOPs (pins the
//! 54%-I/O split of Table 2 on the 20 MFLOPS Paragon node).

use std::cell::RefCell;
use std::rc::Rc;

use iosim_core::prefetch::Prefetcher;
use iosim_machine::{presets, Interface};
use iosim_pfs::{CreateOptions, IoRequest};
use iosim_simkit::time::SimDuration;

use crate::common::{
    run_ranks, run_ranks_sharded, AppCtx, RankFuture, RunResult, ShardFinish, ShardProgram,
};

/// The paper's three representative inputs (number of basis functions N).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScfInput {
    /// N = 108.
    Small,
    /// N = 140.
    Medium,
    /// N = 285.
    Large,
    /// Custom basis-set size.
    Custom(u64),
}

impl ScfInput {
    /// Number of basis functions.
    pub fn basis(self) -> u64 {
        match self {
            ScfInput::Small => 108,
            ScfInput::Medium => 140,
            ScfInput::Large => 285,
            ScfInput::Custom(n) => n,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ScfInput::Small => "SMALL",
            ScfInput::Medium => "MEDIUM",
            ScfInput::Large => "LARGE",
            ScfInput::Custom(_) => "CUSTOM",
        }
    }
}

/// Stored-integral volume in bytes for basis size `n`: `0.379 · n⁴`
/// (2.5 GB at N = 285, matching Table 2's write volume).
pub fn integral_volume(n: u64) -> u64 {
    (0.379 * (n as f64).powi(4)) as u64
}

/// Total compute in FLOPs for basis size `n` (whole run, all processes):
/// `162.5 · n⁴` pins Table 2's split — 53,600 cumulative compute seconds
/// for LARGE on 20 MFLOPS nodes (116,685 s exec × (1 − 54.06% I/O)).
pub fn total_flops(n: u64) -> f64 {
    162.5 * (n as f64).powi(4)
}

/// Which code version to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scf11Version {
    /// Original code with Fortran I/O ("O" in the Figure 1 tuples).
    Original,
    /// PASSION I/O calls ("P").
    Passion,
    /// PASSION prefetch calls ("F").
    PassionPrefetch,
}

impl Scf11Version {
    /// The tuple letter used in Figure 1.
    pub fn letter(self) -> char {
        match self {
            Scf11Version::Original => 'O',
            Scf11Version::Passion => 'P',
            Scf11Version::PassionPrefetch => 'F',
        }
    }
}

/// Configuration tuple `(V, P, M, Su, Sf)` of Figure 1, plus knobs.
#[derive(Clone, Debug)]
pub struct Scf11Config {
    /// Input size.
    pub input: ScfInput,
    /// Code version (V).
    pub version: Scf11Version,
    /// Number of processors (P).
    pub procs: usize,
    /// Per-process I/O buffer memory in KB (M).
    pub mem_kb: u64,
    /// Stripe unit in KB (Su).
    pub stripe_unit_kb: u64,
    /// Number of I/O nodes (Sf, the stripe factor).
    pub io_nodes: usize,
    /// Read-phase iterations (the paper's LARGE run re-reads ~15×).
    pub read_iterations: u32,
    /// Scale factor on volume and compute, for cheap test runs.
    pub scale: f64,
    /// Per-I/O-node LRU buffer cache in MB (0 = uncached).
    pub cache_mb: u64,
    /// I/O-node command-queue depth (1 = the paper's FIFO disk queue).
    pub queue_depth: usize,
}

impl Scf11Config {
    /// The paper's default configuration tuple `(V, 4, 64, 64, 12)`.
    pub fn new(input: ScfInput, version: Scf11Version) -> Scf11Config {
        Scf11Config {
            input,
            version,
            procs: 4,
            mem_kb: 64,
            stripe_unit_kb: 64,
            io_nodes: 12,
            read_iterations: 15,
            scale: 1.0,
            cache_mb: 0,
            queue_depth: 1,
        }
    }

    /// Figure 1 tuple notation, e.g. `(F,32,256,128,16)`.
    pub fn tuple(&self) -> String {
        format!(
            "({},{},{},{},{})",
            self.version.letter(),
            self.procs,
            self.mem_kb,
            self.stripe_unit_kb,
            self.io_nodes
        )
    }

    fn scaled_volume(&self) -> u64 {
        (integral_volume(self.input.basis()) as f64 * self.scale) as u64
    }

    fn scaled_flops(&self) -> f64 {
        total_flops(self.input.basis()) * self.scale
    }
}

/// Extended result: the paper's prefetch measurements count I/O, wait and
/// copy time as "I/O time", which differs from raw trace time when reads
/// overlap compute.
#[derive(Clone, Debug)]
pub struct Scf11Result {
    /// Common measurements.
    pub run: RunResult,
    /// Foreground I/O time of the slowest rank: blocking I/O plus, for the
    /// prefetch version, wait + copy time.
    pub fg_io_time: SimDuration,
}

impl Scf11Result {
    /// Wall-clock compute time estimate (exec − foreground I/O).
    pub fn compute_time(&self) -> SimDuration {
        self.run.exec_time.saturating_sub(self.fg_io_time)
    }
}

const WRITE_CHUNK: u64 = 62 << 10;
const EVAL_FRACTION: f64 = 0.30;
const FLUSH_EVERY: u64 = 1000;

fn machine(cfg: &Scf11Config) -> iosim_machine::MachineConfig {
    crate::common::with_queue_depth(
        crate::common::with_cache_mb(
            presets::paragon_large()
                .with_compute_nodes(cfg.procs.max(1))
                .with_io_nodes(cfg.io_nodes)
                .with_stripe_unit(cfg.stripe_unit_kb << 10),
            cfg.cache_mb,
        ),
        cfg.queue_depth,
    )
}

/// Run SCF 1.1 under `cfg` and return the measurements.
pub fn run(cfg: &Scf11Config) -> Scf11Result {
    let mcfg = machine(cfg);
    let fg_io: Rc<RefCell<Vec<SimDuration>>> = Rc::new(RefCell::new(Vec::new()));
    let fg_io2 = Rc::clone(&fg_io);
    let cfg2 = cfg.clone();
    let run = run_ranks(mcfg, cfg.procs, move |ctx| {
        let cfg = cfg2.clone();
        let fg_io = Rc::clone(&fg_io2);
        Box::pin(async move {
            let t = rank_program(ctx, cfg).await;
            fg_io.borrow_mut().push(t);
        })
    });
    let fg_io_time = fg_io
        .borrow()
        .iter()
        .copied()
        .fold(SimDuration::ZERO, SimDuration::max);
    Scf11Result { run, fg_io_time }
}

/// Run SCF 1.1 on the sharded parallel engine (up to `workers` host
/// threads; see [`crate::common::run_ranks_sharded`]). The foreground
/// I/O time is the max across shards of each shard's slowest rank.
pub fn run_threaded(cfg: &Scf11Config, workers: usize) -> Scf11Result {
    let cfg2 = cfg.clone();
    let (run, per_shard) = run_ranks_sharded(machine(cfg), cfg.procs, workers, move |_spec| {
        let cfg = cfg2.clone();
        let fg_io: Rc<RefCell<Vec<SimDuration>>> = Rc::new(RefCell::new(Vec::new()));
        let fg2 = Rc::clone(&fg_io);
        (
            Box::new(move |ctx: AppCtx| -> RankFuture {
                let cfg = cfg.clone();
                let fg_io = Rc::clone(&fg2);
                Box::pin(async move {
                    let t = rank_program(ctx, cfg).await;
                    fg_io.borrow_mut().push(t);
                })
            }) as ShardProgram,
            Box::new(move || {
                fg_io
                    .borrow()
                    .iter()
                    .copied()
                    .fold(SimDuration::ZERO, SimDuration::max)
            }) as ShardFinish<SimDuration>,
        )
    });
    let fg_io_time = per_shard
        .into_iter()
        .fold(SimDuration::ZERO, SimDuration::max);
    Scf11Result { run, fg_io_time }
}

/// One process's program. Returns its foreground I/O time.
async fn rank_program(ctx: AppCtx, cfg: Scf11Config) -> SimDuration {
    let h = ctx.machine.handle().clone();
    let p = cfg.procs as u64;
    let rank = ctx.rank as u64;
    let volume = cfg.scaled_volume();
    // Uniform split with remainder to the low ranks.
    let my_bytes = volume / p + u64::from(rank < volume % p);
    let flops_per_proc = cfg.scaled_flops() / cfg.procs as f64;
    let iface = match cfg.version {
        Scf11Version::Original => Interface::Fortran,
        _ => Interface::Passion,
    };
    let mut fg_io = SimDuration::ZERO;

    // ---- Write phase: evaluate integrals, write packed chunks. ----
    let name = format!("scf11.ints.{}", ctx.rank);
    let t0 = h.now();
    let fh = ctx
        .fs
        .open(ctx.rank, iface, &name, Some(CreateOptions::default()))
        .await
        .expect("create integral file");
    fg_io += h.now() - t0;
    let eval_flops = flops_per_proc * EVAL_FRACTION;
    let n_chunks = my_bytes.div_ceil(WRITE_CHUNK).max(1);
    let flops_per_chunk = eval_flops / n_chunks as f64;
    let mut written = 0u64;
    let mut writes = 0u64;
    while written < my_bytes {
        let len = WRITE_CHUNK.min(my_bytes - written);
        ctx.machine.compute(flops_per_chunk).await;
        let t = h.now();
        if iface == Interface::Passion {
            fh.seek(written).await;
        }
        fh.writev_discard(&IoRequest::contiguous(written, len))
            .await
            .expect("write chunk");
        writes += 1;
        if writes.is_multiple_of(FLUSH_EVERY) {
            fh.flush().await;
        }
        fg_io += h.now() - t;
        written += len;
    }
    let t = h.now();
    fh.flush().await;
    fh.close().await;
    fg_io += h.now() - t;
    ctx.comm.barrier().await;

    // ---- Read phase: `read_iterations` full scans of the private file. ----
    let t = h.now();
    let fh = Rc::new(
        ctx.fs
            .open(ctx.rank, iface, &name, None)
            .await
            .expect("reopen integral file"),
    );
    fg_io += h.now() - t;
    let iters = cfg.read_iterations.max(1);
    let iter_flops = flops_per_proc * (1.0 - EVAL_FRACTION) / iters as f64;
    let read_chunk = (cfg.mem_kb << 10).clamp(16 << 10, 1 << 20);
    for _ in 0..iters {
        match cfg.version {
            Scf11Version::Original | Scf11Version::Passion => {
                let t = h.now();
                fh.seek(0).await;
                fg_io += h.now() - t;
                let chunks = my_bytes.div_ceil(read_chunk).max(1);
                let flops_per_chunk = iter_flops / chunks as f64;
                let mut off = 0u64;
                while off < my_bytes {
                    let len = read_chunk.min(my_bytes - off);
                    let t = h.now();
                    if cfg.version == Scf11Version::Passion {
                        fh.seek(off).await;
                    }
                    fh.readv_discard(&IoRequest::contiguous(off, len))
                        .await
                        .expect("read chunk");
                    fg_io += h.now() - t;
                    ctx.machine.compute(flops_per_chunk).await;
                    off += len;
                }
            }
            Scf11Version::PassionPrefetch => {
                // Double-buffered read-ahead; the PASSION runtime manages
                // its own prefetch buffers, so the application chunk size
                // is unchanged and two chunks are in flight.
                let chunk = read_chunk.max(16 << 10);
                let chunks = my_bytes.div_ceil(chunk).max(1);
                let flops_per_chunk = iter_flops / chunks as f64;
                let mut pf = Prefetcher::new(Rc::clone(&fh), 0, my_bytes, chunk, 2);
                while pf.next().await.expect("prefetch chunk").is_some() {
                    ctx.machine.compute(flops_per_chunk).await;
                }
                let st = pf.stats();
                // Paper convention: wait + copy time is I/O time.
                fg_io += st.wait_time + st.copy_time;
            }
        }
    }
    let t = h.now();
    if let Ok(only) = Rc::try_unwrap(fh) {
        only.close().await;
    }
    fg_io + (h.now() - t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iosim_trace::OpKind;

    fn small(version: Scf11Version) -> Scf11Config {
        Scf11Config {
            scale: 0.05,
            ..Scf11Config::new(ScfInput::Small, version)
        }
    }

    #[test]
    fn volume_and_flops_pin_the_large_input() {
        let v = integral_volume(285);
        assert!((2.4e9..2.6e9).contains(&(v as f64)), "volume {v}");
        let f = total_flops(285);
        // 53,600 proc-seconds at 20 MFLOPS.
        assert!((1.05e12..1.09e12).contains(&f), "flops {f}");
    }

    #[test]
    fn passion_version_beats_original() {
        let orig = run(&small(Scf11Version::Original));
        let pass = run(&small(Scf11Version::Passion));
        assert!(
            pass.run.exec_time < orig.run.exec_time,
            "PASSION {:?} should beat original {:?}",
            pass.run.exec_time,
            orig.run.exec_time
        );
        assert!(pass.fg_io_time < orig.fg_io_time);
    }

    #[test]
    fn prefetch_version_beats_plain_passion() {
        let mut cfg = small(Scf11Version::Passion);
        cfg.mem_kb = 256;
        let pass = run(&cfg);
        cfg.version = Scf11Version::PassionPrefetch;
        let pre = run(&cfg);
        assert!(
            pre.run.exec_time < pass.run.exec_time,
            "prefetch {:?} should beat passion {:?}",
            pre.run.exec_time,
            pass.run.exec_time
        );
    }

    #[test]
    fn read_intensity_matches_the_paper() {
        // Reads dominate: ~15 scans against one write pass.
        let r = run(&small(Scf11Version::Original));
        let reads = r.run.summary.rows[1];
        let writes = r.run.summary.rows[3];
        assert!(reads.bytes > 10 * writes.bytes);
        assert!(reads.time > writes.time);
        // I/O dominates execution (the paper's 54% on LARGE; small scaled
        // inputs are even more I/O bound).
        assert!(r.run.io_fraction() > 0.30, "{}", r.run.io_fraction());
    }

    #[test]
    fn passion_issues_a_seek_per_data_call() {
        let r = run(&small(Scf11Version::Passion));
        let seeks = r.run.summary.rows[2].count;
        let data_calls = r.run.summary.rows[1].count + r.run.summary.rows[3].count;
        // One seek per read and write, plus one rewind per iteration.
        assert!(
            seeks >= data_calls && seeks <= data_calls + 16 * 15,
            "seeks {seeks} vs data calls {data_calls}"
        );
    }

    #[test]
    fn original_version_seeks_rarely() {
        let r = run(&small(Scf11Version::Original));
        let seeks = r.run.summary.rows[2].count;
        assert!(seeks <= 4 * 15, "original should only rewind: {seeks}");
    }

    #[test]
    fn op_counts_scale_with_volume() {
        let lo = run(&small(Scf11Version::Original));
        let mut cfg = small(Scf11Version::Original);
        cfg.scale = 0.10;
        let hi = run(&cfg);
        let lo_reads = lo.run.summary.rows[1].count;
        let hi_reads = hi.run.summary.rows[1].count;
        assert!(
            hi_reads > lo_reads * 3 / 2,
            "reads should grow with volume: {lo_reads} -> {hi_reads}"
        );
    }

    #[test]
    fn more_io_nodes_help_when_contended() {
        let mut cfg = small(Scf11Version::Original);
        cfg.procs = 16;
        cfg.io_nodes = 2;
        let few = run(&cfg);
        cfg.io_nodes = 16;
        let many = run(&cfg);
        assert!(
            many.run.exec_time < few.run.exec_time,
            "16 I/O nodes {:?} vs 2 {:?}",
            many.run.exec_time,
            few.run.exec_time
        );
    }

    #[test]
    fn trace_has_expected_open_close_structure() {
        let cfg = small(Scf11Version::Original);
        let r = run(&cfg);
        // Two opens per proc (write phase + read phase), two closes.
        assert_eq!(r.run.summary.rows[0].count, 2 * cfg.procs as u64);
        assert_eq!(r.run.summary.rows[5].count, 2 * cfg.procs as u64);
        assert!(r.run.summary.rows[4].count >= cfg.procs as u64); // flushes
        assert_eq!(r.run.summary.rows[1].kind, OpKind::Read);
    }
}
