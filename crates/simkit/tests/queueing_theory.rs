//! Validation of the FIFO resource against classical queueing theory.
//!
//! The experiments' central quantity is queueing delay at contended I/O
//! nodes, so the engine's queue must be *quantitatively* right, not just
//! ordered correctly. These tests drive a [`Resource`] with Poisson
//! arrivals and deterministic service (M/D/1) and compare the measured
//! mean waiting time against the Pollaczek–Khinchine formula
//! `Wq = ρ·s / (2(1−ρ))`, across utilizations.

use iosim_simkit::prelude::*;

/// Simulate an M/D/1 queue with service time `s` seconds and utilization
/// `rho`, returning the measured mean wait (excluding service) over `n`
/// arrivals.
fn md1_mean_wait(s: f64, rho: f64, n: usize, seed: u64) -> f64 {
    let sim = Sim::new();
    let r = Resource::new(sim.handle(), "server", 1);
    let mut rng = SimRng::seed_from(seed);
    let rate = rho / s; // arrivals per second
    let mut t = 0.0f64;
    let mut waits = 0.0f64;
    for _ in 0..n {
        t += rng.exp(rate);
        let arrival = SimTime((t * 1e9) as u64);
        let (start, _end) = r.reserve_at(arrival, SimDuration::from_secs_f64(s));
        waits += start.since(arrival).as_secs_f64();
    }
    waits / n as f64
}

fn pk_md1(s: f64, rho: f64) -> f64 {
    rho * s / (2.0 * (1.0 - rho))
}

#[test]
fn md1_wait_matches_pollaczek_khinchine_at_moderate_load() {
    for &rho in &[0.3f64, 0.5, 0.7] {
        let s = 0.010; // 10 ms deterministic service
        let measured = md1_mean_wait(s, rho, 200_000, 42);
        let analytic = pk_md1(s, rho);
        let rel = (measured - analytic).abs() / analytic;
        assert!(
            rel < 0.05,
            "rho={rho}: measured {measured:.6} vs analytic {analytic:.6} (rel {rel:.3})"
        );
    }
}

#[test]
fn md1_wait_grows_without_bound_near_saturation() {
    let s = 0.010;
    let w80 = md1_mean_wait(s, 0.80, 200_000, 7);
    let w95 = md1_mean_wait(s, 0.95, 200_000, 7);
    assert!(w95 > 3.0 * w80, "near saturation: {w95} vs {w80}");
}

#[test]
fn md1_is_empty_at_negligible_load() {
    let w = md1_mean_wait(0.010, 0.01, 50_000, 3);
    assert!(w < 0.0002, "waits should vanish at 1% load: {w}");
}

#[test]
fn multi_server_pools_reduce_waits_superlinearly() {
    // M/D/c with the same per-server utilization waits far less than
    // M/D/1 (the economy-of-scale effect that makes shared I/O-node
    // pools attractive).
    let s = 0.010;
    let rho = 0.7;
    let wait_with_servers = |c: usize, seed: u64| -> f64 {
        let sim = Sim::new();
        let r = Resource::new(sim.handle(), "pool", c);
        let mut rng = SimRng::seed_from(seed);
        let rate = rho * c as f64 / s;
        let mut t = 0.0;
        let mut waits = 0.0;
        let n = 200_000;
        for _ in 0..n {
            t += rng.exp(rate);
            let arrival = SimTime((t * 1e9) as u64);
            let (start, _) = r.reserve_at(arrival, SimDuration::from_secs_f64(s));
            waits += start.since(arrival).as_secs_f64();
        }
        waits / n as f64
    };
    let w1 = wait_with_servers(1, 5);
    let w4 = wait_with_servers(4, 5);
    assert!(
        w4 < w1 / 2.0,
        "4 servers at equal per-server load should wait much less: {w4} vs {w1}"
    );
}

#[test]
fn exponential_sampler_has_the_right_mean() {
    let mut rng = SimRng::seed_from(11);
    let rate = 2.5;
    let n = 200_000;
    let mean: f64 = (0..n).map(|_| rng.exp(rate)).sum::<f64>() / n as f64;
    let rel = (mean - 1.0 / rate).abs() * rate;
    assert!(rel < 0.01, "mean {mean} vs {}", 1.0 / rate);
}
