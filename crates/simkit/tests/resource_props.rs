#![cfg(feature = "heavy-tests")]
//! Property tests of the FIFO resource: the virtual-queue booking must
//! behave exactly like an m-server FIFO queue.

use iosim_simkit::prelude::*;
use proptest::prelude::*;

/// Book `durs[i]` at arrival times `arrivals[i]` (non-decreasing) and
/// return the (start, end) pairs.
fn book_all(capacity: usize, jobs: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let sim = Sim::new();
    let r = Resource::new(sim.handle(), "r", capacity);
    jobs.iter()
        .map(|&(arrival, dur)| {
            let (s, e) = r.reserve_at(SimTime(arrival), SimDuration(dur));
            (s.as_nanos(), e.as_nanos())
        })
        .collect()
}

proptest! {
    #[test]
    fn single_server_is_fifo_and_work_conserving(
        mut jobs in proptest::collection::vec((0u64..10_000, 1u64..1_000), 1..50),
    ) {
        jobs.sort_by_key(|&(a, _)| a);
        let booked = book_all(1, &jobs);
        let mut prev_end = 0u64;
        for ((arrival, dur), &(start, end)) in jobs.iter().zip(&booked) {
            // FIFO: no job starts before the previous finished.
            prop_assert!(start >= prev_end);
            // No job starts before it arrives; service is exact.
            prop_assert!(start >= *arrival);
            prop_assert_eq!(end, start + dur);
            // Work conservation: the server never idles while work waits —
            // it starts at max(arrival, previous end).
            prop_assert_eq!(start, (*arrival).max(prev_end));
            prev_end = end;
        }
    }

    #[test]
    fn multi_server_never_exceeds_capacity(
        mut jobs in proptest::collection::vec((0u64..5_000, 1u64..500), 1..60),
        capacity in 1usize..5,
    ) {
        jobs.sort_by_key(|&(a, _)| a);
        let booked = book_all(capacity, &jobs);
        // At any service start, the number of overlapping services must
        // not exceed the capacity.
        for (i, &(s_i, _)) in booked.iter().enumerate() {
            let overlapping = booked
                .iter()
                .enumerate()
                .filter(|&(j, &(s, e))| j != i && s <= s_i && s_i < e)
                .count();
            prop_assert!(
                overlapping < capacity,
                "{overlapping} services already running at start {s_i}"
            );
        }
        // Total busy time matches the sum of durations.
        let total: u64 = jobs.iter().map(|&(_, d)| d).sum();
        let busy: u64 = booked.iter().map(|&(s, e)| e - s).sum();
        prop_assert_eq!(total, busy);
    }

    #[test]
    fn stats_agree_with_bookings(
        jobs in proptest::collection::vec((0u64..1_000, 1u64..100), 1..30),
    ) {
        let sim = Sim::new();
        let r = Resource::new(sim.handle(), "r", 2);
        let mut last = 0u64;
        for &(arrival, dur) in &jobs {
            let (_, e) = r.reserve_at(SimTime(arrival), SimDuration(dur));
            last = last.max(e.as_nanos());
        }
        let st = r.stats();
        prop_assert_eq!(st.requests, jobs.len() as u64);
        prop_assert_eq!(
            st.busy.as_nanos(),
            jobs.iter().map(|&(_, d)| d).sum::<u64>()
        );
        prop_assert_eq!(st.last_completion.as_nanos(), last);
    }

    #[test]
    fn sleeping_tasks_complete_in_deadline_order(
        delays in proptest::collection::vec(1u64..1_000_000u64, 1..40),
    ) {
        let mut sim = Sim::new();
        let h = sim.handle();
        let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        for (i, &d) in delays.iter().enumerate() {
            let h = h.clone();
            let log = std::rc::Rc::clone(&log);
            sim.spawn(async move {
                h.sleep(SimDuration(d)).await;
                log.borrow_mut().push((d, i));
            });
        }
        let end = sim.run();
        prop_assert_eq!(end.as_nanos(), *delays.iter().max().unwrap());
        let completed = log.borrow().clone();
        // Completions are sorted by (deadline, spawn order).
        let mut expected = completed.clone();
        expected.sort();
        prop_assert_eq!(completed, expected);
    }
}
