//! Virtual time types.
//!
//! Simulated time is measured in integer nanoseconds from the start of the
//! simulation. Using a fixed-point integer representation (rather than `f64`
//! seconds) keeps event ordering exact and the simulation fully
//! deterministic across platforms.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in virtual time, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`. Saturates at zero if `earlier`
    /// is in the future.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> SimDuration {
        SimDuration(ns)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds. Negative or non-finite inputs
    /// clamp to zero; this keeps cost-model arithmetic total.
    #[inline]
    pub fn from_secs_f64(s: f64) -> SimDuration {
        if s.is_finite() && s > 0.0 {
            SimDuration((s * 1e9).round() as u64)
        } else {
            SimDuration(0)
        }
    }

    /// Whole nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional milliseconds (for reporting only).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The larger of two durations.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::ZERO + SimDuration::from_millis(5);
        assert_eq!(t.as_nanos(), 5_000_000);
        assert_eq!(t - SimTime::ZERO, SimDuration::from_millis(5));
        assert_eq!(t.since(SimTime(10_000_000)), SimDuration::ZERO);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_millis(2000));
        assert_eq!(SimDuration::from_millis(3), SimDuration::from_micros(3000));
        assert_eq!(SimDuration::from_micros(7), SimDuration::from_nanos(7000));
    }

    #[test]
    fn from_secs_f64_clamps_bad_input() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
    }

    #[test]
    fn saturating_ops() {
        let a = SimDuration::from_secs(1);
        let b = SimDuration::from_secs(2);
        assert_eq!(a - b, SimDuration::ZERO);
        assert_eq!(b - a, SimDuration::from_secs(1));
        assert_eq!(a.saturating_sub(b), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_sensible_unit() {
        assert_eq!(format!("{}", SimDuration::from_nanos(17)), "17ns");
        assert_eq!(format!("{}", SimDuration::from_micros(17)), "17.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(17)), "17.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(17)), "17.000s");
    }

    #[test]
    fn sum_and_scalar_ops() {
        let total: SimDuration = [1u64, 2, 3]
            .iter()
            .map(|&s| SimDuration::from_secs(s))
            .sum();
        assert_eq!(total, SimDuration::from_secs(6));
        assert_eq!(total / 2, SimDuration::from_secs(3));
        assert_eq!(SimDuration::from_secs(2) * 3, SimDuration::from_secs(6));
    }
}
