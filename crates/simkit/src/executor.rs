//! The deterministic virtual-time executor.
//!
//! A [`Sim`] owns a set of tasks (plain Rust futures) and an event heap of
//! timers. The run loop polls every ready task until quiescence, then pops
//! the earliest timer batch, advances virtual time to it, and wakes its
//! tasks. Ties on the heap are broken by insertion sequence number, so a
//! given program always produces the same schedule — simulations are
//! exactly reproducible.
//!
//! The executor is single-threaded and `!Send`; cross-configuration sweeps
//! parallelize at the granularity of whole `Sim` instances instead.
//!
//! # Hot-path design
//!
//! The scheduling loop is the inner loop of every experiment, so it pays
//! for nothing it does not need (DESIGN.md §15):
//!
//! - **Lock-free ready queue.** Tasks are woken through a custom
//!   [`RawWaker`] vtable over a non-atomic `Rc`, pushing into a plain
//!   `RefCell<VecDeque>` — no `Mutex`, no atomic reference counts.
//! - **Slab task storage.** Tasks live in a `Vec<Option<Task>>` indexed by
//!   task id with a free list; a poll takes the future out of its slot and
//!   puts it back (two pointer moves), instead of a `HashMap`
//!   remove + re-insert per poll.
//! - **One waker per task.** The per-task wake state is allocated once at
//!   spawn and reused for every poll and every timer; polls borrow it
//!   without touching the reference count.
//! - **Wake deduplication.** A per-task `queued` flag makes duplicate
//!   wakes of an already-queued task no-ops at enqueue time instead of
//!   round-tripping through the queue as spurious polls.
//! - **Batched timer pops.** All timers at the next instant are popped
//!   from the heap in one borrow and woken in `(time, seq)` order before
//!   the ready queue drains again.
//!
//! ## Safety invariant
//!
//! `std::task::Waker` is unconditionally `Send + Sync`, but the wakers
//! minted here wrap a non-atomic `Rc` and must never leave the executor's
//! thread. [`Sim`] and every handle into it are `!Send`, and the
//! simulation's futures run only on the thread that owns the `Sim`, so a
//! waker can only escape if a task deliberately smuggles it to another
//! thread (e.g. via `std::thread::spawn`) — which nothing in this
//! workspace does and which the simulation model (single-threaded virtual
//! time) rules out by construction.

use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::future::Future;
use std::mem::ManuallyDrop;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, RawWaker, RawWakerVTable, Waker};

use crate::time::{SimDuration, SimTime};

type BoxFuture = Pin<Box<dyn Future<Output = ()>>>;

/// Shared mutable waker slot: the most recent poller of a [`Sleep`] (or
/// any future registering a timer) parks its waker here, and the timer
/// reads the slot at fire time — so re-polling from a different task
/// (select/race patterns) retargets the timer instead of waking a stale
/// task.
type WakerSlot = Rc<Cell<Option<Waker>>>;

/// Timer heap entry: wake whatever waker sits in `slot` at `time`.
/// Ordered by `(time, seq)`.
struct TimerEntry {
    time: SimTime,
    seq: u64,
    slot: WakerSlot,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Ready queue of `(slab index, spawn serial)` pairs. The serial lets the
/// run loop reject entries whose slot was freed and reused since enqueue.
type ReadyQueue = Rc<RefCell<VecDeque<(usize, u64)>>>;

/// Per-task wake state, allocated once at spawn and shared (via the raw
/// vtable below) with every waker handed to the task's polls.
struct WakeState {
    /// Slab index of the task.
    index: usize,
    /// Monotonic spawn serial; survives slot reuse and is what the
    /// schedule fingerprint records.
    serial: u64,
    /// True while the task sits in the ready queue: duplicate wakes
    /// dedupe here instead of producing spurious polls.
    queued: Cell<bool>,
    /// Set when the task completes; late wakes from stale timers or
    /// abandoned channels become no-ops.
    dead: Cell<bool>,
    ready: ReadyQueue,
}

impl WakeState {
    fn wake(&self) {
        if !self.dead.get() && !self.queued.get() {
            self.queued.set(true);
            self.ready.borrow_mut().push_back((self.index, self.serial));
        }
    }
}

/// Custom waker vtable over `Rc<WakeState>`: cloning and dropping touch a
/// non-atomic reference count and waking is a flag check plus a `VecDeque`
/// push — no allocation, no locks, no atomics. See the module-level safety
/// invariant.
static WAKER_VTABLE: RawWakerVTable = RawWakerVTable::new(
    |ptr| {
        // SAFETY: `ptr` came from `Rc::into_raw` and the count is
        // incremented for the new waker before both are used.
        unsafe { Rc::increment_strong_count(ptr as *const WakeState) };
        RawWaker::new(ptr, &WAKER_VTABLE)
    },
    |ptr| {
        // SAFETY: consumes the waker's reference.
        let state = unsafe { Rc::from_raw(ptr as *const WakeState) };
        state.wake();
    },
    |ptr| {
        // SAFETY: borrows the waker's reference without consuming it.
        let state = ManuallyDrop::new(unsafe { Rc::from_raw(ptr as *const WakeState) });
        state.wake();
    },
    |ptr| {
        // SAFETY: consumes the waker's reference.
        drop(unsafe { Rc::from_raw(ptr as *const WakeState) });
    },
);

/// A task slot: the future plus its cached wake state.
struct Task {
    /// Taken out of the slot for the duration of a poll (so the poll may
    /// re-borrow the slab to spawn) and put back if still pending.
    fut: Option<BoxFuture>,
    state: Rc<WakeState>,
}

/// Slab of tasks indexed by task id, with a free list of vacated slots.
#[derive(Default)]
struct Slab {
    slots: Vec<Option<Task>>,
    free: Vec<usize>,
}

impl Slab {
    /// Reserve a slot index for a new task.
    fn alloc(&mut self) -> usize {
        match self.free.pop() {
            Some(i) => i,
            None => {
                self.slots.push(None);
                self.slots.len() - 1
            }
        }
    }
}

/// FNV-1a offset basis; the schedule fingerprint folds each polled task's
/// spawn serial into this running hash.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv_fold(acc: u64, v: u64) -> u64 {
    let mut acc = acc;
    for byte in v.to_le_bytes() {
        acc = (acc ^ byte as u64).wrapping_mul(FNV_PRIME);
    }
    acc
}

/// Poll ready tasks until the queue is empty — the scheduler hot loop.
fn drain_ready(core: &Core) {
    loop {
        let next = core.ready.borrow_mut().pop_front();
        let Some((index, serial)) = next else { break };
        // Take the future out of its slot for the poll; a vacated or
        // reused slot means the wake went stale in the queue.
        let polled = {
            let mut slab = core.tasks.borrow_mut();
            match slab.slots[index].as_mut() {
                Some(task) if task.state.serial == serial => {
                    task.state.queued.set(false);
                    task.fut.take().map(|fut| (fut, Rc::clone(&task.state)))
                }
                _ => None,
            }
        };
        let Some((mut fut, state)) = polled else {
            continue;
        };
        core.events_processed.set(core.events_processed.get() + 1);
        core.fingerprint
            .set(fnv_fold(core.fingerprint.get(), serial));
        // Borrow the cached wake state as a waker without touching
        // its reference count; `state` outlives the context.
        // SAFETY: the pointer comes from a live `Rc` and the
        // `ManuallyDrop` suppresses the borrowed count decrement.
        let waker = ManuallyDrop::new(unsafe {
            Waker::from_raw(RawWaker::new(Rc::as_ptr(&state).cast(), &WAKER_VTABLE))
        });
        let mut cx = Context::from_waker(&waker);
        if fut.as_mut().poll(&mut cx).is_pending() {
            let mut slab = core.tasks.borrow_mut();
            if let Some(task) = slab.slots[index].as_mut() {
                task.fut = Some(fut);
            }
        } else {
            state.dead.set(true);
            let mut slab = core.tasks.borrow_mut();
            slab.slots[index] = None;
            slab.free.push(index);
        }
    }
}

struct Core {
    now: Cell<SimTime>,
    seq: Cell<u64>,
    timers: RefCell<BinaryHeap<Reverse<TimerEntry>>>,
    ready: ReadyQueue,
    tasks: RefCell<Slab>,
    next_serial: Cell<u64>,
    events_processed: Cell<u64>,
    fingerprint: Cell<u64>,
    /// Reusable buffer for batched same-instant timer pops.
    timer_batch: RefCell<Vec<WakerSlot>>,
    /// Recycled waker slots: a completed [`Sleep`] returns its slot here
    /// so steady-state timer traffic allocates nothing. Bounded so a
    /// one-off burst of concurrent sleeps cannot pin memory forever.
    slot_pool: RefCell<Vec<WakerSlot>>,
}

/// Upper bound on [`Core::slot_pool`] retention.
const SLOT_POOL_CAP: usize = 4096;

/// A cloneable, lightweight handle into a running simulation.
///
/// Handles are captured by tasks to read the clock, sleep, and spawn
/// subtasks. All clones refer to the same simulation.
#[derive(Clone)]
pub struct SimHandle {
    core: Rc<Core>,
}

/// A deterministic discrete-event simulation.
pub struct Sim {
    handle: SimHandle,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    /// Create an empty simulation at virtual time zero.
    pub fn new() -> Sim {
        Sim {
            handle: SimHandle {
                core: Rc::new(Core {
                    now: Cell::new(SimTime::ZERO),
                    seq: Cell::new(0),
                    timers: RefCell::new(BinaryHeap::new()),
                    ready: Rc::new(RefCell::new(VecDeque::new())),
                    tasks: RefCell::new(Slab::default()),
                    next_serial: Cell::new(0),
                    events_processed: Cell::new(0),
                    fingerprint: Cell::new(FNV_OFFSET),
                    timer_batch: RefCell::new(Vec::new()),
                    slot_pool: RefCell::new(Vec::new()),
                }),
            },
        }
    }

    /// The handle used by tasks to interact with the simulation.
    pub fn handle(&self) -> SimHandle {
        self.handle.clone()
    }

    /// Spawn a root task. Equivalent to `handle().spawn(fut)`.
    pub fn spawn<T: 'static>(&self, fut: impl Future<Output = T> + 'static) -> JoinHandle<T> {
        self.handle.spawn(fut)
    }

    /// Run until no runnable task and no pending timer remain, and return
    /// the final virtual time.
    ///
    /// Tasks still blocked on a channel/barrier with no peer are simply
    /// dropped when the simulation ends (deadlock is not an error at this
    /// layer; higher layers assert on join handles instead).
    pub fn run(&mut self) -> SimTime {
        let core = &self.handle.core;
        loop {
            // Drain the ready queue to quiescence at the current instant.
            drain_ready(core);
            // Advance to the next timer instant. Every entry at that
            // instant is popped off the heap in one batch (single heap
            // borrow), then woken one at a time with a ready-queue drain
            // after each wake. The per-wake drain preserves the legacy
            // executor's schedule exactly — the wake chain set off by
            // timer k is fully polled before timer k+1 fires — which is
            // what keeps virtual times bit-identical across the rewrite
            // in contention-heavy runs. Timers a woken task registers
            // *at the same instant* carry later seqs and fire on the
            // next trip around the outer loop, still in (time, seq)
            // order, matching the legacy pop-one-at-a-time heap order.
            let mut batch = core.timer_batch.borrow_mut();
            {
                let mut timers = core.timers.borrow_mut();
                let Some(Reverse(first)) = timers.pop() else {
                    break;
                };
                debug_assert!(first.time >= core.now.get());
                core.now.set(first.time);
                let instant = first.time;
                batch.push(first.slot);
                while timers.peek().is_some_and(|Reverse(e)| e.time == instant) {
                    batch.push(timers.pop().expect("peeked entry").0.slot);
                }
            }
            for slot in batch.drain(..) {
                if let Some(w) = slot.take() {
                    w.wake();
                }
                drain_ready(core);
            }
        }
        core.now.get()
    }
    /// Run until the next pending event is at or after `horizon` (or no
    /// event remains), and return that next event's time.
    ///
    /// Everything strictly before `horizon` executes exactly as [`Sim::run`]
    /// would have executed it: the ready queue drains to quiescence and
    /// same-instant timer batches pop in `(time, seq)` order, so a sequence
    /// of `run_until` calls with increasing horizons produces the same
    /// schedule — and the same [`Sim::schedule_fingerprint`] — as one
    /// uninterrupted `run`. This is the primitive the sharded
    /// conservative-lookahead engine ([`crate::shard`]) uses to advance each
    /// shard through one synchronization window at a time.
    ///
    /// Returns `None` when the simulation is quiescent (no runnable task
    /// and no pending timer), `Some(t)` with `t >= horizon` otherwise.
    pub fn run_until(&mut self, horizon: SimTime) -> Option<SimTime> {
        let core = &self.handle.core;
        loop {
            drain_ready(core);
            let mut batch = core.timer_batch.borrow_mut();
            {
                let mut timers = core.timers.borrow_mut();
                match timers.peek() {
                    None => return None,
                    Some(Reverse(e)) if e.time >= horizon => return Some(e.time),
                    Some(_) => {}
                }
                let Reverse(first) = timers.pop().expect("peeked entry");
                debug_assert!(first.time >= core.now.get());
                core.now.set(first.time);
                let instant = first.time;
                batch.push(first.slot);
                while timers.peek().is_some_and(|Reverse(e)| e.time == instant) {
                    batch.push(timers.pop().expect("peeked entry").0.slot);
                }
            }
            for slot in batch.drain(..) {
                if let Some(w) = slot.take() {
                    w.wake();
                }
                drain_ready(core);
            }
        }
    }

    /// Run a single root future to completion and return its output along
    /// with the final virtual time. Panics if the future deadlocks (cannot
    /// complete before the event queue empties).
    pub fn run_to_completion<T: 'static>(
        fut: impl FnOnce(SimHandle) -> Pin<Box<dyn Future<Output = T>>>,
    ) -> (T, SimTime) {
        let mut sim = Sim::new();
        let handle = sim.handle();
        let jh = sim.spawn(fut(handle));
        let end = sim.run();
        let out = jh
            .try_take()
            .expect("root task did not complete: simulation deadlocked");
        (out, end)
    }

    /// Number of task polls performed so far (a rough event count, useful
    /// for performance diagnostics).
    pub fn events_processed(&self) -> u64 {
        self.handle.core.events_processed.get()
    }

    /// Order-sensitive hash of the schedule so far: an FNV-1a fold of the
    /// spawn serial of every task poll, in poll order. Two runs of the
    /// same program produce the same fingerprint if and only if the
    /// executor polled the same tasks in the same order — the regression
    /// oracle for scheduler changes.
    pub fn schedule_fingerprint(&self) -> u64 {
        self.handle.core.fingerprint.get()
    }
}

impl SimHandle {
    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.core.now.get()
    }

    fn next_seq(&self) -> u64 {
        let s = self.core.seq.get();
        self.core.seq.set(s + 1);
        s
    }

    /// Register a timer that, at `deadline`, wakes whatever waker then
    /// sits in `slot`.
    /// Take a recycled waker slot (or allocate a fresh one). The slot is
    /// always empty on return.
    fn acquire_slot(&self) -> WakerSlot {
        self.core.slot_pool.borrow_mut().pop().unwrap_or_default()
    }

    /// Recycle a waker slot if this was the last reference to it (a slot
    /// still held by an unfired timer entry must not be reused).
    fn release_slot(&self, slot: WakerSlot) {
        if Rc::strong_count(&slot) == 1 {
            slot.set(None);
            let mut pool = self.core.slot_pool.borrow_mut();
            if pool.len() < SLOT_POOL_CAP {
                pool.push(slot);
            }
        }
    }

    pub(crate) fn register_timer(&self, deadline: SimTime, slot: WakerSlot) {
        let seq = self.next_seq();
        self.core.timers.borrow_mut().push(Reverse(TimerEntry {
            time: deadline.max(self.now()),
            seq,
            slot,
        }));
    }

    /// Spawn a task; it begins running when the executor next reaches the
    /// scheduling loop (at the current virtual instant).
    pub fn spawn<T: 'static>(&self, fut: impl Future<Output = T> + 'static) -> JoinHandle<T> {
        let slot: Rc<RefCell<JoinSlot<T>>> = Rc::new(RefCell::new(JoinSlot {
            value: None,
            waker: None,
            finished: false,
        }));
        let slot2 = Rc::clone(&slot);
        let wrapped: BoxFuture = Box::pin(async move {
            let v = fut.await;
            let mut s = slot2.borrow_mut();
            s.value = Some(v);
            s.finished = true;
            if let Some(w) = s.waker.take() {
                w.wake();
            }
        });
        let serial = self.core.next_serial.get();
        self.core.next_serial.set(serial + 1);
        let mut slab = self.core.tasks.borrow_mut();
        let index = slab.alloc();
        let state = Rc::new(WakeState {
            index,
            serial,
            queued: Cell::new(false),
            dead: Cell::new(false),
            ready: Rc::clone(&self.core.ready),
        });
        slab.slots[index] = Some(Task {
            fut: Some(wrapped),
            state: Rc::clone(&state),
        });
        drop(slab);
        state.wake();
        JoinHandle { slot }
    }

    /// Sleep for `dur` of virtual time.
    pub fn sleep(&self, dur: SimDuration) -> Sleep {
        self.sleep_until(self.now() + dur)
    }

    /// Sleep until the given instant (no-op if already past).
    pub fn sleep_until(&self, deadline: SimTime) -> Sleep {
        Sleep {
            handle: self.clone(),
            deadline,
            slot: None,
        }
    }

    /// Yield to let other already-runnable tasks at this instant run
    /// first. (A zero-duration sleep would complete without yielding,
    /// since its deadline is already reached on the first poll.)
    pub fn yield_now(&self) -> YieldNow {
        YieldNow { yielded: false }
    }
}

/// Future returned by [`SimHandle::yield_now`]: pending once, then ready.
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

struct JoinSlot<T> {
    value: Option<T>,
    waker: Option<Waker>,
    /// Completion flag, independent of `value` so [`JoinHandle::is_finished`]
    /// stays true after the output is taken.
    finished: bool,
}

/// Awaits the completion of a spawned task and yields its output.
pub struct JoinHandle<T> {
    slot: Rc<RefCell<JoinSlot<T>>>,
}

impl<T> JoinHandle<T> {
    /// Take the task output if it has completed, without awaiting.
    pub fn try_take(&self) -> Option<T> {
        self.slot.borrow_mut().value.take()
    }

    /// Whether the task has finished (output may already be taken).
    pub fn is_finished(&self) -> bool {
        self.slot.borrow().finished
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut slot = self.slot.borrow_mut();
        if let Some(v) = slot.value.take() {
            Poll::Ready(v)
        } else {
            // Skip the clone when the same task re-polls (cached wakers
            // make `will_wake` an exact identity test).
            match &slot.waker {
                Some(w) if w.will_wake(cx.waker()) => {}
                _ => slot.waker = Some(cx.waker().clone()),
            }
            Poll::Pending
        }
    }
}

/// Future returned by [`SimHandle::sleep`].
pub struct Sleep {
    handle: SimHandle,
    deadline: SimTime,
    /// Shared waker slot the timer reads at fire time; created on first
    /// registration and refreshed on every later poll, so the timer wakes
    /// the *most recent* poller even if the sleep migrated between tasks
    /// (select/race patterns).
    slot: Option<WakerSlot>,
}

impl Future for Sleep {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.handle.now() >= self.deadline {
            return Poll::Ready(());
        }
        match &self.slot {
            None => {
                let slot = self.handle.acquire_slot();
                slot.set(Some(cx.waker().clone()));
                self.handle.register_timer(self.deadline, Rc::clone(&slot));
                self.slot = Some(slot);
            }
            Some(slot) => match slot.take() {
                Some(w) if w.will_wake(cx.waker()) => slot.set(Some(w)),
                _ => slot.set(Some(cx.waker().clone())),
            },
        }
        Poll::Pending
    }
}

impl Drop for Sleep {
    fn drop(&mut self) {
        if let Some(slot) = self.slot.take() {
            self.handle.release_slot(slot);
        }
    }
}

/// Fold a sequence of per-shard schedule fingerprints into one combined
/// fingerprint, using the same FNV-1a fold the per-sim fingerprint uses.
/// The fold is order-sensitive; callers pass parts in shard-index order so
/// the combined value is independent of host-thread interleaving.
pub fn combine_fingerprints<I: IntoIterator<Item = u64>>(parts: I) -> u64 {
    let mut acc = FNV_OFFSET;
    for p in parts {
        acc = fnv_fold(acc, p);
    }
    acc
}

/// Await `fut` with a virtual-time deadline: `Some(output)` if it
/// completes within `dur`, `None` otherwise. The future is spawned, so on
/// timeout it keeps running detached (like an abandoned I/O request);
/// callers that need cancellation should check a flag inside the future.
pub async fn with_timeout<T: 'static>(
    handle: &SimHandle,
    dur: SimDuration,
    fut: impl Future<Output = T> + 'static,
) -> Option<T> {
    let deadline = handle.now() + dur;
    let jh = handle.spawn(fut);
    // Poll the join handle against the deadline via a race future.
    struct Race<T> {
        jh: JoinHandle<T>,
        sleep: Sleep,
    }
    impl<T> Future for Race<T> {
        type Output = Option<T>;
        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Option<T>> {
            // All fields are Unpin, so the struct is too.
            let this = self.get_mut();
            if let Poll::Ready(v) = Pin::new(&mut this.jh).poll(cx) {
                return Poll::Ready(Some(v));
            }
            if Pin::new(&mut this.sleep).poll(cx).is_ready() {
                return Poll::Ready(None);
            }
            Poll::Pending
        }
    }
    Race {
        jh,
        sleep: handle.sleep_until(deadline),
    }
    .await
}

/// Await every future in `futs` (spawned concurrently in virtual time) and
/// collect their outputs in order.
///
/// Because awaiting a [`JoinHandle`] consumes no virtual time, the caller
/// resumes at the virtual instant when the *last* future finishes — i.e.
/// this is a fork/join with correct parallel timing.
pub async fn join_all<T: 'static, F>(handle: &SimHandle, futs: Vec<F>) -> Vec<T>
where
    F: Future<Output = T> + 'static,
{
    let handles: Vec<JoinHandle<T>> = futs.into_iter().map(|f| handle.spawn(f)).collect();
    let mut out = Vec::with_capacity(handles.len());
    for h in handles {
        out.push(h.await);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sleep_advances_virtual_time() {
        let mut sim = Sim::new();
        let h = sim.handle();
        let jh = sim.spawn(async move {
            h.sleep(SimDuration::from_millis(250)).await;
            h.now()
        });
        let end = sim.run();
        assert_eq!(end, SimTime(250_000_000));
        assert_eq!(jh.try_take().unwrap(), SimTime(250_000_000));
    }

    #[test]
    fn tasks_interleave_deterministically() {
        let mut sim = Sim::new();
        let log: Rc<RefCell<Vec<(u32, u64)>>> = Rc::new(RefCell::new(Vec::new()));
        for id in 0..3u32 {
            let h = sim.handle();
            let log = Rc::clone(&log);
            sim.spawn(async move {
                for _step in 0..3u64 {
                    h.sleep(SimDuration::from_millis(10 * (id as u64 + 1)))
                        .await;
                    log.borrow_mut().push((id, h.now().as_nanos() / 1_000_000));
                }
            });
        }
        sim.run();
        let got = log.borrow().clone();
        // Task 0 ticks at 10,20,30; task 1 at 20,40,60; task 2 at 30,60,90.
        // Ties resolve by timer registration order: task 1 registered its
        // t=20 timer at t=0, before task 0 re-registered at t=10, so task 1
        // fires first at t=20; likewise at t=30 and t=60.
        assert_eq!(
            got,
            vec![
                (0, 10),
                (1, 20),
                (0, 20),
                (2, 30),
                (0, 30),
                (1, 40),
                (2, 60),
                (1, 60),
                (2, 90)
            ]
        );
    }

    #[test]
    fn join_all_resumes_at_last_completion() {
        let mut sim = Sim::new();
        let h = sim.handle();
        let jh = sim.spawn(async move {
            let h2 = h.clone();
            let futs: Vec<_> = (1..=4u64)
                .map(|i| {
                    let h3 = h2.clone();
                    async move {
                        h3.sleep(SimDuration::from_secs(i)).await;
                        i
                    }
                })
                .collect();
            let outs = join_all(&h2, futs).await;
            (outs, h2.now())
        });
        sim.run();
        let (outs, t) = jh.try_take().unwrap();
        assert_eq!(outs, vec![1, 2, 3, 4]);
        assert_eq!(t, SimTime::ZERO + SimDuration::from_secs(4));
    }

    #[test]
    fn nested_spawn_runs_at_same_instant() {
        let (val, end) = Sim::run_to_completion(|h| {
            Box::pin(async move {
                let child = h.spawn(async { 42 });
                child.await
            })
        });
        assert_eq!(val, 42);
        assert_eq!(end, SimTime::ZERO);
    }

    #[test]
    fn run_returns_final_time_with_no_tasks() {
        let mut sim = Sim::new();
        assert_eq!(sim.run(), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "deadlocked")]
    fn run_to_completion_detects_deadlock() {
        Sim::run_to_completion(|_h| {
            Box::pin(async move {
                // A future that is never woken.
                std::future::pending::<()>().await;
            })
        });
    }

    #[test]
    fn sleep_until_past_instant_is_noop() {
        let (t, end) = Sim::run_to_completion(|h| {
            Box::pin(async move {
                h.sleep(SimDuration::from_secs(5)).await;
                h.sleep_until(SimTime(1)).await; // already past
                h.now()
            })
        });
        assert_eq!(t, SimTime::ZERO + SimDuration::from_secs(5));
        assert_eq!(end, t);
    }

    #[test]
    fn blocked_tasks_are_dropped_cleanly_at_sim_end() {
        // A task waiting on a channel with no sender left alive at the
        // end of the run is simply dropped — no panic, no leak observable
        // through the join handle.
        let mut sim = Sim::new();
        let (tx, rx) = crate::sync::channel::<u32>();
        let jh = sim.spawn(async move { rx.recv().await });
        let end = sim.run(); // tx still alive: recv never resolves
        assert_eq!(end, SimTime::ZERO);
        assert!(!jh.is_finished());
        drop(tx);
    }

    #[test]
    fn yield_now_lets_peers_run_first() {
        let (order, _) = Sim::run_to_completion(|h| {
            Box::pin(async move {
                let log: Rc<RefCell<Vec<u32>>> = Rc::default();
                let l1 = Rc::clone(&log);
                let peer = h.spawn(async move {
                    l1.borrow_mut().push(1);
                });
                h.yield_now().await;
                log.borrow_mut().push(2);
                peer.await;
                let order = log.borrow().clone();
                order
            })
        });
        assert_eq!(order, vec![1, 2]);
    }

    #[test]
    fn with_timeout_returns_some_when_fast() {
        let (out, _) = Sim::run_to_completion(|h| {
            Box::pin(async move {
                let h2 = h.clone();
                with_timeout(&h, SimDuration::from_secs(10), async move {
                    h2.sleep(SimDuration::from_secs(1)).await;
                    42
                })
                .await
            })
        });
        assert_eq!(out, Some(42));
    }

    #[test]
    fn with_timeout_returns_none_when_slow() {
        let (out, end) = Sim::run_to_completion(|h| {
            Box::pin(async move {
                let h2 = h.clone();
                let r = with_timeout(&h, SimDuration::from_secs(1), async move {
                    h2.sleep(SimDuration::from_secs(10)).await;
                    42
                })
                .await;
                (r, h.now())
            })
        });
        let (r, t) = out;
        assert_eq!(r, None);
        assert_eq!(t, SimTime(1_000_000_000));
        // The abandoned future still runs to completion.
        assert_eq!(end, SimTime(10_000_000_000));
    }

    #[test]
    fn events_processed_counts_polls() {
        let mut sim = Sim::new();
        let h = sim.handle();
        sim.spawn(async move {
            for _ in 0..10 {
                h.sleep(SimDuration::from_millis(1)).await;
            }
        });
        sim.run();
        assert!(sim.events_processed() >= 10);
    }

    #[test]
    fn is_finished_survives_try_take() {
        let mut sim = Sim::new();
        let jh = sim.spawn(async { 7u32 });
        assert!(!jh.is_finished());
        sim.run();
        assert!(jh.is_finished());
        assert_eq!(jh.try_take(), Some(7));
        // The documented contract: "output may already be taken".
        assert!(jh.is_finished());
        assert_eq!(jh.try_take(), None);
    }

    #[test]
    fn schedule_fingerprint_is_deterministic_and_order_sensitive() {
        let run_once = |flip: bool| {
            let mut sim = Sim::new();
            let h = sim.handle();
            for i in 0..4u64 {
                let h2 = h.clone();
                let d = if flip { 4 - i } else { i + 1 };
                sim.spawn(async move {
                    h2.sleep(SimDuration::from_millis(d)).await;
                });
            }
            sim.run();
            sim.schedule_fingerprint()
        };
        assert_eq!(run_once(false), run_once(false));
        assert_ne!(run_once(false), run_once(true));
    }

    #[test]
    fn duplicate_wakes_dedupe_to_one_poll() {
        // Two sends at the same instant enqueue the receiver once, not
        // twice: the `queued` flag absorbs the duplicate wake.
        let (polls, _) = Sim::run_to_completion(|h| {
            Box::pin(async move {
                let (tx, rx) = crate::sync::channel::<u32>();
                let h2 = h.clone();
                let consumer = h.spawn(async move {
                    let mut got = Vec::new();
                    while let Some(v) = rx.recv().await {
                        got.push(v);
                    }
                    got
                });
                h2.yield_now().await; // let the consumer block first
                tx.send(1);
                tx.send(2); // duplicate wake: consumer already queued
                drop(tx);
                consumer.await
            })
        });
        assert_eq!(polls, vec![1, 2]);
    }

    #[test]
    fn slab_slots_are_reused_without_cross_talk() {
        // Churn through many short-lived tasks so slots recycle, while a
        // long-lived task keeps its slot; stale wakes must never reach
        // the wrong task.
        let (total, _) = Sim::run_to_completion(|h| {
            Box::pin(async move {
                let mut total = 0u64;
                for round in 0..50u64 {
                    let h2 = h.clone();
                    let jh = h.spawn(async move {
                        h2.sleep(SimDuration::from_micros(1)).await;
                        round
                    });
                    total += jh.await;
                }
                total
            })
        });
        assert_eq!(total, (0..50).sum());
    }

    #[test]
    fn sleep_wakes_most_recent_poller() {
        // A Sleep first polled inside one task and then re-polled from a
        // different task must wake the second task at fire time (the
        // stale-waker bug fixed by the shared waker slot).
        use std::sync::atomic::{AtomicU32, Ordering};
        use std::sync::Arc;

        struct CountWaker(AtomicU32);
        impl std::task::Wake for CountWaker {
            fn wake(self: Arc<Self>) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }

        let mut sim = Sim::new();
        let h = sim.handle();
        let mut sleep = h.sleep(SimDuration::from_millis(5));
        // First poll with a throwaway waker (simulating the first branch
        // of a race that later loses interest).
        let counter = Arc::new(CountWaker(AtomicU32::new(0)));
        let first = Waker::from(Arc::clone(&counter));
        let mut cx = Context::from_waker(&first);
        assert!(Pin::new(&mut sleep).poll(&mut cx).is_pending());
        // Re-poll from a real task, which then awaits the same sleep.
        let jh = sim.spawn(async move {
            sleep.await;
            h.now()
        });
        sim.run();
        // The timer woke the task (the most recent poller), not the
        // throwaway waker.
        assert_eq!(jh.try_take().unwrap(), SimTime(5_000_000));
        assert_eq!(counter.0.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn same_instant_timers_fire_in_seq_order() {
        // Three tasks sleeping to the same deadline resume in the order
        // their timers were registered, even though the heap pops them as
        // one batch.
        let (order, end) = Sim::run_to_completion(|h| {
            Box::pin(async move {
                let log: Rc<RefCell<Vec<u32>>> = Rc::default();
                let futs: Vec<_> = (0..3u32)
                    .map(|i| {
                        let h2 = h.clone();
                        let log = Rc::clone(&log);
                        async move {
                            h2.sleep_until(SimTime(1_000)).await;
                            log.borrow_mut().push(i);
                        }
                    })
                    .collect();
                join_all(&h, futs).await;
                let order = log.borrow().clone();
                order
            })
        });
        assert_eq!(order, vec![0, 1, 2]);
        assert_eq!(end, SimTime(1_000));
    }
}
