//! The deterministic virtual-time executor.
//!
//! A [`Sim`] owns a set of tasks (plain Rust futures) and an event heap of
//! timers. The run loop polls every ready task until quiescence, then pops
//! the earliest timer, advances virtual time to it, and wakes its task.
//! Ties on the heap are broken by insertion sequence number, so a given
//! program always produces the same schedule — simulations are exactly
//! reproducible.
//!
//! The executor is single-threaded and `!Send`; cross-configuration sweeps
//! parallelize at the granularity of whole `Sim` instances instead.

use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};

use crate::time::{SimDuration, SimTime};

type TaskId = u64;
type BoxFuture = Pin<Box<dyn Future<Output = ()>>>;

/// Timer heap entry: wake `waker` at `time`. Ordered by `(time, seq)`.
struct TimerEntry {
    time: SimTime,
    seq: u64,
    waker: Waker,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Queue of task ids whose wakers fired; shared with the (Send + Sync)
/// wakers even though the executor itself is single-threaded.
type ReadyQueue = Arc<Mutex<VecDeque<TaskId>>>;

struct TaskWaker {
    id: TaskId,
    ready: ReadyQueue,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.ready
            .lock()
            .expect("ready queue poisoned")
            .push_back(self.id);
    }
    fn wake_by_ref(self: &Arc<Self>) {
        self.ready
            .lock()
            .expect("ready queue poisoned")
            .push_back(self.id);
    }
}

struct Core {
    now: Cell<SimTime>,
    seq: Cell<u64>,
    timers: RefCell<BinaryHeap<Reverse<TimerEntry>>>,
    ready: ReadyQueue,
    tasks: RefCell<HashMap<TaskId, BoxFuture>>,
    next_task: Cell<TaskId>,
    events_processed: Cell<u64>,
}

/// A cloneable, lightweight handle into a running simulation.
///
/// Handles are captured by tasks to read the clock, sleep, and spawn
/// subtasks. All clones refer to the same simulation.
#[derive(Clone)]
pub struct SimHandle {
    core: Rc<Core>,
}

/// A deterministic discrete-event simulation.
pub struct Sim {
    handle: SimHandle,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    /// Create an empty simulation at virtual time zero.
    pub fn new() -> Sim {
        Sim {
            handle: SimHandle {
                core: Rc::new(Core {
                    now: Cell::new(SimTime::ZERO),
                    seq: Cell::new(0),
                    timers: RefCell::new(BinaryHeap::new()),
                    ready: Arc::new(Mutex::new(VecDeque::new())),
                    tasks: RefCell::new(HashMap::new()),
                    next_task: Cell::new(0),
                    events_processed: Cell::new(0),
                }),
            },
        }
    }

    /// The handle used by tasks to interact with the simulation.
    pub fn handle(&self) -> SimHandle {
        self.handle.clone()
    }

    /// Spawn a root task. Equivalent to `handle().spawn(fut)`.
    pub fn spawn<T: 'static>(&self, fut: impl Future<Output = T> + 'static) -> JoinHandle<T> {
        self.handle.spawn(fut)
    }

    /// Run until no runnable task and no pending timer remain, and return
    /// the final virtual time.
    ///
    /// Tasks still blocked on a channel/barrier with no peer are simply
    /// dropped when the simulation ends (deadlock is not an error at this
    /// layer; higher layers assert on join handles instead).
    pub fn run(&mut self) -> SimTime {
        let core = &self.handle.core;
        loop {
            // Drain the ready queue to quiescence at the current instant.
            loop {
                let tid = core.ready.lock().expect("ready queue poisoned").pop_front();
                let Some(tid) = tid else { break };
                let Some(mut fut) = core.tasks.borrow_mut().remove(&tid) else {
                    // Task finished earlier; stale wake.
                    continue;
                };
                core.events_processed.set(core.events_processed.get() + 1);
                let waker = Waker::from(Arc::new(TaskWaker {
                    id: tid,
                    ready: Arc::clone(&core.ready),
                }));
                let mut cx = Context::from_waker(&waker);
                if fut.as_mut().poll(&mut cx).is_pending() {
                    core.tasks.borrow_mut().insert(tid, fut);
                }
            }
            // Advance to the next timer.
            let next = core.timers.borrow_mut().pop();
            match next {
                Some(Reverse(entry)) => {
                    debug_assert!(entry.time >= core.now.get());
                    core.now.set(entry.time);
                    entry.waker.wake();
                }
                None => break,
            }
        }
        core.now.get()
    }

    /// Run a single root future to completion and return its output along
    /// with the final virtual time. Panics if the future deadlocks (cannot
    /// complete before the event queue empties).
    pub fn run_to_completion<T: 'static>(
        fut: impl FnOnce(SimHandle) -> Pin<Box<dyn Future<Output = T>>>,
    ) -> (T, SimTime) {
        let mut sim = Sim::new();
        let handle = sim.handle();
        let jh = sim.spawn(fut(handle));
        let end = sim.run();
        let out = jh
            .try_take()
            .expect("root task did not complete: simulation deadlocked");
        (out, end)
    }

    /// Number of task polls performed so far (a rough event count, useful
    /// for performance diagnostics).
    pub fn events_processed(&self) -> u64 {
        self.handle.core.events_processed.get()
    }
}

impl SimHandle {
    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.core.now.get()
    }

    fn next_seq(&self) -> u64 {
        let s = self.core.seq.get();
        self.core.seq.set(s + 1);
        s
    }

    /// Register a waker to fire at `deadline`.
    pub(crate) fn register_timer(&self, deadline: SimTime, waker: Waker) {
        let seq = self.next_seq();
        self.core.timers.borrow_mut().push(Reverse(TimerEntry {
            time: deadline.max(self.now()),
            seq,
            waker,
        }));
    }

    /// Spawn a task; it begins running when the executor next reaches the
    /// scheduling loop (at the current virtual instant).
    pub fn spawn<T: 'static>(&self, fut: impl Future<Output = T> + 'static) -> JoinHandle<T> {
        let slot: Rc<RefCell<JoinSlot<T>>> = Rc::new(RefCell::new(JoinSlot {
            value: None,
            waker: None,
        }));
        let slot2 = Rc::clone(&slot);
        let wrapped: BoxFuture = Box::pin(async move {
            let v = fut.await;
            let mut s = slot2.borrow_mut();
            s.value = Some(v);
            if let Some(w) = s.waker.take() {
                w.wake();
            }
        });
        let id = self.core.next_task.get();
        self.core.next_task.set(id + 1);
        self.core.tasks.borrow_mut().insert(id, wrapped);
        self.core
            .ready
            .lock()
            .expect("ready queue poisoned")
            .push_back(id);
        JoinHandle { slot }
    }

    /// Sleep for `dur` of virtual time.
    pub fn sleep(&self, dur: SimDuration) -> Sleep {
        self.sleep_until(self.now() + dur)
    }

    /// Sleep until the given instant (no-op if already past).
    pub fn sleep_until(&self, deadline: SimTime) -> Sleep {
        Sleep {
            handle: self.clone(),
            deadline,
            registered: false,
        }
    }

    /// Yield to let other already-runnable tasks at this instant run
    /// first. (A zero-duration sleep would complete without yielding,
    /// since its deadline is already reached on the first poll.)
    pub fn yield_now(&self) -> YieldNow {
        YieldNow { yielded: false }
    }
}

/// Future returned by [`SimHandle::yield_now`]: pending once, then ready.
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

struct JoinSlot<T> {
    value: Option<T>,
    waker: Option<Waker>,
}

/// Awaits the completion of a spawned task and yields its output.
pub struct JoinHandle<T> {
    slot: Rc<RefCell<JoinSlot<T>>>,
}

impl<T> JoinHandle<T> {
    /// Take the task output if it has completed, without awaiting.
    pub fn try_take(&self) -> Option<T> {
        self.slot.borrow_mut().value.take()
    }

    /// Whether the task has finished (output may already be taken).
    pub fn is_finished(&self) -> bool {
        self.slot.borrow().value.is_some()
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut slot = self.slot.borrow_mut();
        if let Some(v) = slot.value.take() {
            Poll::Ready(v)
        } else {
            slot.waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

/// Future returned by [`SimHandle::sleep`].
pub struct Sleep {
    handle: SimHandle,
    deadline: SimTime,
    registered: bool,
}

impl Future for Sleep {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.handle.now() >= self.deadline {
            return Poll::Ready(());
        }
        if !self.registered {
            self.registered = true;
            let deadline = self.deadline;
            self.handle.register_timer(deadline, cx.waker().clone());
        }
        Poll::Pending
    }
}

/// Await `fut` with a virtual-time deadline: `Some(output)` if it
/// completes within `dur`, `None` otherwise. The future is spawned, so on
/// timeout it keeps running detached (like an abandoned I/O request);
/// callers that need cancellation should check a flag inside the future.
pub async fn with_timeout<T: 'static>(
    handle: &SimHandle,
    dur: SimDuration,
    fut: impl Future<Output = T> + 'static,
) -> Option<T> {
    let deadline = handle.now() + dur;
    let jh = handle.spawn(fut);
    // Poll the join handle against the deadline via a race future.
    struct Race<T> {
        jh: JoinHandle<T>,
        sleep: Sleep,
    }
    impl<T> Future for Race<T> {
        type Output = Option<T>;
        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Option<T>> {
            // All fields are Unpin, so the struct is too.
            let this = self.get_mut();
            if let Poll::Ready(v) = Pin::new(&mut this.jh).poll(cx) {
                return Poll::Ready(Some(v));
            }
            if Pin::new(&mut this.sleep).poll(cx).is_ready() {
                return Poll::Ready(None);
            }
            Poll::Pending
        }
    }
    Race {
        jh,
        sleep: handle.sleep_until(deadline),
    }
    .await
}

/// Await every future in `futs` (spawned concurrently in virtual time) and
/// collect their outputs in order.
///
/// Because awaiting a [`JoinHandle`] consumes no virtual time, the caller
/// resumes at the virtual instant when the *last* future finishes — i.e.
/// this is a fork/join with correct parallel timing.
pub async fn join_all<T: 'static, F>(handle: &SimHandle, futs: Vec<F>) -> Vec<T>
where
    F: Future<Output = T> + 'static,
{
    let handles: Vec<JoinHandle<T>> = futs.into_iter().map(|f| handle.spawn(f)).collect();
    let mut out = Vec::with_capacity(handles.len());
    for h in handles {
        out.push(h.await);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sleep_advances_virtual_time() {
        let mut sim = Sim::new();
        let h = sim.handle();
        let jh = sim.spawn(async move {
            h.sleep(SimDuration::from_millis(250)).await;
            h.now()
        });
        let end = sim.run();
        assert_eq!(end, SimTime(250_000_000));
        assert_eq!(jh.try_take().unwrap(), SimTime(250_000_000));
    }

    #[test]
    fn tasks_interleave_deterministically() {
        let mut sim = Sim::new();
        let log: Rc<RefCell<Vec<(u32, u64)>>> = Rc::new(RefCell::new(Vec::new()));
        for id in 0..3u32 {
            let h = sim.handle();
            let log = Rc::clone(&log);
            sim.spawn(async move {
                for _step in 0..3u64 {
                    h.sleep(SimDuration::from_millis(10 * (id as u64 + 1)))
                        .await;
                    log.borrow_mut().push((id, h.now().as_nanos() / 1_000_000));
                }
            });
        }
        sim.run();
        let got = log.borrow().clone();
        // Task 0 ticks at 10,20,30; task 1 at 20,40,60; task 2 at 30,60,90.
        // Ties resolve by timer registration order: task 1 registered its
        // t=20 timer at t=0, before task 0 re-registered at t=10, so task 1
        // fires first at t=20; likewise at t=30 and t=60.
        assert_eq!(
            got,
            vec![
                (0, 10),
                (1, 20),
                (0, 20),
                (2, 30),
                (0, 30),
                (1, 40),
                (2, 60),
                (1, 60),
                (2, 90)
            ]
        );
    }

    #[test]
    fn join_all_resumes_at_last_completion() {
        let mut sim = Sim::new();
        let h = sim.handle();
        let jh = sim.spawn(async move {
            let h2 = h.clone();
            let futs: Vec<_> = (1..=4u64)
                .map(|i| {
                    let h3 = h2.clone();
                    async move {
                        h3.sleep(SimDuration::from_secs(i)).await;
                        i
                    }
                })
                .collect();
            let outs = join_all(&h2, futs).await;
            (outs, h2.now())
        });
        sim.run();
        let (outs, t) = jh.try_take().unwrap();
        assert_eq!(outs, vec![1, 2, 3, 4]);
        assert_eq!(t, SimTime::ZERO + SimDuration::from_secs(4));
    }

    #[test]
    fn nested_spawn_runs_at_same_instant() {
        let (val, end) = Sim::run_to_completion(|h| {
            Box::pin(async move {
                let child = h.spawn(async { 42 });
                child.await
            })
        });
        assert_eq!(val, 42);
        assert_eq!(end, SimTime::ZERO);
    }

    #[test]
    fn run_returns_final_time_with_no_tasks() {
        let mut sim = Sim::new();
        assert_eq!(sim.run(), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "deadlocked")]
    fn run_to_completion_detects_deadlock() {
        Sim::run_to_completion(|_h| {
            Box::pin(async move {
                // A future that is never woken.
                std::future::pending::<()>().await;
            })
        });
    }

    #[test]
    fn sleep_until_past_instant_is_noop() {
        let (t, end) = Sim::run_to_completion(|h| {
            Box::pin(async move {
                h.sleep(SimDuration::from_secs(5)).await;
                h.sleep_until(SimTime(1)).await; // already past
                h.now()
            })
        });
        assert_eq!(t, SimTime::ZERO + SimDuration::from_secs(5));
        assert_eq!(end, t);
    }

    #[test]
    fn blocked_tasks_are_dropped_cleanly_at_sim_end() {
        // A task waiting on a channel with no sender left alive at the
        // end of the run is simply dropped — no panic, no leak observable
        // through the join handle.
        let mut sim = Sim::new();
        let (tx, rx) = crate::sync::channel::<u32>();
        let jh = sim.spawn(async move { rx.recv().await });
        let end = sim.run(); // tx still alive: recv never resolves
        assert_eq!(end, SimTime::ZERO);
        assert!(!jh.is_finished());
        drop(tx);
    }

    #[test]
    fn yield_now_lets_peers_run_first() {
        let (order, _) = Sim::run_to_completion(|h| {
            Box::pin(async move {
                let log: Rc<RefCell<Vec<u32>>> = Rc::default();
                let l1 = Rc::clone(&log);
                let peer = h.spawn(async move {
                    l1.borrow_mut().push(1);
                });
                h.yield_now().await;
                log.borrow_mut().push(2);
                peer.await;
                let order = log.borrow().clone();
                order
            })
        });
        assert_eq!(order, vec![1, 2]);
    }

    #[test]
    fn with_timeout_returns_some_when_fast() {
        let (out, _) = Sim::run_to_completion(|h| {
            Box::pin(async move {
                let h2 = h.clone();
                with_timeout(&h, SimDuration::from_secs(10), async move {
                    h2.sleep(SimDuration::from_secs(1)).await;
                    42
                })
                .await
            })
        });
        assert_eq!(out, Some(42));
    }

    #[test]
    fn with_timeout_returns_none_when_slow() {
        let (out, end) = Sim::run_to_completion(|h| {
            Box::pin(async move {
                let h2 = h.clone();
                let r = with_timeout(&h, SimDuration::from_secs(1), async move {
                    h2.sleep(SimDuration::from_secs(10)).await;
                    42
                })
                .await;
                (r, h.now())
            })
        });
        let (r, t) = out;
        assert_eq!(r, None);
        assert_eq!(t, SimTime(1_000_000_000));
        // The abandoned future still runs to completion.
        assert_eq!(end, SimTime(10_000_000_000));
    }

    #[test]
    fn events_processed_counts_polls() {
        let mut sim = Sim::new();
        let h = sim.handle();
        sim.spawn(async move {
            for _ in 0..10 {
                h.sleep(SimDuration::from_millis(1)).await;
            }
        });
        sim.run();
        assert!(sim.events_processed() >= 10);
    }
}
