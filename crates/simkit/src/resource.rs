//! FIFO service resources.
//!
//! A [`Resource`] models a station with `capacity` identical servers and an
//! unbounded FIFO queue — a disk, a NIC, an I/O-node request processor.
//! Instead of maintaining an explicit waiter queue, it uses the *virtual
//! queue* technique: each server keeps the instant at which it next becomes
//! free. A request arriving at `t` is assigned the earliest-free server and
//! starts at `max(t, server_free)`; the server's free time is pushed
//! forward by the service duration. Because requests book in call order
//! (which the deterministic executor fixes), this is exactly FIFO-by-
//! arrival, and each request costs a single timer event.
//!
//! Two flavours:
//! - [`Resource::serve`] books and then sleeps until completion;
//! - [`Resource::reserve_at`] books only, returning `(start, end)`, so a
//!   caller can book many chunk services across several resources and then
//!   sleep once until the max completion (fan-out without task spawning).

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::executor::SimHandle;
use crate::time::{SimDuration, SimTime};

/// Aggregate statistics of a resource, for utilization reports.
#[derive(Clone, Copy, Debug, Default)]
pub struct ResourceStats {
    /// Total number of service requests booked.
    pub requests: u64,
    /// Sum of service durations (busy time across all servers).
    pub busy: SimDuration,
    /// Sum of queueing delays (start − arrival).
    pub queued: SimDuration,
    /// Latest completion instant booked so far.
    pub last_completion: SimTime,
}

impl ResourceStats {
    /// Mean queueing delay per request.
    pub fn mean_queue_delay(&self) -> SimDuration {
        self.queued
            .as_nanos()
            .checked_div(self.requests)
            .map_or(SimDuration::ZERO, SimDuration)
    }

    /// Utilization of the station over `[0, horizon]`, in `[0, capacity]`.
    pub fn utilization(&self, horizon: SimTime, capacity: usize) -> f64 {
        if horizon == SimTime::ZERO {
            return 0.0;
        }
        self.busy.as_secs_f64() / horizon.as_secs_f64() / capacity.max(1) as f64
    }
}

struct Inner {
    /// Earliest-free instants of the servers (min-heap).
    free: BinaryHeap<Reverse<SimTime>>,
    stats: ResourceStats,
}

/// A FIFO multi-server service station in virtual time.
pub struct Resource {
    handle: SimHandle,
    name: String,
    capacity: usize,
    inner: RefCell<Inner>,
}

impl Resource {
    /// Create a station with `capacity` servers, all free at time zero.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(handle: SimHandle, name: impl Into<String>, capacity: usize) -> Resource {
        assert!(capacity > 0, "resource capacity must be positive");
        let mut free = BinaryHeap::with_capacity(capacity);
        for _ in 0..capacity {
            free.push(Reverse(SimTime::ZERO));
        }
        Resource {
            handle,
            name: name.into(),
            capacity,
            inner: RefCell::new(Inner {
                free,
                stats: ResourceStats::default(),
            }),
        }
    }

    /// Station name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of servers.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Book a service of `dur` for a request arriving at `arrival`, without
    /// waiting. Returns the `(start, end)` instants of the service.
    pub fn reserve_at(&self, arrival: SimTime, dur: SimDuration) -> (SimTime, SimTime) {
        let mut inner = self.inner.borrow_mut();
        let Reverse(server_free) = inner.free.pop().expect("resource has at least one server");
        let start = arrival.max(server_free);
        let end = start + dur;
        inner.free.push(Reverse(end));
        inner.stats.requests += 1;
        inner.stats.busy += dur;
        inner.stats.queued += start.since(arrival);
        inner.stats.last_completion = inner.stats.last_completion.max(end);
        (start, end)
    }

    /// Book a service of `dur` arriving now. Returns `(start, end)`.
    pub fn reserve(&self, dur: SimDuration) -> (SimTime, SimTime) {
        self.reserve_at(self.handle.now(), dur)
    }

    /// Book a service of `dur` arriving now and wait (in virtual time)
    /// until it completes. Returns the completion instant.
    pub async fn serve(&self, dur: SimDuration) -> SimTime {
        let (_start, end) = self.reserve(dur);
        self.handle.sleep_until(end).await;
        end
    }

    /// Snapshot of the station's statistics.
    pub fn stats(&self) -> ResourceStats {
        self.inner.borrow().stats
    }

    /// Earliest instant at which any server is free (i.e. when a request
    /// arriving now would start).
    pub fn earliest_free(&self) -> SimTime {
        self.inner
            .borrow()
            .free
            .peek()
            .map(|Reverse(t)| *t)
            .expect("resource has at least one server")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{join_all, Sim};
    use std::rc::Rc;

    #[test]
    fn single_server_serializes_fifo() {
        let (ends, _) = Sim::run_to_completion(|h| {
            Box::pin(async move {
                let r = Rc::new(Resource::new(h.clone(), "disk", 1));
                let futs: Vec<_> = (0..3)
                    .map(|_| {
                        let r = Rc::clone(&r);
                        async move { r.serve(SimDuration::from_millis(10)).await }
                    })
                    .collect();
                join_all(&h, futs).await
            })
        });
        assert_eq!(
            ends,
            vec![
                SimTime(10_000_000),
                SimTime(20_000_000),
                SimTime(30_000_000)
            ]
        );
    }

    #[test]
    fn multi_server_runs_in_parallel() {
        let (ends, _) = Sim::run_to_completion(|h| {
            Box::pin(async move {
                let r = Rc::new(Resource::new(h.clone(), "disks", 2));
                let futs: Vec<_> = (0..4)
                    .map(|_| {
                        let r = Rc::clone(&r);
                        async move { r.serve(SimDuration::from_millis(10)).await }
                    })
                    .collect();
                join_all(&h, futs).await
            })
        });
        assert_eq!(
            ends,
            vec![
                SimTime(10_000_000),
                SimTime(10_000_000),
                SimTime(20_000_000),
                SimTime(20_000_000)
            ]
        );
    }

    #[test]
    fn reserve_books_without_sleeping() {
        let mut sim = Sim::new();
        let h = sim.handle();
        let r = Resource::new(h.clone(), "nic", 1);
        let (s1, e1) = r.reserve(SimDuration::from_secs(1));
        let (s2, e2) = r.reserve(SimDuration::from_secs(2));
        assert_eq!((s1, e1), (SimTime::ZERO, SimTime(1_000_000_000)));
        assert_eq!((s2, e2), (SimTime(1_000_000_000), SimTime(3_000_000_000)));
        assert_eq!(h.now(), SimTime::ZERO); // no time consumed
        assert_eq!(sim.run(), SimTime::ZERO);
    }

    #[test]
    fn reserve_at_future_arrival() {
        let mut sim = Sim::new();
        let h = sim.handle();
        let r = Resource::new(h, "nic", 1);
        let (s, e) = r.reserve_at(SimTime(5_000), SimDuration::from_nanos(100));
        assert_eq!((s, e), (SimTime(5_000), SimTime(5_100)));
        // Second request arrives earlier but books later — FIFO by booking.
        let (s2, _) = r.reserve_at(SimTime(0), SimDuration::from_nanos(100));
        assert_eq!(s2, SimTime(5_100));
        sim.run();
    }

    #[test]
    fn stats_accumulate() {
        let mut sim = Sim::new();
        let r = Resource::new(sim.handle(), "disk", 1);
        r.reserve(SimDuration::from_secs(2));
        r.reserve(SimDuration::from_secs(2)); // queued 2s
        let st = r.stats();
        assert_eq!(st.requests, 2);
        assert_eq!(st.busy, SimDuration::from_secs(4));
        assert_eq!(st.queued, SimDuration::from_secs(2));
        assert_eq!(st.mean_queue_delay(), SimDuration::from_secs(1));
        assert_eq!(st.last_completion, SimTime(4_000_000_000));
        assert!((st.utilization(SimTime(4_000_000_000), 1) - 1.0).abs() < 1e-9);
        sim.run();
    }

    #[test]
    fn earliest_free_tracks_bookings() {
        let sim = Sim::new();
        let r = Resource::new(sim.handle(), "disk", 2);
        assert_eq!(r.earliest_free(), SimTime::ZERO);
        r.reserve(SimDuration::from_secs(5));
        // Second server still idle.
        assert_eq!(r.earliest_free(), SimTime::ZERO);
        r.reserve(SimDuration::from_secs(3));
        assert_eq!(r.earliest_free(), SimTime(3_000_000_000));
        assert_eq!(r.name(), "disk");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let sim = Sim::new();
        let _ = Resource::new(sim.handle(), "bad", 0);
    }
}
