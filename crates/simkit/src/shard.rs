//! Sharded conservative-lookahead execution of multiple `Sim`s.
//!
//! A [`Sim`] is deliberately `!Send`: its executor runs Rc/RefCell state on
//! one thread. This module parallelizes *across* sims instead: the event
//! graph is partitioned into shards, each shard owns an ordinary
//! single-threaded [`Sim`], and the shards advance together through
//! conservative time windows (Chandy–Misra-style null-message reasoning,
//! specialized to a barrier-synchronous window protocol).
//!
//! # Protocol
//!
//! Cross-shard interaction happens only through [`Outbox`] envelopes, and
//! every envelope must be sent with at least `lookahead` of virtual delay
//! (the minimum cross-shard network latency — "free" lookahead extracted
//! from the machine model). Each round:
//!
//! 1. every shard runs all events strictly before the horizon
//!    `H = T + lookahead`, where `T` is the minimum next-event time across
//!    shards at the start of the round ([`Sim::run_until`]);
//! 2. workers exchange the envelopes those events produced (barrier);
//! 3. each shard sorts its incoming envelopes by `(deliver_at, src, seq)`
//!    and injects them as timed deliveries (barrier);
//! 4. the new global minimum next-event time yields the next horizon.
//!
//! Safety: every event executed in a round is at time `t ≥ T`, so any
//! envelope it sends delivers at `t + lookahead ≥ H` — never inside the
//! window being executed, and never in another shard's past. The runtime
//! asserts this invariant on every envelope. Each round advances the
//! horizon by at least one lookahead, so progress is guaranteed.
//!
//! # Determinism
//!
//! The shard decomposition is fixed by the caller (one builder per shard),
//! never by the worker count. A shard's schedule depends only on its own
//! program, the horizon sequence, and its sorted envelope stream — all
//! pure functions of global simulation state — so a run with 1 worker and
//! a run with N workers execute bit-identical per-shard schedules. The
//! combined [`ShardedReport::fingerprint`] (an order-sensitive fold of
//! per-shard schedule fingerprints in shard order) is the regression
//! oracle for that guarantee.

use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::barrier::SpinBarrier;
use crate::executor::{combine_fingerprints, Sim};
use crate::time::{SimDuration, SimTime};

/// A cross-shard message in flight: delivered to shard `dst` at virtual
/// time `deliver_at`. Envelopes are globally ordered by
/// `(deliver_at, src, seq)`, which makes the injection order — and hence
/// the destination shard's schedule — independent of host-thread timing.
pub struct Envelope<M> {
    /// Virtual delivery time (must be ≥ the sending round's horizon).
    pub deliver_at: SimTime,
    /// Sending shard index.
    pub src: usize,
    /// Destination shard index.
    pub dst: usize,
    /// Per-sender sequence number (tie-break within one instant).
    pub seq: u64,
    /// The message.
    pub msg: M,
}

/// Per-shard staging queue for outgoing cross-shard envelopes. Cloneable;
/// clones share the queue. Lives on the shard's own thread (`!Send`), like
/// everything else inside a shard.
pub struct Outbox<M> {
    inner: Rc<RefCell<OutboxInner<M>>>,
}

struct OutboxInner<M> {
    src: usize,
    next_seq: u64,
    queue: Vec<Envelope<M>>,
}

impl<M> Clone for Outbox<M> {
    fn clone(&self) -> Self {
        Outbox {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<M> Outbox<M> {
    fn new(src: usize) -> Outbox<M> {
        Outbox {
            inner: Rc::new(RefCell::new(OutboxInner {
                src,
                next_seq: 0,
                queue: Vec::new(),
            })),
        }
    }

    /// Queue `msg` for delivery to shard `dst` at virtual time
    /// `deliver_at`. The delay from the sending event to `deliver_at` must
    /// be at least the engine lookahead; the engine asserts it when the
    /// envelope is collected.
    pub fn send(&self, dst: usize, deliver_at: SimTime, msg: M) {
        let mut inner = self.inner.borrow_mut();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let src = inner.src;
        inner.queue.push(Envelope {
            deliver_at,
            src,
            dst,
            seq,
            msg,
        });
    }

    fn drain(&self) -> Vec<Envelope<M>> {
        std::mem::take(&mut self.inner.borrow_mut().queue)
    }
}

/// What a shard builder receives: its identity and its outbox.
pub struct ShardCtx<M> {
    /// This shard's index, `0..shards`.
    pub index: usize,
    /// Total shard count.
    pub shards: usize,
    /// The engine lookahead: the minimum virtual delay every cross-shard
    /// envelope must carry.
    pub lookahead: SimDuration,
    /// Queue for outgoing cross-shard envelopes.
    pub outbox: Outbox<M>,
}

/// What a shard builder returns: the shard's simulation, a delivery hook
/// for incoming envelopes, and a finisher that extracts the shard's
/// result after the run.
pub struct ShardRuntime<M, R> {
    /// The shard's single-threaded simulation, fully populated with tasks.
    pub sim: Sim,
    /// Called at `deliver_at` (in the shard's virtual time) with each
    /// incoming message, in global `(deliver_at, src, seq)` order.
    /// Typically pushes into a channel or wakes a waiting task.
    pub deliver: Box<dyn FnMut(M)>,
    /// Extracts the shard's result once no shard has events left.
    pub finish: Box<dyn FnOnce() -> R>,
}

/// The outcome of a sharded run.
pub struct ShardedReport<R> {
    /// Per-shard results, in shard-index order.
    pub results: Vec<R>,
    /// Order-sensitive fold of per-shard schedule fingerprints (shard
    /// order): bit-identical across worker counts.
    pub fingerprint: u64,
    /// Total task polls across all shards.
    pub events: u64,
    /// Latest virtual time reached by any shard.
    pub end_time: SimTime,
    /// Synchronization rounds executed.
    pub rounds: u64,
    /// Host worker threads actually used.
    pub workers: usize,
}

/// `Option<SimTime>` packed into an atomic: `u64::MAX` means "no event".
const NO_EVENT: u64 = u64::MAX;

fn pack(t: Option<SimTime>) -> u64 {
    match t {
        Some(t) => t.as_nanos(),
        None => NO_EVENT,
    }
}

struct ShardOut<R> {
    result: R,
    fingerprint: u64,
    events: u64,
    end: SimTime,
}

/// Shared engine state visible to all workers.
struct Shared<M, R> {
    lookahead: SimDuration,
    shards: usize,
    workers: usize,
    barrier: SpinBarrier,
    /// Next-event time per shard (packed; see [`pack`]).
    next_evt: Vec<AtomicU64>,
    /// Earliest delivery time each shard's current round *sent* (packed).
    /// Envelopes staged this round are not yet timers anywhere, so the
    /// horizon computation must count them separately.
    out_min: Vec<AtomicU64>,
    /// Incoming envelopes per destination shard, staged between rounds.
    inboxes: Vec<Mutex<Vec<Envelope<M>>>>,
    /// Per-shard outputs, filled at the end of the run.
    outputs: Vec<Mutex<Option<ShardOut<R>>>>,
    /// Set when any worker panics; everyone unwinds at the next barrier.
    poisoned: AtomicBool,
    panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl<M, R> Shared<M, R> {
    fn poison(&self, payload: Box<dyn std::any::Any + Send>) {
        let mut slot = self.panic_payload.lock().unwrap();
        if slot.is_none() {
            *slot = Some(payload);
        }
        self.poisoned.store(true, Ordering::Release);
    }
}

/// Run `builders.len()` shards to completion on up to `workers` host
/// threads and collect their results.
///
/// Shard `i` is built and run on worker `i % workers`; the worker count
/// affects only host-thread placement, never the schedule (see the module
/// docs). `lookahead` must be positive when there is more than one shard.
///
/// # Panics
/// Panics if any shard's program panics (the panic is propagated), or if
/// a shard sends a cross-shard envelope with less than `lookahead` of
/// virtual delay.
pub fn run_sharded<M, R, B>(
    lookahead: SimDuration,
    workers: usize,
    builders: Vec<B>,
) -> ShardedReport<R>
where
    M: Send + 'static,
    R: Send + 'static,
    B: FnOnce(ShardCtx<M>) -> ShardRuntime<M, R> + Send,
{
    let shards = builders.len();
    assert!(shards > 0, "need at least one shard");
    if shards == 1 {
        return run_single(lookahead, builders.into_iter().next().expect("one builder"));
    }
    assert!(
        lookahead > SimDuration::ZERO,
        "conservative execution needs a positive lookahead"
    );
    let workers = workers.clamp(1, shards);

    let shared: Shared<M, R> = Shared {
        lookahead,
        shards,
        workers,
        barrier: SpinBarrier::new(workers),
        next_evt: (0..shards).map(|_| AtomicU64::new(0)).collect(),
        out_min: (0..shards).map(|_| AtomicU64::new(NO_EVENT)).collect(),
        inboxes: (0..shards).map(|_| Mutex::new(Vec::new())).collect(),
        outputs: (0..shards).map(|_| Mutex::new(None)).collect(),
        poisoned: AtomicBool::new(false),
        panic_payload: Mutex::new(None),
    };
    let builder_slots: Mutex<Vec<Option<B>>> = Mutex::new(builders.into_iter().map(Some).collect());
    let rounds = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for w in 0..workers {
            let shared = &shared;
            let builder_slots = &builder_slots;
            let rounds = &rounds;
            scope.spawn(move || worker_loop(w, shared, builder_slots, rounds));
        }
    });

    if shared.poisoned.load(Ordering::Acquire) {
        let payload = shared
            .panic_payload
            .lock()
            .unwrap()
            .take()
            .unwrap_or_else(|| Box::new("sharded worker panicked"));
        resume_unwind(payload);
    }

    let mut results = Vec::with_capacity(shards);
    let mut fingerprints = Vec::with_capacity(shards);
    let mut events = 0u64;
    let mut end_time = SimTime::ZERO;
    for slot in &shared.outputs {
        let out = slot.lock().unwrap().take().expect("shard produced output");
        events += out.events;
        end_time = end_time.max(out.end);
        fingerprints.push(out.fingerprint);
        results.push(out.result);
    }
    ShardedReport {
        results,
        fingerprint: combine_fingerprints(fingerprints),
        events,
        end_time,
        rounds: rounds.load(Ordering::Acquire),
        workers,
    }
}

/// Degenerate one-shard run: no windows, no barriers — the legacy
/// single-executor path, wrapped in the same report shape.
fn run_single<M, R, B>(lookahead: SimDuration, builder: B) -> ShardedReport<R>
where
    B: FnOnce(ShardCtx<M>) -> ShardRuntime<M, R>,
{
    let ctx = ShardCtx {
        index: 0,
        shards: 1,
        lookahead,
        outbox: Outbox::new(0),
    };
    let outbox = ctx.outbox.clone();
    let mut rt = builder(ctx);
    let end = rt.sim.run();
    assert!(
        outbox.drain().is_empty(),
        "single-shard run must not send cross-shard envelopes"
    );
    let fingerprint = rt.sim.schedule_fingerprint();
    ShardedReport {
        events: rt.sim.events_processed(),
        fingerprint: combine_fingerprints([fingerprint]),
        end_time: end,
        rounds: 0,
        workers: 1,
        results: vec![(rt.finish)()],
    }
}

/// Shared handle to a shard's envelope-delivery hook.
type DeliverFn<M> = Rc<RefCell<Box<dyn FnMut(M)>>>;

/// One shard as a worker sees it.
struct LocalShard<M, R> {
    index: usize,
    sim: Sim,
    deliver: DeliverFn<M>,
    finish: Option<Box<dyn FnOnce() -> R>>,
    outbox: Outbox<M>,
}

fn worker_loop<M, R, B>(
    w: usize,
    shared: &Shared<M, R>,
    builder_slots: &Mutex<Vec<Option<B>>>,
    rounds: &AtomicU64,
) where
    M: Send + 'static,
    R: Send + 'static,
    B: FnOnce(ShardCtx<M>) -> ShardRuntime<M, R> + Send,
{
    // Build this worker's shards. A panicking builder poisons the run but
    // the worker still participates in the barrier protocol so the other
    // workers are not left waiting.
    let mut locals: Vec<LocalShard<M, R>> = Vec::new();
    let built = catch_unwind(AssertUnwindSafe(|| {
        let mut out = Vec::new();
        for index in (w..shared.shards).step_by(shared.workers) {
            let builder = builder_slots.lock().unwrap()[index]
                .take()
                .expect("each shard is built once");
            let outbox = Outbox::new(index);
            let rt = builder(ShardCtx {
                index,
                shards: shared.shards,
                lookahead: shared.lookahead,
                outbox: outbox.clone(),
            });
            out.push(LocalShard {
                index,
                sim: rt.sim,
                deliver: Rc::new(RefCell::new(rt.deliver)),
                finish: Some(rt.finish),
                outbox,
            });
        }
        out
    }));
    let mut dead = match built {
        Ok(shards) => {
            locals = shards;
            false
        }
        Err(p) => {
            shared.poison(p);
            true
        }
    };

    // All shards start at virtual time zero with their spawns ready, so
    // the initial published next-event times (zero) give T = 0 and the
    // first horizon is exactly one lookahead.
    let mut horizon = SimTime::ZERO + shared.lookahead;
    let mut local_rounds = 0u64;
    loop {
        // Phase 1: run every owned shard up to the horizon and stage the
        // envelopes its events produced. Publish the shard's next pending
        // event time and the earliest delivery it sent this round.
        if !dead {
            let r = catch_unwind(AssertUnwindSafe(|| {
                for shard in locals.iter_mut() {
                    let next = shard.sim.run_until(horizon);
                    shared.next_evt[shard.index].store(pack(next), Ordering::Release);
                    let outgoing = shard.outbox.drain();
                    let mut sent_min = NO_EVENT;
                    if !outgoing.is_empty() {
                        // Group by destination locally, then take each
                        // destination lock once.
                        let mut by_dst: Vec<Vec<Envelope<M>>> = Vec::new();
                        by_dst.resize_with(shared.shards, Vec::new);
                        for env in outgoing {
                            assert!(
                                env.deliver_at >= horizon,
                                "cross-shard envelope from shard {} to {} delivers at {:?}, \
                                 inside the current window (horizon {:?}): the sender undercut \
                                 the engine lookahead of {:?}",
                                env.src,
                                env.dst,
                                env.deliver_at,
                                horizon,
                                shared.lookahead,
                            );
                            assert!(env.dst < shared.shards, "envelope to unknown shard");
                            sent_min = sent_min.min(env.deliver_at.as_nanos());
                            by_dst[env.dst].push(env);
                        }
                        for (dst, batch) in by_dst.into_iter().enumerate() {
                            if !batch.is_empty() {
                                shared.inboxes[dst].lock().unwrap().extend(batch);
                            }
                        }
                    }
                    shared.out_min[shard.index].store(sent_min, Ordering::Release);
                }
            }));
            if let Err(p) = r {
                shared.poison(p);
                dead = true;
            }
        }
        shared.barrier.wait();
        if shared.poisoned.load(Ordering::Acquire) {
            break;
        }

        // Between the barriers every worker computes the same next horizon
        // from the same published values: phase 1 (the only writer of
        // `next_evt`/`out_min`) is fenced off by the barrier above, and the
        // next round's phase 1 by the barrier below. Staged envelopes are
        // counted via `out_min` — they are not timers anywhere yet.
        let t = shared
            .next_evt
            .iter()
            .chain(shared.out_min.iter())
            .map(|a| a.load(Ordering::Acquire))
            .min()
            .expect("at least one shard");

        // Phase 2: inject incoming envelopes in deterministic order. The
        // injector tasks are polled (registering their delivery timers) at
        // the start of the next round's `run_until`, in spawn order —
        // deterministic regardless of worker placement.
        if !dead && t != NO_EVENT {
            let r = catch_unwind(AssertUnwindSafe(|| {
                for shard in locals.iter_mut() {
                    let mut inbox =
                        std::mem::take(&mut *shared.inboxes[shard.index].lock().unwrap());
                    if inbox.is_empty() {
                        continue;
                    }
                    inbox.sort_by_key(|e| (e.deliver_at, e.src, e.seq));
                    for env in inbox {
                        let deliver = Rc::clone(&shard.deliver);
                        let handle = shard.sim.handle();
                        let at = env.deliver_at;
                        let msg = env.msg;
                        shard.sim.spawn(async move {
                            handle.sleep_until(at).await;
                            (deliver.borrow_mut())(msg);
                        });
                    }
                }
            }));
            if let Err(p) = r {
                shared.poison(p);
                dead = true;
            }
        }
        shared.barrier.wait();
        if shared.poisoned.load(Ordering::Acquire) {
            break;
        }
        if t == NO_EVENT {
            // No pending timer and no in-flight envelope anywhere: done.
            // Every worker computed the same `t`, so all break together.
            break;
        }
        local_rounds += 1;
        horizon = SimTime(t) + shared.lookahead;
    }

    if w == 0 {
        rounds.store(local_rounds, Ordering::Release);
    }
    if shared.poisoned.load(Ordering::Acquire) {
        return;
    }
    let r = catch_unwind(AssertUnwindSafe(|| {
        for shard in locals.iter_mut() {
            let fingerprint = shard.sim.schedule_fingerprint();
            let events = shard.sim.events_processed();
            let end = shard.sim.handle().now();
            let finish = shard.finish.take().expect("finish called once");
            let out = ShardOut {
                result: finish(),
                fingerprint,
                events,
                end,
            };
            *shared.outputs[shard.index].lock().unwrap() = Some(out);
        }
    }));
    if let Err(p) = r {
        shared.poison(p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::channel;

    const LOOKAHEAD: SimDuration = SimDuration(50_000); // 50 µs

    /// Two shards ping-pong a counter through the mailbox layer; each hop
    /// carries exactly the lookahead of latency.
    fn ping_pong(workers: usize, hops: u64) -> ShardedReport<(u64, SimTime)> {
        let builders: Vec<_> = (0..2usize)
            .map(|_| {
                move |ctx: ShardCtx<u64>| {
                    let sim = Sim::new();
                    let h = sim.handle();
                    let (tx, rx) = channel::<u64>();
                    let outbox = ctx.outbox.clone();
                    let me = ctx.index;
                    let peer = 1 - me;
                    let count = Rc::new(std::cell::Cell::new(0u64));
                    let count2 = Rc::clone(&count);
                    let h2 = h.clone();
                    sim.spawn(async move {
                        if me == 0 {
                            outbox.send(peer, h2.now() + LOOKAHEAD, 1);
                        }
                        while let Some(v) = rx.recv().await {
                            count2.set(count2.get() + 1);
                            if v < hops {
                                outbox.send(peer, h2.now() + LOOKAHEAD, v + 1);
                            } else {
                                break;
                            }
                        }
                    });
                    ShardRuntime {
                        sim,
                        deliver: Box::new(move |m| {
                            tx.send(m);
                        }),
                        finish: Box::new(move || (count.get(), h.now())),
                    }
                }
            })
            .collect();
        run_sharded(LOOKAHEAD, workers, builders)
    }

    #[test]
    fn ping_pong_carries_latency_per_hop() {
        let report = ping_pong(2, 10);
        // 10 messages, each one lookahead after the previous.
        let received: u64 = report.results.iter().map(|(c, _)| c).sum();
        assert_eq!(received, 10);
        assert_eq!(report.end_time, SimTime(10 * LOOKAHEAD.as_nanos()));
        assert!(report.rounds >= 10);
    }

    #[test]
    fn worker_count_does_not_change_the_schedule() {
        let a = ping_pong(1, 25);
        let b = ping_pong(2, 25);
        let c = ping_pong(7, 25); // clamped to the shard count
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.fingerprint, c.fingerprint);
        assert_eq!(a.events, b.events);
        assert_eq!(a.end_time, b.end_time);
        assert_eq!(c.workers, 2);
    }

    #[test]
    fn single_shard_falls_back_to_plain_run() {
        let report = run_sharded::<u64, SimTime, _>(
            SimDuration::ZERO, // no lookahead needed for one shard
            4,
            vec![|_ctx: ShardCtx<u64>| {
                let sim = Sim::new();
                let h = sim.handle();
                let h2 = h.clone();
                sim.spawn(async move {
                    h2.sleep(SimDuration::from_millis(3)).await;
                });
                ShardRuntime {
                    sim,
                    deliver: Box::new(|_| {}),
                    finish: Box::new(move || h.now()),
                }
            }],
        );
        assert_eq!(report.results, vec![SimTime(3_000_000)]);
        assert_eq!(report.rounds, 0);
        assert_eq!(report.workers, 1);
    }

    #[test]
    fn many_shards_with_local_work_only() {
        // No cross-shard traffic at all: the engine still terminates and
        // aggregates, and the end time is the slowest shard's.
        let run = |workers: usize| {
            let builders: Vec<_> = (0..5usize)
                .map(|i| {
                    move |_ctx: ShardCtx<()>| {
                        let sim = Sim::new();
                        let h = sim.handle();
                        let h2 = h.clone();
                        sim.spawn(async move {
                            for _ in 0..=i {
                                h2.sleep(SimDuration::from_millis(1)).await;
                            }
                        });
                        ShardRuntime {
                            sim,
                            deliver: Box::new(|_| {}),
                            finish: Box::new(move || h.now()),
                        }
                    }
                })
                .collect();
            run_sharded(LOOKAHEAD, workers, builders)
        };
        let a = run(1);
        let b = run(3);
        assert_eq!(a.end_time, SimTime(5_000_000));
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.events, b.events);
    }

    #[test]
    #[should_panic(expected = "undercut the engine lookahead")]
    fn undershooting_the_lookahead_is_detected() {
        let builders: Vec<_> = (0..2usize)
            .map(|_| {
                |ctx: ShardCtx<u64>| {
                    let sim = Sim::new();
                    let h = sim.handle();
                    let outbox = ctx.outbox.clone();
                    let me = ctx.index;
                    if me == 0 {
                        let h2 = h.clone();
                        sim.spawn(async move {
                            // Half the required latency: must be caught.
                            outbox.send(1, h2.now() + SimDuration(LOOKAHEAD.as_nanos() / 2), 9);
                        });
                    }
                    ShardRuntime {
                        sim,
                        deliver: Box::new(|_| {}),
                        finish: Box::new(|| ()),
                    }
                }
            })
            .collect();
        run_sharded(LOOKAHEAD, 2, builders);
    }

    #[test]
    #[should_panic(expected = "shard task exploded")]
    fn worker_panics_propagate() {
        let builders: Vec<_> = (0..3usize)
            .map(|i| {
                move |_ctx: ShardCtx<()>| {
                    let sim = Sim::new();
                    let h = sim.handle();
                    if i == 1 {
                        let h2 = h.clone();
                        sim.spawn(async move {
                            h2.sleep(SimDuration::from_millis(1)).await;
                            panic!("shard task exploded");
                        });
                    }
                    ShardRuntime {
                        sim,
                        deliver: Box::new(|_| {}),
                        finish: Box::new(|| ()),
                    }
                }
            })
            .collect();
        run_sharded(LOOKAHEAD, 2, builders);
    }
}
