//! Synchronization primitives in virtual time: channels, barriers,
//! semaphores and one-shot events.
//!
//! All primitives are single-threaded (`Rc`-based) and deterministic:
//! waiters are released in FIFO order of their first poll.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

/// Create an unbounded multi-producer single-consumer channel.
///
/// `send` is non-blocking and consumes no virtual time; the message-passing
/// layer models transfer latency separately before delivering.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let inner = Rc::new(RefCell::new(ChanInner {
        queue: VecDeque::new(),
        recv_waker: None,
        senders: 1,
    }));
    (
        Sender {
            inner: Rc::clone(&inner),
        },
        Receiver { inner },
    )
}

struct ChanInner<T> {
    queue: VecDeque<T>,
    recv_waker: Option<Waker>,
    senders: usize,
}

/// Sending half of a [`channel`].
pub struct Sender<T> {
    inner: Rc<RefCell<ChanInner<T>>>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.borrow_mut().senders += 1;
        Sender {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.inner.borrow_mut();
        inner.senders -= 1;
        if inner.senders == 0 {
            if let Some(w) = inner.recv_waker.take() {
                w.wake();
            }
        }
    }
}

impl<T> Sender<T> {
    /// Enqueue a message and wake the receiver.
    pub fn send(&self, value: T) {
        let mut inner = self.inner.borrow_mut();
        inner.queue.push_back(value);
        if let Some(w) = inner.recv_waker.take() {
            w.wake();
        }
    }
}

/// Receiving half of a [`channel`].
pub struct Receiver<T> {
    inner: Rc<RefCell<ChanInner<T>>>,
}

impl<T> Receiver<T> {
    /// Await the next message; `None` once all senders are dropped and the
    /// queue is drained.
    pub fn recv(&self) -> Recv<'_, T> {
        Recv { rx: self }
    }

    /// Take a message if one is queued, without waiting.
    pub fn try_recv(&self) -> Option<T> {
        self.inner.borrow_mut().queue.pop_front()
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.inner.borrow().queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Future returned by [`Receiver::recv`].
pub struct Recv<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Future for Recv<'_, T> {
    type Output = Option<T>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Option<T>> {
        let mut inner = self.rx.inner.borrow_mut();
        if let Some(v) = inner.queue.pop_front() {
            Poll::Ready(Some(v))
        } else if inner.senders == 0 {
            Poll::Ready(None)
        } else {
            // Skip the clone when the same task re-polls (cached wakers
            // make `will_wake` an exact identity test).
            match &inner.recv_waker {
                Some(w) if w.will_wake(cx.waker()) => {}
                _ => inner.recv_waker = Some(cx.waker().clone()),
            }
            Poll::Pending
        }
    }
}

struct BarrierInner {
    arrived: usize,
    generation: u64,
    wakers: Vec<Waker>,
}

/// A cyclic barrier for `n` virtual-time tasks.
#[derive(Clone)]
pub struct Barrier {
    n: usize,
    inner: Rc<RefCell<BarrierInner>>,
}

impl Barrier {
    /// Create a barrier for `n` participants.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Barrier {
        assert!(n > 0, "barrier must have at least one participant");
        Barrier {
            n,
            inner: Rc::new(RefCell::new(BarrierInner {
                arrived: 0,
                generation: 0,
                wakers: Vec::new(),
            })),
        }
    }

    /// Number of participants.
    pub fn participants(&self) -> usize {
        self.n
    }

    /// Wait until all `n` participants have called `wait`. Returns `true`
    /// for exactly one participant per cycle (the last to arrive).
    pub fn wait(&self) -> BarrierWait {
        BarrierWait {
            barrier: self.clone(),
            generation: None,
        }
    }
}

/// Future returned by [`Barrier::wait`].
pub struct BarrierWait {
    barrier: Barrier,
    generation: Option<u64>,
}

impl Future for BarrierWait {
    type Output = bool;
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<bool> {
        let this = &mut *self;
        let barrier_inner = Rc::clone(&this.barrier.inner);
        let mut inner = barrier_inner.borrow_mut();
        match this.generation {
            None => {
                // First poll: arrive.
                inner.arrived += 1;
                if inner.arrived == this.barrier.n {
                    inner.arrived = 0;
                    inner.generation += 1;
                    for w in inner.wakers.drain(..) {
                        w.wake();
                    }
                    Poll::Ready(true)
                } else {
                    this.generation = Some(inner.generation);
                    inner.wakers.push(cx.waker().clone());
                    Poll::Pending
                }
            }
            Some(gen) => {
                if inner.generation != gen {
                    Poll::Ready(false)
                } else {
                    inner.wakers.push(cx.waker().clone());
                    Poll::Pending
                }
            }
        }
    }
}

struct SemInner {
    permits: usize,
    waiters: VecDeque<Waker>,
}

/// A counting semaphore in virtual time. Acquisitions are granted in FIFO
/// wake order.
#[derive(Clone)]
pub struct Semaphore {
    inner: Rc<RefCell<SemInner>>,
}

impl Semaphore {
    /// Create a semaphore with `permits` initial permits.
    pub fn new(permits: usize) -> Semaphore {
        Semaphore {
            inner: Rc::new(RefCell::new(SemInner {
                permits,
                waiters: VecDeque::new(),
            })),
        }
    }

    /// Acquire one permit, waiting if none is available.
    pub fn acquire(&self) -> Acquire {
        Acquire {
            sem: self.clone(),
            queued: false,
        }
    }

    /// Release one permit and wake the longest-waiting acquirer.
    pub fn release(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.permits += 1;
        if let Some(w) = inner.waiters.pop_front() {
            w.wake();
        }
    }

    /// Currently available permits.
    pub fn available(&self) -> usize {
        self.inner.borrow().permits
    }
}

/// Future returned by [`Semaphore::acquire`].
pub struct Acquire {
    sem: Semaphore,
    queued: bool,
}

impl Future for Acquire {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = &mut *self;
        let mut inner = this.sem.inner.borrow_mut();
        if inner.permits > 0 {
            inner.permits -= 1;
            Poll::Ready(())
        } else {
            // Re-queue on every poll; stale wakers are woken spuriously and
            // simply re-queue, preserving FIFO order among live waiters.
            inner.waiters.push_back(cx.waker().clone());
            this.queued = true;
            Poll::Pending
        }
    }
}

struct TurnstileInner {
    turn: usize,
    wakers: Vec<Waker>,
}

/// A round-robin turnstile for `n` participants: participant `k` may
/// proceed only on its turn; [`Turnstile::advance`] passes the turn to
/// `k + 1 (mod n)`. Deterministic total ordering for "synchronized mode"
/// style protocols.
#[derive(Clone)]
pub struct Turnstile {
    n: usize,
    inner: Rc<RefCell<TurnstileInner>>,
}

impl Turnstile {
    /// Create a turnstile for `n` participants; participant 0 goes first.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Turnstile {
        assert!(n > 0, "turnstile needs at least one participant");
        Turnstile {
            n,
            inner: Rc::new(RefCell::new(TurnstileInner {
                turn: 0,
                wakers: Vec::new(),
            })),
        }
    }

    /// Whose turn it is.
    pub fn turn(&self) -> usize {
        self.inner.borrow().turn
    }

    /// Wait until it is `who`'s turn.
    pub fn wait_turn(&self, who: usize) -> TurnWait {
        assert!(who < self.n, "participant {who} out of range");
        TurnWait {
            ts: self.clone(),
            who,
        }
    }

    /// Pass the turn to the next participant and wake the waiters.
    pub fn advance(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.turn = (inner.turn + 1) % self.n;
        for w in inner.wakers.drain(..) {
            w.wake();
        }
    }
}

/// Future returned by [`Turnstile::wait_turn`].
pub struct TurnWait {
    ts: Turnstile,
    who: usize,
}

impl Future for TurnWait {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut inner = self.ts.inner.borrow_mut();
        if inner.turn == self.who {
            Poll::Ready(())
        } else {
            inner.wakers.push(cx.waker().clone());
            Poll::Pending
        }
    }
}

struct EventInner<T> {
    value: Option<T>,
    wakers: Vec<Waker>,
}

/// A one-shot broadcast event carrying a cloneable value.
pub struct Event<T: Clone> {
    inner: Rc<RefCell<EventInner<T>>>,
}

impl<T: Clone> Clone for Event<T> {
    fn clone(&self) -> Self {
        Event {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T: Clone> Default for Event<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Clone> Event<T> {
    /// Create an unset event.
    pub fn new() -> Event<T> {
        Event {
            inner: Rc::new(RefCell::new(EventInner {
                value: None,
                wakers: Vec::new(),
            })),
        }
    }

    /// Set the value and wake all waiters. Panics if already set.
    pub fn set(&self, value: T) {
        let mut inner = self.inner.borrow_mut();
        assert!(inner.value.is_none(), "event set twice");
        inner.value = Some(value);
        for w in inner.wakers.drain(..) {
            w.wake();
        }
    }

    /// Whether the event has been set.
    pub fn is_set(&self) -> bool {
        self.inner.borrow().value.is_some()
    }

    /// Wait for the event and clone its value.
    pub fn wait(&self) -> EventWait<T> {
        EventWait {
            event: self.clone(),
        }
    }
}

/// Future returned by [`Event::wait`].
pub struct EventWait<T: Clone> {
    event: Event<T>,
}

impl<T: Clone> Future for EventWait<T> {
    type Output = T;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut inner = self.event.inner.borrow_mut();
        if let Some(v) = &inner.value {
            Poll::Ready(v.clone())
        } else {
            inner.wakers.push(cx.waker().clone());
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{join_all, Sim};
    use crate::time::{SimDuration, SimTime};

    #[test]
    fn channel_delivers_in_order() {
        let (out, _) = Sim::run_to_completion(|h| {
            Box::pin(async move {
                let (tx, rx) = channel::<u32>();
                h.spawn(async move {
                    for i in 0..5 {
                        tx.send(i);
                    }
                });
                let mut got = Vec::new();
                while let Some(v) = rx.recv().await {
                    got.push(v);
                }
                got
            })
        });
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn channel_recv_blocks_until_send() {
        let (t, _) = Sim::run_to_completion(|h| {
            Box::pin(async move {
                let (tx, rx) = channel::<()>();
                let h2 = h.clone();
                h.spawn(async move {
                    h2.sleep(SimDuration::from_secs(3)).await;
                    tx.send(());
                });
                rx.recv().await.unwrap();
                h.now()
            })
        });
        assert_eq!(t, SimTime(3_000_000_000));
    }

    #[test]
    fn try_recv_and_len_reflect_the_queue() {
        let (tx, rx) = channel::<u32>();
        assert!(rx.is_empty());
        assert_eq!(rx.try_recv(), None);
        tx.send(1);
        tx.send(2);
        assert_eq!(rx.len(), 2);
        assert_eq!(rx.try_recv(), Some(1));
        assert_eq!(rx.len(), 1);
        assert_eq!(rx.try_recv(), Some(2));
        assert!(rx.is_empty());
    }

    #[test]
    fn channel_close_returns_none() {
        let (out, _) = Sim::run_to_completion(|_h| {
            Box::pin(async move {
                let (tx, rx) = channel::<u32>();
                tx.send(7);
                drop(tx);
                assert_eq!(rx.recv().await, Some(7));
                rx.recv().await
            })
        });
        assert_eq!(out, None);
    }

    #[test]
    fn barrier_synchronizes_tasks() {
        let (times, _) = Sim::run_to_completion(|h| {
            Box::pin(async move {
                let bar = Barrier::new(3);
                let futs: Vec<_> = (0..3u64)
                    .map(|i| {
                        let h = h.clone();
                        let bar = bar.clone();
                        async move {
                            h.sleep(SimDuration::from_secs(i + 1)).await;
                            bar.wait().await;
                            h.now()
                        }
                    })
                    .collect();
                join_all(&h, futs).await
            })
        });
        // All resume when the slowest (3 s) arrives.
        assert!(times.iter().all(|&t| t == SimTime(3_000_000_000)));
    }

    #[test]
    fn barrier_is_cyclic() {
        let (rounds, _) = Sim::run_to_completion(|h| {
            Box::pin(async move {
                let bar = Barrier::new(2);
                let futs: Vec<_> = (0..2u64)
                    .map(|i| {
                        let h = h.clone();
                        let bar = bar.clone();
                        async move {
                            let mut at = Vec::new();
                            for round in 0..3u64 {
                                h.sleep(SimDuration::from_secs((i + 1) * (round + 1))).await;
                                bar.wait().await;
                                at.push(h.now());
                            }
                            at
                        }
                    })
                    .collect();
                join_all(&h, futs).await
            })
        });
        assert_eq!(rounds[0], rounds[1]);
        // Rounds strictly increase.
        assert!(rounds[0][0] < rounds[0][1] && rounds[0][1] < rounds[0][2]);
    }

    #[test]
    fn semaphore_limits_concurrency() {
        let (ends, _) = Sim::run_to_completion(|h| {
            Box::pin(async move {
                let sem = Semaphore::new(2);
                let futs: Vec<_> = (0..4)
                    .map(|_| {
                        let h = h.clone();
                        let sem = sem.clone();
                        async move {
                            sem.acquire().await;
                            h.sleep(SimDuration::from_secs(1)).await;
                            sem.release();
                            h.now()
                        }
                    })
                    .collect();
                join_all(&h, futs).await
            })
        });
        let secs: Vec<u64> = ends.iter().map(|t| t.as_nanos() / 1_000_000_000).collect();
        assert_eq!(secs, vec![1, 1, 2, 2]);
    }

    #[test]
    fn turnstile_orders_participants_round_robin() {
        let (log, _) = Sim::run_to_completion(|h| {
            Box::pin(async move {
                let ts = Turnstile::new(3);
                let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
                let futs: Vec<_> = (0..3usize)
                    .map(|who| {
                        let ts = ts.clone();
                        let log = std::rc::Rc::clone(&log);
                        let h = h.clone();
                        async move {
                            for round in 0..2 {
                                // Arrive out of order on purpose.
                                h.sleep(SimDuration::from_millis(((2 - who) * 7 + round) as u64))
                                    .await;
                                ts.wait_turn(who).await;
                                log.borrow_mut().push(who);
                                ts.advance();
                            }
                        }
                    })
                    .collect();
                join_all(&h, futs).await;
                let order = log.borrow().clone();
                order
            })
        });
        assert_eq!(log, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn turnstile_rejects_out_of_range() {
        let ts = Turnstile::new(2);
        drop(ts.wait_turn(2));
    }

    #[test]
    fn event_broadcasts_value() {
        let (vals, _) = Sim::run_to_completion(|h| {
            Box::pin(async move {
                let ev: Event<u32> = Event::new();
                let waiters: Vec<_> = (0..3)
                    .map(|_| {
                        let ev = ev.clone();
                        async move { ev.wait().await }
                    })
                    .collect();
                let hs: Vec<_> = waiters.into_iter().map(|f| h.spawn(f)).collect();
                h.sleep(SimDuration::from_secs(1)).await;
                assert!(!ev.is_set());
                ev.set(99);
                let mut out = Vec::new();
                for jh in hs {
                    out.push(jh.await);
                }
                out
            })
        });
        assert_eq!(vals, vec![99, 99, 99]);
    }

    #[test]
    #[should_panic(expected = "set twice")]
    fn event_set_twice_panics() {
        let ev: Event<u8> = Event::new();
        ev.set(1);
        ev.set(2);
    }
}
