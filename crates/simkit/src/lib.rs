//! # iosim-simkit — deterministic virtual-time simulation engine
//!
//! A small, dependency-light discrete-event simulation (DES) kernel built
//! around Rust's `async`/`await`: simulated processes are plain futures,
//! and blocking operations (sleeping, being served by a FIFO resource,
//! receiving a message) are futures that register timer events with the
//! executor. Virtual time advances only between event firings, so a
//! simulated second costs nothing but the events scheduled within it.
//!
//! Design properties:
//!
//! - **Deterministic.** The event heap is ordered by `(time, seq)`; equal
//!   timestamps resolve in registration order. A simulation is a pure
//!   function of its inputs and seed.
//! - **Cheap contention modelling.** [`resource::Resource`] uses a virtual
//!   queue (per-server next-free instants), so a queued service costs one
//!   timer event, and fan-out bookings ([`resource::Resource::reserve_at`])
//!   cost none at all until the caller sleeps to the max completion.
//! - **Single-threaded core, sharded parallelism on top.** One
//!   [`executor::Sim`] is `!Send` and never migrates; sweeps over machine
//!   configurations parallelize across whole `Sim` instances on the host.
//!   For a *single* large simulation, [`shard::run_sharded`] runs one
//!   `Sim` per model shard on its own host thread under a conservative
//!   lookahead window protocol — virtual times stay bit-identical at any
//!   worker count.
//!
//! ## Example
//!
//! ```
//! use iosim_simkit::prelude::*;
//! use std::rc::Rc;
//!
//! let mut sim = Sim::new();
//! let h = sim.handle();
//! let disk = Rc::new(Resource::new(h.clone(), "disk", 1));
//! let jh = sim.spawn(async move {
//!     // Two requests serialize on the single disk server.
//!     disk.serve(SimDuration::from_millis(10)).await;
//!     disk.serve(SimDuration::from_millis(10)).await;
//!     h.now()
//! });
//! sim.run();
//! assert_eq!(jh.try_take().unwrap(), SimTime::ZERO + SimDuration::from_millis(20));
//! ```

pub mod barrier;
pub mod executor;
pub mod resource;
pub mod rng;
pub mod shard;
pub mod sync;
pub mod time;

/// Convenient glob import of the common types.
pub mod prelude {
    pub use crate::executor::{join_all, with_timeout, JoinHandle, Sim, SimHandle};
    pub use crate::resource::{Resource, ResourceStats};
    pub use crate::rng::SimRng;
    pub use crate::shard::{Envelope, Outbox, ShardCtx, ShardRuntime, ShardedReport};
    pub use crate::sync::{channel, Barrier, Event, Receiver, Semaphore, Sender, Turnstile};
    pub use crate::time::{SimDuration, SimTime};
}
