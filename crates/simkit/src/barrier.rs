//! Host-thread epoch barrier for the sharded engine.
//!
//! The conservative-lookahead engine ([`crate::shard`]) synchronizes its
//! worker threads twice per time window. Windows are short (one lookahead
//! each), so a simulation crosses this barrier tens of thousands of times;
//! `std::sync::Barrier` takes a mutex + condvar round trip per wait
//! (microseconds), which would eat the parallel speedup. This
//! sense-reversing spin barrier costs a fetch-add and a bounded spin
//! (~100 ns when all workers are running), falling back to
//! `thread::yield_now` so oversubscribed hosts (more workers than cores)
//! still make progress.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A reusable sense-reversing spin barrier for a fixed set of threads.
pub struct SpinBarrier {
    n: usize,
    count: AtomicUsize,
    generation: AtomicUsize,
}

/// Spins before each `yield_now` while waiting for the generation to flip.
/// Small, because the engine is frequently run with more workers than
/// cores (determinism does not depend on placement) and burning a full
/// timeslice spinning would serialize those configurations.
const SPINS_PER_YIELD: u32 = 64;

impl SpinBarrier {
    /// A barrier for `n` participating threads.
    pub fn new(n: usize) -> SpinBarrier {
        assert!(n > 0, "barrier needs at least one participant");
        SpinBarrier {
            n,
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    /// Block until all `n` threads have called `wait` for this generation.
    /// Returns `true` on exactly one thread per generation (the last
    /// arriver), mirroring `std::sync::Barrier`'s leader flag.
    pub fn wait(&self) -> bool {
        let gen = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            // Last arriver: reset the count for the next generation
            // *before* releasing the waiters, so an early re-entrant
            // cannot race the reset.
            self.count.store(0, Ordering::Release);
            self.generation
                .store(gen.wrapping_add(1), Ordering::Release);
            true
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                spins = spins.wrapping_add(1);
                if spins.is_multiple_of(SPINS_PER_YIELD) {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn single_thread_is_always_leader() {
        let b = SpinBarrier::new(1);
        for _ in 0..100 {
            assert!(b.wait());
        }
    }

    #[test]
    fn phases_do_not_overlap() {
        // Each thread increments a phase counter between barriers; after a
        // barrier, every thread must observe all increments of the phase.
        const THREADS: usize = 4;
        const ROUNDS: usize = 200;
        let b = SpinBarrier::new(THREADS);
        let counter = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for round in 0..ROUNDS {
                        counter.fetch_add(1, Ordering::Relaxed);
                        b.wait();
                        let seen = counter.load(Ordering::Relaxed);
                        assert!(seen >= (round as u64 + 1) * THREADS as u64);
                        b.wait();
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), (THREADS * ROUNDS) as u64);
    }

    #[test]
    fn exactly_one_leader_per_generation() {
        const THREADS: usize = 3;
        const ROUNDS: usize = 100;
        let b = SpinBarrier::new(THREADS);
        let leaders = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for _ in 0..ROUNDS {
                        if b.wait() {
                            leaders.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::Relaxed), ROUNDS as u64);
    }
}
