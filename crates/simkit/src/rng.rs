//! Deterministic random number generation for workloads.
//!
//! Every stochastic element of a simulation draws from a [`SimRng`] seeded
//! from the experiment configuration, so runs are exactly reproducible.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A seeded, splittable RNG for simulation workloads.
pub struct SimRng {
    rng: SmallRng,
}

impl SimRng {
    /// Create from a 64-bit seed.
    pub fn seed_from(seed: u64) -> SimRng {
        SimRng {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derive an independent stream for a sub-component (e.g. one rank).
    /// Uses SplitMix64 over `(seed ^ stream)` so streams do not overlap in
    /// practice.
    pub fn split(&mut self, stream: u64) -> SimRng {
        let base: u64 = self.rng.gen();
        let mut z = base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        SimRng::seed_from(z ^ (z >> 31))
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Uniform `u64` in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        self.rng.gen_range(lo..hi)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.gen_range(lo..hi)
    }

    /// A value drawn from `mean * (1 ± spread)`, uniformly. Used for mild
    /// service-time jitter; `spread` is clamped to `[0, 1]`.
    pub fn jitter(&mut self, mean: f64, spread: f64) -> f64 {
        let s = spread.clamp(0.0, 1.0);
        mean * (1.0 + s * (2.0 * self.unit() - 1.0))
    }

    /// An exponentially distributed value with the given `rate`
    /// (mean `1 / rate`) — Poisson inter-arrival times for open-loop
    /// workloads and queueing-model validation.
    pub fn exp(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "rate must be positive");
        let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        -u.ln() / rate
    }

    /// Fill a byte buffer with pseudo-random data.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        self.rng.fill(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(42);
        let mut b = SimRng::seed_from(42);
        for _ in 0..100 {
            assert_eq!(a.range(0, 1000), b.range(0, 1000));
        }
    }

    #[test]
    fn split_streams_differ() {
        let mut root = SimRng::seed_from(7);
        let mut s0 = root.split(0);
        let mut s1 = root.split(1);
        let a: Vec<u64> = (0..50).map(|_| s0.range(0, 1 << 30)).collect();
        let b: Vec<u64> = (0..50).map(|_| s1.range(0, 1 << 30)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn jitter_stays_in_band() {
        let mut r = SimRng::seed_from(1);
        for _ in 0..1000 {
            let v = r.jitter(100.0, 0.2);
            assert!((80.0..=120.0).contains(&v), "jitter out of band: {v}");
        }
        // Spread beyond 1 clamps.
        for _ in 0..100 {
            assert!(r.jitter(10.0, 5.0) >= 0.0);
        }
    }

    #[test]
    fn unit_in_range() {
        let mut r = SimRng::seed_from(3);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
