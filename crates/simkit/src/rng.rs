//! Deterministic random number generation for workloads.
//!
//! Every stochastic element of a simulation draws from a [`SimRng`] seeded
//! from the experiment configuration, so runs are exactly reproducible.
//!
//! The generator is an in-tree **xoshiro256\*\*** (Blackman & Vigna),
//! seeded through **SplitMix64** — the standard pairing recommended by the
//! xoshiro authors. Keeping the implementation in-tree (rather than
//! depending on an external `rand` crate) lets the whole workspace build
//! and test with no network access, and pins the exact stream forever:
//! a seed produces the same sequence on every toolchain.

/// SplitMix64 step: advances `state` and returns the next output. Used
/// for seed expansion and stream derivation; its output is equidistributed
/// and passes through zero-seeds safely.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded, splittable RNG for simulation workloads (xoshiro256**).
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Create from a 64-bit seed, expanding it with SplitMix64 so that
    /// similar seeds yield unrelated states (an all-zero state — the one
    /// invalid xoshiro state — cannot be produced this way).
    pub fn seed_from(seed: u64) -> SimRng {
        let mut sm = seed;
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next raw 64-bit output (xoshiro256** scrambler).
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Derive an independent stream for a sub-component (e.g. one rank).
    /// Uses SplitMix64 over `(draw ^ stream)` so streams do not overlap in
    /// practice.
    pub fn split(&mut self, stream: u64) -> SimRng {
        let base = self.next_u64();
        let mut z = base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        SimRng::seed_from(z ^ (z >> 31))
    }

    /// Uniform `f64` in `[0, 1)` (53 high bits, the standard mapping).
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` in `[lo, hi)`, unbiased (Lemire's multiply-shift
    /// method with rejection).
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        let span = hi - lo;
        let mut m = (self.next_u64() as u128) * (span as u128);
        if (m as u64) < span {
            let threshold = span.wrapping_neg() % span;
            while (m as u64) < threshold {
                m = (self.next_u64() as u128) * (span as u128);
            }
        }
        lo + (m >> 64) as u64
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit() * (hi - lo)
    }

    /// A value drawn from `mean * (1 ± spread)`, uniformly. Used for mild
    /// service-time jitter; `spread` is clamped to `[0, 1]`.
    pub fn jitter(&mut self, mean: f64, spread: f64) -> f64 {
        let s = spread.clamp(0.0, 1.0);
        mean * (1.0 + s * (2.0 * self.unit() - 1.0))
    }

    /// An exponentially distributed value with the given `rate`
    /// (mean `1 / rate`) — Poisson inter-arrival times for open-loop
    /// workloads and queueing-model validation.
    pub fn exp(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "rate must be positive");
        // 1 - unit() lies in (0, 1]; ln is finite and the result >= 0.
        let u = 1.0 - self.unit();
        -u.ln() / rate
    }

    /// Fill a byte buffer with pseudo-random data.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(42);
        let mut b = SimRng::seed_from(42);
        for _ in 0..100 {
            assert_eq!(a.range(0, 1000), b.range(0, 1000));
        }
    }

    #[test]
    fn split_streams_differ() {
        let mut root = SimRng::seed_from(7);
        let mut s0 = root.split(0);
        let mut s1 = root.split(1);
        let a: Vec<u64> = (0..50).map(|_| s0.range(0, 1 << 30)).collect();
        let b: Vec<u64> = (0..50).map(|_| s1.range(0, 1 << 30)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn jitter_stays_in_band() {
        let mut r = SimRng::seed_from(1);
        for _ in 0..1000 {
            let v = r.jitter(100.0, 0.2);
            assert!((80.0..=120.0).contains(&v), "jitter out of band: {v}");
        }
        // Spread beyond 1 clamps.
        for _ in 0..100 {
            assert!(r.jitter(10.0, 5.0) >= 0.0);
        }
    }

    #[test]
    fn unit_in_range() {
        let mut r = SimRng::seed_from(3);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn matches_reference_xoshiro_vector() {
        // First outputs of xoshiro256** from the state produced by
        // SplitMix64(0): pins the stream against accidental edits.
        let mut sm = 0u64;
        let expect_state = [
            0xE220_A839_7B1D_CDAFu64,
            0x6E78_9E6A_A1B9_65F4,
            0x06C4_5D18_8009_454F,
            0xF88B_B8A8_724C_81EC,
        ];
        let got: Vec<u64> = (0..4).map(|_| splitmix64(&mut sm)).collect();
        assert_eq!(got, expect_state);
        let mut r = SimRng::seed_from(0);
        // xoshiro256** output for that state, computed by the reference
        // algorithm: s[1]*5 rotl 7 *9 on the initial state.
        let first = expect_state[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        assert_eq!(r.next_u64(), first);
    }

    #[test]
    fn range_is_unbiased_at_bounds() {
        let mut r = SimRng::seed_from(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = r.range(10, 13);
            assert!((10..13).contains(&v));
            seen_lo |= v == 10;
            seen_hi |= v == 12;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = SimRng::seed_from(5);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        // Same seed reproduces the same bytes.
        let mut r2 = SimRng::seed_from(5);
        let mut buf2 = [0u8; 13];
        r2.fill_bytes(&mut buf2);
        assert_eq!(buf, buf2);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
