//! Point-to-point communication: the [`World`], per-rank [`Comm`]
//! endpoints, payloads, and tag-matched receive.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

use iosim_buf::{Bytes, BytesList};
use iosim_machine::Machine;
use iosim_simkit::time::{SimDuration, SimTime};

/// A message payload: real bytes or a synthetic length.
///
/// Real bytes travel as a [`BytesList`] rope of shared buffers, so
/// building a message from fragments (two-phase encode, run merging) and
/// cloning a payload per destination (collectives) never copies data —
/// only [`Payload::into_bytes`]/[`Payload::to_bytes`] on a multi-segment
/// rope materializes contiguous storage.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Payload {
    /// Length in bytes (always meaningful for timing).
    pub len: u64,
    /// The bytes, when carried.
    pub data: Option<BytesList>,
}

impl Payload {
    /// A payload carrying real bytes (accepts `Vec<u8>`, `Bytes`, or a
    /// prebuilt rope).
    pub fn bytes(data: impl Into<BytesList>) -> Payload {
        let data = data.into();
        Payload {
            len: data.len(),
            data: Some(data),
        }
    }

    /// A timing-only payload of `len` bytes.
    pub fn synthetic(len: u64) -> Payload {
        Payload { len, data: None }
    }

    /// An empty payload (control message).
    pub fn empty() -> Payload {
        Payload::bytes(BytesList::new())
    }

    /// The carried bytes as one contiguous buffer. Header-only messages
    /// (`data: None`) yield an empty buffer — callers that need to
    /// distinguish "no data" from "empty data" check `data` directly.
    pub fn into_bytes(self) -> Bytes {
        self.data.map(|d| d.flatten()).unwrap_or_default()
    }

    /// Like [`Payload::into_bytes`], without consuming the payload.
    pub fn to_bytes(&self) -> Bytes {
        self.data.as_ref().map(|d| d.flatten()).unwrap_or_default()
    }
}

/// Source matching for receives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatchSrc {
    /// Match messages from one specific rank.
    Rank(usize),
    /// Match messages from any rank.
    Any,
}

struct Envelope {
    src: usize,
    tag: u64,
    deliver_at: SimTime,
    payload: Payload,
}

#[derive(Default)]
struct Mailbox {
    msgs: VecDeque<Envelope>,
    wakers: Vec<Waker>,
}

struct WorldInner {
    machine: Rc<Machine>,
    mailboxes: Vec<RefCell<Mailbox>>,
    /// Set when this world is one shard of a sharded run: global
    /// collectives rendezvous with the other shards through this link.
    shard_link: RefCell<Option<crate::shardlink::ShardLink>>,
}

/// The communication world: `size` ranks on one machine.
#[derive(Clone)]
pub struct World {
    inner: Rc<WorldInner>,
    size: usize,
}

impl World {
    /// Create a world of `size` ranks mapped to compute nodes `0..size`.
    ///
    /// # Panics
    /// Panics if `size` exceeds the machine's compute nodes or is zero.
    pub fn new(machine: Rc<Machine>, size: usize) -> World {
        assert!(size > 0, "world must have at least one rank");
        assert!(
            size <= machine.compute_nodes(),
            "world of {size} ranks exceeds {} compute nodes",
            machine.compute_nodes()
        );
        World {
            inner: Rc::new(WorldInner {
                machine,
                mailboxes: (0..size)
                    .map(|_| RefCell::new(Mailbox::default()))
                    .collect(),
                shard_link: RefCell::new(None),
            }),
            size,
        }
    }

    /// Attach the cross-shard barrier link (sharded runs only). Global
    /// collectives on this world will rendezvous with the other shards.
    pub fn set_shard_link(&self, link: crate::shardlink::ShardLink) {
        *self.inner.shard_link.borrow_mut() = Some(link);
    }

    /// The attached cross-shard link, if any.
    pub fn shard_link(&self) -> Option<crate::shardlink::ShardLink> {
        self.inner.shard_link.borrow().clone()
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The machine the world runs on.
    pub fn machine(&self) -> &Rc<Machine> {
        &self.inner.machine
    }

    /// Endpoint for `rank`.
    pub fn comm(&self, rank: usize) -> Comm {
        assert!(rank < self.size, "rank {rank} outside world");
        Comm {
            world: self.clone(),
            rank,
            coll_seq: Rc::new(std::cell::Cell::new(0)),
        }
    }

    /// Endpoints for every rank, in rank order.
    pub fn comms(&self) -> Vec<Comm> {
        (0..self.size).map(|r| self.comm(r)).collect()
    }
}

/// A per-rank communication endpoint.
///
/// Clones share the endpoint (including the collective-tag sequence), so
/// a clone can be moved into a background task for non-blocking sends.
#[derive(Clone)]
pub struct Comm {
    world: World,
    rank: usize,
    /// Per-rank collective sequence number; ranks must call collectives in
    /// the same order (as in MPI), which keeps tags aligned.
    pub(crate) coll_seq: Rc<std::cell::Cell<u64>>,
}

impl Comm {
    /// This endpoint's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.world.size()
    }

    /// The underlying machine.
    pub fn machine(&self) -> &Rc<Machine> {
        self.world.machine()
    }

    /// The world.
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Send `payload` to `dst` with `tag`.
    ///
    /// The send blocks (in virtual time) until the message has been
    /// injected through this rank's NIC — like a buffered MPI send. The
    /// message is delivered `base + per_hop × hops` after injection.
    pub async fn send(&self, dst: usize, tag: u64, payload: Payload) {
        assert!(dst < self.size(), "send to rank {dst} outside world");
        let m = self.world.machine();
        let h = m.handle().clone();
        let cfg = m.cfg();
        let inject = SimDuration::from_secs_f64(payload.len as f64 / cfg.net.bandwidth_bps);
        let (_, inject_end) = m.nic(self.rank).reserve(inject);
        let hops = if dst == self.rank {
            0
        } else {
            m.topology().compute_hops(self.rank, dst)
        };
        let latency = cfg.net.base_latency + cfg.net.per_hop_latency * hops as u64;
        // Under link-contention modelling, the message also books
        // bandwidth along its XY route.
        let route_end = if dst != self.rank && m.models_link_contention() {
            m.reserve_route(
                m.topology().compute_coord(self.rank),
                m.topology().compute_coord(dst),
                payload.len,
                inject_end,
            )
        } else {
            inject_end
        };
        let deliver_at = route_end.max(inject_end) + latency;
        {
            let mut mb = self.world.inner.mailboxes[dst].borrow_mut();
            mb.msgs.push_back(Envelope {
                src: self.rank,
                tag,
                deliver_at,
                payload,
            });
            for w in mb.wakers.drain(..) {
                w.wake();
            }
        }
        h.sleep_until(inject_end).await;
    }

    /// Non-blocking send (MPI `Isend` style): the injection proceeds in a
    /// background task; await the returned handle to complete the send
    /// (MPI `Wait`). Message ordering per `(src, dst, tag)` follows the
    /// posting order, as the mailbox enqueues at posting time.
    pub fn isend(
        &self,
        dst: usize,
        tag: u64,
        payload: Payload,
    ) -> iosim_simkit::executor::JoinHandle<()> {
        let me = self.clone();
        self.world
            .machine()
            .handle()
            .spawn(async move { me.send(dst, tag, payload).await })
    }

    /// Receive a message matching `(src, tag)`. Returns `(source, payload)`.
    ///
    /// Matching is FIFO per `(source, tag)` pair; the receive completes at
    /// the message's delivery instant.
    pub async fn recv(&self, src: MatchSrc, tag: u64) -> (usize, Payload) {
        let env = MatchFuture {
            world: self.world.clone(),
            rank: self.rank,
            src,
            tag,
        }
        .await;
        let h = self.world.machine().handle().clone();
        h.sleep_until(env.deliver_at).await;
        (env.src, env.payload)
    }

    /// Next collective tag (shared sequence across collective calls).
    pub(crate) fn next_coll_tag(&self) -> u64 {
        let s = self.coll_seq.get();
        self.coll_seq.set(s + 1);
        // High bit namespace separates collective tags from user tags.
        (1 << 63) | s
    }
}

struct MatchFuture {
    world: World,
    rank: usize,
    src: MatchSrc,
    tag: u64,
}

impl Future for MatchFuture {
    type Output = Envelope;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Envelope> {
        let mut mb = self.world.inner.mailboxes[self.rank].borrow_mut();
        let idx = mb.msgs.iter().position(|e| {
            e.tag == self.tag
                && match self.src {
                    MatchSrc::Any => true,
                    MatchSrc::Rank(r) => e.src == r,
                }
        });
        match idx {
            Some(i) => Poll::Ready(mb.msgs.remove(i).expect("index valid")),
            None => {
                mb.wakers.push(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iosim_machine::presets;
    use iosim_simkit::executor::{join_all, Sim};

    fn world(sim: &Sim, n: usize) -> World {
        let m = Machine::new(sim.handle(), presets::paragon_small());
        World::new(m, n)
    }

    #[test]
    fn into_bytes_of_header_only_message_is_empty() {
        // Regression: this used to panic ("payload is synthetic") on
        // `data: None`, taking down receivers of header-only messages.
        assert!(Payload::synthetic(64).into_bytes().is_empty());
        assert!(Payload::synthetic(0).to_bytes().is_empty());
        assert!(Payload::empty().into_bytes().is_empty());
    }

    #[test]
    fn payload_clone_shares_buffers_without_copying() {
        let p = Payload::bytes(vec![1, 2, 3, 4]);
        iosim_buf::tally::reset();
        let q = p.clone();
        assert_eq!(p, q);
        let t = iosim_buf::tally::snapshot();
        assert_eq!(t.bytes_copied, 0);
        assert_eq!(t.bytes_allocated, 0);
    }

    #[test]
    fn send_recv_roundtrip() {
        let mut sim = Sim::new();
        let w = world(&sim, 2);
        let h = sim.handle();
        let c0 = w.comm(0);
        let c1 = w.comm(1);
        let jh = sim.spawn(async move {
            let sender = h.spawn(async move {
                c0.send(1, 7, Payload::bytes(vec![1, 2, 3])).await;
            });
            let (src, p) = c1.recv(MatchSrc::Rank(0), 7).await;
            sender.await;
            (src, p.into_bytes())
        });
        sim.run();
        let (src, data) = jh.try_take().unwrap();
        assert_eq!(src, 0);
        assert_eq!(data, vec![1, 2, 3]);
    }

    #[test]
    fn transfer_time_scales_with_size() {
        let elapsed = |bytes: u64| -> f64 {
            let mut sim = Sim::new();
            let w = world(&sim, 2);
            let h = sim.handle();
            let c0 = w.comm(0);
            let c1 = w.comm(1);
            let jh = sim.spawn(async move {
                let t0 = h.now();
                let s = h.spawn(async move {
                    c0.send(1, 0, Payload::synthetic(bytes)).await;
                });
                c1.recv(MatchSrc::Rank(0), 0).await;
                s.await;
                (h.now() - t0).as_secs_f64()
            });
            sim.run();
            jh.try_take().unwrap()
        };
        let small = elapsed(1_000);
        let big = elapsed(8_000_000);
        // 8 MB at 80 MB/s ≈ 0.1 s dominates latency.
        assert!(big > 0.09 && big < 0.2, "big transfer took {big}");
        assert!(small < 0.01, "small transfer took {small}");
    }

    #[test]
    fn tag_matching_is_selective() {
        let mut sim = Sim::new();
        let w = world(&sim, 2);
        let h = sim.handle();
        let c0 = w.comm(0);
        let c1 = w.comm(1);
        let jh = sim.spawn(async move {
            h.spawn(async move {
                c0.send(1, 5, Payload::bytes(vec![5])).await;
                c0.send(1, 9, Payload::bytes(vec![9])).await;
            });
            // Receive tag 9 first even though tag 5 was sent first.
            let (_, p9) = c1.recv(MatchSrc::Rank(0), 9).await;
            let (_, p5) = c1.recv(MatchSrc::Rank(0), 5).await;
            (p9.into_bytes(), p5.into_bytes())
        });
        sim.run();
        let (p9, p5) = jh.try_take().unwrap();
        assert_eq!(p9, vec![9]);
        assert_eq!(p5, vec![5]);
    }

    #[test]
    fn match_any_source() {
        let mut sim = Sim::new();
        let w = world(&sim, 3);
        let h = sim.handle();
        let c2 = w.comm(2);
        let senders: Vec<_> = (0..2)
            .map(|r| {
                let c = w.comm(r);
                async move {
                    c.send(2, 1, Payload::bytes(vec![r as u8])).await;
                }
            })
            .collect();
        let jh = sim.spawn(async move {
            join_all(&h, senders).await;
            let mut got = Vec::new();
            for _ in 0..2 {
                let (src, _) = c2.recv(MatchSrc::Any, 1).await;
                got.push(src);
            }
            got.sort_unstable();
            got
        });
        sim.run();
        assert_eq!(jh.try_take().unwrap(), vec![0, 1]);
    }

    #[test]
    fn nic_serializes_concurrent_sends() {
        // Two 8 MB sends from the same rank take ~2x one send.
        let mut sim = Sim::new();
        let w = world(&sim, 3);
        let h = sim.handle();
        let c0a = w.comm(0);
        let c0b = w.comm(0);
        let c1 = w.comm(1);
        let c2 = w.comm(2);
        let jh = sim.spawn(async move {
            let t0 = h.now();
            let s1 = h.spawn(async move {
                c0a.send(1, 0, Payload::synthetic(8_000_000)).await;
            });
            let s2 = h.spawn(async move {
                c0b.send(2, 0, Payload::synthetic(8_000_000)).await;
            });
            c1.recv(MatchSrc::Rank(0), 0).await;
            c2.recv(MatchSrc::Rank(0), 0).await;
            s1.await;
            s2.await;
            (h.now() - t0).as_secs_f64()
        });
        sim.run();
        let t = jh.try_take().unwrap();
        assert!(
            t > 0.19,
            "two sends through one NIC should take ~0.2 s: {t}"
        );
    }

    #[test]
    fn self_send_works() {
        let mut sim = Sim::new();
        let w = world(&sim, 1);
        let h = sim.handle();
        let ca = w.comm(0);
        let cb = w.comm(0);
        let jh = sim.spawn(async move {
            h.spawn(async move {
                ca.send(0, 3, Payload::bytes(vec![42])).await;
            });
            let (_, p) = cb.recv(MatchSrc::Rank(0), 3).await;
            p.into_bytes()
        });
        sim.run();
        assert_eq!(jh.try_take().unwrap(), vec![42]);
    }

    #[test]
    fn link_contention_slows_crossing_traffic() {
        // Many ranks in one mesh row all send across the same horizontal
        // links; with contention modelled the exchange takes longer.
        let run_exchange = |contend: bool| -> f64 {
            let mut sim = Sim::new();
            let mut cfg = presets::paragon_small();
            cfg.net.link_contention = contend;
            let m = Machine::new(sim.handle(), cfg);
            // Ranks 0..4 are one mesh row (4 columns); all send 4 MB to
            // the rank 2 rows below (same column → crossing shared
            // vertical links after the X leg... use same-row targets to
            // share horizontal links deterministically).
            let w = World::new(m, 8);
            let h = sim.handle();
            let futs: Vec<_> = (0..4usize)
                .map(|r| {
                    let tx = w.comm(r);
                    let rx = w.comm(r + 4);
                    let h2 = h.clone();
                    async move {
                        let s = h2.spawn(async move {
                            tx.send(tx.rank() + 4, 0, Payload::synthetic(4 << 20)).await;
                        });
                        rx.recv(MatchSrc::Rank(r), 0).await;
                        s.await;
                    }
                })
                .collect();
            let jh = sim.spawn(async move {
                join_all(&h, futs).await;
            });
            let end = sim.run();
            jh.try_take().expect("completed");
            end.as_secs_f64()
        };
        let free = run_exchange(false);
        let contended = run_exchange(true);
        assert!(
            contended >= free,
            "contention cannot speed things up: {contended} vs {free}"
        );
    }

    #[test]
    fn isend_overlaps_injections_with_work() {
        let mut sim = Sim::new();
        let w = world(&sim, 2);
        let h = sim.handle();
        let c0 = w.comm(0);
        let c1 = w.comm(1);
        let jh = sim.spawn(async move {
            // Post two non-blocking sends, "compute", then wait for both.
            let s1 = c0.isend(1, 1, Payload::bytes(vec![1]));
            let s2 = c0.isend(1, 2, Payload::bytes(vec![2]));
            h.sleep(SimDuration::from_millis(5)).await;
            s1.await;
            s2.await;
            let (_, a) = c1.recv(MatchSrc::Rank(0), 1).await;
            let (_, b) = c1.recv(MatchSrc::Rank(0), 2).await;
            (a.into_bytes(), b.into_bytes(), h.now())
        });
        sim.run();
        let (a, b, t) = jh.try_take().unwrap();
        assert_eq!(a, vec![1]);
        assert_eq!(b, vec![2]);
        // Small messages inject during the 5 ms of "compute": total stays 5 ms.
        assert_eq!(t, SimTime(5_000_000));
    }

    #[test]
    fn isend_preserves_posting_order_per_tag() {
        let mut sim = Sim::new();
        let w = world(&sim, 2);
        let c0 = w.comm(0);
        let c1 = w.comm(1);
        let jh = sim.spawn(async move {
            let handles: Vec<_> = (0..5u8)
                .map(|i| c0.isend(1, 9, Payload::bytes(vec![i])))
                .collect();
            for hdl in handles {
                hdl.await;
            }
            let mut got = Vec::new();
            for _ in 0..5 {
                let (_, p) = c1.recv(MatchSrc::Rank(0), 9).await;
                got.push(p.into_bytes()[0]);
            }
            got
        });
        sim.run();
        assert_eq!(jh.try_take().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "outside world")]
    fn out_of_range_rank_panics() {
        let sim = Sim::new();
        let w = world(&sim, 2);
        let _ = w.comm(2);
    }
}
