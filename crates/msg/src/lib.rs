//! # iosim-msg — message passing over the simulated mesh
//!
//! A rank-addressed, tag-matched message layer in the style of the NX /
//! MPL / MPI libraries the paper's applications use. Point-to-point sends
//! serialize on the sender's NIC (bytes / NIC bandwidth), then arrive
//! after the mesh latency for the hop distance. Receives match on
//! `(source, tag)` FIFO per pair.
//!
//! Payloads carry either real bytes (so the two-phase I/O exchange can be
//! verified functionally) or a synthetic length (timing only, for
//! paper-scale volumes).
//!
//! Collectives (barrier, broadcast, gather, all-gather, all-to-all,
//! all-reduce) are built from point-to-point operations, so their cost
//! emerges from the same network model the applications see.

pub mod codec;
pub mod collective;
pub mod comm;
pub mod shardlink;
pub mod tree;

pub use comm::{Comm, MatchSrc, Payload, World};
pub use shardlink::{ShardLink, ShardSignal};
