//! Collective operations, built from point-to-point messages.
//!
//! As in MPI, every rank must call the same collectives in the same order;
//! tag alignment relies on it (each call consumes tags from a per-rank
//! sequence). Algorithms are simple linear ones — on the machines modelled
//! here the collectives' cost is dominated by payload bytes through NICs,
//! which linear algorithms capture, and the paper's optimizations do not
//! depend on clever collective trees.

use crate::comm::{Comm, MatchSrc, Payload};

impl Comm {
    /// Synchronize all ranks. Completes everywhere once every rank has
    /// arrived (gather-to-0 then broadcast of an empty token).
    ///
    /// When this world is one shard of a sharded run, rank 0 additionally
    /// rendezvouses with the other shards through the attached
    /// [`crate::shardlink::ShardLink`] between the gather and the release,
    /// making the barrier global across shards.
    pub async fn barrier(&self) {
        let t1 = self.next_coll_tag();
        let t2 = self.next_coll_tag();
        let n = self.size();
        if self.rank() == 0 {
            for _ in 1..n {
                self.recv(MatchSrc::Any, t1).await;
            }
            if let Some(link) = self.world().shard_link() {
                link.barrier().await;
            }
            for dst in 1..n {
                self.send(dst, t2, Payload::empty()).await;
            }
        } else {
            self.send(0, t1, Payload::empty()).await;
            self.recv(MatchSrc::Rank(0), t2).await;
        }
    }

    /// Broadcast `payload` from `root`; every rank returns the payload.
    pub async fn bcast(&self, root: usize, payload: Option<Payload>) -> Payload {
        let t = self.next_coll_tag();
        if self.rank() == root {
            let p = payload.expect("root must supply the broadcast payload");
            for dst in 0..self.size() {
                if dst != root {
                    self.send(dst, t, p.clone()).await;
                }
            }
            p
        } else {
            let (_, p) = self.recv(MatchSrc::Rank(root), t).await;
            p
        }
    }

    /// Gather every rank's payload at `root`. Returns `Some(payloads)` in
    /// rank order at the root, `None` elsewhere.
    pub async fn gather(&self, root: usize, payload: Payload) -> Option<Vec<Payload>> {
        let t = self.next_coll_tag();
        if self.rank() == root {
            let mut out: Vec<Option<Payload>> = (0..self.size()).map(|_| None).collect();
            out[root] = Some(payload);
            for _ in 0..self.size() - 1 {
                let (src, p) = self.recv(MatchSrc::Any, t).await;
                out[src] = Some(p);
            }
            Some(
                out.into_iter()
                    .map(|p| p.expect("all ranks sent"))
                    .collect(),
            )
        } else {
            self.send(root, t, payload).await;
            None
        }
    }

    /// Gather every rank's payload everywhere (gather + broadcast of the
    /// concatenated result is modelled as gather at 0 then per-rank sends).
    pub async fn allgather(&self, payload: Payload) -> Vec<Payload> {
        // Linear all-gather: every rank sends its payload to every other.
        let t = self.next_coll_tag();
        let n = self.size();
        for dst in 0..n {
            if dst != self.rank() {
                self.send(dst, t, payload.clone()).await;
            }
        }
        let mut out: Vec<Option<Payload>> = (0..n).map(|_| None).collect();
        out[self.rank()] = Some(payload);
        for _ in 0..n - 1 {
            let (src, p) = self.recv(MatchSrc::Any, t).await;
            out[src] = Some(p);
        }
        out.into_iter()
            .map(|p| p.expect("all ranks sent"))
            .collect()
    }

    /// Personalized all-to-all: `to_each[d]` goes to rank `d`; returns the
    /// payload received from each rank, in rank order. This is the
    /// communication phase of two-phase I/O.
    pub async fn alltoallv(&self, to_each: Vec<Payload>) -> Vec<Payload> {
        assert_eq!(
            to_each.len(),
            self.size(),
            "alltoallv needs one payload per rank"
        );
        let t = self.next_coll_tag();
        let n = self.size();
        let me = self.rank();
        let mut out: Vec<Option<Payload>> = (0..n).map(|_| None).collect();
        // Stagger send order by rank to avoid everyone hammering rank 0
        // first (as real implementations do).
        for k in 0..n {
            let dst = (me + k) % n;
            let p = to_each[dst].clone();
            if dst == me {
                out[me] = Some(p);
            } else {
                self.send(dst, t, p).await;
            }
        }
        for _ in 0..n - 1 {
            let (src, p) = self.recv(MatchSrc::Any, t).await;
            out[src] = Some(p);
        }
        out.into_iter()
            .map(|p| p.expect("all ranks sent"))
            .collect()
    }

    /// Personalized all-to-all with the pairwise-exchange schedule: in
    /// round `k`, rank `r` exchanges with partner `(r + k) mod P` — every
    /// rank sends and receives exactly once per round, avoiding the
    /// receiver hot-spotting the naive schedule can produce. Semantically
    /// identical to [`Comm::alltoallv`].
    pub async fn alltoallv_pairwise(&self, to_each: Vec<Payload>) -> Vec<Payload> {
        assert_eq!(
            to_each.len(),
            self.size(),
            "alltoallv needs one payload per rank"
        );
        let t = self.next_coll_tag();
        let n = self.size();
        let me = self.rank();
        let mut out: Vec<Option<Payload>> = (0..n).map(|_| None).collect();
        out[me] = Some(to_each[me].clone());
        for k in 1..n {
            let send_to = (me + k) % n;
            let recv_from = (me + n - k) % n;
            // Post the send non-blockingly so reciprocal rounds overlap.
            let round_tag = t + ((k as u64) << 32);
            let s = self.isend(send_to, round_tag, to_each[send_to].clone());
            let (_, p) = self.recv(MatchSrc::Rank(recv_from), round_tag).await;
            s.await;
            out[recv_from] = Some(p);
        }
        out.into_iter()
            .map(|p| p.expect("all rounds ran"))
            .collect()
    }

    /// Sum-reduce an `f64` across ranks; every rank returns the total.
    pub async fn allreduce_sum(&self, value: f64) -> f64 {
        let t1 = self.next_coll_tag();
        let t2 = self.next_coll_tag();
        let n = self.size();
        if self.rank() == 0 {
            let mut acc = value;
            for _ in 1..n {
                let (_, p) = self.recv(MatchSrc::Any, t1).await;
                acc += f64::from_le_bytes(p.into_bytes().try_into().expect("8-byte f64 payload"));
            }
            for dst in 1..n {
                self.send(dst, t2, Payload::bytes(acc.to_le_bytes().to_vec()))
                    .await;
            }
            acc
        } else {
            self.send(0, t1, Payload::bytes(value.to_le_bytes().to_vec()))
                .await;
            let (_, p) = self.recv(MatchSrc::Rank(0), t2).await;
            f64::from_le_bytes(p.into_bytes().try_into().expect("8-byte f64 payload"))
        }
    }

    /// Max-reduce a `u64` across ranks; every rank returns the maximum.
    /// Used to agree on balanced file sizes and loop bounds.
    pub async fn allreduce_max(&self, value: u64) -> u64 {
        let t1 = self.next_coll_tag();
        let t2 = self.next_coll_tag();
        let n = self.size();
        if self.rank() == 0 {
            let mut acc = value;
            for _ in 1..n {
                let (_, p) = self.recv(MatchSrc::Any, t1).await;
                acc = acc.max(u64::from_le_bytes(
                    p.into_bytes().try_into().expect("8-byte u64 payload"),
                ));
            }
            for dst in 1..n {
                self.send(dst, t2, Payload::bytes(acc.to_le_bytes().to_vec()))
                    .await;
            }
            acc
        } else {
            self.send(0, t1, Payload::bytes(value.to_le_bytes().to_vec()))
                .await;
            let (_, p) = self.recv(MatchSrc::Rank(0), t2).await;
            u64::from_le_bytes(p.into_bytes().try_into().expect("8-byte u64 payload"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::World;
    use iosim_machine::{presets, Machine};
    use iosim_simkit::executor::{join_all, Sim};
    use iosim_simkit::time::SimTime;

    /// Run `f(comm)` on every rank of an `n`-rank world and collect results.
    fn run_ranks<T: 'static, F, Fut>(n: usize, f: F) -> Vec<T>
    where
        F: Fn(Comm) -> Fut,
        Fut: std::future::Future<Output = T> + 'static,
    {
        let mut sim = Sim::new();
        let m = Machine::new(sim.handle(), presets::paragon_small());
        let w = World::new(m, n);
        let h = sim.handle();
        let futs: Vec<_> = w.comms().into_iter().map(&f).collect();
        let jh = sim.spawn(async move { join_all(&h, futs).await });
        sim.run();
        jh.try_take().expect("all ranks completed")
    }

    #[test]
    fn barrier_aligns_completion_times() {
        let times = run_ranks(4, |c| async move {
            let h = c.machine().handle().clone();
            h.sleep(iosim_simkit::time::SimDuration::from_millis(
                10 * (c.rank() as u64 + 1),
            ))
            .await;
            c.barrier().await;
            h.now()
        });
        let all_after_slowest = times.iter().all(|&t| t >= SimTime(40_000_000));
        assert!(all_after_slowest, "{times:?}");
    }

    #[test]
    fn bcast_distributes_root_payload() {
        let vals = run_ranks(5, |c| async move {
            let me = c.rank();
            let p = if me == 2 {
                Some(Payload::bytes(vec![9, 9]))
            } else {
                None
            };
            c.bcast(2, p).await.into_bytes()
        });
        assert!(vals.iter().all(|v| v == &vec![9, 9]));
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let outs = run_ranks(4, |c| async move {
            c.gather(0, Payload::bytes(vec![c.rank() as u8])).await
        });
        let at_root = outs[0].as_ref().expect("root has the gather");
        let vals: Vec<u8> = at_root.iter().map(|p| p.to_bytes()[0]).collect();
        assert_eq!(vals, vec![0, 1, 2, 3]);
        assert!(outs[1].is_none());
    }

    #[test]
    fn allgather_gives_everyone_everything() {
        let outs = run_ranks(3, |c| async move {
            let got = c.allgather(Payload::bytes(vec![c.rank() as u8 * 10])).await;
            got.iter().map(|p| p.to_bytes()[0]).collect::<Vec<u8>>()
        });
        for o in outs {
            assert_eq!(o, vec![0, 10, 20]);
        }
    }

    #[test]
    fn alltoallv_transposes_payloads() {
        let outs = run_ranks(4, |c| async move {
            let me = c.rank() as u8;
            let to_each: Vec<Payload> = (0..4).map(|d| Payload::bytes(vec![me, d as u8])).collect();
            let got = c.alltoallv(to_each).await;
            got.iter()
                .map(|p| p.to_bytes().to_vec())
                .collect::<Vec<Vec<u8>>>()
        });
        for (me, got) in outs.iter().enumerate() {
            for (src, v) in got.iter().enumerate() {
                assert_eq!(v, &vec![src as u8, me as u8]);
            }
        }
    }

    #[test]
    fn pairwise_alltoall_matches_linear() {
        let outs = run_ranks(5, |c| async move {
            let me = c.rank() as u8;
            let to_each: Vec<Payload> = (0..5)
                .map(|d| Payload::bytes(vec![me, d as u8, me ^ d as u8]))
                .collect();
            let a = c.alltoallv(to_each.clone()).await;
            let b = c.alltoallv_pairwise(to_each).await;
            (a, b)
        });
        for (a, b) in outs {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn pairwise_alltoall_avoids_receiver_hotspots() {
        // With large payloads and many ranks the pairwise schedule should
        // be at least as fast as the naive one.
        let time_of = |pairwise: bool| -> f64 {
            let outs = run_ranks(16, move |c| async move {
                let h = c.machine().handle().clone();
                let to_each: Vec<Payload> = (0..16).map(|_| Payload::synthetic(1 << 20)).collect();
                if pairwise {
                    c.alltoallv_pairwise(to_each).await;
                } else {
                    c.alltoallv(to_each).await;
                }
                h.now().as_secs_f64()
            });
            outs.into_iter().fold(0.0, f64::max)
        };
        let naive = time_of(false);
        let pairwise = time_of(true);
        assert!(
            pairwise <= naive * 1.05,
            "pairwise {pairwise} should not lose to naive {naive}"
        );
    }

    #[test]
    fn allreduce_sum_and_max() {
        let sums = run_ranks(6, |c| async move {
            let s = c.allreduce_sum((c.rank() + 1) as f64).await;
            let m = c.allreduce_max(c.rank() as u64 * 7).await;
            (s, m)
        });
        for (s, m) in sums {
            assert!((s - 21.0).abs() < 1e-12);
            assert_eq!(m, 35);
        }
    }

    #[test]
    fn collectives_compose_in_sequence() {
        // Two consecutive barriers plus a bcast must not cross-match tags.
        let vals = run_ranks(3, |c| async move {
            c.barrier().await;
            let p = if c.rank() == 0 {
                Some(Payload::bytes(vec![1]))
            } else {
                None
            };
            let v = c.bcast(0, p).await;
            c.barrier().await;
            v.into_bytes()[0]
        });
        assert_eq!(vals, vec![1, 1, 1]);
    }

    #[test]
    fn synthetic_payloads_flow_through_alltoall() {
        let outs = run_ranks(3, |c| async move {
            let to_each: Vec<Payload> = (0..3).map(|_| Payload::synthetic(1 << 20)).collect();
            let got = c.alltoallv(to_each).await;
            got.iter().map(|p| p.len).sum::<u64>()
        });
        for o in outs {
            assert_eq!(o, 3 << 20);
        }
    }
}
