//! Byte packing helpers for typed payloads.
//!
//! The applications move arrays of `f64`; these helpers pack and unpack
//! them to the byte payloads the message layer carries, little-endian.

/// Pack a slice of `f64` into bytes (little-endian).
///
/// ```
/// use iosim_msg::codec::{pack_f64, unpack_f64};
/// let v = vec![1.5, -2.0];
/// assert_eq!(unpack_f64(&pack_f64(&v)), v);
/// ```
pub fn pack_f64(values: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Unpack bytes into `f64`s.
///
/// # Panics
/// Panics if the byte length is not a multiple of 8.
pub fn unpack_f64(bytes: &[u8]) -> Vec<f64> {
    assert!(
        bytes.len().is_multiple_of(8),
        "byte length {} not a multiple of 8",
        bytes.len()
    );
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("chunk of 8")))
        .collect()
}

/// Pack a slice of `u64` into bytes (little-endian).
pub fn pack_u64(values: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Unpack bytes into `u64`s.
///
/// # Panics
/// Panics if the byte length is not a multiple of 8.
pub fn unpack_u64(bytes: &[u8]) -> Vec<u64> {
    assert!(
        bytes.len().is_multiple_of(8),
        "byte length {} not a multiple of 8",
        bytes.len()
    );
    bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_roundtrip_simple() {
        let v = vec![0.0, 1.5, -2.25, f64::MAX];
        assert_eq!(unpack_f64(&pack_f64(&v)), v);
    }

    #[test]
    fn u64_roundtrip_simple() {
        let v = vec![0, 1, u64::MAX];
        assert_eq!(unpack_u64(&pack_u64(&v)), v);
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn unpack_rejects_ragged_lengths() {
        unpack_f64(&[1, 2, 3]);
    }

    #[cfg(feature = "heavy-tests")]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn f64_roundtrip(v in proptest::collection::vec(any::<f64>(), 0..100)) {
                let back = unpack_f64(&pack_f64(&v));
                prop_assert_eq!(back.len(), v.len());
                for (a, b) in back.iter().zip(&v) {
                    prop_assert!(a.to_bits() == b.to_bits());
                }
            }

            #[test]
            fn u64_roundtrip(v in proptest::collection::vec(any::<u64>(), 0..100)) {
                prop_assert_eq!(unpack_u64(&pack_u64(&v)), v);
            }
        }
    }
}
