//! Tree-structured collective algorithms.
//!
//! The linear collectives in [`crate::collective`] cost `O(P)` message
//! steps at the root. These variants use the classical logarithmic
//! schedules — binomial trees for broadcast and reduce, recursive
//! doubling for barrier — which matter once the paper's larger partitions
//! (64–256 compute nodes) synchronize frequently. Both implementations
//! share the tag discipline, so programs can mix them freely as long as
//! every rank picks the same algorithm per call site.

use crate::comm::{Comm, MatchSrc, Payload};

/// Number of rounds in a binomial schedule over `n` ranks.
fn rounds(n: usize) -> u32 {
    usize::BITS - (n - 1).leading_zeros()
}

impl Comm {
    /// Binomial-tree broadcast from `root`: `⌈log₂ P⌉` rounds instead of
    /// `P − 1` root sends.
    pub async fn bcast_tree(&self, root: usize, payload: Option<Payload>) -> Payload {
        let n = self.size();
        let t = self.next_coll_tag();
        if n == 1 {
            return payload.expect("root must supply the broadcast payload");
        }
        // Rotate ranks so the root is virtual rank 0.
        let me = (self.rank() + n - root) % n;
        let mut have: Option<Payload> = if self.rank() == root {
            Some(payload.expect("root must supply the broadcast payload"))
        } else {
            None
        };
        let k = rounds(n);
        for r in 0..k {
            let bit = 1usize << r;
            if me < bit {
                // I already have the data: send to my partner this round.
                let partner = me + bit;
                if partner < n {
                    let dst = (partner + root) % n;
                    self.send(dst, t, have.clone().expect("holder has data"))
                        .await;
                }
            } else if me < bit << 1 {
                // I receive this round.
                let partner = me - bit;
                let src = (partner + root) % n;
                let (_, p) = self.recv(MatchSrc::Rank(src), t).await;
                have = Some(p);
            }
        }
        have.expect("every rank is reached in ⌈log₂ P⌉ rounds")
    }

    /// Binomial-tree sum-reduction to `root`; returns `Some(total)` at the
    /// root, `None` elsewhere.
    pub async fn reduce_sum_tree(&self, root: usize, value: f64) -> Option<f64> {
        let n = self.size();
        let t = self.next_coll_tag();
        if n == 1 {
            return Some(value);
        }
        let me = (self.rank() + n - root) % n;
        let mut acc = value;
        let k = rounds(n);
        for r in 0..k {
            let bit = 1usize << r;
            if me & (bit - 1) != 0 {
                continue; // already sent in an earlier round
            }
            if me & bit != 0 {
                // Send my partial to the partner and go quiet.
                let partner = me - bit;
                let dst = (partner + root) % n;
                self.send(dst, t, Payload::bytes(acc.to_le_bytes().to_vec()))
                    .await;
                break;
            } else if me + bit < n {
                let src = ((me + bit) + root) % n;
                let (_, p) = self.recv(MatchSrc::Rank(src), t).await;
                acc += f64::from_le_bytes(p.into_bytes().try_into().expect("8-byte partial"));
            }
        }
        (self.rank() == root).then_some(acc)
    }

    /// Logarithmic barrier: tree reduce + tree broadcast of a token.
    pub async fn barrier_tree(&self) {
        let _ = self.reduce_sum_tree(0, 0.0).await;
        let token = (self.rank() == 0).then(Payload::empty);
        let _ = self.bcast_tree(0, token).await;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::World;
    use iosim_machine::{presets, Machine};
    use iosim_simkit::executor::{join_all, Sim};
    use iosim_simkit::time::SimDuration;

    fn run_ranks<T: 'static, F, Fut>(n: usize, f: F) -> Vec<T>
    where
        F: Fn(Comm) -> Fut,
        Fut: std::future::Future<Output = T> + 'static,
    {
        let mut sim = Sim::new();
        let m = Machine::new(sim.handle(), presets::paragon_large());
        let w = World::new(m, n);
        let h = sim.handle();
        let futs: Vec<_> = w.comms().into_iter().map(&f).collect();
        let jh = sim.spawn(async move { join_all(&h, futs).await });
        sim.run();
        jh.try_take().expect("all ranks completed")
    }

    #[test]
    fn tree_bcast_reaches_every_rank() {
        for n in [1usize, 2, 3, 5, 8, 13, 32] {
            for root in [0usize, n / 2, n - 1] {
                let vals = run_ranks(n, move |c| async move {
                    let p = (c.rank() == root).then(|| Payload::bytes(vec![7, root as u8]));
                    c.bcast_tree(root, p).await.into_bytes()
                });
                for v in vals {
                    assert_eq!(v, vec![7, root as u8], "n={n} root={root}");
                }
            }
        }
    }

    #[test]
    fn tree_reduce_sums_exactly() {
        for n in [1usize, 2, 6, 16, 31] {
            let outs = run_ranks(n, move |c| async move {
                c.reduce_sum_tree(0, (c.rank() + 1) as f64).await
            });
            let want: f64 = (n * (n + 1) / 2) as f64;
            assert_eq!(outs[0], Some(want), "n={n}");
            assert!(outs[1..].iter().all(|o| o.is_none()));
        }
    }

    #[test]
    fn tree_barrier_synchronizes() {
        let times = run_ranks(9, |c| async move {
            let h = c.machine().handle().clone();
            h.sleep(SimDuration::from_millis(10 * (c.rank() as u64 + 1)))
                .await;
            c.barrier_tree().await;
            h.now()
        });
        // Every rank resumes after the slowest arrival (90 ms); resume
        // instants differ only by the broadcast fan-out latency.
        let earliest = *times.iter().min().unwrap();
        let latest = *times.iter().max().unwrap();
        assert!(earliest >= iosim_simkit::time::SimTime(90_000_000));
        assert!(latest.since(earliest) < SimDuration::from_millis(1));
    }

    #[test]
    fn tree_bcast_scales_logarithmically() {
        // Compare broadcast completion times of the linear and tree
        // algorithms for a large payload on many ranks.
        let time_with = |tree: bool, n: usize| -> f64 {
            let outs = run_ranks(n, move |c| async move {
                let h = c.machine().handle().clone();
                let p = (c.rank() == 0).then(|| Payload::synthetic(4 << 20));
                if tree {
                    c.bcast_tree(0, p).await;
                } else {
                    c.bcast(0, p).await;
                }
                h.now().as_secs_f64()
            });
            outs.into_iter().fold(0.0, f64::max)
        };
        let linear = time_with(false, 64);
        let tree = time_with(true, 64);
        assert!(
            tree < linear / 3.0,
            "binomial bcast should be much faster at P=64: {tree} vs {linear}"
        );
    }

    #[test]
    fn tree_and_linear_collectives_compose() {
        // Mixing algorithms across call sites must keep tags aligned.
        let vals = run_ranks(5, |c| async move {
            c.barrier_tree().await;
            let a = c
                .bcast(1, (c.rank() == 1).then(|| Payload::bytes(vec![1])))
                .await;
            let b = c
                .bcast_tree(2, (c.rank() == 2).then(|| Payload::bytes(vec![2])))
                .await;
            c.barrier().await;
            (a.into_bytes()[0], b.into_bytes()[0])
        });
        assert!(vals.iter().all(|&(a, b)| a == 1 && b == 2));
    }
}
