//! Cross-shard synchronization link for the sharded parallel engine.
//!
//! When a run is partitioned into shards (`iosim_simkit::shard`), each
//! shard simulates its own rank group on its own [`crate::World`]. Global
//! collectives then need a cross-shard rendezvous: the local rank 0 of
//! every shard enters the [`ShardLink`] barrier, which broadcasts an
//! arrival signal through the engine's conservative mailboxes and waits
//! for every other shard's arrival. Signals travel with the engine
//! lookahead as their latency — the cheapest cross-shard network
//! traversal — so a global barrier costs one lookahead of virtual time on
//! top of the slowest shard, the same skew a monolithic simulation would
//! charge for the release messages.
//!
//! Epochs align because the applications are SPMD: every shard's rank 0
//! reaches its `k`-th global barrier in the same call order, so the
//! `k`-th arrival signals of all shards pair up deterministically.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

use iosim_simkit::executor::SimHandle;
use iosim_simkit::shard::Outbox;
use iosim_simkit::time::SimDuration;

/// Signal exchanged between shards through the engine mailboxes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardSignal {
    /// Shard `shard` has entered its `epoch`-th global barrier.
    Arrive {
        /// Sending shard index.
        shard: usize,
        /// Barrier sequence number on the sender.
        epoch: u64,
    },
}

struct LinkInner {
    handle: SimHandle,
    shard: usize,
    shards: usize,
    lookahead: SimDuration,
    outbox: Outbox<ShardSignal>,
    /// Remote arrivals per epoch, pruned once the epoch completes.
    arrived: RefCell<BTreeMap<u64, usize>>,
    wakers: RefCell<Vec<Waker>>,
    /// Next barrier epoch on this shard.
    epoch: Cell<u64>,
}

/// One shard's endpoint of the cross-shard barrier. Clones share state.
#[derive(Clone)]
pub struct ShardLink {
    inner: Rc<LinkInner>,
}

impl ShardLink {
    /// Create the link for shard `shard` of `shards`, signalling through
    /// `outbox` with `lookahead` as the signal latency.
    pub fn new(
        handle: SimHandle,
        shard: usize,
        shards: usize,
        lookahead: SimDuration,
        outbox: Outbox<ShardSignal>,
    ) -> ShardLink {
        assert!(shard < shards, "shard {shard} outside {shards}");
        ShardLink {
            inner: Rc::new(LinkInner {
                handle,
                shard,
                shards,
                lookahead,
                outbox,
                arrived: RefCell::new(BTreeMap::new()),
                wakers: RefCell::new(Vec::new()),
                epoch: Cell::new(0),
            }),
        }
    }

    /// This shard's index.
    pub fn shard(&self) -> usize {
        self.inner.shard
    }

    /// Total shard count.
    pub fn shards(&self) -> usize {
        self.inner.shards
    }

    /// Feed an incoming signal from the engine's deliver hook.
    pub fn deliver(&self, sig: ShardSignal) {
        let ShardSignal::Arrive { epoch, .. } = sig;
        *self.inner.arrived.borrow_mut().entry(epoch).or_insert(0) += 1;
        for w in self.inner.wakers.borrow_mut().drain(..) {
            w.wake();
        }
    }

    /// Enter the next global barrier: broadcast this shard's arrival and
    /// wait (in virtual time) for every other shard's matching arrival.
    /// Completes immediately when there is only one shard.
    pub async fn barrier(&self) {
        let epoch = self.inner.epoch.get();
        self.inner.epoch.set(epoch + 1);
        let at = self.inner.handle.now() + self.inner.lookahead;
        for dst in 0..self.inner.shards {
            if dst != self.inner.shard {
                self.inner.outbox.send(
                    dst,
                    at,
                    ShardSignal::Arrive {
                        shard: self.inner.shard,
                        epoch,
                    },
                );
            }
        }
        WaitEpoch {
            link: Rc::clone(&self.inner),
            epoch,
        }
        .await;
        self.inner.arrived.borrow_mut().remove(&epoch);
    }
}

struct WaitEpoch {
    link: Rc<LinkInner>,
    epoch: u64,
}

impl Future for WaitEpoch {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let need = self.link.shards - 1;
        let have = self
            .link
            .arrived
            .borrow()
            .get(&self.epoch)
            .copied()
            .unwrap_or(0);
        if have >= need {
            Poll::Ready(())
        } else {
            self.link.wakers.borrow_mut().push(cx.waker().clone());
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iosim_simkit::executor::Sim;
    use iosim_simkit::shard::{run_sharded, ShardCtx, ShardRuntime};
    use iosim_simkit::time::SimTime;

    const L: SimDuration = SimDuration(50_000); // 50 µs

    fn shard_body(ctx: ShardCtx<ShardSignal>, rounds: usize) -> ShardRuntime<ShardSignal, SimTime> {
        let sim = Sim::new();
        let h = sim.handle();
        let link = ShardLink::new(h.clone(), ctx.index, ctx.shards, ctx.lookahead, ctx.outbox);
        let l2 = link.clone();
        // Shards do unequal local work before each barrier; the barrier
        // must still line them up.
        let work = SimDuration::from_micros(10 * (ctx.index as u64 + 1));
        sim.spawn(async move {
            for _ in 0..rounds {
                h.sleep(work).await;
                l2.barrier().await;
            }
        });
        let h2 = sim.handle();
        ShardRuntime {
            sim,
            deliver: Box::new(move |sig| link.deliver(sig)),
            finish: Box::new(move || h2.now()),
        }
    }

    #[test]
    fn barriers_line_up_unequal_shards() {
        const ROUNDS: usize = 5;
        let report = run_sharded(
            L,
            2,
            vec![|ctx| shard_body(ctx, ROUNDS), |ctx| shard_body(ctx, ROUNDS)],
        );
        // A shard exits each barrier when the *other* shard's arrival
        // signal lands (entry + L), like an MPI barrier: exit times are
        // per-rank, not globally equal. Hand trace with work = 10/20 µs:
        //   r1: s0 enters @10 (arr @60), s1 @20 (arr @70) → exits 70/60
        //   r2: both enter @80 (arr @130)                 → exits 130/130
        //   r3: enters 140/150 (arr 190/200)              → exits 200/190
        //   r4: both enter @210 (arr @260)                → exits 260/260
        //   r5: enters 270/280 (arr 320/330)              → exits 330/320
        let us = |t: u64| SimTime::ZERO + SimDuration::from_micros(t);
        assert_eq!(report.results, vec![us(330), us(320)]);
        // Neither shard can exit a barrier before the other entered it +
        // the lookahead: the conservative window is respected.
        assert!(report.end_time >= SimTime::ZERO + L * ROUNDS as u64);
    }

    #[test]
    fn worker_count_does_not_change_barrier_timing() {
        const ROUNDS: usize = 7;
        let runs: Vec<_> = [1usize, 2, 3]
            .iter()
            .map(|&w| {
                run_sharded(
                    L,
                    w,
                    vec![
                        |ctx| shard_body(ctx, ROUNDS),
                        |ctx| shard_body(ctx, ROUNDS),
                        |ctx| shard_body(ctx, ROUNDS),
                    ],
                )
            })
            .collect();
        assert_eq!(runs[0].results, runs[1].results);
        assert_eq!(runs[0].results, runs[2].results);
        assert_eq!(runs[0].fingerprint, runs[1].fingerprint);
        assert_eq!(runs[0].fingerprint, runs[2].fingerprint);
    }

    #[test]
    fn single_shard_barrier_is_free() {
        let report = run_sharded(
            L,
            1,
            vec![|ctx: ShardCtx<ShardSignal>| {
                let sim = Sim::new();
                let h = sim.handle();
                let link =
                    ShardLink::new(h.clone(), ctx.index, ctx.shards, ctx.lookahead, ctx.outbox);
                let l2 = link.clone();
                sim.spawn(async move {
                    for _ in 0..3 {
                        l2.barrier().await;
                    }
                });
                let h2 = sim.handle();
                ShardRuntime {
                    sim,
                    deliver: Box::new(move |sig| link.deliver(sig)),
                    finish: Box::new(move || h2.now()),
                }
            }],
        );
        assert_eq!(report.results, vec![SimTime::ZERO]);
    }
}
