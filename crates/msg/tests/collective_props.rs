#![cfg(feature = "heavy-tests")]
//! Property tests of the collectives: for arbitrary payload matrices the
//! collectives must implement their algebraic contracts (transpose for
//! all-to-all, replication for broadcast/all-gather, reduction for
//! all-reduce) — regardless of sizes or rank counts.

use iosim_machine::{presets, Machine};
use iosim_msg::{Comm, Payload, World};
use iosim_simkit::executor::{join_all, Sim};
use proptest::prelude::*;

fn run_ranks<T: 'static, F, Fut>(n: usize, f: F) -> Vec<T>
where
    F: Fn(Comm) -> Fut,
    Fut: std::future::Future<Output = T> + 'static,
{
    let mut sim = Sim::new();
    let m = Machine::new(sim.handle(), presets::paragon_large());
    let w = World::new(m, n);
    let h = sim.handle();
    let futs: Vec<_> = w.comms().into_iter().map(&f).collect();
    let jh = sim.spawn(async move { join_all(&h, futs).await });
    sim.run();
    jh.try_take().expect("all ranks completed")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn alltoallv_is_a_transpose(
        n in 2usize..6,
        seed in any::<u8>(),
    ) {
        // Payload from src to dst encodes (src, dst, seed).
        let outs = run_ranks(n, move |c| async move {
            let me = c.rank() as u8;
            let to_each: Vec<Payload> = (0..c.size() as u8)
                .map(|d| Payload::bytes(vec![me, d, seed, me ^ d]))
                .collect();
            let got = c.alltoallv(to_each).await;
            got.into_iter().map(|p| p.into_bytes()).collect::<Vec<_>>()
        });
        for (dst, got) in outs.iter().enumerate() {
            for (src, bytes) in got.iter().enumerate() {
                prop_assert_eq!(
                    bytes.as_slice(),
                    &[src as u8, dst as u8, seed, (src ^ dst) as u8][..]
                );
            }
        }
    }

    #[test]
    fn alltoallv_preserves_arbitrary_lengths(
        lens in proptest::collection::vec(0u64..5_000, 9..=9),
    ) {
        // 3 ranks, each sending lens[src*3+dst] synthetic bytes.
        let lens2 = lens.clone();
        let outs = run_ranks(3, move |c| {
            let lens = lens2.clone();
            async move {
                let me = c.rank();
                let to_each: Vec<Payload> = (0..3)
                    .map(|d| Payload::synthetic(lens[me * 3 + d]))
                    .collect();
                let got = c.alltoallv(to_each).await;
                got.iter().map(|p| p.len).collect::<Vec<u64>>()
            }
        });
        for (dst, got) in outs.iter().enumerate() {
            for (src, &len) in got.iter().enumerate() {
                prop_assert_eq!(len, lens[src * 3 + dst]);
            }
        }
    }

    #[test]
    fn bcast_replicates_any_payload(
        n in 2usize..6,
        root_pick in any::<u8>(),
        data in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let root = root_pick as usize % n;
        let data2 = data.clone();
        let outs = run_ranks(n, move |c| {
            let data = data2.clone();
            async move {
                let p = (c.rank() == root).then(|| Payload::bytes(data.clone()));
                c.bcast(root, p).await.into_bytes()
            }
        });
        for o in outs {
            prop_assert_eq!(&o, &data);
        }
    }

    #[test]
    fn allreduce_sum_is_exact_for_integers(
        n in 2usize..7,
        values in proptest::collection::vec(-1000i32..1000, 7..=7),
    ) {
        let vals = values.clone();
        let outs = run_ranks(n, move |c| {
            let v = vals[c.rank()] as f64;
            async move { c.allreduce_sum(v).await }
        });
        let want: f64 = values[..n].iter().map(|&v| v as f64).sum();
        for o in outs {
            prop_assert!((o - want).abs() < 1e-9, "{o} vs {want}");
        }
    }

    #[test]
    fn gather_then_bcast_equals_allgather(
        n in 2usize..5,
        seed in any::<u8>(),
    ) {
        let outs = run_ranks(n, move |c| async move {
            let mine = Payload::bytes(vec![c.rank() as u8 ^ seed]);
            let ag = c.allgather(mine.clone()).await;
            let g = c.gather(0, mine).await;
            (ag, g)
        });
        let reference: Vec<Vec<u8>> =
            (0..n).map(|r| vec![r as u8 ^ seed]).collect();
        for (rank, (ag, g)) in outs.into_iter().enumerate() {
            let ag_bytes: Vec<Vec<u8>> =
                ag.into_iter().map(|p| p.into_bytes()).collect();
            prop_assert_eq!(&ag_bytes, &reference);
            if rank == 0 {
                let g_bytes: Vec<Vec<u8>> = g
                    .expect("root has gather")
                    .into_iter()
                    .map(|p| p.into_bytes())
                    .collect();
                prop_assert_eq!(&g_bytes, &reference);
            } else {
                prop_assert!(g.is_none());
            }
        }
    }
}
