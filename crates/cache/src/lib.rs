//! # iosim-cache — per-I/O-node buffer-cache model
//!
//! The paper's I/O-node daemons keep a block cache in front of each disk;
//! this crate models that layer as a *timing* cache. Actual file bytes
//! live in the PFS file state and are always kept consistent
//! synchronously — the cache only decides *when* a stripe-unit request
//! completes and which disk traffic it induces:
//!
//! - **Block-granular LRU read cache.** Requests are split into
//!   cache blocks (default: the machine's stripe unit). Resident blocks
//!   are served at memory speed (a fixed lookup overhead plus a
//!   copy at `mem_bandwidth_bps`); missing blocks are fetched from the
//!   disk queue as coalesced extents, so a multi-block miss pays one
//!   positioning cost, not one per block.
//! - **Write-behind.** Writes complete once the data is in cache memory
//!   and are written back later: by a flush daemon that wakes when the
//!   dirty-block count crosses a high-water mark and drains it to the
//!   low-water mark in background batches, by dirty evictions (which
//!   stall the writer — the model's throttle when the cache is
//!   overwhelmed), or by an explicit [`BufferCache::flush_file`].
//! - **Sequential read-ahead.** When a file is read sequentially, the
//!   next `read_ahead_blocks` blocks are fetched speculatively after the
//!   demand miss; a later request overlapping an in-flight prefetch
//!   waits only for its completion (and is counted as a read-ahead hit).
//! - **List-I/O requests.** The PFS vectored service path hands a whole
//!   per-node extent list to [`BufferCache::read_extents`] /
//!   [`BufferCache::write_extents`], served in one pass: one hit scan
//!   over the union of touched blocks, one coalesced miss set, and the
//!   lookup overhead plus memory copy paid once per request.
//!
//! Every decision is deterministic: LRU order is kept in a
//! [`BTreeMap`] over a monotonic access tick (never iterate the block
//! [`HashMap`] — its order is not deterministic), disk bookings use the
//! shared per-node FIFO [`Resource`](iosim_simkit::resource::Resource) queues, and the flush daemon is a
//! short-lived simulation task that always terminates (so the executor
//! never leaks it).
//!
//! Policy and sizing come from [`iosim_machine::CacheParams`] on the
//! machine config; [`BufferCache::new`] returns `None` under
//! [`CachePolicy::None`](iosim_machine::CachePolicy::None), which lets the PFS keep its original
//! uncached path byte-for-byte.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

use iosim_machine::{CacheParams, Machine};
use iosim_simkit::time::{SimDuration, SimTime};
use iosim_trace::CacheCounters;

/// A cached block is identified by (file uid, block index within the
/// I/O node's local byte space).
type BlockKey = (u64, u64);

/// Per-block state.
#[derive(Clone, Copy, Debug)]
struct Block {
    /// When the block's contents are available in cache memory (later
    /// than "now" only while a fetch or prefetch is still in flight).
    ready_at: SimTime,
    /// Dirty blocks hold write-behind data not yet on disk.
    dirty: bool,
    /// This block's entry in the LRU index.
    tick: u64,
}

/// State of one I/O node's cache.
#[derive(Default)]
struct NodeCache {
    blocks: HashMap<BlockKey, Block>,
    /// LRU index: access tick -> block key. Ticks are unique and
    /// monotonic, so the first entry is always the LRU victim and
    /// iteration order is deterministic.
    lru: BTreeMap<u64, BlockKey>,
    next_tick: u64,
    dirty: usize,
    /// Disk head tracking for cache-issued transfers, mirroring the
    /// PFS convention: end offset of the previous access per file.
    disk_pos: Option<(u64, u64)>,
    /// Expected (uid, block) of the next sequential read, for
    /// read-ahead trigger detection.
    next_seq: Option<(u64, u64)>,
    /// Whether a flush daemon task is currently draining this node.
    flushing: bool,
}

impl NodeCache {
    fn touch(&mut self, key: BlockKey) {
        if let Some(b) = self.blocks.get_mut(&key) {
            self.lru.remove(&b.tick);
            b.tick = self.next_tick;
            self.lru.insert(self.next_tick, key);
            self.next_tick += 1;
        }
    }

    /// Head position for a transfer on `uid` (None = seek: cold head or
    /// a different file was accessed last).
    fn prev_end(&self, uid: u64) -> Option<u64> {
        match self.disk_pos {
            Some((u, end)) if u == uid => Some(end),
            _ => None,
        }
    }
}

/// A contiguous run of missing blocks, coalesced into one disk transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Extent {
    first_block: u64,
    count: u64,
}

/// The buffer-cache model shared by all files on a machine. One
/// `NodeCache` per I/O node; timing flows through the machine's disk
/// queues, counters through the shared [`CacheCounters`].
pub struct BufferCache {
    machine: Rc<Machine>,
    counters: CacheCounters,
    params: CacheParams,
    /// Resolved block size in bytes (params.block_bytes, or the
    /// machine's default stripe unit when 0).
    block: u64,
    /// Capacity in blocks (>= 1).
    cap_blocks: usize,
    /// Dirty-block count that wakes the flush daemon.
    high_water: usize,
    /// Dirty-block count at which the daemon stops draining.
    low_water: usize,
    nodes: Vec<RefCell<NodeCache>>,
}

/// Cap on blocks written back per daemon batch, so a drain is a series
/// of bounded disk bookings interleaved with simulated waiting rather
/// than one giant reservation.
const FLUSH_BATCH_BLOCKS: usize = 64;

impl BufferCache {
    /// Build the cache for `machine` according to its configured
    /// [`CacheParams`]. Returns `None` under [`CachePolicy::None`](iosim_machine::CachePolicy::None) so
    /// callers keep the uncached code path untouched.
    pub fn new(machine: &Rc<Machine>, counters: CacheCounters) -> Option<Rc<BufferCache>> {
        let params = machine.cfg().cache;
        if !params.enabled() {
            return None;
        }
        let block = if params.block_bytes == 0 {
            machine.cfg().default_stripe_unit.max(1)
        } else {
            params.block_bytes
        };
        let cap_blocks = ((params.capacity_bytes / block) as usize).max(1);
        let high_water =
            ((params.dirty_high_water * cap_blocks as f64).ceil() as usize).clamp(1, cap_blocks);
        let low_water = high_water / 2;
        let nodes = (0..machine.io_nodes())
            .map(|_| RefCell::new(NodeCache::default()))
            .collect();
        Some(Rc::new(BufferCache {
            machine: Rc::clone(machine),
            counters,
            params,
            block,
            cap_blocks,
            high_water,
            low_water,
            nodes,
        }))
    }

    /// The active policy parameters.
    pub fn params(&self) -> &CacheParams {
        &self.params
    }

    /// Resolved cache block size in bytes.
    pub fn block_bytes(&self) -> u64 {
        self.block
    }

    /// Capacity in blocks per I/O node.
    pub fn capacity_blocks(&self) -> usize {
        self.cap_blocks
    }

    /// Resident block count at `node` (tests / diagnostics).
    pub fn resident_blocks(&self, node: usize) -> usize {
        self.nodes[node].borrow().blocks.len()
    }

    /// Dirty block count at `node` (tests / diagnostics).
    pub fn dirty_blocks(&self, node: usize) -> usize {
        self.nodes[node].borrow().dirty
    }

    /// Whether block `idx` of file `uid` is resident at `node`.
    pub fn contains(&self, node: usize, uid: u64, idx: u64) -> bool {
        self.nodes[node].borrow().blocks.contains_key(&(uid, idx))
    }

    fn mem_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.params.mem_bandwidth_bps)
    }

    /// Book one coalesced disk transfer at `node` and update the
    /// cache-side head position. Returns the booked (start, end).
    fn book_disk(
        &self,
        n: &mut NodeCache,
        node: usize,
        uid: u64,
        offset: u64,
        bytes: u64,
        arrival: SimTime,
    ) -> (SimTime, SimTime) {
        let svc = self
            .machine
            .disk_service_positioned(node, n.prev_end(uid), offset, bytes);
        let booked = self.machine.io_queue(node).reserve_at(arrival, svc);
        n.disk_pos = Some((uid, offset + bytes));
        booked
    }

    /// Evict the LRU victim at `node`. A dirty victim is written back
    /// first; its disk completion time is returned so callers can model
    /// the writer stalling behind the writeback.
    fn evict_one(&self, n: &mut NodeCache, node: usize, arrival: SimTime) -> Option<SimTime> {
        let (&tick, &(uid, idx)) = n.lru.iter().next()?;
        n.lru.remove(&tick);
        let victim = n.blocks.remove(&(uid, idx))?;
        self.counters.add_evictions(1);
        if victim.dirty {
            n.dirty -= 1;
            let (_, end) = self.book_disk(n, node, uid, idx * self.block, self.block, arrival);
            self.counters.add_flushed(1);
            Some(end)
        } else {
            None
        }
    }

    /// Insert (or refresh) a block, evicting as needed. Returns the
    /// latest writeback completion among any dirty victims.
    fn insert_block(
        &self,
        n: &mut NodeCache,
        node: usize,
        key: BlockKey,
        ready_at: SimTime,
        dirty: bool,
        arrival: SimTime,
    ) -> Option<SimTime> {
        if let Some(b) = n.blocks.get_mut(&key) {
            if dirty && !b.dirty {
                n.dirty += 1;
            }
            b.dirty |= dirty;
            b.ready_at = b.ready_at.max(ready_at);
            n.touch(key);
            return None;
        }
        let mut stall = None;
        while n.blocks.len() >= self.cap_blocks {
            if let Some(end) = self.evict_one(n, node, arrival) {
                stall = Some(stall.map_or(end, |s: SimTime| s.max(end)));
            }
        }
        let tick = n.next_tick;
        n.next_tick += 1;
        n.blocks.insert(
            key,
            Block {
                ready_at,
                dirty,
                tick,
            },
        );
        n.lru.insert(tick, key);
        if dirty {
            n.dirty += 1;
        }
        stall
    }

    /// Group a sorted list of missing block indices into contiguous
    /// extents so each seek is paid once per run, not once per block.
    fn coalesce(missing: &[u64]) -> Vec<Extent> {
        let mut extents: Vec<Extent> = Vec::new();
        for &b in missing {
            match extents.last_mut() {
                Some(e) if e.first_block + e.count == b => e.count += 1,
                _ => extents.push(Extent {
                    first_block: b,
                    count: 1,
                }),
            }
        }
        extents
    }

    /// Serve a read of `[offset, offset + bytes)` in file `uid`'s local
    /// byte space at I/O node `node`. Returns the completion time at the
    /// I/O node (before the network response leg).
    pub fn read(
        self: &Rc<Self>,
        node: usize,
        uid: u64,
        offset: u64,
        bytes: u64,
        arrival: SimTime,
    ) -> SimTime {
        self.read_extents(node, uid, &[(offset, bytes)], arrival)
    }

    /// Serve a list-I/O read of sorted, disjoint local extents of file
    /// `uid` at I/O node `node` in **one pass**: one hit scan over the
    /// union of the touched blocks, one coalesced miss set fetched from
    /// the disk queue, and the lookup overhead plus memory copy paid
    /// once on the request's total bytes. [`BufferCache::read`] is the
    /// single-extent special case.
    pub fn read_extents(
        self: &Rc<Self>,
        node: usize,
        uid: u64,
        extents: &[(u64, u64)],
        arrival: SimTime,
    ) -> SimTime {
        let mut n = self.nodes[node].borrow_mut();
        // Union of touched blocks (extents may share boundary blocks).
        let mut total = 0u64;
        let mut blocks: Vec<u64> = Vec::new();
        for &(offset, bytes) in extents {
            let bytes = bytes.max(1);
            total += bytes;
            blocks.extend(offset / self.block..=(offset + bytes - 1) / self.block);
        }
        blocks.sort_unstable();
        blocks.dedup();
        if blocks.is_empty() {
            return arrival;
        }

        let mut done = arrival;
        let mut hits = 0u64;
        let mut ra_hits = 0u64;
        let mut missing: Vec<u64> = Vec::new();
        for &b in &blocks {
            match n.blocks.get(&(uid, b)).map(|blk| blk.ready_at) {
                Some(ready_at) => {
                    hits += 1;
                    if ready_at > arrival {
                        // Still in flight (a read-ahead racing us):
                        // wait for it rather than fetching again.
                        ra_hits += 1;
                        done = done.max(ready_at);
                    }
                    n.touch((uid, b));
                }
                None => missing.push(b),
            }
        }

        let fetch = Self::coalesce(&missing);
        for e in &fetch {
            let off = e.first_block * self.block;
            let len = e.count * self.block;
            let (_, end) = self.book_disk(&mut n, node, uid, off, len, arrival);
            done = done.max(end);
            for i in 0..e.count {
                self.insert_block(&mut n, node, (uid, e.first_block + i), end, false, arrival);
            }
        }
        self.counters.add_hits(hits);
        self.counters.add_misses(missing.len() as u64);
        self.counters.add_readahead_hits(ra_hits);

        // Sequential read-ahead: if this request continues the previous
        // one, speculatively fetch the next blocks after the demand work.
        let first = blocks[0];
        let last = *blocks.last().expect("non-empty");
        let sequential = n.next_seq == Some((uid, first));
        n.next_seq = Some((uid, last + 1));
        if sequential && self.params.read_ahead_blocks > 0 {
            let ra: Vec<u64> = (last + 1..=last + self.params.read_ahead_blocks as u64)
                .filter(|&b| !n.blocks.contains_key(&(uid, b)))
                .collect();
            if !ra.is_empty() {
                self.counters.add_readahead_issued(ra.len() as u64);
                for e in Self::coalesce(&ra) {
                    let off = e.first_block * self.block;
                    let len = e.count * self.block;
                    let (_, end) = self.book_disk(&mut n, node, uid, off, len, arrival);
                    for i in 0..e.count {
                        self.insert_block(
                            &mut n,
                            node,
                            (uid, e.first_block + i),
                            end,
                            false,
                            arrival,
                        );
                    }
                }
            }
        }

        // Cache lookup overhead plus the memory copy out to the network
        // buffer, paid on the full request.
        done + self.params.hit_overhead + self.mem_time(total)
    }

    /// Serve a write of `[offset, offset + bytes)` in file `uid`'s local
    /// byte space at I/O node `node`. Under write-behind the write
    /// completes at memory speed and the blocks turn dirty; otherwise
    /// the transfer is booked on the disk queue like the uncached path
    /// (write-through), with the blocks cached clean for later reads.
    pub fn write(
        self: &Rc<Self>,
        node: usize,
        uid: u64,
        offset: u64,
        bytes: u64,
        arrival: SimTime,
    ) -> SimTime {
        self.write_extents(node, uid, &[(offset, bytes)], arrival)
    }

    /// Serve a list-I/O write of sorted, disjoint local extents in one
    /// pass. Under write-behind the lookup overhead and memory copy are
    /// paid once on the request's total bytes and every touched block
    /// turns dirty; write-through books each extent's exact byte range
    /// on the disk queue, head-position aware. [`BufferCache::write`]
    /// is the single-extent special case.
    pub fn write_extents(
        self: &Rc<Self>,
        node: usize,
        uid: u64,
        extents: &[(u64, u64)],
        arrival: SimTime,
    ) -> SimTime {
        let mut n = self.nodes[node].borrow_mut();

        if !self.params.write_behind {
            // Write-through: disk timing identical in shape to the
            // uncached path (exact byte extents, head-position aware),
            // but the written blocks stay resident for readers.
            let mut done = arrival;
            for &(offset, bytes) in extents {
                let bytes = bytes.max(1);
                let (_, end) = self.book_disk(&mut n, node, uid, offset, bytes, arrival);
                for b in offset / self.block..=(offset + bytes - 1) / self.block {
                    self.insert_block(&mut n, node, (uid, b), end, false, arrival);
                }
                done = done.max(end);
            }
            return done;
        }

        // Union of touched blocks (extents may share boundary blocks).
        let mut total = 0u64;
        let mut blocks: Vec<u64> = Vec::new();
        for &(offset, bytes) in extents {
            let bytes = bytes.max(1);
            total += bytes;
            blocks.extend(offset / self.block..=(offset + bytes - 1) / self.block);
        }
        blocks.sort_unstable();
        blocks.dedup();
        if blocks.is_empty() {
            return arrival;
        }

        let mut done = arrival + self.params.hit_overhead + self.mem_time(total);
        for &b in &blocks {
            if let Some(stall) = self.insert_block(&mut n, node, (uid, b), done, true, arrival) {
                // The cache was full of dirty data: the writer stalls
                // behind the eviction writeback.
                done = done.max(stall);
            }
        }
        self.counters.add_writes_absorbed(blocks.len() as u64);

        if n.dirty >= self.high_water && !n.flushing {
            n.flushing = true;
            self.counters.add_flush_wakeup();
            drop(n);
            self.spawn_flusher(node);
        }
        done
    }

    /// Spawn a short-lived flush-daemon task that drains `node`'s dirty
    /// blocks down to the low-water mark in background batches. The task
    /// always terminates (each batch strictly reduces the dirty count),
    /// so it cannot pin the executor.
    fn spawn_flusher(self: &Rc<Self>, node: usize) {
        let cache = Rc::clone(self);
        let handle = self.machine.handle().clone();
        // Dropping the JoinHandle detaches the task; it keeps running.
        drop(self.machine.handle().spawn(async move {
            loop {
                let now = handle.now();
                match cache.flush_batch(node, now) {
                    Some(end) => handle.sleep_until(end).await,
                    None => break,
                }
            }
        }));
    }

    /// Write back one daemon batch of LRU-ordered dirty blocks at
    /// `node`. Returns the batch's disk completion time, or `None` once
    /// the dirty count is at/below the low-water mark (clearing the
    /// `flushing` flag).
    fn flush_batch(&self, node: usize, now: SimTime) -> Option<SimTime> {
        let mut n = self.nodes[node].borrow_mut();
        if n.dirty <= self.low_water {
            n.flushing = false;
            return None;
        }
        let want = (n.dirty - self.low_water).min(FLUSH_BATCH_BLOCKS);
        // LRU-ordered dirty victims; deterministic because the BTreeMap
        // index, not the HashMap, drives iteration.
        let batch: Vec<BlockKey> = n
            .lru
            .values()
            .filter(|key| n.blocks[key].dirty)
            .take(want)
            .copied()
            .collect();
        let end = self.writeback(&mut n, node, &batch, now);
        Some(end)
    }

    /// Write back the given dirty blocks (marking them clean in place),
    /// coalescing per-file contiguous runs. Returns the latest disk
    /// completion.
    fn writeback(
        &self,
        n: &mut NodeCache,
        node: usize,
        keys: &[BlockKey],
        arrival: SimTime,
    ) -> SimTime {
        let mut sorted: Vec<BlockKey> = keys.to_vec();
        sorted.sort_unstable();
        let mut done = arrival;
        let mut i = 0;
        while i < sorted.len() {
            let (uid, first) = sorted[i];
            let mut count = 1u64;
            while i + (count as usize) < sorted.len()
                && sorted[i + count as usize] == (uid, first + count)
            {
                count += 1;
            }
            let (_, end) = self.book_disk(
                n,
                node,
                uid,
                first * self.block,
                count * self.block,
                arrival,
            );
            done = done.max(end);
            for j in 0..count {
                if let Some(b) = n.blocks.get_mut(&(uid, first + j)) {
                    if b.dirty {
                        b.dirty = false;
                        n.dirty -= 1;
                    }
                }
            }
            self.counters.add_flushed(count);
            i += count as usize;
        }
        done
    }

    /// Synchronously write back every dirty block of file `uid` (all
    /// nodes). Returns the completion time of the slowest writeback
    /// (`arrival` if nothing was dirty). Used by `FileHandle::flush`.
    pub fn flush_file(self: &Rc<Self>, uid: u64, arrival: SimTime) -> SimTime {
        let mut done = arrival;
        for node in 0..self.nodes.len() {
            let mut n = self.nodes[node].borrow_mut();
            let dirty: Vec<BlockKey> = n
                .lru
                .values()
                .filter(|&&(u, _)| u == uid)
                .filter(|key| n.blocks[key].dirty)
                .copied()
                .collect();
            if dirty.is_empty() {
                continue;
            }
            done = done.max(self.writeback(&mut n, node, &dirty, arrival));
        }
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iosim_machine::{presets, CachePolicy};
    use iosim_simkit::executor::Sim;

    const BLOCK: u64 = 1024;

    /// A single-I/O-node machine with the given cache parameters.
    fn rig(params: CacheParams) -> (Sim, Rc<BufferCache>, CacheCounters) {
        let sim = Sim::new();
        let cfg = presets::paragon_small().with_io_nodes(1).with_cache(params);
        let machine = iosim_machine::Machine::new(sim.handle(), cfg);
        let counters = CacheCounters::new();
        let cache = BufferCache::new(&machine, counters.clone()).expect("cache enabled");
        (sim, cache, counters)
    }

    #[test]
    fn none_policy_builds_no_cache() {
        let sim = Sim::new();
        let machine = iosim_machine::Machine::new(sim.handle(), presets::paragon_small());
        assert_eq!(machine.cfg().cache.policy, CachePolicy::None);
        assert!(BufferCache::new(&machine, CacheCounters::new()).is_none());
    }

    #[test]
    fn lru_evicts_in_access_order() {
        // Two-block cache: after touching 0, reading 2 must evict 1.
        let params = CacheParams::lru(2 * BLOCK)
            .with_block_bytes(BLOCK)
            .with_read_ahead(0);
        let (_sim, cache, counters) = rig(params);
        let t0 = SimTime::ZERO;
        let uid = 7;
        cache.read(0, uid, 0, BLOCK, t0); // miss: {0}
        cache.read(0, uid, BLOCK, BLOCK, t0); // miss: {0, 1}
        cache.read(0, uid, 0, BLOCK, t0); // hit, 0 becomes MRU
        cache.read(0, uid, 2 * BLOCK, BLOCK, t0); // miss: evicts 1
        assert!(cache.contains(0, uid, 0));
        assert!(!cache.contains(0, uid, 1));
        assert!(cache.contains(0, uid, 2));
        let s = counters.snapshot();
        assert_eq!(s.misses, 3);
        assert_eq!(s.hits, 1);
        assert_eq!(s.evictions, 1);
    }

    #[test]
    fn repeated_reads_hit_and_get_faster() {
        let params = CacheParams::lru(64 * BLOCK)
            .with_block_bytes(BLOCK)
            .with_read_ahead(0);
        let (_sim, cache, counters) = rig(params);
        let cold = cache.read(0, 1, 0, 4 * BLOCK, SimTime::ZERO);
        let t1 = cold; // re-read after the fetch has landed
        let warm = cache.read(0, 1, 0, 4 * BLOCK, t1);
        assert!(
            warm - t1 < cold - SimTime::ZERO,
            "warm read {warm:?} from {t1:?} should beat cold {cold:?}"
        );
        let s = counters.snapshot();
        assert_eq!(s.misses, 4);
        assert_eq!(s.hits, 4);
    }

    #[test]
    fn write_behind_flush_daemon_drains_to_low_water() {
        let mut params = CacheParams::lru(8 * BLOCK)
            .with_block_bytes(BLOCK)
            .with_read_ahead(0);
        params.dirty_high_water = 0.5; // high = 4, low = 2
        let (mut sim, cache, counters) = rig(params);
        for b in 0..4u64 {
            cache.write(0, 3, b * BLOCK, BLOCK, SimTime::ZERO);
        }
        assert_eq!(cache.dirty_blocks(0), 4);
        let s = counters.snapshot();
        assert_eq!(s.flush_wakeups, 1);
        assert_eq!(s.writes_absorbed, 4);
        sim.run(); // let the daemon drain
        let s = counters.snapshot();
        assert!(cache.dirty_blocks(0) <= 2, "drained to low water");
        assert!(s.flushed_blocks >= 2);
        // The daemon wrote back, it did not evict: blocks stay resident.
        assert_eq!(cache.resident_blocks(0), 4);
    }

    #[test]
    fn dirty_eviction_stalls_the_writer() {
        // Tiny cache, high water at capacity: evictions (not the
        // daemon) force writebacks, stalling the writer to disk speed.
        let mut params = CacheParams::lru(2 * BLOCK)
            .with_block_bytes(BLOCK)
            .with_read_ahead(0);
        params.dirty_high_water = 1.0;
        let (_sim, cache, counters) = rig(params);
        let fast = cache.write(0, 5, 0, BLOCK, SimTime::ZERO);
        cache.write(0, 5, BLOCK, BLOCK, SimTime::ZERO);
        let stalled = cache.write(0, 5, 2 * BLOCK, BLOCK, SimTime::ZERO);
        assert!(
            stalled > fast + SimDuration::from_millis(1),
            "third write ({stalled:?}) must wait for a dirty writeback; \
             unforced write finished at {fast:?}"
        );
        let s = counters.snapshot();
        assert!(s.evictions >= 1);
        assert!(s.flushed_blocks >= 1);
    }

    #[test]
    fn sequential_reads_trigger_read_ahead_and_score_hits() {
        let params = CacheParams::lru(64 * BLOCK)
            .with_block_bytes(BLOCK)
            .with_read_ahead(2);
        let (_sim, cache, counters) = rig(params);
        let uid = 9;
        let t0 = SimTime::ZERO;
        cache.read(0, uid, 0, BLOCK, t0); // miss; first read is not "sequential"
        assert_eq!(counters.snapshot().readahead_issued, 0);
        cache.read(0, uid, BLOCK, BLOCK, t0); // sequential: prefetch blocks 2, 3
        assert_eq!(counters.snapshot().readahead_issued, 2);
        assert!(cache.contains(0, uid, 2));
        assert!(cache.contains(0, uid, 3));
        // Arriving before the prefetch lands counts as a timely
        // read-ahead hit and waits for the in-flight fetch.
        let done = cache.read(0, uid, 2 * BLOCK, BLOCK, t0);
        let s = counters.snapshot();
        assert_eq!(s.readahead_hits, 1);
        assert_eq!(s.misses, 2);
        assert!(done > t0);
    }

    #[test]
    fn random_reads_do_not_prefetch() {
        let params = CacheParams::lru(64 * BLOCK)
            .with_block_bytes(BLOCK)
            .with_read_ahead(2);
        let (_sim, cache, counters) = rig(params);
        cache.read(0, 2, 10 * BLOCK, BLOCK, SimTime::ZERO);
        cache.read(0, 2, 5 * BLOCK, BLOCK, SimTime::ZERO);
        cache.read(0, 2, 20 * BLOCK, BLOCK, SimTime::ZERO);
        assert_eq!(counters.snapshot().readahead_issued, 0);
    }

    #[test]
    fn write_through_mode_keeps_blocks_clean_but_readable() {
        let params = CacheParams::lru(64 * BLOCK)
            .with_block_bytes(BLOCK)
            .with_read_ahead(0)
            .with_write_behind(false);
        let (_sim, cache, counters) = rig(params);
        let end = cache.write(0, 4, 0, BLOCK, SimTime::ZERO);
        assert!(
            end > SimTime::ZERO + SimDuration::from_millis(1),
            "paid the disk"
        );
        assert_eq!(cache.dirty_blocks(0), 0);
        assert_eq!(counters.snapshot().writes_absorbed, 0);
        cache.read(0, 4, 0, BLOCK, end);
        let s = counters.snapshot();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 0);
    }

    #[test]
    fn flush_file_writes_back_all_dirty_blocks() {
        let params = CacheParams::lru(64 * BLOCK)
            .with_block_bytes(BLOCK)
            .with_read_ahead(0);
        let (_sim, cache, counters) = rig(params);
        cache.write(0, 6, 0, 2 * BLOCK, SimTime::ZERO);
        assert_eq!(cache.dirty_blocks(0), 2);
        let t = SimTime::ZERO + SimDuration::from_secs(1);
        let done = cache.flush_file(6, t);
        assert!(done > t);
        assert_eq!(cache.dirty_blocks(0), 0);
        assert_eq!(counters.snapshot().flushed_blocks, 2);
        // Idempotent: nothing left to write.
        assert_eq!(cache.flush_file(6, done), done);
    }

    #[test]
    fn extent_list_reads_serve_in_one_pass() {
        let params = CacheParams::lru(64 * BLOCK)
            .with_block_bytes(BLOCK)
            .with_read_ahead(0);
        let (_sim, cache, counters) = rig(params);
        let req = [(0, 2 * BLOCK), (4 * BLOCK, BLOCK)];
        let cold = cache.read_extents(0, 11, &req, SimTime::ZERO);
        assert!(cold > SimTime::ZERO);
        let s = counters.snapshot();
        assert_eq!(s.misses, 3);
        assert_eq!(s.hits, 0);
        // Re-reading the same list hits entirely, at memory speed.
        let warm = cache.read_extents(0, 11, &req, cold);
        assert!(warm - cold < cold - SimTime::ZERO);
        assert_eq!(counters.snapshot().hits, 3);
    }

    #[test]
    fn extent_list_writes_count_shared_blocks_once() {
        let params = CacheParams::lru(64 * BLOCK)
            .with_block_bytes(BLOCK)
            .with_read_ahead(0);
        let (_sim, cache, counters) = rig(params);
        // Two extents inside the same cache block dirty it once.
        cache.write_extents(
            0,
            12,
            &[(0, BLOCK / 2), (BLOCK / 2, BLOCK / 2)],
            SimTime::ZERO,
        );
        assert_eq!(counters.snapshot().writes_absorbed, 1);
        assert_eq!(cache.dirty_blocks(0), 1);
    }

    #[test]
    fn miss_extents_coalesce() {
        assert_eq!(
            BufferCache::coalesce(&[0, 1, 2, 5, 6, 9]),
            vec![
                Extent {
                    first_block: 0,
                    count: 3
                },
                Extent {
                    first_block: 5,
                    count: 2
                },
                Extent {
                    first_block: 9,
                    count: 1
                },
            ]
        );
        assert!(BufferCache::coalesce(&[]).is_empty());
    }
}
