//! Coordinated checkpoint / rollback-recovery library.
//!
//! The paper's applications write checkpoints by hand (AST's dump points);
//! its related work cites CLIP (Chen, Plank & Li, SC'97), a library that
//! packages the pattern. This module provides that library over the
//! simulated stack: all ranks enter [`Checkpointer::save`] together
//! (coordinated checkpointing — a barrier makes the cut consistent), the
//! per-rank state buffers are written with two-phase collective I/O, and
//! rank 0 commits the epoch by appending a metadata record only after the
//! data is on disk — so a crash mid-checkpoint leaves the previous epoch
//! recoverable. [`Checkpointer::restore_latest`] reads the newest
//! committed epoch back with collective reads.
//!
//! File layout: a data file holds the epochs' rank regions back to back;
//! a metadata file holds fixed-size commit records
//! `(epoch, data_offset, rank_sizes[P])`.

use std::rc::Rc;

use iosim_msg::{Comm, Payload};
use iosim_pfs::{CreateOptions, FileHandle, FileSystem, FsError, IoRequest};

use crate::two_phase::{read_collective, write_collective, Piece, Span};

/// A coordinated checkpointer for one group of ranks.
pub struct Checkpointer {
    comm: Comm,
    data: FileHandle,
    meta: FileHandle,
    /// Committed epochs: `(epoch id, data offset, per-rank sizes)`.
    epochs: Vec<(u64, u64, Vec<u64>)>,
    next_offset: u64,
}

const META_REC_HEADER: u64 = 16; // epoch id + data offset

impl Checkpointer {
    /// Open (creating if needed) the checkpoint files `name` and
    /// `name.meta`. Collective: every rank of `comm` must call it.
    pub async fn open(
        comm: Comm,
        fs: &Rc<FileSystem>,
        name: &str,
        stored: bool,
    ) -> Result<Checkpointer, FsError> {
        let rank = comm.rank();
        let iface = iosim_machine::Interface::Passion;
        let opts = CreateOptions {
            stored,
            ..Default::default()
        };
        let data = match fs.open(rank, iface, name, Some(opts)).await {
            Ok(fh) => fh,
            Err(FsError::Exists(_)) => fs.open(rank, iface, name, None).await?,
            Err(e) => return Err(e),
        };
        let meta = match fs
            .open(rank, iface, &format!("{name}.meta"), Some(opts))
            .await
        {
            Ok(fh) => fh,
            Err(FsError::Exists(_)) => fs.open(rank, iface, &format!("{name}.meta"), None).await?,
            Err(e) => return Err(e),
        };
        Ok(Checkpointer {
            comm,
            data,
            meta,
            epochs: Vec::new(),
            next_offset: 0,
        })
    }

    /// Size of one metadata record for `p` ranks.
    fn meta_record_size(p: usize) -> u64 {
        META_REC_HEADER + 8 * p as u64
    }

    /// Save a coordinated checkpoint of this rank's `state`. Returns the
    /// epoch id. Collective; ranks may pass different-sized states.
    pub async fn save(&mut self, state: Payload) -> Result<u64, FsError> {
        let p = self.comm.size();
        // Coordinate the cut and agree on everyone's sizes.
        let sizes_payload = self
            .comm
            .allgather(Payload::bytes(state.len.to_le_bytes().to_vec()))
            .await;
        let sizes: Vec<u64> = sizes_payload
            .into_iter()
            .map(|pl| u64::from_le_bytes(pl.into_bytes().try_into().expect("8 bytes")))
            .collect();
        let epoch = self.epochs.len() as u64;
        let base = self.next_offset;
        let my_offset = base + sizes[..self.comm.rank()].iter().sum::<u64>();
        // Phase 1+2: collective write of all rank states.
        write_collective(
            &self.comm,
            &self.data,
            vec![Piece {
                offset: my_offset,
                payload: state,
            }],
        )
        .await?;
        // Commit: after a barrier (data durable everywhere), rank 0
        // appends the epoch record.
        self.comm.barrier().await;
        if self.comm.rank() == 0 {
            let mut rec = Vec::with_capacity(Self::meta_record_size(p) as usize);
            rec.extend_from_slice(&epoch.to_le_bytes());
            rec.extend_from_slice(&base.to_le_bytes());
            for s in &sizes {
                rec.extend_from_slice(&s.to_le_bytes());
            }
            self.meta
                .write_at(epoch * Self::meta_record_size(p), rec)
                .await?;
            self.meta.flush().await;
        }
        self.comm.barrier().await;
        let total: u64 = sizes.iter().sum();
        self.epochs.push((epoch, base, sizes));
        self.next_offset = base + total;
        Ok(epoch)
    }

    /// Number of committed epochs.
    pub fn epochs(&self) -> u64 {
        self.epochs.len() as u64
    }

    /// Restore this rank's state from `epoch`. Collective. Returns the
    /// payload (real bytes iff the files are stored).
    pub async fn restore(&self, epoch: u64) -> Result<Payload, FsError> {
        let (_, base, sizes) = self
            .epochs
            .iter()
            .find(|(e, _, _)| *e == epoch)
            .unwrap_or_else(|| panic!("epoch {epoch} was never committed"))
            .clone();
        let my_offset = base + sizes[..self.comm.rank()].iter().sum::<u64>();
        let my_size = sizes[self.comm.rank()];
        let (mut got, _) =
            read_collective(&self.comm, &self.data, vec![Span::new(my_offset, my_size)]).await?;
        Ok(got.pop().expect("one span requested"))
    }

    /// Restore the newest committed epoch; panics if none exists.
    pub async fn restore_latest(&self) -> Result<Payload, FsError> {
        let last = self
            .epochs
            .last()
            .expect("no committed checkpoint to restore")
            .0;
        self.restore(last).await
    }

    /// Rebuild the epoch index from the metadata file (a fresh process
    /// recovering after failure). Collective only in that every rank may
    /// call it; all records travel as one vectored read (adjacent records
    /// coalesce into one sequential disk access).
    pub async fn recover_index(&mut self) -> Result<(), FsError> {
        let p = self.comm.size();
        let rec = Self::meta_record_size(p);
        let records = self.meta.size() / rec;
        self.epochs.clear();
        self.next_offset = 0;
        let all = self
            .meta
            .readv(&IoRequest::strided(0, rec, rec, records))
            .await?;
        for bytes in all.chunks_exact(rec as usize) {
            let epoch = u64::from_le_bytes(bytes[..8].try_into().expect("8"));
            let base = u64::from_le_bytes(bytes[8..16].try_into().expect("8"));
            let sizes: Vec<u64> = bytes[16..]
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("8")))
                .collect();
            let total: u64 = sizes.iter().sum();
            self.next_offset = self.next_offset.max(base + total);
            self.epochs.push((epoch, base, sizes));
        }
        Ok(())
    }

    /// Close both files.
    pub async fn close(self) {
        self.data.close().await;
        self.meta.close().await;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iosim_machine::{presets, Machine};
    use iosim_msg::World;
    use iosim_simkit::executor::{join_all, Sim};
    use iosim_trace::TraceCollector;

    fn state_of(rank: usize, epoch: u64, len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| ((rank as u64 * 37 + epoch * 11 + i as u64) % 251) as u8)
            .collect()
    }

    fn run_group<T: 'static, F, Fut>(n: usize, f: F) -> Vec<T>
    where
        F: Fn(Comm, Rc<FileSystem>) -> Fut,
        Fut: std::future::Future<Output = T> + 'static,
    {
        let mut sim = Sim::new();
        let m = Machine::new(sim.handle(), presets::sp2());
        let fs = FileSystem::new(Rc::clone(&m), TraceCollector::new());
        let w = World::new(m, n);
        let h = sim.handle();
        let futs: Vec<_> = w
            .comms()
            .into_iter()
            .map(|c| f(c, Rc::clone(&fs)))
            .collect();
        let jh = sim.spawn(async move { join_all(&h, futs).await });
        sim.run();
        jh.try_take().expect("all ranks completed")
    }

    #[test]
    fn save_then_restore_roundtrips_per_rank_state() {
        let oks = run_group(4, |comm, fs| async move {
            let rank = comm.rank();
            let mut ck = Checkpointer::open(comm, &fs, "ck", true).await.unwrap();
            let state = state_of(rank, 0, 100 + rank * 10); // ragged sizes
            let epoch = ck.save(Payload::bytes(state.clone())).await.unwrap();
            assert_eq!(epoch, 0);
            let back = ck.restore_latest().await.unwrap();
            back.into_bytes() == state
        });
        assert!(oks.into_iter().all(|b| b));
    }

    #[test]
    fn multiple_epochs_restore_independently() {
        let oks = run_group(3, |comm, fs| async move {
            let rank = comm.rank();
            let mut ck = Checkpointer::open(comm, &fs, "ck", true).await.unwrap();
            for e in 0..3u64 {
                ck.save(Payload::bytes(state_of(rank, e, 64)))
                    .await
                    .unwrap();
            }
            assert_eq!(ck.epochs(), 3);
            let e1 = ck.restore(1).await.unwrap().into_bytes();
            let e2 = ck.restore(2).await.unwrap().into_bytes();
            e1 == state_of(rank, 1, 64) && e2 == state_of(rank, 2, 64)
        });
        assert!(oks.into_iter().all(|b| b));
    }

    #[test]
    fn recover_index_rebuilds_from_metadata() {
        let oks = run_group(4, |comm, fs| async move {
            let rank = comm.rank();
            // First "incarnation": save two epochs.
            let mut ck = Checkpointer::open(comm.clone(), &fs, "ck", true)
                .await
                .unwrap();
            ck.save(Payload::bytes(state_of(rank, 0, 48)))
                .await
                .unwrap();
            ck.save(Payload::bytes(state_of(rank, 1, 48)))
                .await
                .unwrap();
            ck.close().await;
            // "Restart": a fresh checkpointer recovers the index from the
            // metadata file and restores the newest epoch.
            let mut ck2 = Checkpointer::open(comm, &fs, "ck", true).await.unwrap();
            assert_eq!(ck2.epochs(), 0);
            ck2.recover_index().await.unwrap();
            assert_eq!(ck2.epochs(), 2);
            let back = ck2.restore_latest().await.unwrap();
            back.into_bytes() == state_of(rank, 1, 48)
        });
        assert!(oks.into_iter().all(|b| b));
    }

    #[test]
    fn synthetic_states_track_sizes_only() {
        let lens = run_group(2, |comm, fs| async move {
            let rank = comm.rank();
            let mut ck = Checkpointer::open(comm, &fs, "ck", false).await.unwrap();
            ck.save(Payload::synthetic(1 << 20)).await.unwrap();
            let back = ck.restore_latest().await.unwrap();
            let _ = rank;
            (back.len, back.data.is_none())
        });
        for (len, synthetic) in lens {
            assert_eq!(len, 1 << 20);
            assert!(synthetic);
        }
    }

    #[test]
    #[should_panic(expected = "no committed checkpoint")]
    fn restore_without_save_panics() {
        run_group(2, |comm, fs| async move {
            let ck = Checkpointer::open(comm, &fs, "ck", false).await.unwrap();
            let _ = ck.restore_latest().await;
        });
    }
}
