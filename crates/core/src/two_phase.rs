//! Two-phase (collective) I/O, after Thakur et al.'s PASSION runtime
//! (reference \[10\] of the paper).
//!
//! In the unoptimized applications every process issues one I/O call per
//! non-contiguous chunk it owns — thousands of small seeks and calls. In
//! two-phase I/O the processes first agree on a **conforming partition**
//! of the accessed file range (contiguous region per process), exchange
//! data over the interconnect so that each process holds exactly its
//! region (phase 1), and then each process performs a *single* large
//! sequential I/O call (phase 2). The number of I/O calls drops from
//! "chunks × processes" to "processes", at the cost of an all-to-all
//! exchange — the trade the paper measures in Sections 4.5–4.6.
//!
//! Functional as well as timed: with stored files and real payloads, the
//! redistribution actually moves the bytes, so tests can assert that the
//! optimized file is byte-identical to the unoptimized one.

use iosim_buf::{zeros, Bytes, BytesList};
use iosim_msg::{Comm, Payload};
use iosim_pfs::{FileHandle, FsError, IoRequest};

/// A piece of file data held (for writes) or wanted (for reads) by a rank.
#[derive(Clone, Debug, PartialEq)]
pub struct Piece {
    /// Absolute file offset.
    pub offset: u64,
    /// The data (real bytes or synthetic length).
    pub payload: Payload,
}

impl Piece {
    /// A piece carrying real bytes (accepts `Vec<u8>`, [`Bytes`], or a
    /// prebuilt rope — owned buffers are shared, not copied).
    pub fn bytes(offset: u64, data: impl Into<BytesList>) -> Piece {
        Piece {
            offset,
            payload: Payload::bytes(data),
        }
    }

    /// A timing-only piece.
    pub fn synthetic(offset: u64, len: u64) -> Piece {
        Piece {
            offset,
            payload: Payload::synthetic(len),
        }
    }

    /// The piece's file extent `(offset, len)`.
    pub fn extent(&self) -> (u64, u64) {
        (self.offset, self.payload.len)
    }

    fn end(&self) -> u64 {
        self.offset + self.payload.len
    }
}

/// Describe `pieces` as one vectored I/O request (extent list only; the
/// payload, if any, travels separately).
pub fn pieces_request(pieces: &[Piece]) -> IoRequest {
    IoRequest::from_extents(pieces.iter().map(Piece::extent).collect())
}

/// A byte range in the file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// Absolute file offset.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
}

impl Span {
    /// Construct a span.
    pub fn new(offset: u64, len: u64) -> Span {
        Span { offset, len }
    }

    /// The span as a single-extent vectored I/O request.
    pub fn to_request(self) -> IoRequest {
        IoRequest::contiguous(self.offset, self.len)
    }

    fn end(&self) -> u64 {
        self.offset + self.len
    }
}

/// Statistics of one collective operation on this rank.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TwoPhaseStats {
    /// Bytes this rank sent during the exchange phase.
    pub bytes_sent: u64,
    /// Bytes this rank received during the exchange phase.
    pub bytes_received: u64,
    /// I/O calls this rank issued in phase 2.
    pub io_calls: u64,
}

/// The conforming partition: rank `r` owns `[lo + r*chunk, lo + (r+1)*chunk)`
/// clipped to `[lo, hi)`.
#[derive(Clone, Copy, Debug)]
struct Domain {
    lo: u64,
    hi: u64,
    chunk: u64,
}

impl Domain {
    fn owner_region(&self, rank: usize) -> Span {
        let start = (self.lo + rank as u64 * self.chunk).min(self.hi);
        let end = (start + self.chunk).min(self.hi);
        Span::new(start, end - start)
    }

    fn owner_of(&self, offset: u64) -> usize {
        debug_assert!(offset >= self.lo && offset < self.hi);
        ((offset - self.lo) / self.chunk) as usize
    }
}

/// Agree on the accessed domain across ranks and partition it evenly.
/// Ranks with nothing to contribute send an empty range (`lo >= hi`),
/// which is ignored in the aggregation so it cannot skew the domain.
async fn agree_domain(comm: &Comm, lo: u64, hi: u64) -> Option<Domain> {
    let mut enc = Vec::with_capacity(16);
    enc.extend_from_slice(&lo.to_le_bytes());
    enc.extend_from_slice(&hi.to_le_bytes());
    let all = comm.allgather(Payload::bytes(enc)).await;
    let mut g_lo = u64::MAX;
    let mut g_hi = 0u64;
    for p in all {
        let b = p.into_bytes();
        let l = u64::from_le_bytes(b[..8].try_into().expect("8 bytes"));
        let h = u64::from_le_bytes(b[8..].try_into().expect("8 bytes"));
        if l < h {
            g_lo = g_lo.min(l);
            g_hi = g_hi.max(h);
        }
    }
    if g_lo >= g_hi {
        return None; // nothing accessed anywhere
    }
    let n = comm.size() as u64;
    let chunk = (g_hi - g_lo).div_ceil(n);
    Some(Domain {
        lo: g_lo,
        hi: g_hi,
        chunk,
    })
}

/// Split `piece` at the domain's region boundaries, yielding
/// `(owner, piece)` fragments.
fn route_piece(domain: &Domain, piece: Piece) -> Vec<(usize, Piece)> {
    let mut out = Vec::new();
    let mut off = piece.offset;
    let end = piece.end();
    let mut consumed = 0u64;
    while off < end {
        let owner = domain.owner_of(off);
        let region_end = domain.owner_region(owner).end();
        let take = (end - off).min(region_end - off);
        let payload = match &piece.payload.data {
            Some(d) => Payload::bytes(d.slice(consumed, take)),
            None => Payload::synthetic(take),
        };
        out.push((
            owner,
            Piece {
                offset: off,
                payload,
            },
        ));
        off += take;
        consumed += take;
    }
    out
}

/// Serialize a list of pieces into one message payload. Real bytes are
/// carried when every piece has them; otherwise the payload is synthetic
/// with exactly the total *data* length (headers are dropped so the
/// receiver can account volume precisely; they are small next to the
/// data). Only the small header is freshly built — the data segments
/// ride along as shared views.
fn encode_pieces(pieces: &[Piece]) -> Payload {
    let all_real = pieces.iter().all(|p| p.payload.data.is_some());
    let data_len: u64 = pieces.iter().map(|p| p.payload.len).sum();
    if !all_real {
        return Payload::synthetic(data_len);
    }
    let mut header = Vec::with_capacity(8 + 16 * pieces.len());
    header.extend_from_slice(&(pieces.len() as u64).to_le_bytes());
    for p in pieces {
        header.extend_from_slice(&p.offset.to_le_bytes());
        header.extend_from_slice(&p.payload.len.to_le_bytes());
    }
    let mut out = BytesList::from(Bytes::from_vec(header));
    for p in pieces {
        out.append(p.payload.data.clone().expect("all real"));
    }
    Payload::bytes(out)
}

/// Inverse of [`encode_pieces`] for real payloads; `None` for synthetic.
/// The decoded pieces are views into the received rope — no copy.
fn decode_pieces(payload: Payload) -> Option<Vec<Piece>> {
    let bytes = payload.data?;
    let count = u64::from_le_bytes(
        bytes
            .slice(0, 8)
            .flatten()
            .try_into()
            .expect("8-byte count"),
    ) as usize;
    let header = bytes.slice(8, 16 * count as u64).flatten();
    let mut pos = 8 + 16 * count as u64;
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let at = i * 16;
        let off = u64::from_le_bytes(header[at..at + 8].try_into().expect("8"));
        let len = u64::from_le_bytes(header[at + 8..at + 16].try_into().expect("8"));
        out.push(Piece::bytes(off, bytes.slice(pos, len)));
        pos += len;
    }
    Some(out)
}

/// Merge sorted pieces into maximal contiguous runs (offset, len, data?).
/// Real payloads concatenate as ropes — O(segments), no byte movement.
fn merge_runs(mut pieces: Vec<Piece>) -> Vec<Piece> {
    pieces.sort_by_key(|p| p.offset);
    let mut out: Vec<Piece> = Vec::new();
    for p in pieces {
        match out.last_mut() {
            Some(last) if last.end() == p.offset => {
                last.payload.len += p.payload.len;
                if let (Some(buf), Some(d)) = (&mut last.payload.data, p.payload.data) {
                    buf.append(d);
                } else {
                    last.payload.data = None;
                }
            }
            _ => out.push(p),
        }
    }
    out
}

/// Collective write: every rank contributes `pieces`; after the exchange,
/// each rank writes its conforming region with (usually) one large call.
///
/// All ranks of `comm` must call this with handles to the **same file**.
pub async fn write_collective(
    comm: &Comm,
    fh: &FileHandle,
    pieces: Vec<Piece>,
) -> Result<TwoPhaseStats, FsError> {
    if fh.fs().machine().io_queue_depth() > 1 {
        // With command queuing available, the batched variant books each
        // I/O node's queue once per collective round instead of once per
        // aggregator region.
        return write_collective_batched(comm, fh, pieces).await;
    }
    let (lo, hi) = pieces.iter().fold((u64::MAX, 0u64), |(l, h), p| {
        (l.min(p.offset), h.max(p.end()))
    });
    let Some(domain) = agree_domain(comm, lo.min(hi), hi).await else {
        return Ok(TwoPhaseStats::default());
    };
    // Route fragments to owners.
    let mut per_dest: Vec<Vec<Piece>> = (0..comm.size()).map(|_| Vec::new()).collect();
    for piece in pieces {
        for (owner, frag) in route_piece(&domain, piece) {
            per_dest[owner].push(frag);
        }
    }
    let to_each: Vec<Payload> = per_dest.iter().map(|ps| encode_pieces(ps)).collect();
    let bytes_sent: u64 = to_each
        .iter()
        .enumerate()
        .filter(|(d, _)| *d != comm.rank())
        .map(|(_, p)| p.len)
        .sum();
    let received = comm.alltoallv(to_each).await;
    let bytes_received: u64 = received
        .iter()
        .enumerate()
        .filter(|(s, _)| *s != comm.rank())
        .map(|(_, p)| p.len)
        .sum();

    // Reassemble this rank's region.
    let mut mine: Vec<Piece> = Vec::new();
    let mut synthetic_bytes = 0u64;
    for p in received {
        let len = p.len;
        match decode_pieces(p) {
            Some(ps) => mine.extend(ps),
            // Synthetic envelope: carries exactly the data volume.
            None => synthetic_bytes += len,
        }
    }
    let region = domain.owner_region(comm.rank());
    let mut io_calls = 0u64;
    if synthetic_bytes > 0 || mine.iter().any(|p| p.payload.data.is_none()) {
        // Synthetic path: one sequential call covering the region's share.
        let len: u64 = mine.iter().map(|p| p.payload.len).sum::<u64>() + synthetic_bytes;
        if len > 0 {
            fh.writev_discard(&Span::new(region.offset, len).to_request())
                .await?;
            io_calls = 1;
        }
    } else {
        // One vectored write over the merged runs; in the usual case the
        // runs tile the region and this is a single sequential call. The
        // runs' ropes are handed to the file store as-is — the received
        // buffers become the file's extents.
        let runs = merge_runs(mine);
        let mut data = BytesList::new();
        for run in &runs {
            data.append(run.payload.data.clone().expect("real path"));
        }
        if !runs.is_empty() {
            fh.writev(&pieces_request(&runs), data).await?;
            io_calls = runs.len() as u64;
        }
    }
    Ok(TwoPhaseStats {
        bytes_sent,
        bytes_received,
        io_calls,
    })
}

/// Split `piece` at stripe-unit boundaries and route each fragment to
/// the aggregator owning the unit's I/O node: node `n` (relative stripe
/// index) belongs to aggregator `n % procs`, so every I/O node has
/// exactly one aggregator.
fn route_by_node(
    striping: &iosim_pfs::Striping,
    procs: usize,
    piece: Piece,
) -> Vec<(usize, Piece)> {
    let mut out = Vec::new();
    let mut off = piece.offset;
    let end = piece.end();
    let mut consumed = 0u64;
    while off < end {
        let unit = off / striping.unit;
        let unit_end = (unit + 1) * striping.unit;
        let take = (end - off).min(unit_end - off);
        let owner = striping.node_of_unit(unit) % procs;
        let payload = match &piece.payload.data {
            Some(d) => Payload::bytes(d.slice(consumed, take)),
            None => Payload::synthetic(take),
        };
        out.push((
            owner,
            Piece {
                offset: off,
                payload,
            },
        ));
        off += take;
        consumed += take;
    }
    out
}

/// Cross-rank batched collective write, the command-queue-aware variant
/// of [`write_collective`]: instead of carving the domain into one even
/// region per rank, each aggregator owns whole **I/O nodes** (relative
/// stripe node `n` belongs to rank `n % procs`) and merges every rank's
/// fragments for its nodes into one vectored request. Each I/O node's
/// command queue is therefore booked exactly **once per collective
/// round**, regardless of how many ranks contributed — the round is also
/// counted on the trace collector's queue counters, so runs can assert
/// the once-per-round invariant.
///
/// Like [`write_collective`], synthetic payloads lose their offsets in
/// transit, so the synthetic path assumes the contributions tile the
/// agreed domain `[lo, hi)`: each aggregator writes its owned stripe
/// units clipped to the domain. Real payloads are reassembled exactly.
///
/// All ranks of `comm` must call this with handles to the **same file**.
pub async fn write_collective_batched(
    comm: &Comm,
    fh: &FileHandle,
    pieces: Vec<Piece>,
) -> Result<TwoPhaseStats, FsError> {
    let (lo, hi) = pieces.iter().fold((u64::MAX, 0u64), |(l, h), p| {
        (l.min(p.offset), h.max(p.end()))
    });
    let Some(domain) = agree_domain(comm, lo.min(hi), hi).await else {
        return Ok(TwoPhaseStats::default());
    };
    let striping = fh.striping();
    let procs = comm.size();
    if comm.rank() == 0 {
        fh.fs().trace().queue().add_collective_round();
    }
    // Phase 1: route fragments to the aggregator owning their I/O node.
    let mut per_dest: Vec<Vec<Piece>> = (0..procs).map(|_| Vec::new()).collect();
    for piece in pieces {
        for (owner, frag) in route_by_node(&striping, procs, piece) {
            per_dest[owner].push(frag);
        }
    }
    let to_each: Vec<Payload> = per_dest.iter().map(|ps| encode_pieces(ps)).collect();
    let bytes_sent: u64 = to_each
        .iter()
        .enumerate()
        .filter(|(d, _)| *d != comm.rank())
        .map(|(_, p)| p.len)
        .sum();
    let received = comm.alltoallv(to_each).await;
    let bytes_received: u64 = received
        .iter()
        .enumerate()
        .filter(|(s, _)| *s != comm.rank())
        .map(|(_, p)| p.len)
        .sum();

    // Phase 2: one vectored write over everything this aggregator owns.
    let mut mine: Vec<Piece> = Vec::new();
    let mut any_synthetic = false;
    for p in received {
        match decode_pieces(p) {
            Some(ps) => mine.extend(ps),
            None => any_synthetic = true,
        }
    }
    let mut io_calls = 0u64;
    if any_synthetic || mine.iter().any(|p| p.payload.data.is_none()) {
        // Synthetic envelope: reconstruct this aggregator's owned stripe
        // units over the dense domain (offsets did not survive transit).
        let mut extents: Vec<(u64, u64)> = Vec::new();
        let first_unit = domain.lo / striping.unit;
        let last_unit = (domain.hi - 1) / striping.unit;
        for u in first_unit..=last_unit {
            if striping.node_of_unit(u) % procs != comm.rank() {
                continue;
            }
            let s = (u * striping.unit).max(domain.lo);
            let e = ((u + 1) * striping.unit).min(domain.hi);
            extents.push((s, e - s));
        }
        if !extents.is_empty() {
            fh.writev_discard(&IoRequest::from_extents(extents)).await?;
            io_calls = 1;
        }
    } else {
        let runs = merge_runs(mine);
        let mut data = BytesList::new();
        for run in &runs {
            data.append(run.payload.data.clone().expect("real path"));
        }
        if !runs.is_empty() {
            fh.writev(&pieces_request(&runs), data).await?;
            io_calls = 1;
        }
    }
    Ok(TwoPhaseStats {
        bytes_sent,
        bytes_received,
        io_calls,
    })
}

/// Clip a piece to the window `[lo, hi)`, if they intersect.
fn clip_piece(p: &Piece, lo: u64, hi: u64) -> Option<Piece> {
    let s = p.offset.max(lo);
    let e = p.end().min(hi);
    if s >= e {
        return None;
    }
    let payload = match &p.payload.data {
        Some(d) => Payload::bytes(d.slice(s - p.offset, e - s)),
        None => Payload::synthetic(e - s),
    };
    Some(Piece { offset: s, payload })
}

/// Bounded-buffer collective write: like [`write_collective`], but no
/// rank ever buffers more than `buffer_bytes` of its conforming region at
/// once. The accessed range is processed in rounds of
/// `ranks × buffer_bytes`; every rank participates in every round (empty
/// contributions included), so the collectives stay aligned.
///
/// This is the PASSION/ROMIO "collective buffer" knob: with a large
/// buffer it degenerates to one round; tiny buffers trade memory for
/// extra exchange and write calls.
pub async fn write_collective_buffered(
    comm: &Comm,
    fh: &FileHandle,
    pieces: Vec<Piece>,
    buffer_bytes: u64,
) -> Result<TwoPhaseStats, FsError> {
    assert!(buffer_bytes > 0, "buffer must be positive");
    let (lo, hi) = pieces.iter().fold((u64::MAX, 0u64), |(l, h), p| {
        (l.min(p.offset), h.max(p.end()))
    });
    let Some(domain) = agree_domain(comm, lo.min(hi), hi).await else {
        return Ok(TwoPhaseStats::default());
    };
    let window = buffer_bytes * comm.size() as u64;
    let rounds = (domain.hi - domain.lo).div_ceil(window);
    let mut total = TwoPhaseStats::default();
    for r in 0..rounds {
        let w_lo = domain.lo + r * window;
        let w_hi = (w_lo + window).min(domain.hi);
        let subset: Vec<Piece> = pieces
            .iter()
            .filter_map(|p| clip_piece(p, w_lo, w_hi))
            .collect();
        let st = write_collective(comm, fh, subset).await?;
        total.bytes_sent += st.bytes_sent;
        total.bytes_received += st.bytes_received;
        total.io_calls += st.io_calls;
    }
    Ok(total)
}

/// Collective read: every rank asks for `wants` spans; owners read their
/// conforming regions with one large call each and ship fragments back.
/// Returns one payload per requested span (real bytes iff the file is
/// stored).
pub async fn read_collective(
    comm: &Comm,
    fh: &FileHandle,
    wants: Vec<Span>,
) -> Result<(Vec<Payload>, TwoPhaseStats), FsError> {
    let (lo, hi) = wants.iter().fold((u64::MAX, 0u64), |(l, h), s| {
        (l.min(s.offset), h.max(s.end()))
    });
    let Some(domain) = agree_domain(comm, lo.min(hi), hi).await else {
        return Ok((Vec::new(), TwoPhaseStats::default()));
    };

    // Tell each owner which sub-spans we need from its region.
    let mut requests: Vec<Vec<Span>> = (0..comm.size()).map(|_| Vec::new()).collect();
    for w in &wants {
        let mut off = w.offset;
        while off < w.end() {
            let owner = domain.owner_of(off);
            let region_end = domain.owner_region(owner).end();
            let take = (w.end() - off).min(region_end - off);
            requests[owner].push(Span::new(off, take));
            off += take;
        }
    }
    let encoded: Vec<Payload> = requests
        .iter()
        .map(|spans| {
            let mut b = Vec::with_capacity(8 + spans.len() * 16);
            b.extend_from_slice(&(spans.len() as u64).to_le_bytes());
            for s in spans {
                b.extend_from_slice(&s.offset.to_le_bytes());
                b.extend_from_slice(&s.len.to_le_bytes());
            }
            Payload::bytes(b)
        })
        .collect();
    let incoming = comm.alltoallv(encoded).await;

    // Phase 2 (owner side): read the merged extent of requested sub-spans
    // within my region — one sequential call — then ship fragments back.
    let mut asked: Vec<Vec<Span>> = Vec::with_capacity(comm.size());
    for p in incoming {
        let b = p.into_bytes();
        let count = u64::from_le_bytes(b[..8].try_into().expect("8")) as usize;
        let mut spans = Vec::with_capacity(count);
        for i in 0..count {
            let pos = 8 + i * 16;
            spans.push(Span::new(
                u64::from_le_bytes(b[pos..pos + 8].try_into().expect("8")),
                u64::from_le_bytes(b[pos + 8..pos + 16].try_into().expect("8")),
            ));
        }
        asked.push(spans);
    }
    let ext_lo = asked
        .iter()
        .flatten()
        .map(|s| s.offset)
        .min()
        .unwrap_or(u64::MAX);
    let ext_hi = asked.iter().flatten().map(|s| s.end()).max().unwrap_or(0);
    let mut io_calls = 0u64;
    let region_data: Option<Bytes> = if ext_lo < ext_hi {
        io_calls = 1;
        let req = Span::new(ext_lo, ext_hi - ext_lo).to_request();
        match fh.readv(&req).await {
            Ok(d) => Some(d),
            Err(FsError::NotStored(_)) => {
                fh.readv_discard(&req).await?;
                None
            }
            Err(e) => return Err(e),
        }
    } else {
        None
    };

    // Ship back: per requester, one message of its fragments.
    let replies: Vec<Payload> = asked
        .iter()
        .map(|spans| {
            let pieces: Vec<Piece> = spans
                .iter()
                .map(|s| match &region_data {
                    Some(d) => Piece::bytes(
                        s.offset,
                        d.slice((s.offset - ext_lo) as usize, s.len as usize),
                    ),
                    None => Piece::synthetic(s.offset, s.len),
                })
                .collect();
            encode_pieces(&pieces)
        })
        .collect();
    let bytes_sent: u64 = replies
        .iter()
        .enumerate()
        .filter(|(d, _)| *d != comm.rank())
        .map(|(_, p)| p.len)
        .sum();
    let got = comm.alltoallv(replies).await;
    let bytes_received: u64 = got
        .iter()
        .enumerate()
        .filter(|(s, _)| *s != comm.rank())
        .map(|(_, p)| p.len)
        .sum();

    // Reassemble the answers per requested span: stitch the fragments'
    // shared views together in offset order, zero-filling any uncovered
    // gap (matching what a direct read of a sparse file would return).
    let mut frags: Vec<Piece> = Vec::new();
    let mut any_synthetic = false;
    for p in got {
        match decode_pieces(p) {
            Some(ps) => frags.extend(ps),
            None => any_synthetic = true,
        }
    }
    frags.sort_by_key(|f| f.offset);
    let out: Vec<Payload> = wants
        .iter()
        .map(|w| {
            if any_synthetic {
                return Payload::synthetic(w.len);
            }
            let mut buf = BytesList::new();
            let mut cursor = w.offset;
            for f in &frags {
                let s = f.offset.max(cursor);
                let e = f.end().min(w.end());
                if s >= e {
                    continue;
                }
                if s > cursor {
                    buf.append(zeros(s - cursor));
                }
                let d = f.payload.data.as_ref().expect("real path");
                buf.append(d.slice(s - f.offset, e - s));
                cursor = e;
            }
            if cursor < w.end() {
                buf.append(zeros(w.end() - cursor));
            }
            Payload::bytes(buf)
        })
        .collect();
    Ok((
        out,
        TwoPhaseStats {
            bytes_sent,
            bytes_received,
            io_calls,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_runs_coalesces_adjacent() {
        let runs = merge_runs(vec![
            Piece::bytes(10, vec![1, 2]),
            Piece::bytes(0, vec![9; 10]),
            Piece::bytes(12, vec![3]),
        ]);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].offset, 0);
        assert_eq!(runs[0].payload.len, 13);
        let d = runs[0].payload.to_bytes();
        assert_eq!(&d[10..], &[1, 2, 3]);
    }

    #[test]
    fn merge_runs_keeps_gaps_apart() {
        let runs = merge_runs(vec![Piece::synthetic(0, 5), Piece::synthetic(10, 5)]);
        assert_eq!(runs.len(), 2);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let pieces = vec![Piece::bytes(3, vec![7, 8]), Piece::bytes(100, vec![9])];
        let p = encode_pieces(&pieces);
        let back = decode_pieces(p).unwrap();
        assert_eq!(back, pieces);
    }

    #[test]
    fn encode_synthetic_preserves_data_length() {
        let pieces = vec![Piece::synthetic(0, 1000), Piece::synthetic(2000, 500)];
        let p = encode_pieces(&pieces);
        assert!(p.data.is_none());
        assert_eq!(p.len, 1500);
    }

    #[test]
    fn route_piece_splits_on_region_boundary() {
        let d = Domain {
            lo: 0,
            hi: 100,
            chunk: 25,
        };
        let frags = route_piece(&d, Piece::bytes(20, (0..20u8).collect::<Vec<_>>()));
        assert_eq!(frags.len(), 2);
        assert_eq!(frags[0].0, 0);
        assert_eq!(frags[0].1.offset, 20);
        assert_eq!(frags[0].1.payload.len, 5);
        assert_eq!(frags[1].0, 1);
        assert_eq!(frags[1].1.offset, 25);
        assert_eq!(frags[1].1.payload.len, 15);
        assert_eq!(frags[1].1.payload.to_bytes()[0], 5);
    }

    #[test]
    fn clip_piece_slices_data_correctly() {
        let p = Piece::bytes(100, (0..50u8).collect::<Vec<_>>());
        assert_eq!(clip_piece(&p, 0, 100), None);
        assert_eq!(clip_piece(&p, 150, 200), None);
        let c = clip_piece(&p, 110, 130).expect("intersects");
        assert_eq!(c.offset, 110);
        assert_eq!(c.payload.to_bytes(), (10..30u8).collect::<Vec<u8>>());
        // Synthetic clipping preserves length only.
        let s = Piece::synthetic(0, 100);
        let cs = clip_piece(&s, 90, 500).expect("intersects");
        assert_eq!(cs.payload.len, 10);
        assert!(cs.payload.data.is_none());
    }

    #[test]
    fn owner_regions_tile_the_domain() {
        let d = Domain {
            lo: 10,
            hi: 107,
            chunk: 25,
        };
        let mut cursor = 10;
        for r in 0..4 {
            let region = d.owner_region(r);
            assert_eq!(region.offset, cursor);
            cursor = region.end();
        }
        assert_eq!(cursor, 107);
    }
}
