//! Balanced I/O (SCF 3.0, paper §4.3).
//!
//! Two cooperating mechanisms:
//!
//! 1. **Semi-direct caching** — the user chooses what fraction of the
//!    integrals is stored on disk; the rest is recomputed every iteration.
//!    [`SemiDirect`] captures the split and its per-iteration cost terms.
//! 2. **File-size balancing** — after the write phase, integral files are
//!    balanced across processes "to within 10% or 1 MB, whichever is
//!    larger", so the read phase is load-balanced even when integral
//!    evaluation was not. [`plan_balance`] computes the minimal set of
//!    byte moves.

/// The paper's balancing tolerance: within 10% or 1 MB, whichever larger.
pub fn default_tolerance(mean_size: f64) -> u64 {
    ((mean_size * 0.10) as u64).max(1 << 20)
}

/// One planned transfer of bytes from an oversized file to an undersized
/// one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Move {
    /// Source rank (file too large).
    pub from: usize,
    /// Destination rank (file too small).
    pub to: usize,
    /// Bytes to move.
    pub bytes: u64,
}

/// Plan the byte moves that bring `sizes` within `tolerance` of the mean.
///
/// Greedy pairing of the most-over with the most-under file; terminates
/// because every move strictly reduces total imbalance. Total size is
/// preserved exactly.
///
/// ```
/// use iosim_core::balanced::{apply_moves, plan_balance};
/// let sizes = [900, 100, 500];
/// let moves = plan_balance(&sizes, 50);
/// let balanced = apply_moves(&sizes, &moves);
/// assert_eq!(balanced.iter().sum::<u64>(), 1500);
/// assert!(balanced.iter().all(|&s| s.abs_diff(500) <= 50));
/// ```
pub fn plan_balance(sizes: &[u64], tolerance: u64) -> Vec<Move> {
    if sizes.is_empty() {
        return Vec::new();
    }
    let total: u64 = sizes.iter().sum();
    let n = sizes.len() as u64;
    let mean = total / n;
    let mut cur: Vec<i64> = sizes.iter().map(|&s| s as i64).collect();
    let mut moves = Vec::new();
    loop {
        let (imax, &max) = cur
            .iter()
            .enumerate()
            .max_by_key(|&(_, &v)| v)
            .expect("non-empty");
        let (imin, &min) = cur
            .iter()
            .enumerate()
            .min_by_key(|&(_, &v)| v)
            .expect("non-empty");
        let over = max - mean as i64;
        let under = mean as i64 - min;
        if over <= tolerance as i64 && under <= tolerance as i64 {
            break;
        }
        let amount = over.min(under).max(1) as u64;
        cur[imax] -= amount as i64;
        cur[imin] += amount as i64;
        moves.push(Move {
            from: imax,
            to: imin,
            bytes: amount,
        });
    }
    moves
}

/// Apply `moves` to `sizes`, returning the balanced sizes.
pub fn apply_moves(sizes: &[u64], moves: &[Move]) -> Vec<u64> {
    let mut out: Vec<i64> = sizes.iter().map(|&s| s as i64).collect();
    for m in moves {
        out[m.from] -= m.bytes as i64;
        out[m.to] += m.bytes as i64;
    }
    out.into_iter()
        .map(|v| u64::try_from(v).expect("moves never overdraw"))
        .collect()
}

/// The semi-direct split: fraction of integrals cached on disk.
#[derive(Clone, Copy, Debug)]
pub struct SemiDirect {
    /// Fraction in `[0, 1]` of the integral volume kept on disk.
    pub cached_fraction: f64,
}

impl SemiDirect {
    /// Construct; clamps to `[0, 1]`.
    pub fn new(cached_fraction: f64) -> SemiDirect {
        SemiDirect {
            cached_fraction: cached_fraction.clamp(0.0, 1.0),
        }
    }

    /// Bytes of integrals stored on disk out of `total_bytes`.
    pub fn disk_bytes(&self, total_bytes: u64) -> u64 {
        (total_bytes as f64 * self.cached_fraction).round() as u64
    }

    /// Bytes of integrals recomputed each iteration.
    pub fn recompute_bytes(&self, total_bytes: u64) -> u64 {
        total_bytes - self.disk_bytes(total_bytes)
    }

    /// FLOPs of recomputation per iteration, given the average evaluation
    /// cost per integral and the integral size in bytes.
    ///
    /// SCF 3.0 "arranges integral evaluation from most to least expensive,
    /// so that those recomputed every iteration are generally *less*
    /// expensive than those kept on disk": the recompute cost per integral
    /// falls below the average as the cached fraction grows. We model the
    /// per-integral cost of the recomputed set as
    /// `avg × (1 - 0.5 × cached_fraction)`.
    pub fn recompute_flops(
        &self,
        total_bytes: u64,
        bytes_per_integral: u64,
        avg_flops_per_integral: f64,
    ) -> f64 {
        let n = self.recompute_bytes(total_bytes) as f64 / bytes_per_integral as f64;
        let per = avg_flops_per_integral * (1.0 - 0.5 * self.cached_fraction);
        n * per
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn already_balanced_needs_no_moves() {
        assert!(plan_balance(&[100, 100, 100], 10).is_empty());
        assert!(plan_balance(&[], 10).is_empty());
        assert!(plan_balance(&[100, 109, 95], 10).is_empty());
    }

    #[test]
    fn unbalanced_sizes_get_moves() {
        let sizes = [1000, 0, 500];
        let moves = plan_balance(&sizes, 50);
        assert!(!moves.is_empty());
        let balanced = apply_moves(&sizes, &moves);
        let mean = 1500 / 3;
        for b in &balanced {
            assert!(
                (*b as i64 - mean as i64).unsigned_abs() <= 50,
                "{balanced:?}"
            );
        }
        assert_eq!(balanced.iter().sum::<u64>(), 1500);
    }

    #[test]
    fn default_tolerance_is_ten_percent_or_one_mb() {
        assert_eq!(default_tolerance(100.0 * (1 << 20) as f64), 10 << 20);
        assert_eq!(default_tolerance(1000.0), 1 << 20);
    }

    #[test]
    fn semi_direct_splits_volume() {
        let sd = SemiDirect::new(0.75);
        assert_eq!(sd.disk_bytes(1000), 750);
        assert_eq!(sd.recompute_bytes(1000), 250);
        let full = SemiDirect::new(1.0);
        assert_eq!(full.recompute_bytes(1000), 0);
        assert_eq!(full.recompute_flops(1000, 10, 400.0), 0.0);
    }

    #[test]
    fn semi_direct_clamps() {
        assert_eq!(SemiDirect::new(2.0).cached_fraction, 1.0);
        assert_eq!(SemiDirect::new(-1.0).cached_fraction, 0.0);
    }

    #[test]
    fn recompute_cost_falls_with_caching() {
        // Caching the expensive half means the remaining recomputation is
        // cheaper than pro-rata.
        let half = SemiDirect::new(0.5);
        let none = SemiDirect::new(0.0);
        let f_half = half.recompute_flops(1000, 10, 400.0);
        let f_none = none.recompute_flops(1000, 10, 400.0);
        assert!(f_half < f_none / 2.0 + 1e-9);
    }

    #[cfg(feature = "heavy-tests")]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
        #[test]
        fn balance_preserves_total_and_converges(
            sizes in proptest::collection::vec(0u64..10_000_000, 1..20),
            tol in 1_000u64..1_000_000,
        ) {
            let moves = plan_balance(&sizes, tol);
            let balanced = apply_moves(&sizes, &moves);
            prop_assert_eq!(
                balanced.iter().sum::<u64>(),
                sizes.iter().sum::<u64>()
            );
            let mean = (sizes.iter().sum::<u64>() / sizes.len() as u64) as i64;
            for b in &balanced {
                prop_assert!((*b as i64 - mean).unsigned_abs() <= tol + 1);
            }
            // Bounded number of moves (each strictly reduces imbalance).
            prop_assert!(moves.len() <= sizes.len() * 64);
        }
        }
    }
}
