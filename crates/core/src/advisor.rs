//! Compile-time file-layout selection (paper §4.4, reference \[7\]).
//!
//! The paper notes that layout optimizations "can sometimes be detected by
//! parallelizing compilers": analyze each loop nest's access pattern to
//! the disk-resident arrays, then pick the file layout that makes the
//! dominant accesses contiguous. This module implements that analysis for
//! 2-D out-of-core arrays: loop nests are summarized as weighted accesses
//! with a fastest-varying dimension, and [`choose_layouts`] picks, per
//! array, the layout minimizing estimated I/O calls.

use std::collections::HashMap;

use crate::ooc::FileLayout;

/// Which array index the innermost loop varies fastest.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessOrder {
    /// Row index varies fastest (walks down a column).
    RowFastest,
    /// Column index varies fastest (walks along a row).
    ColFastest,
}

/// One loop nest's access to one array.
#[derive(Clone, Debug)]
pub struct ArrayAccess {
    /// Array name.
    pub array: String,
    /// Fastest-varying dimension in the nest.
    pub order: AccessOrder,
    /// Relative execution weight (e.g. trip count × passes over the data).
    pub weight: f64,
}

impl ArrayAccess {
    /// Build an access record.
    pub fn new(array: impl Into<String>, order: AccessOrder, weight: f64) -> ArrayAccess {
        assert!(weight >= 0.0, "weight must be non-negative");
        ArrayAccess {
            array: array.into(),
            order,
            weight,
        }
    }
}

/// The layout that makes an access contiguous.
fn conforming_layout(order: AccessOrder) -> FileLayout {
    match order {
        AccessOrder::RowFastest => FileLayout::ColMajor,
        AccessOrder::ColFastest => FileLayout::RowMajor,
    }
}

/// Choose a file layout per array: the one conforming to the heavier
/// access direction. Ties go to column-major (the Fortran default the
/// paper's codes start from).
pub fn choose_layouts(accesses: &[ArrayAccess]) -> HashMap<String, FileLayout> {
    let mut weights: HashMap<String, (f64, f64)> = HashMap::new(); // (row_fastest, col_fastest)
    for a in accesses {
        let e = weights.entry(a.array.clone()).or_insert((0.0, 0.0));
        match a.order {
            AccessOrder::RowFastest => e.0 += a.weight,
            AccessOrder::ColFastest => e.1 += a.weight,
        }
    }
    weights
        .into_iter()
        .map(|(name, (row_w, col_w))| {
            let layout = if col_w > row_w {
                conforming_layout(AccessOrder::ColFastest)
            } else {
                conforming_layout(AccessOrder::RowFastest)
            };
            (name, layout)
        })
        .collect()
}

/// Estimated I/O calls for accessing an `nr × nc` block of an array with
/// the given layout, when the access order is `order`. This is the cost
/// function the chooser minimizes; exposed for tests and ablations.
pub fn estimated_calls(
    rows: u64,
    nr: u64,
    nc: u64,
    layout: FileLayout,
    _order: AccessOrder,
) -> u64 {
    match layout {
        FileLayout::ColMajor => {
            if nr == rows {
                1
            } else {
                nc
            }
        }
        FileLayout::RowMajor => {
            // Symmetric: treat `rows` as the extent of the contiguous dim.
            if nc == rows {
                1
            } else {
                nr
            }
        }
    }
}

/// The FFT transpose scenario from the paper: array A read in column
/// blocks, array B written in row blocks (or vice versa). Returns the
/// layouts the advisor picks — one row-major, one column-major.
pub fn fft_transpose_advice() -> HashMap<String, FileLayout> {
    choose_layouts(&[
        ArrayAccess::new("A", AccessOrder::RowFastest, 1.0),
        ArrayAccess::new("B", AccessOrder::ColFastest, 1.0),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conforming_layout_matches_direction() {
        assert_eq!(
            conforming_layout(AccessOrder::RowFastest),
            FileLayout::ColMajor
        );
        assert_eq!(
            conforming_layout(AccessOrder::ColFastest),
            FileLayout::RowMajor
        );
    }

    #[test]
    fn chooser_follows_dominant_weight() {
        let layouts = choose_layouts(&[
            ArrayAccess::new("X", AccessOrder::RowFastest, 10.0),
            ArrayAccess::new("X", AccessOrder::ColFastest, 3.0),
            ArrayAccess::new("Y", AccessOrder::ColFastest, 5.0),
        ]);
        assert_eq!(layouts["X"], FileLayout::ColMajor);
        assert_eq!(layouts["Y"], FileLayout::RowMajor);
    }

    #[test]
    fn tie_defaults_to_col_major() {
        let layouts = choose_layouts(&[
            ArrayAccess::new("T", AccessOrder::RowFastest, 1.0),
            ArrayAccess::new("T", AccessOrder::ColFastest, 1.0),
        ]);
        assert_eq!(layouts["T"], FileLayout::ColMajor);
    }

    #[test]
    fn fft_advice_differs_per_array() {
        let advice = fft_transpose_advice();
        assert_ne!(advice["A"], advice["B"]);
        assert_eq!(advice["A"], FileLayout::ColMajor);
        assert_eq!(advice["B"], FileLayout::RowMajor);
    }

    #[test]
    fn estimated_calls_favor_conforming_layout() {
        // Full-column block from a col-major file: one call; from a
        // row-major file: nr calls.
        assert_eq!(
            estimated_calls(64, 64, 8, FileLayout::ColMajor, AccessOrder::RowFastest),
            1
        );
        assert_eq!(
            estimated_calls(64, 64, 8, FileLayout::RowMajor, AccessOrder::RowFastest),
            64
        );
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_rejected() {
        let _ = ArrayAccess::new("Z", AccessOrder::RowFastest, -1.0);
    }
}
