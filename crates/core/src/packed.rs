//! The "efficient interface": packing small logical operations into large
//! physical ones.
//!
//! The SCF programmers "first pack the data to be written onto disk in
//! larger chunks and then write the packed chunk in a single I/O call"
//! (paper §4.2). [`PackedWriter`] and [`ChunkReader`] provide that
//! buffering as a library: logical appends/reads of any size cost only a
//! memory copy until a buffer's worth is accumulated, at which point one
//! physical call is issued. Combined with the PASSION interface's lower
//! per-call cost this is the "efficient interface" row of Table 5.

use std::rc::Rc;

use iosim_pfs::{FileHandle, FsError};

/// Statistics of a packed writer or chunked reader.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PackedStats {
    /// Logical operations requested by the application.
    pub logical_ops: u64,
    /// Physical file-system calls issued.
    pub physical_ops: u64,
    /// Bytes moved.
    pub bytes: u64,
}

/// Buffers logical appends into large sequential writes.
pub struct PackedWriter {
    fh: Rc<FileHandle>,
    buf_cap: u64,
    buffered: u64,
    write_pos: u64,
    stats: PackedStats,
}

impl PackedWriter {
    /// Write through `fh` starting at `start`, flushing every `buf_cap`
    /// bytes.
    ///
    /// # Panics
    /// Panics if `buf_cap == 0`.
    pub fn new(fh: Rc<FileHandle>, start: u64, buf_cap: u64) -> PackedWriter {
        assert!(buf_cap > 0, "buffer capacity must be positive");
        PackedWriter {
            fh,
            buf_cap,
            buffered: 0,
            write_pos: start,
            stats: PackedStats::default(),
        }
    }

    /// Append `len` logical bytes (timing-only payload). Costs a memory
    /// copy; triggers a physical write when the buffer fills.
    pub async fn append(&mut self, len: u64) -> Result<(), FsError> {
        let h = self.fh.sim_handle();
        h.sleep(self.fh.copy_time(len)).await;
        self.stats.logical_ops += 1;
        self.stats.bytes += len;
        self.buffered += len;
        while self.buffered >= self.buf_cap {
            self.flush_exact(self.buf_cap).await?;
        }
        Ok(())
    }

    async fn flush_exact(&mut self, len: u64) -> Result<(), FsError> {
        self.fh.write_discard_at(self.write_pos, len).await?;
        self.write_pos += len;
        self.buffered -= len;
        self.stats.physical_ops += 1;
        Ok(())
    }

    /// Flush any remainder and return the statistics.
    pub async fn finish(mut self) -> Result<PackedStats, FsError> {
        if self.buffered > 0 {
            let rest = self.buffered;
            self.flush_exact(rest).await?;
        }
        Ok(self.stats)
    }

    /// Bytes written so far (including buffered).
    pub fn logical_size(&self) -> u64 {
        self.write_pos + self.buffered
    }
}

/// Serves small logical reads from large sequential physical reads.
pub struct ChunkReader {
    fh: Rc<FileHandle>,
    chunk: u64,
    /// Next file offset not yet covered by the buffer.
    fetched_to: u64,
    /// Next logical read position.
    pos: u64,
    end: u64,
    stats: PackedStats,
}

impl ChunkReader {
    /// Read `[start, end)` of `fh` in `chunk`-byte physical reads.
    ///
    /// # Panics
    /// Panics if `chunk == 0`.
    pub fn new(fh: Rc<FileHandle>, start: u64, end: u64, chunk: u64) -> ChunkReader {
        assert!(chunk > 0, "chunk must be positive");
        ChunkReader {
            fh,
            chunk,
            fetched_to: start,
            pos: start,
            end,
            stats: PackedStats::default(),
        }
    }

    /// Logically read `len` bytes: physical reads happen only on buffer
    /// misses; hits cost a memory copy. Returns the bytes actually read
    /// (clipped at the range end).
    pub async fn read(&mut self, len: u64) -> Result<u64, FsError> {
        let len = len.min(self.end.saturating_sub(self.pos));
        if len == 0 {
            return Ok(0);
        }
        let h = self.fh.sim_handle();
        while self.pos + len > self.fetched_to {
            let take = self.chunk.min(self.end - self.fetched_to);
            self.fh.read_discard_at(self.fetched_to, take).await?;
            self.fetched_to += take;
            self.stats.physical_ops += 1;
        }
        h.sleep(self.fh.copy_time(len)).await;
        self.pos += len;
        self.stats.logical_ops += 1;
        self.stats.bytes += len;
        Ok(len)
    }

    /// Whether the range is exhausted.
    pub fn at_end(&self) -> bool {
        self.pos >= self.end
    }

    /// Statistics so far.
    pub fn stats(&self) -> PackedStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iosim_machine::{presets, Interface, Machine};
    use iosim_pfs::{CreateOptions, FileSystem};
    use iosim_simkit::executor::Sim;
    use iosim_trace::{OpKind, TraceCollector};

    fn run<T: 'static>(
        f: impl FnOnce(Rc<FileSystem>) -> std::pin::Pin<Box<dyn std::future::Future<Output = T>>>,
    ) -> (T, TraceCollector) {
        let mut sim = Sim::new();
        let trace = TraceCollector::new();
        let m = Machine::new(sim.handle(), presets::paragon_large());
        let fs = FileSystem::new(m, trace.clone());
        let jh = sim.spawn(f(fs));
        sim.run();
        (jh.try_take().expect("completed"), trace)
    }

    async fn open(fs: &Rc<FileSystem>, name: &str) -> Rc<FileHandle> {
        Rc::new(
            fs.open(0, Interface::Passion, name, Some(CreateOptions::default()))
                .await
                .unwrap(),
        )
    }

    #[test]
    fn packed_writer_batches_small_appends() {
        let (stats, trace) = run(|fs| {
            Box::pin(async move {
                let fh = open(&fs, "w").await;
                let mut w = PackedWriter::new(Rc::clone(&fh), 0, 1 << 20);
                for _ in 0..1000 {
                    w.append(10_000).await.unwrap();
                }
                w.finish().await.unwrap()
            })
        });
        assert_eq!(stats.logical_ops, 1000);
        assert_eq!(stats.bytes, 10_000_000);
        // 9 full 1 MiB flushes plus the 562,816-byte remainder at finish.
        assert_eq!(stats.physical_ops, 10);
        assert_eq!(trace.count(OpKind::Write), 10);
        assert_eq!(trace.bytes(OpKind::Write), 10_000_000);
    }

    #[test]
    fn packed_writer_final_flush_covers_remainder() {
        let (size, trace) = run(|fs| {
            Box::pin(async move {
                let fh = open(&fs, "w").await;
                let mut w = PackedWriter::new(Rc::clone(&fh), 0, 4096);
                w.append(1000).await.unwrap();
                w.append(1000).await.unwrap();
                let size = w.logical_size();
                w.finish().await.unwrap();
                size
            })
        });
        assert_eq!(size, 2000);
        assert_eq!(trace.bytes(OpKind::Write), 2000);
        assert_eq!(trace.count(OpKind::Write), 1);
    }

    #[test]
    fn chunk_reader_amortizes_physical_reads() {
        let (stats, trace) = run(|fs| {
            Box::pin(async move {
                let fh = open(&fs, "r").await;
                fh.preallocate(4 << 20);
                let mut r = ChunkReader::new(Rc::clone(&fh), 0, 4 << 20, 1 << 20);
                while !r.at_end() {
                    r.read(8_192).await.unwrap();
                }
                r.stats()
            })
        });
        assert_eq!(stats.logical_ops, (4 << 20) / 8_192);
        assert_eq!(stats.physical_ops, 4);
        assert_eq!(trace.count(OpKind::Read), 4);
    }

    #[test]
    fn chunk_reader_clips_at_range_end() {
        let (got, _) = run(|fs| {
            Box::pin(async move {
                let fh = open(&fs, "r").await;
                fh.preallocate(1000);
                let mut r = ChunkReader::new(Rc::clone(&fh), 0, 1000, 512);
                let a = r.read(800).await.unwrap();
                let b = r.read(800).await.unwrap();
                let c = r.read(800).await.unwrap();
                (a, b, c)
            })
        });
        assert_eq!(got, (800, 200, 0));
    }

    #[test]
    fn packing_beats_direct_small_writes() {
        // 1000 small writes through the packed writer vs direct calls.
        let (packed_time, _) = run(|fs| {
            Box::pin(async move {
                let fh = open(&fs, "p").await;
                let h = fh.sim_handle();
                let t0 = h.now();
                let mut w = PackedWriter::new(Rc::clone(&fh), 0, 1 << 20);
                for _ in 0..1000 {
                    w.append(4096).await.unwrap();
                }
                w.finish().await.unwrap();
                (h.now() - t0).as_secs_f64()
            })
        });
        let (direct_time, _) = run(|fs| {
            Box::pin(async move {
                let fh = open(&fs, "d").await;
                let h = fh.sim_handle();
                let t0 = h.now();
                for i in 0..1000u64 {
                    fh.write_discard_at(i * 4096, 4096).await.unwrap();
                }
                (h.now() - t0).as_secs_f64()
            })
        });
        assert!(
            packed_time < direct_time / 5.0,
            "packing should win big: {packed_time} vs {direct_time}"
        );
    }
}
