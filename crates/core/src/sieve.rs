//! Data sieving: servicing many small strided accesses with one large
//! contiguous access covering their extent.
//!
//! The third classic technique of the PASSION/ROMIO family, alongside
//! two-phase I/O and prefetching. Where two-phase I/O trades small I/O
//! calls for network exchange, sieving trades them for *wasted transfer*:
//! a read covers the whole extent including the holes; a write
//! read-modify-writes the extent. Best when the access density within the
//! extent is high and no peer processes are available to exchange with.

use iosim_msg::Payload;
use iosim_pfs::{ExtentTree, FileHandle, FsError, IoRequest};

use crate::two_phase::{Piece, Span};

/// Statistics of one sieved operation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SieveStats {
    /// Bytes of the covering extent actually transferred.
    pub extent_bytes: u64,
    /// Bytes the application asked for.
    pub useful_bytes: u64,
    /// Physical I/O calls issued (1 for a pure read/fully-covered write,
    /// 2 for a read-modify-write).
    pub io_calls: u64,
}

impl SieveStats {
    /// Fraction of transferred bytes that were useful, in `(0, 1]`.
    pub fn efficiency(&self) -> f64 {
        if self.extent_bytes == 0 {
            1.0
        } else {
            self.useful_bytes as f64 / self.extent_bytes as f64
        }
    }
}

fn extent_of(offsets: impl Iterator<Item = (u64, u64)>) -> Option<(u64, u64)> {
    let mut lo = u64::MAX;
    let mut hi = 0u64;
    for (off, len) in offsets {
        lo = lo.min(off);
        hi = hi.max(off + len);
    }
    (lo < hi).then_some((lo, hi))
}

/// Whether sorted pieces fully tile their extent (no holes).
fn fully_covers(pieces: &[Piece], lo: u64, hi: u64) -> bool {
    let mut sorted: Vec<(u64, u64)> = pieces.iter().map(|p| (p.offset, p.payload.len)).collect();
    sorted.sort_unstable();
    let mut cursor = lo;
    for (off, len) in sorted {
        if off > cursor {
            return false;
        }
        cursor = cursor.max(off + len);
    }
    cursor >= hi
}

/// Write `pieces` with data sieving: one read-modify-write of the
/// covering extent (the read is skipped when the pieces tile the extent
/// completely). Works on stored files (real bytes patched) and synthetic
/// files (timing only).
pub async fn write_sieved(fh: &FileHandle, pieces: Vec<Piece>) -> Result<SieveStats, FsError> {
    let Some((lo, hi)) = extent_of(pieces.iter().map(|p| (p.offset, p.payload.len))) else {
        return Ok(SieveStats::default());
    };
    let useful: u64 = pieces.iter().map(|p| p.payload.len).sum();
    let covered = fully_covers(&pieces, lo, hi);
    let mut io_calls = 0u64;
    let all_real = pieces.iter().all(|p| p.payload.data.is_some());
    if all_real {
        // Overlay the pieces on the background content (read back only
        // when the pieces leave holes) in a scratch extent tree — the
        // merge is pure view bookkeeping, no byte is copied.
        let mut overlay = ExtentTree::new();
        if !(covered || lo >= fh.size()) {
            // Read-modify-write: fetch the extent (clipped to EOF).
            io_calls += 1;
            let have = fh.size().min(hi) - lo;
            let b = fh.readv(&IoRequest::contiguous(lo, have)).await?;
            overlay.write(0, b);
        }
        for p in &pieces {
            let d = p.payload.data.as_ref().expect("all real");
            overlay.write_list(p.offset - lo, d);
        }
        let buf = overlay.read(0, hi - lo);
        fh.writev(&IoRequest::contiguous(lo, hi - lo), buf).await?;
        io_calls += 1;
    } else {
        if !covered && lo < fh.size() {
            io_calls += 1;
            fh.readv_discard(&IoRequest::contiguous(lo, fh.size().min(hi) - lo))
                .await?;
        }
        fh.writev_discard(&IoRequest::contiguous(lo, hi - lo))
            .await?;
        io_calls += 1;
    }
    Ok(SieveStats {
        extent_bytes: (hi - lo) * io_calls,
        useful_bytes: useful,
        io_calls,
    })
}

/// Read `spans` with data sieving: one read of the covering extent,
/// sliced per span. Returns one payload per span (real bytes iff the file
/// is stored).
pub async fn read_sieved(
    fh: &FileHandle,
    spans: &[Span],
) -> Result<(Vec<Payload>, SieveStats), FsError> {
    let Some((lo, hi)) = extent_of(spans.iter().map(|s| (s.offset, s.len))) else {
        return Ok((Vec::new(), SieveStats::default()));
    };
    let useful: u64 = spans.iter().map(|s| s.len).sum();
    let stats = SieveStats {
        extent_bytes: hi - lo,
        useful_bytes: useful,
        io_calls: 1,
    };
    let req = Span::new(lo, hi - lo).to_request();
    match fh.readv(&req).await {
        Ok(buf) => {
            let out = spans
                .iter()
                .map(|s| Payload::bytes(buf.slice((s.offset - lo) as usize, s.len as usize)))
                .collect();
            Ok((out, stats))
        }
        Err(FsError::NotStored(_)) => {
            fh.readv_discard(&req).await?;
            Ok((
                spans.iter().map(|s| Payload::synthetic(s.len)).collect(),
                stats,
            ))
        }
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iosim_machine::{presets, Interface, Machine};
    use iosim_pfs::{CreateOptions, FileSystem};
    use iosim_simkit::executor::Sim;
    use iosim_trace::{OpKind, TraceCollector};
    use std::rc::Rc;

    fn run<T: 'static>(
        f: impl FnOnce(
            Rc<FileSystem>,
            TraceCollector,
        ) -> std::pin::Pin<Box<dyn std::future::Future<Output = T>>>,
    ) -> T {
        let mut sim = Sim::new();
        let trace = TraceCollector::new();
        let m = Machine::new(sim.handle(), presets::sp2());
        let fs = FileSystem::new(m, trace.clone());
        let jh = sim.spawn(f(fs, trace));
        sim.run();
        jh.try_take().expect("completed")
    }

    fn stored() -> CreateOptions {
        CreateOptions {
            stored: true,
            ..Default::default()
        }
    }

    #[test]
    fn sieved_write_patches_holes_correctly() {
        let ok = run(|fs, _| {
            Box::pin(async move {
                let fh = fs
                    .open(0, Interface::UnixStyle, "s", Some(stored()))
                    .await
                    .unwrap();
                // Background content 0..100.
                let bg: Vec<u8> = (0..100u8).collect();
                fh.write_at(0, &bg).await.unwrap();
                // Sieve-write two strided pieces over it.
                let stats = write_sieved(
                    &fh,
                    vec![
                        Piece::bytes(10, vec![255; 5]),
                        Piece::bytes(40, vec![254; 5]),
                    ],
                )
                .await
                .unwrap();
                assert_eq!(stats.io_calls, 2); // read-modify-write
                assert_eq!(stats.useful_bytes, 10);
                let all = fh.read_at(0, 100).await.unwrap();
                // Patched regions changed, holes preserved.
                all[10..15] == [255; 5]
                    && all[40..45] == [254; 5]
                    && all[20..40] == bg[20..40]
                    && all[..10] == bg[..10]
            })
        });
        assert!(ok);
    }

    #[test]
    fn fully_covering_write_skips_the_read() {
        let stats = run(|fs, trace| {
            Box::pin(async move {
                let fh = fs
                    .open(0, Interface::UnixStyle, "c", Some(stored()))
                    .await
                    .unwrap();
                let stats = write_sieved(
                    &fh,
                    vec![Piece::bytes(0, vec![1; 50]), Piece::bytes(50, vec![2; 50])],
                )
                .await
                .unwrap();
                assert_eq!(trace.count(OpKind::Read), 0);
                stats
            })
        });
        assert_eq!(stats.io_calls, 1);
        assert!((stats.efficiency() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sieved_read_slices_spans() {
        let ok = run(|fs, trace| {
            Box::pin(async move {
                let fh = fs
                    .open(0, Interface::UnixStyle, "r", Some(stored()))
                    .await
                    .unwrap();
                let bg: Vec<u8> = (0..200).map(|i| (i % 251) as u8).collect();
                fh.write_at(0, &bg).await.unwrap();
                let spans = vec![Span::new(5, 10), Span::new(100, 20)];
                let (got, stats) = read_sieved(&fh, &spans).await.unwrap();
                assert_eq!(trace.count(OpKind::Read), 1);
                assert_eq!(stats.extent_bytes, 115);
                assert_eq!(stats.useful_bytes, 30);
                got[0].to_bytes()[..] == bg[5..15] && got[1].to_bytes()[..] == bg[100..120]
            })
        });
        assert!(ok);
    }

    #[test]
    fn sieving_beats_per_piece_writes_for_dense_strides() {
        // 128 strided 100-byte records within a 32 KB extent.
        let pieces = || -> Vec<Piece> {
            (0..128u64)
                .map(|k| Piece::synthetic(k * 256, 100))
                .collect()
        };
        let sieved = run(|fs, _| {
            Box::pin(async move {
                let fh = fs
                    .open(0, Interface::UnixStyle, "a", Some(CreateOptions::default()))
                    .await
                    .unwrap();
                let h = fh.sim_handle();
                let t0 = h.now();
                write_sieved(&fh, pieces()).await.unwrap();
                (h.now() - t0).as_secs_f64()
            })
        });
        let direct = run(|fs, _| {
            Box::pin(async move {
                let fh = fs
                    .open(0, Interface::UnixStyle, "b", Some(CreateOptions::default()))
                    .await
                    .unwrap();
                let h = fh.sim_handle();
                let t0 = h.now();
                for p in pieces() {
                    fh.seek(p.offset).await;
                    fh.write_discard(p.payload.len).await.unwrap();
                }
                (h.now() - t0).as_secs_f64()
            })
        });
        assert!(
            sieved < direct / 10.0,
            "sieving should crush per-piece writes: {sieved} vs {direct}"
        );
    }

    #[test]
    fn empty_inputs_are_noops() {
        let (stats_w, stats_r) = run(|fs, _| {
            Box::pin(async move {
                let fh = fs
                    .open(0, Interface::UnixStyle, "e", Some(stored()))
                    .await
                    .unwrap();
                let w = write_sieved(&fh, Vec::new()).await.unwrap();
                let (out, r) = read_sieved(&fh, &[]).await.unwrap();
                assert!(out.is_empty());
                (w, r)
            })
        });
        assert_eq!(stats_w.io_calls, 0);
        assert_eq!(stats_r.io_calls, 0);
        assert!((stats_w.efficiency() - 1.0).abs() < 1e-12);
    }
}
