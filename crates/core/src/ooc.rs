//! Out-of-core 2-D arrays with selectable file layout.
//!
//! An [`OocArray`] is a dense 2-D `f64` array resident in one parallel
//! file. Its **file layout** — row-major or column-major — decides how a
//! rectangular block decomposes into contiguous file segments, and hence
//! how many I/O calls a block access costs:
//!
//! - reading an `nr × nc` block from a **column-major** file costs `nc`
//!   segments of `nr` elements (one per column), unless the block spans
//!   whole columns, in which case adjacent columns coalesce;
//! - from a **row-major** file it costs `nr` segments of `nc` elements,
//!   symmetric.
//!
//! This asymmetry is exactly the paper's Section 4.4 effect: the 2-D
//! out-of-core FFT transposes between two files, and with both files
//! column-major one side of the transpose always accesses across the
//! layout, generating thousands of small strided I/O calls. Storing one
//! array row-major makes *both* sides contiguous.

use std::rc::Rc;

use iosim_buf::{tally, Bytes, BytesList};
use iosim_machine::Interface;
use iosim_pfs::{CreateOptions, FileHandle, FileSystem, FsError, IoRequest};

/// File layout of a 2-D out-of-core array.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileLayout {
    /// Element `(r, c)` at offset `(r * cols + c) * 8`.
    RowMajor,
    /// Element `(r, c)` at offset `(c * rows + r) * 8` (Fortran order).
    ColMajor,
}

/// A dense 2-D array of fixed-size elements stored in one file of the
/// parallel file system. Elements are `f64` (8 bytes) by default; other
/// element sizes (e.g. 16-byte complex numbers) use
/// [`OocArray::create_elems`] and the `_raw` accessors.
pub struct OocArray {
    fh: FileHandle,
    rows: u64,
    cols: u64,
    layout: FileLayout,
    elem: u64,
}

const ELEM: u64 = 8;

impl OocArray {
    /// Create (or open) the backing file and size it for `rows × cols`
    /// elements of `f64`.
    ///
    /// With `stored = true` the array holds real values (subject to the
    /// stored-file cap); otherwise accesses are timing-only.
    #[allow(clippy::too_many_arguments)]
    pub async fn create(
        fs: &Rc<FileSystem>,
        rank: usize,
        iface: Interface,
        name: &str,
        rows: u64,
        cols: u64,
        layout: FileLayout,
        stored: bool,
    ) -> Result<OocArray, FsError> {
        Self::create_elems(fs, rank, iface, name, rows, cols, layout, stored, ELEM).await
    }

    /// As [`OocArray::create`], with an explicit element size in bytes
    /// (e.g. 16 for complex `f64` pairs).
    #[allow(clippy::too_many_arguments)]
    pub async fn create_elems(
        fs: &Rc<FileSystem>,
        rank: usize,
        iface: Interface,
        name: &str,
        rows: u64,
        cols: u64,
        layout: FileLayout,
        stored: bool,
        elem_bytes: u64,
    ) -> Result<OocArray, FsError> {
        assert!(rows > 0 && cols > 0, "array must be non-empty");
        assert!(elem_bytes > 0, "element size must be positive");
        let fh = fs
            .open(
                rank,
                iface,
                name,
                Some(CreateOptions {
                    stored,
                    ..Default::default()
                }),
            )
            .await?;
        // Size the file without timing cost (allocation is metadata; the
        // paper's FFT pre-creates its files).
        fh.preallocate(rows * cols * elem_bytes);
        Ok(OocArray {
            fh,
            rows,
            cols,
            layout,
            elem: elem_bytes,
        })
    }

    /// Rows of the array.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Columns of the array.
    pub fn cols(&self) -> u64 {
        self.cols
    }

    /// The file layout.
    pub fn layout(&self) -> FileLayout {
        self.layout
    }

    /// Element size in bytes.
    pub fn elem_bytes(&self) -> u64 {
        self.elem
    }

    /// The underlying file handle.
    pub fn file(&self) -> &FileHandle {
        &self.fh
    }

    /// File offset of element `(r, c)`.
    pub fn offset_of(&self, r: u64, c: u64) -> u64 {
        debug_assert!(r < self.rows && c < self.cols);
        match self.layout {
            FileLayout::RowMajor => (r * self.cols + c) * self.elem,
            FileLayout::ColMajor => (c * self.rows + r) * self.elem,
        }
    }

    /// Decompose block `[r0, r0+nr) × [c0, c0+nc)` into coalesced
    /// contiguous file segments `(offset, bytes)`.
    ///
    /// The segment count is the I/O call count of an unoptimized block
    /// access — the quantity the layout optimization reduces.
    pub fn block_segments(&self, r0: u64, c0: u64, nr: u64, nc: u64) -> Vec<(u64, u64)> {
        assert!(
            r0 + nr <= self.rows && c0 + nc <= self.cols,
            "block out of range"
        );
        if nr == 0 || nc == 0 {
            return Vec::new();
        }
        // Express both layouts as: `outer` strips of `inner` contiguous
        // elements, strips `stride` elements apart.
        let (outer, inner, first, stride, full) = match self.layout {
            FileLayout::ColMajor => (
                nc,
                nr,
                self.offset_of(r0, c0),
                self.rows * self.elem,
                nr == self.rows,
            ),
            FileLayout::RowMajor => (
                nr,
                nc,
                self.offset_of(r0, c0),
                self.cols * self.elem,
                nc == self.cols,
            ),
        };
        if full {
            // Strips are contiguous end-to-end: one segment.
            return vec![(first, outer * inner * self.elem)];
        }
        (0..outer)
            .map(|k| (first + k * stride, inner * self.elem))
            .collect()
    }

    /// The block's segments as one vectored I/O request.
    pub fn block_request(&self, r0: u64, c0: u64, nr: u64, nc: u64) -> IoRequest {
        IoRequest::from_extents(self.block_segments(r0, c0, nr, nc))
    }

    /// Whether the block's corner turn is the identity permutation: the
    /// file segments of the block concatenate in exactly local
    /// row-major order, so no element reshuffle is needed. True for
    /// every block of a row-major array (the segments *are* the local
    /// rows in order) and for single-row/single-column blocks of a
    /// column-major array.
    fn corner_turn_is_identity(&self, nr: u64, nc: u64) -> bool {
        match self.layout {
            FileLayout::RowMajor => true,
            FileLayout::ColMajor => nr == 1 || nc == 1,
        }
    }

    /// Read the block into a row-major local byte buffer (element
    /// `(r0+i, c0+j)` at byte index `(i * nc + j) * elem`). Requires a
    /// stored array. The segments travel as one vectored request.
    /// When the corner turn is the identity the returned buffer is a
    /// shared view of the stored extents — nothing is copied.
    pub async fn read_block_raw(
        &self,
        r0: u64,
        c0: u64,
        nr: u64,
        nc: u64,
    ) -> Result<Bytes, FsError> {
        let data = self.fh.readv(&self.block_request(r0, c0, nr, nc)).await?;
        if self.corner_turn_is_identity(nr, nc) {
            return Ok(data);
        }
        let mut out = vec![0u8; (nr * nc * self.elem) as usize];
        let mut cursor = 0usize;
        for (offset, bytes) in self.block_segments(r0, c0, nr, nc) {
            self.scatter(
                offset,
                &data[cursor..cursor + bytes as usize],
                r0,
                c0,
                nc,
                &mut out,
            );
            cursor += bytes as usize;
        }
        Ok(Bytes::from_vec(out))
    }

    /// Write a row-major local byte buffer into the block (inverse of
    /// [`OocArray::read_block_raw`]). Pass an owned buffer to adopt it
    /// without copying; when the corner turn is the identity the
    /// segments are sliced straight out of it, and otherwise each
    /// gathered segment (a genuine reshuffle, counted in `gather`) is
    /// adopted into the write rope directly.
    pub async fn write_block_raw(
        &self,
        r0: u64,
        c0: u64,
        nr: u64,
        nc: u64,
        buf: impl Into<Bytes>,
    ) -> Result<(), FsError> {
        let buf = buf.into();
        assert_eq!(
            buf.len() as u64,
            nr * nc * self.elem,
            "buffer size mismatch"
        );
        let segments = self.block_segments(r0, c0, nr, nc);
        let mut data = BytesList::new();
        if self.corner_turn_is_identity(nr, nc) {
            let mut cursor = 0usize;
            for &(_, bytes) in &segments {
                data.push(buf.slice(cursor, bytes as usize));
                cursor += bytes as usize;
            }
        } else {
            for &(offset, bytes) in &segments {
                data.push(Bytes::from_vec(
                    self.gather(offset, bytes, r0, c0, nc, &buf),
                ));
            }
        }
        self.fh
            .writev(&IoRequest::from_extents(segments), data)
            .await?;
        Ok(())
    }

    /// Read the block into a row-major `f64` buffer
    /// (`buf[i * nc + j] = a[r0+i][c0+j]`). Requires a stored array with
    /// 8-byte elements.
    pub async fn read_block(
        &self,
        r0: u64,
        c0: u64,
        nr: u64,
        nc: u64,
    ) -> Result<Vec<f64>, FsError> {
        assert_eq!(self.elem, 8, "f64 accessors need 8-byte elements");
        let raw = self.read_block_raw(r0, c0, nr, nc).await?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect())
    }

    /// Read the block, discarding data (works on synthetic arrays; same
    /// timing and trace as [`OocArray::read_block`]).
    pub async fn read_block_discard(
        &self,
        r0: u64,
        c0: u64,
        nr: u64,
        nc: u64,
    ) -> Result<(), FsError> {
        self.fh
            .readv_discard(&self.block_request(r0, c0, nr, nc))
            .await
    }

    /// Write a row-major `f64` buffer into the block. Requires lengths to
    /// match and 8-byte elements; stores values when the array is stored.
    pub async fn write_block(
        &self,
        r0: u64,
        c0: u64,
        nr: u64,
        nc: u64,
        buf: &[f64],
    ) -> Result<(), FsError> {
        assert_eq!(self.elem, 8, "f64 accessors need 8-byte elements");
        assert_eq!(buf.len() as u64, nr * nc, "buffer size mismatch");
        let raw: Vec<u8> = buf.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.write_block_raw(r0, c0, nr, nc, raw).await
    }

    /// Write the block timing-only.
    pub async fn write_block_discard(
        &self,
        r0: u64,
        c0: u64,
        nr: u64,
        nc: u64,
    ) -> Result<(), FsError> {
        self.fh
            .writev_discard(&self.block_request(r0, c0, nr, nc))
            .await
    }

    /// Close the backing file handle (cost + trace).
    pub async fn close(self) {
        self.fh.close().await;
    }

    /// Number of I/O calls a block access costs under this layout.
    pub fn block_call_count(&self, r0: u64, c0: u64, nr: u64, nc: u64) -> usize {
        self.block_segments(r0, c0, nr, nc).len()
    }

    fn rc_of_offset(&self, offset: u64) -> (u64, u64) {
        let g = offset / self.elem;
        match self.layout {
            FileLayout::RowMajor => (g / self.cols, g % self.cols),
            FileLayout::ColMajor => (g % self.rows, g / self.rows),
        }
    }

    /// Place a contiguous file segment's bytes into the row-major block
    /// buffer. This corner turn is a genuine element reshuffle, so its
    /// byte movement is counted.
    fn scatter(&self, seg_offset: u64, data: &[u8], r0: u64, c0: u64, nc: u64, out: &mut [u8]) {
        let e = self.elem as usize;
        tally::count_copy((data.len() - data.len() % e) as u64);
        for (k, chunk) in data.chunks_exact(e).enumerate() {
            let (r, c) = self.rc_of_offset(seg_offset + (k as u64) * self.elem);
            let idx = ((r - r0) * nc + (c - c0)) as usize * e;
            out[idx..idx + e].copy_from_slice(chunk);
        }
    }

    /// Collect a contiguous file segment's bytes from the row-major block
    /// buffer (a genuine corner-turn reshuffle; counted as a copy).
    fn gather(
        &self,
        seg_offset: u64,
        bytes: u64,
        r0: u64,
        c0: u64,
        nc: u64,
        buf: &[u8],
    ) -> Vec<u8> {
        let e = self.elem as usize;
        tally::count_copy(bytes - bytes % self.elem);
        let mut out = Vec::with_capacity(bytes as usize);
        for k in 0..bytes / self.elem {
            let (r, c) = self.rc_of_offset(seg_offset + k * self.elem);
            let idx = ((r - r0) * nc + (c - c0)) as usize * e;
            out.extend_from_slice(&buf[idx..idx + e]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iosim_machine::{presets, Machine};
    use iosim_simkit::executor::Sim;
    use iosim_trace::TraceCollector;

    fn fixture(sim: &Sim) -> Rc<FileSystem> {
        let m = Machine::new(sim.handle(), presets::paragon_small());
        FileSystem::new(m, TraceCollector::new())
    }

    fn run<T: 'static>(
        f: impl FnOnce(Rc<FileSystem>) -> std::pin::Pin<Box<dyn std::future::Future<Output = T>>>,
    ) -> T {
        let mut sim = Sim::new();
        let fs = fixture(&sim);
        let jh = sim.spawn(f(fs));
        sim.run();
        jh.try_take().expect("completed")
    }

    #[test]
    fn col_major_block_is_one_segment_per_column() {
        let segs = run(|fs| {
            Box::pin(async move {
                let a = OocArray::create(
                    &fs,
                    0,
                    Interface::UnixStyle,
                    "a",
                    16,
                    16,
                    FileLayout::ColMajor,
                    false,
                )
                .await
                .unwrap();
                a.block_segments(2, 3, 4, 5)
            })
        });
        assert_eq!(segs.len(), 5);
        // First segment starts at element (2,3): offset (3*16+2)*8 = 400.
        assert_eq!(segs[0], (400, 32));
        // Next column strip is rows*8 = 128 bytes later.
        assert_eq!(segs[1].0, 400 + 128);
    }

    #[test]
    fn full_column_blocks_coalesce() {
        let (calls_full, calls_partial) = run(|fs| {
            Box::pin(async move {
                let a = OocArray::create(
                    &fs,
                    0,
                    Interface::UnixStyle,
                    "a",
                    16,
                    16,
                    FileLayout::ColMajor,
                    false,
                )
                .await
                .unwrap();
                (
                    a.block_call_count(0, 0, 16, 8),
                    a.block_call_count(0, 0, 8, 8),
                )
            })
        });
        assert_eq!(calls_full, 1);
        assert_eq!(calls_partial, 8);
    }

    #[test]
    fn row_major_is_the_transpose_of_col_major() {
        let (rm, cm) = run(|fs| {
            Box::pin(async move {
                let rm = OocArray::create(
                    &fs,
                    0,
                    Interface::UnixStyle,
                    "rm",
                    32,
                    32,
                    FileLayout::RowMajor,
                    false,
                )
                .await
                .unwrap();
                let cm = OocArray::create(
                    &fs,
                    0,
                    Interface::UnixStyle,
                    "cm",
                    32,
                    32,
                    FileLayout::ColMajor,
                    false,
                )
                .await
                .unwrap();
                (
                    rm.block_call_count(0, 0, 4, 32),
                    cm.block_call_count(0, 0, 32, 4),
                )
            })
        });
        // Full rows from a row-major file and full columns from a
        // column-major file both coalesce to one call.
        assert_eq!(rm, 1);
        assert_eq!(cm, 1);
    }

    #[test]
    fn write_then_read_block_roundtrips() {
        let ok = run(|fs| {
            Box::pin(async move {
                let a = OocArray::create(
                    &fs,
                    0,
                    Interface::UnixStyle,
                    "a",
                    8,
                    8,
                    FileLayout::ColMajor,
                    true,
                )
                .await
                .unwrap();
                let block: Vec<f64> = (0..12).map(|i| i as f64 * 1.5).collect();
                a.write_block(1, 2, 3, 4, &block).await.unwrap();
                let back = a.read_block(1, 2, 3, 4).await.unwrap();
                back == block
            })
        });
        assert!(ok);
    }

    #[test]
    fn blocks_roundtrip_across_layouts() {
        // Writing with one pattern and reading a different sub-block must
        // agree element-wise in both layouts.
        for layout in [FileLayout::RowMajor, FileLayout::ColMajor] {
            let ok = run(move |fs| {
                Box::pin(async move {
                    let a =
                        OocArray::create(&fs, 0, Interface::UnixStyle, "a", 10, 10, layout, true)
                            .await
                            .unwrap();
                    // Fill the whole array with f(r, c) = 100 r + c.
                    let all: Vec<f64> = (0..100).map(|i| (i / 10 * 100 + i % 10) as f64).collect();
                    a.write_block(0, 0, 10, 10, &all).await.unwrap();
                    // Read a 3x4 block at (5, 2).
                    let b = a.read_block(5, 2, 3, 4).await.unwrap();
                    (0..3).all(|i| (0..4).all(|j| b[i * 4 + j] == ((5 + i) * 100 + 2 + j) as f64))
                })
            });
            assert!(ok, "layout {layout:?}");
        }
    }

    #[test]
    fn discard_variants_work_on_synthetic() {
        run(|fs| {
            Box::pin(async move {
                let a = OocArray::create(
                    &fs,
                    0,
                    Interface::Passion,
                    "syn",
                    64,
                    64,
                    FileLayout::ColMajor,
                    false,
                )
                .await
                .unwrap();
                a.write_block_discard(0, 0, 64, 64).await.unwrap();
                a.read_block_discard(0, 0, 64, 32).await.unwrap();
            })
        });
    }

    #[test]
    fn sixteen_byte_elements_roundtrip_raw() {
        let ok = run(|fs| {
            Box::pin(async move {
                let a = OocArray::create_elems(
                    &fs,
                    0,
                    Interface::UnixStyle,
                    "cpx",
                    6,
                    6,
                    FileLayout::ColMajor,
                    true,
                    16,
                )
                .await
                .unwrap();
                assert_eq!(a.elem_bytes(), 16);
                let block: Vec<u8> = (0..2 * 3 * 16).map(|i| (i % 251) as u8).collect();
                a.write_block_raw(1, 2, 2, 3, block.clone()).await.unwrap();
                let back = a.read_block_raw(1, 2, 2, 3).await.unwrap();
                back == block
            })
        });
        assert!(ok);
    }

    #[test]
    fn elem_size_scales_segments() {
        let (seg8, seg16) = run(|fs| {
            Box::pin(async move {
                let a8 = OocArray::create(
                    &fs,
                    0,
                    Interface::UnixStyle,
                    "e8",
                    16,
                    16,
                    FileLayout::ColMajor,
                    false,
                )
                .await
                .unwrap();
                let a16 = OocArray::create_elems(
                    &fs,
                    0,
                    Interface::UnixStyle,
                    "e16",
                    16,
                    16,
                    FileLayout::ColMajor,
                    false,
                    16,
                )
                .await
                .unwrap();
                (
                    a8.block_segments(0, 0, 4, 2),
                    a16.block_segments(0, 0, 4, 2),
                )
            })
        });
        assert_eq!(seg8.len(), 2);
        assert_eq!(seg16.len(), 2);
        assert_eq!(seg8[0].1 * 2, seg16[0].1);
    }

    #[cfg(feature = "heavy-tests")]
    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            #[test]
            fn segments_tile_the_block_exactly(
                rows in 1u64..40,
                cols in 1u64..40,
                r0_raw in 0u64..40,
                c0_raw in 0u64..40,
                nr_raw in 1u64..40,
                nc_raw in 1u64..40,
                row_major in any::<bool>(),
            ) {
                // Clamp the block into the array instead of rejecting, so
                // every generated case is exercised.
                let r0 = r0_raw % rows;
                let c0 = c0_raw % cols;
                let nr = 1 + nr_raw % (rows - r0);
                let nc = 1 + nc_raw % (cols - c0);
                let layout = if row_major {
                    FileLayout::RowMajor
                } else {
                    FileLayout::ColMajor
                };
                let segs = run(move |fs| {
                    Box::pin(async move {
                        let a = OocArray::create(
                            &fs,
                            0,
                            Interface::UnixStyle,
                            "p",
                            rows,
                            cols,
                            layout,
                            false,
                        )
                        .await
                        .unwrap();
                        a.block_segments(r0, c0, nr, nc)
                    })
                });
                // Total bytes equal the block size.
                let total: u64 = segs.iter().map(|&(_, b)| b).sum();
                prop_assert_eq!(total, nr * nc * 8);
                // Segments are disjoint and sorted by offset.
                let mut sorted = segs.clone();
                sorted.sort_unstable();
                for w in sorted.windows(2) {
                    prop_assert!(w[0].0 + w[0].1 <= w[1].0, "overlap: {w:?}");
                }
                // The count matches the layout formula.
                let expect = match layout {
                    FileLayout::ColMajor => if nr == rows { 1 } else { nc },
                    FileLayout::RowMajor => if nc == cols { 1 } else { nr },
                };
                prop_assert_eq!(segs.len() as u64, expect);
            }
        }
    }

    #[test]
    #[should_panic(expected = "block out of range")]
    fn out_of_range_block_panics() {
        run(|fs| {
            Box::pin(async move {
                let a = OocArray::create(
                    &fs,
                    0,
                    Interface::UnixStyle,
                    "a",
                    4,
                    4,
                    FileLayout::RowMajor,
                    false,
                )
                .await
                .unwrap();
                a.block_segments(2, 2, 4, 4);
            })
        });
    }
}
