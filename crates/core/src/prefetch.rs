//! Prefetching (PASSION `prefetch` calls).
//!
//! SCF 1.1's read phase scans each process's private integral file
//! sequentially in large packed chunks — a pattern "amenable to
//! prefetching" (paper §4.2). The [`Prefetcher`] keeps up to `depth`
//! chunk reads in flight ahead of the consumer; `next()` waits for the
//! oldest chunk and charges the buffer-copy time. Following the paper's
//! measurement convention, the prefetching version's I/O time counts
//! **wait time and copy time** too, which [`PrefetchStats`] reports.

use std::collections::VecDeque;
use std::rc::Rc;

use iosim_pfs::{FileHandle, FsError};
use iosim_simkit::executor::JoinHandle;
use iosim_simkit::time::SimDuration;

/// Accounting of a prefetched scan.
#[derive(Clone, Copy, Debug, Default)]
pub struct PrefetchStats {
    /// Chunks consumed.
    pub chunks: u64,
    /// Bytes consumed.
    pub bytes: u64,
    /// Time the consumer blocked waiting for an in-flight chunk.
    pub wait_time: SimDuration,
    /// Time spent copying chunks from the prefetch buffer.
    pub copy_time: SimDuration,
}

/// Read-ahead pipeline over one file range.
pub struct Prefetcher {
    fh: Rc<FileHandle>,
    chunk: u64,
    depth: usize,
    next_issue: u64,
    end: u64,
    inflight: VecDeque<(u64, JoinHandle<Result<(), FsError>>)>,
    stats: PrefetchStats,
}

impl Prefetcher {
    /// Prefetch `[start, end)` of `fh` in `chunk`-byte reads, keeping up
    /// to `depth` reads in flight.
    ///
    /// # Panics
    /// Panics if `chunk == 0` or `depth == 0`.
    pub fn new(fh: Rc<FileHandle>, start: u64, end: u64, chunk: u64, depth: usize) -> Prefetcher {
        assert!(chunk > 0, "chunk must be positive");
        assert!(depth > 0, "depth must be positive");
        Prefetcher {
            fh,
            chunk,
            depth,
            next_issue: start,
            end,
            inflight: VecDeque::with_capacity(depth),
            stats: PrefetchStats::default(),
        }
    }

    fn fill(&mut self) {
        while self.inflight.len() < self.depth && self.next_issue < self.end {
            let off = self.next_issue;
            let len = self.chunk.min(self.end - off);
            self.next_issue = off + len;
            let fh = Rc::clone(&self.fh);
            let h = fh.sim_handle();
            let jh = h.spawn(async move { fh.read_discard_at(off, len).await });
            self.inflight.push_back((len, jh));
        }
    }

    /// Consume the next chunk: waits for its read, charges the buffer
    /// copy, and tops up the pipeline. Returns the chunk length, or `None`
    /// at the end of the range.
    pub async fn next(&mut self) -> Result<Option<u64>, FsError> {
        self.fill();
        let Some((len, jh)) = self.inflight.pop_front() else {
            return Ok(None);
        };
        let h = self.fh.sim_handle();
        let t0 = h.now();
        jh.await?;
        self.stats.wait_time += h.now() - t0;
        // Copy from prefetch buffer to the application buffer.
        let copy = self.fh.copy_time(len);
        h.sleep(copy).await;
        self.stats.copy_time += copy;
        self.stats.chunks += 1;
        self.stats.bytes += len;
        self.fill();
        Ok(Some(len))
    }

    /// Consume the whole range.
    pub async fn drain(&mut self) -> Result<PrefetchStats, FsError> {
        while self.next().await?.is_some() {}
        Ok(self.stats())
    }

    /// Accounting so far.
    pub fn stats(&self) -> PrefetchStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iosim_machine::{presets, Interface, Machine};
    use iosim_pfs::{CreateOptions, FileSystem};
    use iosim_simkit::executor::Sim;
    use iosim_trace::TraceCollector;

    /// Time a sequential scan of `total` bytes with and without prefetch.
    fn scan_time(depth: Option<usize>) -> f64 {
        let mut sim = Sim::new();
        let m = Machine::new(sim.handle(), presets::paragon_large());
        let fs = FileSystem::new(m, TraceCollector::new());
        let h = sim.handle();
        let jh = sim.spawn(async move {
            let fh = Rc::new(
                fs.open(0, Interface::Passion, "f", Some(CreateOptions::default()))
                    .await
                    .unwrap(),
            );
            fh.preallocate(64 << 20);
            let t0 = h.now();
            match depth {
                Some(d) => {
                    let mut p = Prefetcher::new(Rc::clone(&fh), 0, 64 << 20, 1 << 20, d);
                    p.drain().await.unwrap();
                }
                None => {
                    let mut off = 0u64;
                    while off < 64 << 20 {
                        fh.read_discard_at(off, 1 << 20).await.unwrap();
                        off += 1 << 20;
                    }
                }
            }
            (h.now() - t0).as_secs_f64()
        });
        sim.run();
        jh.try_take().expect("completed")
    }

    #[test]
    fn prefetch_overlaps_call_overhead_with_service() {
        let plain = scan_time(None);
        let pre = scan_time(Some(4));
        assert!(
            pre < 0.75 * plain,
            "prefetch should hide client overhead: {pre} vs {plain}"
        );
    }

    #[test]
    fn deeper_pipelines_do_not_hurt() {
        let d1 = scan_time(Some(1));
        let d4 = scan_time(Some(4));
        assert!(d4 <= d1 + 1e-9, "depth 4 ({d4}) worse than depth 1 ({d1})");
    }

    #[test]
    fn stats_account_chunks_waits_and_copies() {
        let mut sim = Sim::new();
        let m = Machine::new(sim.handle(), presets::paragon_large());
        let fs = FileSystem::new(m, TraceCollector::new());
        let jh = sim.spawn(async move {
            let fh = Rc::new(
                fs.open(0, Interface::Passion, "f", Some(CreateOptions::default()))
                    .await
                    .unwrap(),
            );
            fh.preallocate(10 << 20);
            let mut p = Prefetcher::new(Rc::clone(&fh), 0, 10 << 20, 1 << 20, 2);
            p.drain().await.unwrap()
        });
        sim.run();
        let st = jh.try_take().unwrap();
        assert_eq!(st.chunks, 10);
        assert_eq!(st.bytes, 10 << 20);
        assert!(st.copy_time > SimDuration::ZERO);
        // The first chunk is always waited for.
        assert!(st.wait_time > SimDuration::ZERO);
    }

    #[test]
    fn partial_last_chunk_is_handled() {
        let mut sim = Sim::new();
        let m = Machine::new(sim.handle(), presets::paragon_large());
        let fs = FileSystem::new(m, TraceCollector::new());
        let jh = sim.spawn(async move {
            let fh = Rc::new(
                fs.open(0, Interface::Passion, "f", Some(CreateOptions::default()))
                    .await
                    .unwrap(),
            );
            fh.preallocate(2_500_000);
            let mut p = Prefetcher::new(Rc::clone(&fh), 0, 2_500_000, 1 << 20, 3);
            let mut lens = Vec::new();
            while let Some(l) = p.next().await.unwrap() {
                lens.push(l);
            }
            lens
        });
        sim.run();
        let lens = jh.try_take().unwrap();
        assert_eq!(lens, vec![1 << 20, 1 << 20, 2_500_000 - (2 << 20)]);
    }
}
