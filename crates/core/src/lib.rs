//! # iosim-core — the parallel I/O optimization runtime
//!
//! The paper's subject: the software techniques that rescue I/O-intensive
//! applications on I/O-starved machines, implemented as a PASSION-style
//! run-time library over the simulated parallel file system. One module
//! per technique, matching Table 5 of the paper:
//!
//! | Technique | Module | Benefits (per the paper) |
//! |---|---|---|
//! | Collective (two-phase) I/O | [`two_phase`] | BTIO, AST |
//! | File layout selection | [`ooc`], [`advisor`] | FFT |
//! | Efficient interface (packing) | [`packed`] | SCF 1.1, SCF 3.0 |
//! | Prefetching | [`prefetch`] | SCF 1.1, SCF 3.0 |
//! | Balanced I/O | [`balanced`] | SCF 3.0 |
//!
//! Every technique is *functional*, not just timed: two-phase I/O really
//! redistributes bytes, out-of-core arrays really store values, packing
//! really merges operations — so optimized and unoptimized runs can be
//! checked for identical results while their simulated costs differ.

pub mod advisor;
pub mod balanced;
pub mod ckpt;
pub mod loopnest;
pub mod ooc;
pub mod packed;
pub mod prefetch;
pub mod sieve;
pub mod two_phase;

pub use advisor::{choose_layouts, AccessOrder, ArrayAccess};
pub use balanced::{apply_moves, default_tolerance, plan_balance, Move, SemiDirect};
pub use ckpt::Checkpointer;
pub use loopnest::{analyze, ArrayRef, Loop, LoopNest, Plan};
pub use ooc::{FileLayout, OocArray};
pub use packed::{ChunkReader, PackedStats, PackedWriter};
pub use prefetch::{PrefetchStats, Prefetcher};
pub use sieve::{read_sieved, write_sieved, SieveStats};
pub use two_phase::{
    read_collective, write_collective, write_collective_batched, write_collective_buffered, Piece,
    Span, TwoPhaseStats,
};
