//! Loop-nest analysis for out-of-core programs (reference \[7\]:
//! Kandemir, Ramanujam & Choudhary, "Improving the Performance of
//! Out-of-Core Computations", ICPP 1997).
//!
//! The paper's §4.4 notes that file-layout optimizations "can sometimes
//! be detected by parallelizing compilers": analyze each loop nest's
//! access pattern at compile time, then choose per-array file layouts and
//! tile shapes. This module implements that analysis for 2-D arrays with
//! affine accesses:
//!
//! 1. a [`LoopNest`] declares its loops (with trip counts) and its array
//!    references ([`ArrayRef`]: which loop indexes which dimension);
//! 2. [`analyze`] derives each reference's fastest-varying dimension and
//!    weight, feeds the [`crate::advisor`] chooser, and picks a tile
//!    shape per array under a memory budget;
//! 3. [`Plan::estimated_calls`] predicts the I/O call count, which tests
//!    validate against the simulator's actual counts
//!    ([`crate::ooc::OocArray::block_call_count`]).

use std::collections::HashMap;

use crate::advisor::{choose_layouts, AccessOrder, ArrayAccess};
use crate::ooc::FileLayout;

/// A 2-D affine array reference inside a nest: `array[loops[row_loop]]
/// [loops[col_loop]]`.
#[derive(Clone, Debug)]
pub struct ArrayRef {
    /// Array name.
    pub array: String,
    /// Index (into the nest's loop list) of the loop driving the row
    /// subscript.
    pub row_loop: usize,
    /// Index of the loop driving the column subscript.
    pub col_loop: usize,
}

impl ArrayRef {
    /// Build a reference.
    pub fn new(array: impl Into<String>, row_loop: usize, col_loop: usize) -> ArrayRef {
        ArrayRef {
            array: array.into(),
            row_loop,
            col_loop,
        }
    }
}

/// One loop of a nest, outermost first.
#[derive(Clone, Copy, Debug)]
pub struct Loop {
    /// Trip count.
    pub trips: u64,
}

/// A loop nest over 2-D out-of-core arrays.
#[derive(Clone, Debug)]
pub struct LoopNest {
    /// Nest label (diagnostics).
    pub name: String,
    /// Loops, outermost first.
    pub loops: Vec<Loop>,
    /// Array references in the body.
    pub refs: Vec<ArrayRef>,
    /// Relative execution weight of the nest (e.g. invocation count).
    pub weight: f64,
}

impl LoopNest {
    /// Build a nest.
    pub fn new(name: impl Into<String>, trip_counts: &[u64], refs: Vec<ArrayRef>) -> LoopNest {
        LoopNest {
            name: name.into(),
            loops: trip_counts.iter().map(|&trips| Loop { trips }).collect(),
            refs,
            weight: 1.0,
        }
    }

    /// Set the nest weight.
    pub fn with_weight(mut self, weight: f64) -> LoopNest {
        self.weight = weight;
        self
    }

    /// The innermost loop's index.
    fn innermost(&self) -> usize {
        self.loops.len() - 1
    }

    /// The access order of a reference: which subscript the innermost
    /// loop varies. References not indexed by the innermost loop at all
    /// are loop-invariant in it (no fast dimension) and reported as
    /// `None`.
    pub fn order_of(&self, r: &ArrayRef) -> Option<AccessOrder> {
        let inner = self.innermost();
        if r.row_loop == inner {
            Some(AccessOrder::RowFastest)
        } else if r.col_loop == inner {
            Some(AccessOrder::ColFastest)
        } else {
            None
        }
    }
}

/// The analysis result: per-array layout and square-ish tile shape.
#[derive(Clone, Debug)]
pub struct Plan {
    /// Chosen layout per array.
    pub layouts: HashMap<String, FileLayout>,
    /// Chosen `(tile_rows, tile_cols)` per array under the memory budget.
    pub tiles: HashMap<String, (u64, u64)>,
}

impl Plan {
    /// Predicted I/O calls to access one `nr × nc` block of `array` under
    /// the plan's layout: one call per contiguous segment, with
    /// coalescing when the block spans the contiguous dimension fully
    /// (mirrors [`crate::ooc::OocArray::block_segments`]).
    pub fn estimated_calls(&self, array: &str, rows: u64, cols: u64, nr: u64, nc: u64) -> u64 {
        match self.layouts.get(array) {
            Some(FileLayout::ColMajor) | None => {
                if nr == rows {
                    1
                } else {
                    nc
                }
            }
            Some(FileLayout::RowMajor) => {
                if nc == cols {
                    1
                } else {
                    nr
                }
            }
        }
    }
}

/// Analyze a program's loop nests over arrays of `rows × cols` elements
/// of `elem_bytes`, choosing per-array layouts and tiles that fit
/// `mem_budget` bytes (per array reference kept in memory at once).
pub fn analyze(nests: &[LoopNest], rows: u64, cols: u64, elem_bytes: u64, mem_budget: u64) -> Plan {
    // Weighted votes for the conforming layout of each array.
    let mut votes: Vec<ArrayAccess> = Vec::new();
    for nest in nests {
        // Trip-count product of the nest scales its weight.
        let trips: f64 = nest.loops.iter().map(|l| l.trips as f64).product();
        for r in &nest.refs {
            if let Some(order) = nest.order_of(r) {
                votes.push(ArrayAccess::new(
                    r.array.clone(),
                    order,
                    nest.weight * trips,
                ));
            }
        }
    }
    let layouts = choose_layouts(&votes);

    // Tile shapes: make the contiguous dimension full-extent when it
    // fits, otherwise square-ish within the budget.
    let elems = (mem_budget / elem_bytes).max(1);
    let mut tiles = HashMap::new();
    for (array, layout) in &layouts {
        let tile = match layout {
            FileLayout::ColMajor => {
                if rows <= elems {
                    (rows, (elems / rows).clamp(1, cols))
                } else {
                    (elems.min(rows), 1)
                }
            }
            FileLayout::RowMajor => {
                if cols <= elems {
                    ((elems / cols).clamp(1, rows), cols)
                } else {
                    (1, elems.min(cols))
                }
            }
        };
        tiles.insert(array.clone(), tile);
    }
    Plan { layouts, tiles }
}

/// The out-of-core transpose program `B[j][i] = A[i][j]` as loop nests —
/// the motivating example of both reference \[7\] and the paper's FFT.
pub fn transpose_program() -> Vec<LoopNest> {
    // for i in 0..n { for j in 0..n { B[j][i] = A[i][j] } }
    // Innermost loop j drives A's column subscript and B's row subscript.
    vec![LoopNest::new(
        "transpose",
        &[1, 1],
        vec![ArrayRef::new("A", 0, 1), ArrayRef::new("B", 1, 0)],
    )]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose_gets_mixed_layouts() {
        let plan = analyze(&transpose_program(), 64, 64, 8, 4096);
        // A is walked column-fastest (j inner on its column subscript)
        // → row-major conforms; B row-fastest → col-major conforms.
        assert_eq!(plan.layouts["A"], FileLayout::RowMajor);
        assert_eq!(plan.layouts["B"], FileLayout::ColMajor);
        assert_ne!(plan.layouts["A"], plan.layouts["B"]);
    }

    #[test]
    fn column_scan_program_keeps_col_major() {
        // for j { for i { use A[i][j] } }: i innermost on rows.
        let nests = vec![LoopNest::new(
            "colscan",
            &[8, 8],
            vec![ArrayRef::new("A", 1, 0)],
        )];
        let plan = analyze(&nests, 64, 64, 8, 64 * 8 * 4);
        assert_eq!(plan.layouts["A"], FileLayout::ColMajor);
        // Tile: full columns, width from budget (4 columns).
        assert_eq!(plan.tiles["A"], (64, 4));
    }

    #[test]
    fn conflicting_nests_resolve_by_weight() {
        let nests = vec![
            LoopNest::new("rowwise", &[4, 4], vec![ArrayRef::new("X", 0, 1)]).with_weight(10.0),
            LoopNest::new("colwise", &[4, 4], vec![ArrayRef::new("X", 1, 0)]).with_weight(1.0),
        ];
        // rowwise: inner loop drives the column subscript → col-fastest →
        // row-major conforms; it outweighs colwise.
        let plan = analyze(&nests, 32, 32, 8, 1024);
        assert_eq!(plan.layouts["X"], FileLayout::RowMajor);
    }

    #[test]
    fn loop_invariant_refs_cast_no_vote() {
        // for i { for j { use A[i][i-ish] } } where neither subscript is
        // driven by j: modelled as both subscripts on loop 0.
        let nests = vec![LoopNest::new(
            "diag",
            &[4, 4],
            vec![ArrayRef::new("D", 0, 0)],
        )];
        let plan = analyze(&nests, 16, 16, 8, 1024);
        // No vote → chooser never sees D.
        assert!(!plan.layouts.contains_key("D"));
    }

    #[test]
    fn tiles_respect_the_memory_budget() {
        let nests = vec![LoopNest::new(
            "scan",
            &[2, 2],
            vec![ArrayRef::new("A", 1, 0)],
        )];
        for budget in [256u64, 4096, 1 << 20] {
            let plan = analyze(&nests, 128, 128, 8, budget);
            let (tr, tc) = plan.tiles["A"];
            assert!(
                tr * tc * 8 <= budget.max(8 * 128),
                "{tr}x{tc} over budget {budget}"
            );
            assert!(tr >= 1 && tc >= 1);
        }
    }

    #[test]
    fn estimated_calls_match_the_simulator() {
        // The estimator must agree with the OocArray's actual segment
        // count for every tested block shape.
        use iosim_machine::{presets, Interface, Machine};
        use iosim_pfs::FileSystem;
        use iosim_simkit::executor::Sim;
        use iosim_trace::TraceCollector;

        let plan = analyze(&transpose_program(), 32, 32, 8, 2048);
        let mut sim = Sim::new();
        let m = Machine::new(sim.handle(), presets::paragon_small());
        let fs = FileSystem::new(m, TraceCollector::new());
        let plan2 = plan.clone();
        let jh = sim.spawn(async move {
            for (name, layout) in &plan2.layouts {
                let arr = crate::ooc::OocArray::create(
                    &fs,
                    0,
                    Interface::UnixStyle,
                    &format!("ln.{name}"),
                    32,
                    32,
                    *layout,
                    false,
                )
                .await
                .expect("create");
                for (nr, nc) in [(32u64, 4u64), (4, 32), (8, 8), (32, 32), (1, 1)] {
                    let actual = arr.block_call_count(0, 0, nr, nc) as u64;
                    let predicted = plan2.estimated_calls(name, 32, 32, nr, nc);
                    assert_eq!(actual, predicted, "{name} {layout:?} block {nr}x{nc}");
                }
            }
        });
        sim.run();
        jh.try_take().expect("completed");
    }
}
