//! Wall-clock benchmark layer: `bench wallclock`.
//!
//! Times four scheduler microbenchmarks (spawn, sleep, channel, and
//! ping storms) on the current `simkit` executor *and* on the pre-rewrite
//! baseline replica ([`crate::baseline`]), times the five applications and
//! the full repro suite, and emits everything as `BENCH_wallclock.json` so
//! every PR has a host-performance trajectory (paper-side motivation:
//! Kunkel et al., *Tools for Analyzing Parallel I/O* — you can't optimize
//! what you don't measure).
//!
//! Timings are machine-dependent; consumers must only compare across runs
//! on the same host and must never gate CI on them. The JSON layout is
//! validated by [`validate`], which `verify.sh` runs on both the smoke
//! output and the committed trajectory file.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use iosim_buf::tally;
use iosim_simkit::executor::Sim;
use iosim_simkit::sync::channel;
use iosim_simkit::time::SimDuration;

use crate::baseline::BaselineSim;
use crate::experiments;
use crate::parallel::{default_threads, map_parallel};

/// One timed executor workload.
#[derive(Clone, Copy, Debug)]
pub struct StormResult {
    /// Best-of-reps host wall time.
    pub wall: Duration,
    /// Task polls the run performed (identical across reps).
    pub events: u64,
}

impl StormResult {
    /// Scheduler throughput: polls per host second.
    pub fn events_per_sec(&self) -> f64 {
        let s = self.wall.as_secs_f64();
        if s > 0.0 {
            self.events as f64 / s
        } else {
            0.0
        }
    }
}

/// A microbench pair: same workload on the rewritten executor and on the
/// Mutex+HashMap baseline.
#[derive(Clone, Copy, Debug)]
pub struct StormPair {
    pub current: StormResult,
    pub baseline: StormResult,
}

impl StormPair {
    /// Wall-time ratio baseline/current on the identical workload (>1
    /// means the rewrite is faster). Wall time — not the events/sec ratio
    /// — is the honest comparison: on wake-heavy workloads the baseline
    /// performs extra duplicate polls that the rewrite's wake dedup
    /// eliminates, which inflate the baseline's poll count and would make
    /// a polls/sec ratio understate the real speedup.
    pub fn speedup(&self) -> f64 {
        let c = self.current.wall.as_secs_f64();
        if c > 0.0 {
            self.baseline.wall.as_secs_f64() / c
        } else {
            0.0
        }
    }
}

/// Workload sizes for the three storms.
#[derive(Clone, Copy, Debug)]
pub struct StormConfig {
    /// spawn storm: `rounds` waves of `batch` immediately-completing tasks.
    pub spawn_rounds: usize,
    pub spawn_batch: usize,
    /// sleep storm: `tasks` tasks each sleeping `iters` times.
    pub sleep_tasks: usize,
    pub sleep_iters: usize,
    /// channel storm: `pairs` producer/consumer pairs moving `msgs` each.
    pub chan_pairs: usize,
    pub chan_msgs: usize,
    /// ping storm: `pairs` task pairs ping-ponging `rounds` round trips.
    pub ping_pairs: usize,
    pub ping_rounds: usize,
    /// Repetitions per storm; best (minimum wall time) is reported.
    pub reps: usize,
}

impl StormConfig {
    /// Full-size storms for the committed trajectory file.
    pub fn full() -> StormConfig {
        StormConfig {
            spawn_rounds: 64,
            spawn_batch: 512,
            sleep_tasks: 2048,
            sleep_iters: 64,
            chan_pairs: 256,
            chan_msgs: 512,
            ping_pairs: 64,
            ping_rounds: 1024,
            reps: 3,
        }
    }

    /// Small storms for the CI smoke gate.
    pub fn smoke() -> StormConfig {
        StormConfig {
            spawn_rounds: 8,
            spawn_batch: 64,
            sleep_tasks: 128,
            sleep_iters: 8,
            chan_pairs: 32,
            chan_msgs: 64,
            ping_pairs: 8,
            ping_rounds: 64,
            reps: 1,
        }
    }
}

/// Measure a current/baseline pair with one discarded warmup each and
/// `reps` interleaved repetitions (current, baseline, current, …), taking
/// each side's best wall time. Interleaving keeps slow drift in host CPU
/// frequency from biasing whichever side happens to run later.
fn measure_pair<C, B>(reps: usize, mut current: C, mut baseline: B) -> StormPair
where
    C: FnMut() -> StormResult,
    B: FnMut() -> StormResult,
{
    let _ = current();
    let _ = baseline();
    let mut best_c = current();
    let mut best_b = baseline();
    for _ in 1..reps.max(1) {
        let c = current();
        if c.wall < best_c.wall {
            best_c = c;
        }
        let b = baseline();
        if b.wall < best_b.wall {
            best_b = b;
        }
    }
    StormPair {
        current: best_c,
        baseline: best_b,
    }
}

/// Spawn storm: waves of immediately-completing tasks — stresses task
/// admission and retirement (slab alloc/free vs `HashMap` insert/remove).
/// The workload is shaped identically on both executors (counter-completed
/// tasks, a 1 ns virtual-time ladder between waves) so events/sec compares
/// the schedulers, not the workloads.
pub fn spawn_storm_current(cfg: &StormConfig) -> StormResult {
    use std::cell::Cell;
    use std::rc::Rc;
    {
        let mut sim = Sim::new();
        let h = sim.handle();
        let done: Rc<Cell<usize>> = Rc::default();
        let done2 = Rc::clone(&done);
        let (rounds, batch) = (cfg.spawn_rounds, cfg.spawn_batch);
        sim.spawn(async move {
            for _ in 0..rounds {
                for _ in 0..batch {
                    let d = Rc::clone(&done2);
                    h.spawn(async move {
                        d.set(d.get() + 1);
                    });
                }
                h.sleep(SimDuration::from_nanos(1)).await;
            }
        });
        let t0 = Instant::now();
        sim.run();
        let events = sim.events_processed();
        assert_eq!(done.get(), cfg.spawn_rounds * cfg.spawn_batch);
        StormResult {
            wall: t0.elapsed(),
            events,
        }
    }
}

/// Spawn storm on the baseline executor (same wave structure; completion
/// is tracked by counter since the baseline has no join handles).
pub fn spawn_storm_baseline(cfg: &StormConfig) -> StormResult {
    use std::cell::Cell;
    use std::rc::Rc;
    {
        let mut sim = BaselineSim::new();
        // Waves via a zero-cost virtual-time ladder: each wave's tasks
        // complete at the same instant; the next wave is spawned by a
        // coordinator sleeping 1 ns between waves.
        let h = sim.handle();
        let done: Rc<Cell<usize>> = Rc::default();
        let done2 = Rc::clone(&done);
        let (rounds, batch) = (cfg.spawn_rounds, cfg.spawn_batch);
        sim.spawn(async move {
            for _ in 0..rounds {
                for _ in 0..batch {
                    let d = Rc::clone(&done2);
                    h.spawn(async move {
                        d.set(d.get() + 1);
                    });
                }
                h.sleep(SimDuration::from_nanos(1)).await;
            }
        });
        let t0 = Instant::now();
        sim.run();
        let events = sim.events_processed();
        assert_eq!(done.get(), cfg.spawn_rounds * cfg.spawn_batch);
        StormResult {
            wall: t0.elapsed(),
            events,
        }
    }
}

/// Sleep storm: many tasks ticking through staggered timers — stresses
/// the timer heap and the wake → poll round trip.
pub fn sleep_storm_current(cfg: &StormConfig) -> StormResult {
    {
        let mut sim = Sim::new();
        for i in 0..cfg.sleep_tasks {
            let h = sim.handle();
            let iters = cfg.sleep_iters;
            sim.spawn(async move {
                for _ in 0..iters {
                    h.sleep(SimDuration::from_micros((i % 7 + 1) as u64)).await;
                }
            });
        }
        let t0 = Instant::now();
        sim.run();
        StormResult {
            wall: t0.elapsed(),
            events: sim.events_processed(),
        }
    }
}

/// Sleep storm on the baseline executor.
pub fn sleep_storm_baseline(cfg: &StormConfig) -> StormResult {
    {
        let mut sim = BaselineSim::new();
        for i in 0..cfg.sleep_tasks {
            let h = sim.handle();
            let iters = cfg.sleep_iters;
            sim.spawn(async move {
                for _ in 0..iters {
                    h.sleep(SimDuration::from_micros((i % 7 + 1) as u64)).await;
                }
            });
        }
        let t0 = Instant::now();
        sim.run();
        StormResult {
            wall: t0.elapsed(),
            events: sim.events_processed(),
        }
    }
}

/// Channel storm: producer/consumer pairs where the producer paces itself
/// with a timer — stresses wake delivery (and, on the current executor,
/// the duplicate-wake dedup).
pub fn channel_storm_current(cfg: &StormConfig) -> StormResult {
    {
        let mut sim = Sim::new();
        for p in 0..cfg.chan_pairs {
            let (tx, rx) = channel::<u32>();
            let h = sim.handle();
            let msgs = cfg.chan_msgs;
            sim.spawn(async move {
                for m in 0..msgs {
                    if m % 16 == 0 {
                        h.sleep(SimDuration::from_micros((p % 5 + 1) as u64)).await;
                    }
                    tx.send(m as u32);
                }
            });
            sim.spawn(async move {
                let mut sum = 0u64;
                while let Some(v) = rx.recv().await {
                    sum += v as u64;
                }
                std::hint::black_box(sum);
            });
        }
        let t0 = Instant::now();
        sim.run();
        StormResult {
            wall: t0.elapsed(),
            events: sim.events_processed(),
        }
    }
}

/// Channel storm on the baseline executor (the sync primitives are
/// executor-agnostic).
pub fn channel_storm_baseline(cfg: &StormConfig) -> StormResult {
    {
        let mut sim = BaselineSim::new();
        for p in 0..cfg.chan_pairs {
            let (tx, rx) = channel::<u32>();
            let h = sim.handle();
            let msgs = cfg.chan_msgs;
            sim.spawn(async move {
                for m in 0..msgs {
                    if m % 16 == 0 {
                        h.sleep(SimDuration::from_micros((p % 5 + 1) as u64)).await;
                    }
                    tx.send(m as u32);
                }
            });
            sim.spawn(async move {
                let mut sum = 0u64;
                while let Some(v) = rx.recv().await {
                    sum += v as u64;
                }
                std::hint::black_box(sum);
            });
        }
        let t0 = Instant::now();
        sim.run();
        StormResult {
            wall: t0.elapsed(),
            events: sim.events_processed(),
        }
    }
}

/// Ping storm: task pairs ping-ponging over a pair of channels — no
/// timers at all, so the wake -> poll round trip dominates and the pair
/// isolates raw scheduler overhead better than the other storms.
pub fn ping_storm_current(cfg: &StormConfig) -> StormResult {
    let mut sim = Sim::new();
    for _ in 0..cfg.ping_pairs {
        let (ping_tx, ping_rx) = channel::<u32>();
        let (pong_tx, pong_rx) = channel::<u32>();
        let rounds = cfg.ping_rounds;
        sim.spawn(async move {
            for i in 0..rounds {
                ping_tx.send(i as u32);
                let _ = pong_rx.recv().await;
            }
        });
        sim.spawn(async move {
            for _ in 0..rounds {
                if let Some(v) = ping_rx.recv().await {
                    pong_tx.send(v);
                }
            }
        });
    }
    let t0 = Instant::now();
    sim.run();
    StormResult {
        wall: t0.elapsed(),
        events: sim.events_processed(),
    }
}

/// Ping storm on the baseline executor.
pub fn ping_storm_baseline(cfg: &StormConfig) -> StormResult {
    let mut sim = BaselineSim::new();
    for _ in 0..cfg.ping_pairs {
        let (ping_tx, ping_rx) = channel::<u32>();
        let (pong_tx, pong_rx) = channel::<u32>();
        let rounds = cfg.ping_rounds;
        sim.spawn(async move {
            for i in 0..rounds {
                ping_tx.send(i as u32);
                let _ = pong_rx.recv().await;
            }
        });
        sim.spawn(async move {
            for _ in 0..rounds {
                if let Some(v) = ping_rx.recv().await {
                    pong_tx.send(v);
                }
            }
        });
    }
    let t0 = Instant::now();
    sim.run();
    StormResult {
        wall: t0.elapsed(),
        events: sim.events_processed(),
    }
}

/// One timed application run.
#[derive(Clone, Debug)]
pub struct AppTiming {
    pub name: &'static str,
    pub wall: Duration,
    pub sim_events: u64,
    pub events_per_sec: f64,
    pub virtual_exec_s: f64,
}

/// One timed repro experiment.
#[derive(Clone, Debug)]
pub struct ReproTiming {
    pub id: &'static str,
    pub wall: Duration,
    pub shape_holds: bool,
}

/// Data-plane accounting of one stored-mode application run: what the
/// `iosim_buf::tally` counters saw between reset and snapshot.
#[derive(Clone, Debug)]
pub struct DataPlaneTiming {
    pub name: &'static str,
    pub wall: Duration,
    /// Host bytes allocated into counted buffers during the run.
    pub bytes_allocated: u64,
    /// Host bytes memcpy'd between counted buffers during the run.
    pub bytes_copied: u64,
    /// Counted buffers allocated.
    pub buffers_allocated: u64,
    /// `bytes_copied` of the identical configuration on the pre-rewrite
    /// data plane (flat `Vec<u8>` payloads; recorded at commit 4962e8e).
    pub baseline_bytes_copied: u64,
}

impl DataPlaneTiming {
    /// Copy-traffic reduction vs the pre-rewrite data plane
    /// (baseline/current; a run that no longer copies at all reports
    /// the baseline count itself, i.e. "N bytes down to zero").
    pub fn copy_reduction(&self) -> f64 {
        self.baseline_bytes_copied as f64 / self.bytes_copied.max(1) as f64
    }
}

/// One timed workload-subsystem run: the committed sample trace
/// replayed in one mode, or an open-loop generator point.
#[derive(Clone, Debug)]
pub struct WorkloadTiming {
    pub name: &'static str,
    pub wall: Duration,
    /// Data operations completed in the simulation.
    pub ops: u64,
    /// Latency samples recorded. A zero here means the replay engine
    /// moved data without measuring it — the gate must catch that.
    pub lat_count: u64,
    /// p99 operation latency in virtual milliseconds.
    pub p99_ms: f64,
    /// Virtual throughput: replay ops/s, or open-loop achieved rate.
    pub achieved_ops_s: f64,
}

/// One workload's thread ladder in the `shard_scaling` section.
#[derive(Clone, Debug)]
pub struct ShardScalingSeries {
    pub name: &'static str,
    /// One sample per entry of [`experiments::extensions::SHARD_THREADS`],
    /// in ladder order.
    pub samples: Vec<experiments::extensions::ShardRunSample>,
}

/// The full wall-clock report.
#[derive(Clone, Debug)]
pub struct WallclockReport {
    pub smoke: bool,
    pub scale: f64,
    pub spawn: StormPair,
    pub sleep: StormPair,
    pub chan: StormPair,
    pub ping: StormPair,
    pub apps: Vec<AppTiming>,
    pub data_plane: Vec<DataPlaneTiming>,
    pub workload: Vec<WorkloadTiming>,
    /// Sharded-engine thread ladder (extension 11's measurement, recorded
    /// per host). Throughput ratios are honest for `host_cores`.
    pub shard_scaling: Vec<ShardScalingSeries>,
    /// CPU cores of the host that produced the timings.
    pub host_cores: usize,
    pub repro: Vec<ReproTiming>,
    pub total_wall: Duration,
}

/// The five timed applications, in report order.
const APP_NAMES: [&str; 5] = ["scf11", "scf30", "fft", "btio", "ast"];

/// The workload-subsystem entries, in report order.
const WORKLOAD_NAMES: [&str; 4] = [
    "replay_direct",
    "replay_list",
    "replay_twophase",
    "openloop_poisson",
];

fn run_app_by_name(name: &str, scale: f64) -> iosim_apps::RunResult {
    use iosim_apps::{ast, btio, fft, scf11, scf30};
    match name {
        "scf11" => {
            scf11::run(&scf11::Scf11Config {
                scale,
                ..scf11::Scf11Config::new(
                    scf11::ScfInput::Small,
                    scf11::Scf11Version::PassionPrefetch,
                )
            })
            .run
        }
        "scf30" => {
            scf30::run(&scf30::Scf30Config {
                scale,
                ..scf30::Scf30Config::new(scf11::ScfInput::Small, 8, 75)
            })
            .run
        }
        "fft" => fft::run(&fft::FftConfig::new(128, 4, true)),
        "btio" => btio::run(&btio::BtioConfig {
            dumps: 2,
            ..btio::BtioConfig::new(btio::BtClass::Custom(16), 9, false)
        }),
        "ast" => ast::run(&ast::AstConfig {
            grid: 64,
            arrays: 2,
            dumps: 2,
            ..ast::AstConfig::new(4, 16, true)
        }),
        other => panic!("unknown app {other}"),
    }
}

/// Time the five applications at fixed small configurations, reporting
/// scheduler throughput (`Sim::events_processed` over host time) through
/// `RunResult::events_per_sec`. The runs are independent simulations, so
/// they spread over host threads; each entry's wall time is its own.
pub fn time_apps(scale: f64) -> Vec<AppTiming> {
    map_parallel(APP_NAMES.to_vec(), default_threads(), |&name| {
        let t0 = Instant::now();
        let r = run_app_by_name(name, scale);
        AppTiming {
            name,
            wall: t0.elapsed(),
            sim_events: r.sim_events,
            events_per_sec: r.events_per_sec(),
            virtual_exec_s: r.exec_time.as_secs_f64(),
        }
    })
}

/// Pre-rewrite `bytes_copied` of the data-plane configurations below
/// (flat `Vec<u8>` payloads and per-file byte vectors, commit 4962e8e).
/// `tests/dataplane_equivalence.rs` pins the same constants.
const DATA_PLANE_BASELINE_COPIED: [(&str, u64); 5] = [
    ("scf11", 0),
    ("scf30", 448),
    ("fft", 4194304),
    ("btio", 655360),
    ("ast", 1053952),
];

/// Run the five applications in stored mode (real bytes through the
/// whole stack) and report the `iosim_buf::tally` counters per run: how
/// many host bytes the data plane allocated and memcpy'd. The counters
/// are thread-local, so each parallel worker resets and snapshots its
/// own tally around each run.
pub fn time_data_plane() -> Vec<DataPlaneTiming> {
    use iosim_apps::{ast, btio, fft, scf11, scf30};
    map_parallel(
        DATA_PLANE_BASELINE_COPIED.to_vec(),
        default_threads(),
        |&(name, baseline_bytes_copied)| {
            tally::reset();
            let t0 = Instant::now();
            match name {
                "scf11" => {
                    scf11::run(&scf11::Scf11Config {
                        scale: 0.02,
                        ..scf11::Scf11Config::new(
                            scf11::ScfInput::Small,
                            scf11::Scf11Version::PassionPrefetch,
                        )
                    });
                }
                "scf30" => {
                    scf30::run(&scf30::Scf30Config {
                        scale: 0.02,
                        ..scf30::Scf30Config::new(scf11::ScfInput::Small, 8, 75)
                    });
                }
                "fft" => {
                    fft::run_capture(&fft::FftConfig {
                        stored: true,
                        ..fft::FftConfig::new(128, 4, true)
                    });
                }
                "btio" => {
                    btio::run_capture(&btio::BtioConfig {
                        dumps: 2,
                        stored: true,
                        ..btio::BtioConfig::new(btio::BtClass::Custom(16), 9, false)
                    });
                }
                "ast" => {
                    ast::run_capture(&ast::AstConfig {
                        grid: 64,
                        arrays: 2,
                        dumps: 2,
                        stored: true,
                        ..ast::AstConfig::new(4, 16, true)
                    });
                }
                other => panic!("unknown app {other}"),
            }
            let wall = t0.elapsed();
            let t = tally::snapshot();
            DataPlaneTiming {
                name,
                wall,
                bytes_allocated: t.bytes_allocated,
                bytes_copied: t.bytes_copied,
                buffers_allocated: t.buffers_allocated,
                baseline_bytes_copied,
            }
        },
    )
}

/// Time every experiment of the repro suite at `scale`. The experiments
/// are independent single-threaded simulations, so they spread over host
/// threads; each entry's wall time is still its own (measured inside the
/// worker), and results come back in suite order.
pub fn time_repro(scale: f64) -> Vec<ReproTiming> {
    map_parallel(experiments::IDS.to_vec(), default_threads(), |&id| {
        let t0 = Instant::now();
        let report = experiments::by_id(id, scale).expect("known id");
        ReproTiming {
            id,
            wall: t0.elapsed(),
            shape_holds: report.shape_holds(),
        }
    })
}

/// Time the workload subsystem: the committed sample op-stream trace
/// replayed in all three modes, plus one open-loop generator point.
/// Every entry must record a non-empty latency histogram — this is the
/// machine-readable half of the `verify.sh` replay smoke gate.
pub fn time_workload() -> Vec<WorkloadTiming> {
    use iosim_machine::presets;
    use iosim_workload::{parse_any, replay, run_open_loop, ReplaySpec, SynthSpec};

    const SAMPLE: &str = include_str!("../../../tests/data/sample_opstream.trace");
    let stream = parse_any(SAMPLE, 42).expect("committed sample trace parses");
    let machine = || presets::paragon_small().with_compute_nodes(stream.ranks().max(1));
    let specs: [(&str, ReplaySpec); 3] = [
        ("replay_direct", ReplaySpec::direct(machine())),
        ("replay_list", ReplaySpec::list_io(machine(), 8)),
        ("replay_twophase", ReplaySpec::two_phase(machine(), 8)),
    ];
    let mut out: Vec<WorkloadTiming> = specs
        .iter()
        .map(|(name, spec)| {
            let t0 = Instant::now();
            let rep = replay(&stream, spec);
            WorkloadTiming {
                name,
                wall: t0.elapsed(),
                ops: rep.data_ops,
                lat_count: rep.latency.count(),
                p99_ms: rep.latency.p99() as f64 / 1e6,
                achieved_ops_s: rep.ops_per_sec(),
            }
        })
        .collect();
    let t0 = Instant::now();
    let mut synth = SynthSpec::small(4.0, 42);
    synth.clients = 16;
    synth.duration = SimDuration::from_secs_f64(0.5);
    let ol = run_open_loop(&synth, &ReplaySpec::direct(presets::paragon_small()));
    out.push(WorkloadTiming {
        name: "openloop_poisson",
        wall: t0.elapsed(),
        ops: ol.completed_ops,
        lat_count: ol.latency.count(),
        p99_ms: ol.latency.p99() as f64 / 1e6,
        achieved_ops_s: ol.achieved_rate,
    });
    out
}

/// Time extension 11's shard-scaling ladder: every workload at every
/// host-thread count, in ladder order. Runs serially (not through
/// `map_parallel`) so each sample's wall time is unpolluted by sibling
/// simulations competing for the same cores.
pub fn time_shard_scaling() -> Vec<ShardScalingSeries> {
    use experiments::extensions::{run_shard_scaling_config, SHARD_SCALING_NAMES, SHARD_THREADS};
    SHARD_SCALING_NAMES
        .iter()
        .map(|&name| ShardScalingSeries {
            name,
            samples: SHARD_THREADS
                .iter()
                .map(|&t| run_shard_scaling_config(name, t))
                .collect(),
        })
        .collect()
}

/// Run the whole wall-clock suite.
pub fn run_suite(smoke: bool, scale: f64) -> WallclockReport {
    let cfg = if smoke {
        StormConfig::smoke()
    } else {
        StormConfig::full()
    };
    let t0 = Instant::now();
    eprintln!("[wallclock] microbench: spawn storm");
    let spawn = measure_pair(
        cfg.reps,
        || spawn_storm_current(&cfg),
        || spawn_storm_baseline(&cfg),
    );
    eprintln!("[wallclock] microbench: sleep storm");
    let sleep = measure_pair(
        cfg.reps,
        || sleep_storm_current(&cfg),
        || sleep_storm_baseline(&cfg),
    );
    eprintln!("[wallclock] microbench: channel storm");
    let chan = measure_pair(
        cfg.reps,
        || channel_storm_current(&cfg),
        || channel_storm_baseline(&cfg),
    );
    eprintln!("[wallclock] microbench: ping storm");
    let ping = measure_pair(
        cfg.reps,
        || ping_storm_current(&cfg),
        || ping_storm_baseline(&cfg),
    );
    eprintln!("[wallclock] apps");
    let apps = time_apps(if smoke { 0.02 } else { 0.1 });
    eprintln!("[wallclock] data plane (stored-mode byte accounting)");
    let data_plane = time_data_plane();
    eprintln!("[wallclock] workload replay + open loop");
    let workload = time_workload();
    eprintln!("[wallclock] shard scaling (threads ladder)");
    let shard_scaling = time_shard_scaling();
    eprintln!("[wallclock] repro suite at scale {scale}");
    let repro = time_repro(scale);
    WallclockReport {
        smoke,
        scale,
        spawn,
        sleep,
        chan,
        ping,
        apps,
        data_plane,
        workload,
        shard_scaling,
        host_cores: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        repro,
        total_wall: t0.elapsed(),
    }
}

fn write_storm(out: &mut String, name: &str, pair: &StormPair) {
    let _ = write!(
        out,
        "    \"{name}\": {{\n      \"executor\": {{\"wall_s\": {:.6}, \"events\": {}, \"events_per_sec\": {:.1}}},\n      \"baseline_mutex_hashmap\": {{\"wall_s\": {:.6}, \"events\": {}, \"events_per_sec\": {:.1}}},\n      \"speedup\": {:.3}\n    }}",
        pair.current.wall.as_secs_f64(),
        pair.current.events,
        pair.current.events_per_sec(),
        pair.baseline.wall.as_secs_f64(),
        pair.baseline.events,
        pair.baseline.events_per_sec(),
        pair.speedup(),
    );
}

/// Render the report as the `BENCH_wallclock.json` document.
pub fn emit_json(r: &WallclockReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"iosim-bench-wallclock-v4\",");
    let _ = writeln!(out, "  \"smoke\": {},", r.smoke);
    let _ = writeln!(out, "  \"scale\": {},", r.scale);
    out.push_str("  \"microbench\": {\n");
    write_storm(&mut out, "spawn_storm", &r.spawn);
    out.push_str(",\n");
    write_storm(&mut out, "sleep_storm", &r.sleep);
    out.push_str(",\n");
    write_storm(&mut out, "channel_storm", &r.chan);
    out.push_str(",\n");
    write_storm(&mut out, "ping_storm", &r.ping);
    out.push_str("\n  },\n");
    out.push_str("  \"apps\": {\n");
    for (k, a) in r.apps.iter().enumerate() {
        let _ = writeln!(
            out,
            "    \"{}\": {{\"wall_s\": {:.6}, \"sim_events\": {}, \"events_per_sec\": {:.1}, \"virtual_exec_s\": {:.6}}}{}",
            a.name,
            a.wall.as_secs_f64(),
            a.sim_events,
            a.events_per_sec,
            a.virtual_exec_s,
            if k + 1 < r.apps.len() { "," } else { "" },
        );
    }
    out.push_str("  },\n");
    out.push_str("  \"data_plane\": {\n");
    for (k, d) in r.data_plane.iter().enumerate() {
        let _ = writeln!(
            out,
            "    \"{}\": {{\"wall_s\": {:.6}, \"bytes_allocated\": {}, \"bytes_copied\": {}, \"buffers_allocated\": {}, \"baseline_bytes_copied\": {}, \"copy_reduction\": {:.3}}}{}",
            d.name,
            d.wall.as_secs_f64(),
            d.bytes_allocated,
            d.bytes_copied,
            d.buffers_allocated,
            d.baseline_bytes_copied,
            d.copy_reduction(),
            if k + 1 < r.data_plane.len() { "," } else { "" },
        );
    }
    out.push_str("  },\n");
    out.push_str("  \"workload\": {\n");
    for (k, w) in r.workload.iter().enumerate() {
        let _ = writeln!(
            out,
            "    \"{}\": {{\"wall_s\": {:.6}, \"ops\": {}, \"lat_count\": {}, \"p99_ms\": {:.3}, \"achieved_ops_s\": {:.3}}}{}",
            w.name,
            w.wall.as_secs_f64(),
            w.ops,
            w.lat_count,
            w.p99_ms,
            w.achieved_ops_s,
            if k + 1 < r.workload.len() { "," } else { "" },
        );
    }
    out.push_str("  },\n");
    out.push_str("  \"shard_scaling\": {\n");
    let _ = writeln!(out, "    \"host_cores\": {},", r.host_cores);
    for (k, s) in r.shard_scaling.iter().enumerate() {
        let _ = writeln!(out, "    \"{}\": [", s.name);
        for (j, p) in s.samples.iter().enumerate() {
            // Fingerprints are 64-bit and exceed f64 integer precision,
            // so they travel as hex strings.
            let _ = writeln!(
                out,
                "      {{\"threads\": {}, \"wall_s\": {:.6}, \"sim_events\": {}, \"events_per_sec\": {:.1}, \"virtual_exec_s\": {:.6}, \"fingerprint\": \"{:#018x}\"}}{}",
                p.threads,
                p.wall.as_secs_f64(),
                p.sim_events,
                p.events_per_sec,
                p.virtual_exec_s,
                p.fingerprint,
                if j + 1 < s.samples.len() { "," } else { "" },
            );
        }
        let _ = writeln!(
            out,
            "    ]{}",
            if k + 1 < r.shard_scaling.len() {
                ","
            } else {
                ""
            },
        );
    }
    out.push_str("  },\n");
    out.push_str("  \"repro\": {\n");
    for (k, t) in r.repro.iter().enumerate() {
        let _ = writeln!(
            out,
            "    \"{}\": {{\"wall_s\": {:.6}, \"shape_holds\": {}}}{}",
            t.id,
            t.wall.as_secs_f64(),
            t.shape_holds,
            if k + 1 < r.repro.len() { "," } else { "" },
        );
    }
    out.push_str("  },\n");
    let _ = writeln!(out, "  \"total_wall_s\": {:.6}", r.total_wall.as_secs_f64());
    out.push_str("}\n");
    out
}

// ---------------------------------------------------------------------
// Minimal JSON reader for validation (the workspace builds offline with
// no external dependencies, so no serde).

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Parse a JSON document (objects, arrays, strings with simple escapes,
/// numbers, booleans, null). Sufficient for the documents this crate
/// emits; not a general-purpose parser.
pub fn parse_json(s: &str) -> Result<Json, String> {
    let b = s.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && (b[*pos] as char).is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at offset {}", c as char, pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_str(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at offset {pos}"))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at offset {start}"))
}

fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    other => return Err(format!("unsupported escape {other:?}")),
                }
                *pos += 1;
            }
            c => {
                out.push(c as char);
                *pos += 1;
            }
        }
    }
    Err("unterminated string".into())
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_str(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        fields.push((key, val));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at offset {pos}")),
        }
    }
}

/// Check that a field is a sane wall time: a finite, non-negative
/// number (the emitter writes `NaN` verbatim on arithmetic bugs, which
/// the parser rejects — but a hand-edited or corrupted file can still
/// smuggle in negatives or infinities).
fn check_wall(v: Option<&Json>, what: &str) -> Result<f64, String> {
    match v {
        Some(Json::Num(n)) if n.is_finite() && *n >= 0.0 => Ok(*n),
        Some(Json::Num(n)) => Err(format!("{what}: bad wall time {n}")),
        other => Err(format!("{what}: {other:?}")),
    }
}

fn check_count(v: Option<&Json>, what: &str) -> Result<f64, String> {
    match v {
        Some(Json::Num(n)) if n.is_finite() && *n >= 0.0 && n.fract() == 0.0 => Ok(*n),
        other => Err(format!(
            "{what}: expected a non-negative integer, got {other:?}"
        )),
    }
}

/// Validate a `BENCH_wallclock.json` document: schema marker, the four
/// microbench storms with both executor arms, all five apps, the
/// data-plane byte accounting (counters present and non-trivial), the
/// workload-subsystem section (sample-trace replays and an open-loop
/// point, each with a non-empty latency histogram), the shard-scaling
/// thread ladder (full ladder per workload, and a deterministic
/// fingerprint: every thread count in a series must report the same
/// one), and every repro suite key. All wall times must be finite and
/// non-negative. Returns a description of the first problem found.
pub fn validate(doc: &str) -> Result<(), String> {
    let v = parse_json(doc)?;
    match v.get("schema") {
        Some(Json::Str(s)) if s == "iosim-bench-wallclock-v4" => {}
        other => return Err(format!("bad schema field: {other:?}")),
    }
    let micro = v.get("microbench").ok_or("missing microbench")?;
    for storm in ["spawn_storm", "sleep_storm", "channel_storm", "ping_storm"] {
        let s = micro
            .get(storm)
            .ok_or_else(|| format!("missing microbench.{storm}"))?;
        for arm in ["executor", "baseline_mutex_hashmap"] {
            let a = s
                .get(arm)
                .ok_or_else(|| format!("missing microbench.{storm}.{arm}"))?;
            check_wall(a.get("wall_s"), &format!("microbench.{storm}.{arm}.wall_s"))?;
            for field in ["events", "events_per_sec"] {
                match a.get(field) {
                    Some(Json::Num(_)) => {}
                    other => {
                        return Err(format!("microbench.{storm}.{arm}.{field}: {other:?}"));
                    }
                }
            }
        }
        if !matches!(s.get("speedup"), Some(Json::Num(_))) {
            return Err(format!("missing microbench.{storm}.speedup"));
        }
    }
    let apps = v.get("apps").ok_or("missing apps")?;
    for app in APP_NAMES {
        let a = apps.get(app).ok_or_else(|| format!("missing apps.{app}"))?;
        check_wall(a.get("wall_s"), &format!("apps.{app}.wall_s"))?;
    }
    let dp = v.get("data_plane").ok_or("missing data_plane")?;
    let mut total_alloc = 0.0f64;
    for app in APP_NAMES {
        let a = dp
            .get(app)
            .ok_or_else(|| format!("missing data_plane.{app}"))?;
        check_wall(a.get("wall_s"), &format!("data_plane.{app}.wall_s"))?;
        total_alloc += check_count(
            a.get("bytes_allocated"),
            &format!("data_plane.{app}.bytes_allocated"),
        )?;
        for field in ["bytes_copied", "buffers_allocated", "baseline_bytes_copied"] {
            check_count(a.get(field), &format!("data_plane.{app}.{field}"))?;
        }
        if !matches!(a.get("copy_reduction"), Some(Json::Num(n)) if n.is_finite() && *n >= 0.0) {
            return Err(format!("data_plane.{app}.copy_reduction: bad or missing"));
        }
    }
    if total_alloc == 0.0 {
        return Err("data_plane: all byte counters are zero (tally not wired?)".into());
    }
    let wl = v.get("workload").ok_or("missing workload")?;
    for name in WORKLOAD_NAMES {
        let w = wl
            .get(name)
            .ok_or_else(|| format!("missing workload.{name}"))?;
        check_wall(w.get("wall_s"), &format!("workload.{name}.wall_s"))?;
        let ops = check_count(w.get("ops"), &format!("workload.{name}.ops"))?;
        if ops == 0.0 {
            return Err(format!("workload.{name}: zero operations replayed"));
        }
        let lat = check_count(w.get("lat_count"), &format!("workload.{name}.lat_count"))?;
        if lat == 0.0 {
            return Err(format!("workload.{name}: empty latency histogram"));
        }
        for field in ["p99_ms", "achieved_ops_s"] {
            if !matches!(w.get(field), Some(Json::Num(n)) if n.is_finite() && *n >= 0.0) {
                return Err(format!("workload.{name}.{field}: bad or missing"));
            }
        }
    }
    let ss = v.get("shard_scaling").ok_or("missing shard_scaling")?;
    match ss.get("host_cores") {
        Some(Json::Num(n)) if n.is_finite() && *n >= 1.0 && n.fract() == 0.0 => {}
        other => return Err(format!("shard_scaling.host_cores: {other:?}")),
    }
    for name in experiments::extensions::SHARD_SCALING_NAMES {
        let series = match ss.get(name) {
            Some(Json::Arr(items)) => items,
            other => {
                return Err(format!(
                    "shard_scaling.{name}: expected array, got {other:?}"
                ))
            }
        };
        if series.len() != experiments::extensions::SHARD_THREADS.len() {
            return Err(format!(
                "shard_scaling.{name}: expected {} ladder points, got {}",
                experiments::extensions::SHARD_THREADS.len(),
                series.len()
            ));
        }
        let mut fingerprint: Option<&str> = None;
        for (p, want_threads) in series.iter().zip(experiments::extensions::SHARD_THREADS) {
            let what = format!("shard_scaling.{name}[threads={want_threads}]");
            match p.get("threads") {
                Some(Json::Num(n)) if *n == want_threads as f64 => {}
                other => return Err(format!("{what}.threads: {other:?}")),
            }
            check_wall(p.get("wall_s"), &format!("{what}.wall_s"))?;
            if check_count(p.get("sim_events"), &format!("{what}.sim_events"))? == 0.0 {
                return Err(format!("{what}: zero simulation events"));
            }
            for field in ["events_per_sec", "virtual_exec_s"] {
                if !matches!(p.get(field), Some(Json::Num(n)) if n.is_finite() && *n >= 0.0) {
                    return Err(format!("{what}.{field}: bad or missing"));
                }
            }
            // Determinism gate: the whole ladder must agree on one
            // fingerprint — a thread-count-dependent schedule is a bug.
            match (p.get("fingerprint"), fingerprint) {
                (Some(Json::Str(f)), None) => fingerprint = Some(f),
                (Some(Json::Str(f)), Some(first)) if f == first => {}
                (Some(Json::Str(f)), Some(first)) => {
                    return Err(format!(
                        "shard_scaling.{name}: fingerprint diverges across threads ({first} vs {f})"
                    ));
                }
                (other, _) => return Err(format!("{what}.fingerprint: {other:?}")),
            }
        }
    }
    let repro = v.get("repro").ok_or("missing repro")?;
    for id in experiments::IDS {
        let e = repro.get(id).ok_or_else(|| format!("missing repro.{id}"))?;
        check_wall(e.get("wall_s"), &format!("repro.{id}.wall_s"))?;
    }
    check_wall(v.get("total_wall_s"), "total_wall_s")?;
    Ok(())
}

/// Human-readable summary printed after a run.
pub fn render_summary(r: &WallclockReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "wall-clock suite ({} mode, repro scale {}):",
        if r.smoke { "smoke" } else { "full" },
        r.scale
    );
    for (name, p) in [
        ("spawn storm", &r.spawn),
        ("sleep storm", &r.sleep),
        ("channel storm", &r.chan),
        ("ping storm", &r.ping),
    ] {
        let _ = writeln!(
            out,
            "  {name:>14}: {:>10.0} ev/s vs baseline {:>10.0} ev/s  -> {:.2}x",
            p.current.events_per_sec(),
            p.baseline.events_per_sec(),
            p.speedup(),
        );
    }
    for a in &r.apps {
        let _ = writeln!(
            out,
            "  app {:>10}: {:>8.1} ms host, {:>7} polls, {:>10.0} ev/s",
            a.name,
            a.wall.as_secs_f64() * 1e3,
            a.sim_events,
            a.events_per_sec,
        );
    }
    for d in &r.data_plane {
        let _ = writeln!(
            out,
            "  data plane {:>7}: {:>9} B alloc, {:>9} B copied (was {:>9} B -> {:.1}x less)",
            d.name,
            d.bytes_allocated,
            d.bytes_copied,
            d.baseline_bytes_copied,
            d.copy_reduction(),
        );
    }
    for w in &r.workload {
        let _ = writeln!(
            out,
            "  workload {:>16}: {:>7.1} ms host, {:>5} ops, p99 {:>8.1} ms, {:>7.1} ops/s",
            w.name,
            w.wall.as_secs_f64() * 1e3,
            w.ops,
            w.p99_ms,
            w.achieved_ops_s,
        );
    }
    let _ = writeln!(out, "  shard scaling ({}-core host):", r.host_cores);
    for s in &r.shard_scaling {
        let cells: Vec<String> = s
            .samples
            .iter()
            .map(|p| format!("{}t {:.0} ev/s", p.threads, p.events_per_sec))
            .collect();
        let _ = writeln!(out, "    {:>18}: {}", s.name, cells.join(", "));
    }
    let repro_total: f64 = r.repro.iter().map(|t| t.wall.as_secs_f64()).sum();
    let holds = r.repro.iter().filter(|t| t.shape_holds).count();
    let _ = writeln!(
        out,
        "  repro suite: {:.1} s host over {} experiments ({} shapes hold)",
        repro_total,
        r.repro.len(),
        holds,
    );
    let _ = writeln!(out, "  total: {:.1} s", r.total_wall.as_secs_f64());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> StormConfig {
        StormConfig {
            spawn_rounds: 2,
            spawn_batch: 8,
            sleep_tasks: 8,
            sleep_iters: 3,
            chan_pairs: 4,
            chan_msgs: 20,
            ping_pairs: 2,
            ping_rounds: 8,
            reps: 1,
        }
    }

    #[test]
    fn storms_run_on_both_executors() {
        let cfg = tiny();
        assert!(spawn_storm_current(&cfg).events >= 16);
        assert!(spawn_storm_baseline(&cfg).events >= 16);
        assert!(sleep_storm_current(&cfg).events >= 24);
        assert!(sleep_storm_baseline(&cfg).events >= 24);
        assert!(channel_storm_current(&cfg).events > 0);
        assert!(channel_storm_baseline(&cfg).events > 0);
        assert!(ping_storm_current(&cfg).events > 0);
        assert!(ping_storm_baseline(&cfg).events > 0);
    }

    #[test]
    fn storm_virtual_outcomes_match_across_executors() {
        // Identical virtual-time workloads on both executors: same sleep
        // ladder must end at the same virtual instant (the baseline is a
        // faithful replica, not a different model).
        let cfg = tiny();
        let mut cur = Sim::new();
        for i in 0..cfg.sleep_tasks {
            let h = cur.handle();
            let iters = cfg.sleep_iters;
            cur.spawn(async move {
                for _ in 0..iters {
                    h.sleep(SimDuration::from_micros((i % 7 + 1) as u64)).await;
                }
            });
        }
        let end_cur = cur.run();
        let mut base = BaselineSim::new();
        for i in 0..cfg.sleep_tasks {
            let h = base.handle();
            let iters = cfg.sleep_iters;
            base.spawn(async move {
                for _ in 0..iters {
                    h.sleep(SimDuration::from_micros((i % 7 + 1) as u64)).await;
                }
            });
        }
        assert_eq!(base.run(), end_cur);
    }

    #[test]
    fn json_roundtrip_and_validation() {
        let report = run_suite(true, 0.02);
        let doc = emit_json(&report);
        validate(&doc).expect("emitted document validates");
        // Spot-check the parser end-to-end.
        let v = parse_json(&doc).unwrap();
        assert_eq!(v.get("smoke"), Some(&Json::Bool(true)));
        assert!(matches!(
            v.get("microbench").and_then(|m| m.get("spawn_storm")),
            Some(Json::Obj(_))
        ));
    }

    #[test]
    fn validate_rejects_missing_keys() {
        assert!(validate("{}").is_err());
        // Old schema generations are rejected outright.
        assert!(validate("{\"schema\": \"iosim-bench-wallclock-v1\"}").is_err());
        assert!(validate("{\"schema\": \"iosim-bench-wallclock-v2\"}").is_err());
        assert!(validate("{\"schema\": \"iosim-bench-wallclock-v3\"}").is_err());
        // Current schema but no sections.
        assert!(validate("{\"schema\": \"iosim-bench-wallclock-v4\"}").is_err());
        assert!(parse_json("{bad").is_err());
    }

    #[test]
    fn validate_rejects_empty_latency_histogram() {
        let report = run_suite(true, 0.02);
        let doc = emit_json(&report);
        let direct = report
            .workload
            .iter()
            .find(|w| w.name == "replay_direct")
            .expect("replay_direct present");
        assert!(direct.lat_count > 0);
        let broken = doc.replacen(
            &format!("\"lat_count\": {}", direct.lat_count),
            "\"lat_count\": 0",
            1,
        );
        assert!(validate(&broken)
            .unwrap_err()
            .contains("empty latency histogram"));
    }

    #[test]
    fn workload_section_replays_the_committed_sample() {
        let wl = time_workload();
        assert_eq!(wl.len(), WORKLOAD_NAMES.len());
        for (w, name) in wl.iter().zip(WORKLOAD_NAMES) {
            assert_eq!(w.name, name);
            assert!(w.lat_count > 0, "{name}: empty latency histogram");
            assert!(w.achieved_ops_s > 0.0, "{name}: no throughput");
        }
        // The three replay modes move the same committed trace: same op
        // count each, and the sample has 14 data ops.
        assert!(wl[..3].iter().all(|w| w.ops == 14));
    }

    #[test]
    fn validate_rejects_bad_wall_times_and_empty_data_plane() {
        let report = run_suite(true, 0.02);
        let doc = emit_json(&report);
        // Negative wall time anywhere must fail.
        let negated = doc.replacen("\"total_wall_s\": ", "\"total_wall_s\": -", 1);
        assert!(validate(&negated).unwrap_err().contains("total_wall_s"));
        // A data plane whose counters are all zero means the tally isn't
        // wired through the stack — the smoke gate must catch that.
        let mut zeroed = doc.clone();
        for d in &report.data_plane {
            zeroed = zeroed.replace(
                &format!("\"bytes_allocated\": {}", d.bytes_allocated),
                "\"bytes_allocated\": 0",
            );
        }
        assert!(validate(&zeroed).unwrap_err().contains("data_plane"));
        // A shard-scaling ladder whose fingerprint changes with the
        // thread count means the parallel engine is non-deterministic.
        let fp = report.shard_scaling[0].samples[0].fingerprint;
        let tampered = doc.replacen(
            &format!("\"fingerprint\": \"{fp:#018x}\""),
            &format!("\"fingerprint\": \"{:#018x}\"", fp ^ 1),
            1,
        );
        assert!(validate(&tampered)
            .unwrap_err()
            .contains("fingerprint diverges"));
    }

    #[test]
    fn data_plane_counters_show_the_rewrite() {
        let dp = time_data_plane();
        assert_eq!(dp.len(), 5);
        let by_name = |n: &str| dp.iter().find(|d| d.name == n).expect("app present");
        // FFT and BTIO move real payloads; the shared-buffer data plane
        // must at least halve their memcpy traffic vs the recorded
        // pre-rewrite baselines.
        for app in ["fft", "btio"] {
            let d = by_name(app);
            assert!(
                d.bytes_copied * 2 <= d.baseline_bytes_copied,
                "{app}: copied {} vs baseline {}",
                d.bytes_copied,
                d.baseline_bytes_copied
            );
        }
        assert!(by_name("fft").bytes_allocated > 0);
    }

    #[test]
    fn parser_handles_basics() {
        assert_eq!(parse_json("null").unwrap(), Json::Null);
        assert_eq!(
            parse_json(" [1, 2.5, -3e2] ").unwrap(),
            Json::Arr(vec![Json::Num(1.0), Json::Num(2.5), Json::Num(-300.0)])
        );
        let obj = parse_json("{\"a\": {\"b\": [true, false]}}").unwrap();
        assert_eq!(
            obj.get("a").and_then(|a| a.get("b")),
            Some(&Json::Arr(vec![Json::Bool(true), Json::Bool(false)]))
        );
    }
}
