//! Faithful replica of the pre-rewrite `simkit` executor, kept as the
//! comparison baseline for the scheduler microbenchmarks.
//!
//! The original executor (removed in the hot-loop overhaul, see DESIGN.md
//! §15) paid for thread-safety it could not use: every wake took an
//! `Arc<Mutex<VecDeque>>` lock, every poll allocated a fresh
//! `Arc<TaskWaker>` and did a `HashMap` remove + re-insert, and timers
//! popped one heap entry per trip through the run loop. This module
//! reproduces exactly that cost structure so `bench wallclock` can report
//! the rewrite's speedup on identical workloads, using the same
//! `BoxFuture` task shape and the same `(time, seq)` timer contract.
//!
//! It is deliberately *not* public API of the simulation — only the
//! benchmark harness drives it.

use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};

use iosim_simkit::time::{SimDuration, SimTime};

type TaskId = u64;
type BoxFuture = Pin<Box<dyn Future<Output = ()>>>;

struct TimerEntry {
    time: SimTime,
    seq: u64,
    waker: Waker,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

type ReadyQueue = Arc<Mutex<VecDeque<TaskId>>>;

struct TaskWaker {
    id: TaskId,
    ready: ReadyQueue,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.ready
            .lock()
            .expect("ready queue poisoned")
            .push_back(self.id);
    }
    fn wake_by_ref(self: &Arc<Self>) {
        self.ready
            .lock()
            .expect("ready queue poisoned")
            .push_back(self.id);
    }
}

struct Core {
    now: Cell<SimTime>,
    seq: Cell<u64>,
    timers: RefCell<BinaryHeap<Reverse<TimerEntry>>>,
    ready: ReadyQueue,
    tasks: RefCell<HashMap<TaskId, BoxFuture>>,
    next_task: Cell<TaskId>,
    events_processed: Cell<u64>,
}

/// Handle into a running baseline simulation.
#[derive(Clone)]
pub struct BaselineHandle {
    core: Rc<Core>,
}

/// The pre-rewrite executor: `Mutex` ready queue, `HashMap` task store,
/// one `Arc` waker allocation per poll.
pub struct BaselineSim {
    handle: BaselineHandle,
}

impl Default for BaselineSim {
    fn default() -> Self {
        Self::new()
    }
}

impl BaselineSim {
    /// Create an empty baseline simulation at virtual time zero.
    pub fn new() -> BaselineSim {
        BaselineSim {
            handle: BaselineHandle {
                core: Rc::new(Core {
                    now: Cell::new(SimTime::ZERO),
                    seq: Cell::new(0),
                    timers: RefCell::new(BinaryHeap::new()),
                    ready: Arc::new(Mutex::new(VecDeque::new())),
                    tasks: RefCell::new(HashMap::new()),
                    next_task: Cell::new(0),
                    events_processed: Cell::new(0),
                }),
            },
        }
    }

    /// The handle used by tasks to interact with the simulation.
    pub fn handle(&self) -> BaselineHandle {
        self.handle.clone()
    }

    /// Spawn a root task.
    pub fn spawn(&self, fut: impl Future<Output = ()> + 'static) {
        self.handle.spawn(fut)
    }

    /// Run until no runnable task and no pending timer remain; return the
    /// final virtual time.
    pub fn run(&mut self) -> SimTime {
        let core = &self.handle.core;
        loop {
            loop {
                let tid = core.ready.lock().expect("ready queue poisoned").pop_front();
                let Some(tid) = tid else { break };
                let Some(mut fut) = core.tasks.borrow_mut().remove(&tid) else {
                    continue; // stale wake
                };
                core.events_processed.set(core.events_processed.get() + 1);
                let waker = Waker::from(Arc::new(TaskWaker {
                    id: tid,
                    ready: Arc::clone(&core.ready),
                }));
                let mut cx = Context::from_waker(&waker);
                if fut.as_mut().poll(&mut cx).is_pending() {
                    core.tasks.borrow_mut().insert(tid, fut);
                }
            }
            let next = core.timers.borrow_mut().pop();
            match next {
                Some(Reverse(entry)) => {
                    core.now.set(entry.time);
                    entry.waker.wake();
                }
                None => break,
            }
        }
        core.now.get()
    }

    /// Task polls performed so far.
    pub fn events_processed(&self) -> u64 {
        self.handle.core.events_processed.get()
    }
}

impl BaselineHandle {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.now.get()
    }

    /// Spawn a task.
    pub fn spawn(&self, fut: impl Future<Output = ()> + 'static) {
        let id = self.core.next_task.get();
        self.core.next_task.set(id + 1);
        self.core.tasks.borrow_mut().insert(id, Box::pin(fut));
        self.core
            .ready
            .lock()
            .expect("ready queue poisoned")
            .push_back(id);
    }

    /// Sleep for `dur` of virtual time.
    pub fn sleep(&self, dur: SimDuration) -> BaselineSleep {
        BaselineSleep {
            handle: self.clone(),
            deadline: self.now() + dur,
            registered: false,
        }
    }

    fn register_timer(&self, deadline: SimTime, waker: Waker) {
        let seq = self.core.seq.get();
        self.core.seq.set(seq + 1);
        self.core.timers.borrow_mut().push(Reverse(TimerEntry {
            time: deadline.max(self.now()),
            seq,
            waker,
        }));
    }
}

/// Future returned by [`BaselineHandle::sleep`]. Replicates the original
/// register-once behaviour (including its stale-waker quirk — irrelevant
/// for the storm workloads, which never migrate a sleep between tasks).
pub struct BaselineSleep {
    handle: BaselineHandle,
    deadline: SimTime,
    registered: bool,
}

impl Future for BaselineSleep {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.handle.now() >= self.deadline {
            return Poll::Ready(());
        }
        if !self.registered {
            self.registered = true;
            let deadline = self.deadline;
            self.handle.register_timer(deadline, cx.waker().clone());
        }
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_sleep_advances_time() {
        let mut sim = BaselineSim::new();
        let h = sim.handle();
        sim.spawn(async move {
            h.sleep(SimDuration::from_millis(5)).await;
        });
        assert_eq!(sim.run(), SimTime(5_000_000));
        assert!(sim.events_processed() >= 2);
    }

    #[test]
    fn baseline_channels_work() {
        // The sync primitives are executor-agnostic; the baseline drives
        // them through its own wakers.
        let (tx, rx) = iosim_simkit::sync::channel::<u32>();
        let mut sim = BaselineSim::new();
        let h = sim.handle();
        let got = Rc::new(Cell::new(0u32));
        let got2 = Rc::clone(&got);
        sim.spawn(async move {
            while let Some(v) = rx.recv().await {
                got2.set(got2.get() + v);
            }
        });
        sim.spawn(async move {
            let h2 = h.clone();
            for i in 1..=4 {
                h2.sleep(SimDuration::from_micros(i as u64)).await;
                tx.send(i);
            }
        });
        sim.run();
        assert_eq!(got.get(), 10);
    }
}
