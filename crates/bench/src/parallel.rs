//! Host-side parallelism for parameter sweeps.
//!
//! Every simulation is single-threaded and independent, so sweeps over
//! machine configurations parallelize across host threads with
//! `std::thread::scope`. Results come back in input order.

/// Map `f` over `items` using up to `max_threads` host threads, returning
/// results in input order.
pub fn map_parallel<T, R, F>(items: Vec<T>, max_threads: usize, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = max_threads.max(1).min(n);
    if threads == 1 {
        return items.iter().map(&f).collect();
    }
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (item_chunk, slot_chunk) in items
            .chunks(n.div_ceil(threads))
            .zip(slots.chunks_mut(n.div_ceil(threads)))
        {
            let f = &f;
            scope.spawn(move || {
                for (item, slot) in item_chunk.iter().zip(slot_chunk.iter_mut()) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

/// A sensible default thread count for sweeps.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..37).collect();
        let out = map_parallel(items.clone(), 8, |&x| x * x);
        let want: Vec<u64> = items.iter().map(|x| x * x).collect();
        assert_eq!(out, want);
    }

    #[test]
    fn single_thread_path() {
        let out = map_parallel(vec![1, 2, 3], 1, |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = map_parallel(Vec::<u32>::new(), 4, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let out = map_parallel(vec![5], 16, |&x| x);
        assert_eq!(out, vec![5]);
    }
}
