//! Host-side parallelism for parameter sweeps.
//!
//! Every simulation is single-threaded and independent, so sweeps over
//! machine configurations parallelize across host threads with
//! `std::thread::scope`. Results come back in input order.
//!
//! Work distribution is dynamic: workers claim the next unclaimed item
//! through a shared atomic cursor instead of taking a fixed contiguous
//! chunk. Sweep entries are wildly skewed (a full-scale BTIO run costs
//! orders of magnitude more host time than a small SCF one), and static
//! chunking would leave all but one worker idle while the unlucky one
//! grinds through the expensive tail.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Map `f` over `items` using up to `max_threads` host threads, returning
/// results in input order. Items are claimed dynamically (one shared
/// atomic cursor), so skewed per-item costs still load-balance.
pub fn map_parallel<T, R, F>(items: Vec<T>, max_threads: usize, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    // `IOSIM_THREADS` pins the worker count regardless of what the caller
    // asked for, so CI can make any sweep reproducible on any host.
    let threads = env_threads().unwrap_or(max_threads).max(1).min(n);
    if threads == 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        // Hand each worker a raw view of the slot table; workers write
        // disjoint slots (each index is claimed exactly once).
        let slots_ptr = SendPtr(slots.as_mut_ptr());
        for _ in 0..threads {
            let f = &f;
            let next = &next;
            let items = &items;
            scope.spawn(move || {
                let slots_ptr = slots_ptr;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let r = f(&items[i]);
                    // SAFETY: `i` came from a unique fetch_add claim, so
                    // no other worker writes slot `i`; the scope joins
                    // all workers before `slots` is read or dropped.
                    unsafe { *slots_ptr.0.add(i) = Some(r) };
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

/// A pointer wrapper that may cross thread boundaries; safety is
/// guaranteed by the disjoint-index discipline in [`map_parallel`].
struct SendPtr<R>(*mut Option<R>);
impl<R> Clone for SendPtr<R> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<R> Copy for SendPtr<R> {}
unsafe impl<R: Send> Send for SendPtr<R> {}
unsafe impl<R: Send> Sync for SendPtr<R> {}

/// Environment variable that pins the host thread count for sweeps and
/// the sharded engine (CI uses it to make runs reproducible on any host).
pub const THREADS_ENV: &str = "IOSIM_THREADS";

/// A sensible default thread count for sweeps: the `IOSIM_THREADS`
/// environment override when set to a positive integer, otherwise the
/// host's available parallelism.
pub fn default_threads() -> usize {
    if let Some(n) = env_threads() {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// The `IOSIM_THREADS` override, if set to a positive integer. Unset,
/// empty, zero, and unparsable values all mean "no override".
pub fn env_threads() -> Option<usize> {
    parse_threads(std::env::var(THREADS_ENV).ok())
}

fn parse_threads(raw: Option<String>) -> Option<usize> {
    raw.and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::time::{Duration, Instant};

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..37).collect();
        let out = map_parallel(items.clone(), 8, |&x| x * x);
        let want: Vec<u64> = items.iter().map(|x| x * x).collect();
        assert_eq!(out, want);
    }

    #[test]
    fn single_thread_path() {
        let out = map_parallel(vec![1, 2, 3], 1, |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = map_parallel(Vec::<u32>::new(), 4, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let out = map_parallel(vec![5], 16, |&x| x);
        assert_eq!(out, vec![5]);
    }

    #[test]
    fn every_item_claimed_exactly_once() {
        let hits: Vec<AtomicU64> = (0..101).map(|_| AtomicU64::new(0)).collect();
        let out = map_parallel((0..101usize).collect(), 7, |&i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
            i * 3
        });
        assert_eq!(out, (0..101).map(|i| i * 3).collect::<Vec<_>>());
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn thread_override_parsing() {
        assert_eq!(parse_threads(None), None);
        assert_eq!(parse_threads(Some(String::new())), None);
        assert_eq!(parse_threads(Some("0".into())), None);
        assert_eq!(parse_threads(Some("garbage".into())), None);
        assert_eq!(parse_threads(Some("1".into())), Some(1));
        assert_eq!(parse_threads(Some(" 8 ".into())), Some(8));
    }

    /// One item is ~an order of magnitude slower than the rest combined.
    /// Static front-half/back-half chunking would serialize: the worker
    /// that drew the slow item's chunk also owns every item after it.
    /// Dynamic claiming lets the other workers drain the cheap tail
    /// concurrently, so the sweep finishes in about the slow item's time.
    #[test]
    fn skewed_items_load_balance() {
        const SLOW: Duration = Duration::from_millis(120);
        const FAST: Duration = Duration::from_millis(10);
        // Slow item first: under the old chunking, worker 0 got items
        // 0..8 and finished at SLOW + 7 * FAST.
        let durations: Vec<Duration> = std::iter::once(SLOW)
            .chain(std::iter::repeat_n(FAST, 15))
            .collect();
        let t0 = Instant::now();
        let out = map_parallel(durations.clone(), 2, |&d| {
            std::thread::sleep(d);
            d
        });
        let elapsed = t0.elapsed();
        assert_eq!(out, durations);
        // Two workers, dynamic: one takes the slow item, the other
        // drains all 15 fast ones (150 ms); finish ≈ max(120, 150) ms.
        // Static halves would cost 120 + 7*10 = 190 ms on worker 0.
        // Generous margin for slow CI hosts.
        assert!(
            elapsed < SLOW + 4 * FAST,
            "skewed sweep did not load-balance: {elapsed:?}"
        );
    }
}
