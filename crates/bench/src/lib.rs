//! # iosim-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation section
//! from the simulation, with shape checks against the paper's claims.
//! Used by the `repro` binary (full-scale runs, EXPERIMENTS.md), the
//! `bench` binary (host wall-clock trajectory, BENCH_wallclock.json) and
//! the Criterion benches (scaled-down runs, one bench per table/figure).

pub mod baseline;
pub mod experiments;
pub mod parallel;
pub mod wallclock;
