//! BTIO experiments: Figure 6 (times) and Figure 7 (bandwidths).

use iosim_apps::btio::{run, BtClass, BtioConfig};
use iosim_apps::RunResult;
use iosim_trace::figure::{Series, TextFigure};
use iosim_trace::report::{Comparison, ExperimentReport};

use crate::parallel::{default_threads, map_parallel};

/// Square processor counts of Figures 6–7.
pub const PROCS: [usize; 6] = [4, 9, 16, 25, 36, 49];

/// All processor counts including 64 (used for the 49%-reduction check).
pub const PROCS_FULL: [usize; 7] = [4, 9, 16, 25, 36, 49, 64];

fn cfg(class: BtClass, procs: usize, optimized: bool, scale: f64) -> BtioConfig {
    let dumps = ((40.0 * scale).round() as u32).clamp(2, 40);
    BtioConfig {
        dumps,
        ..BtioConfig::new(class, procs, optimized)
    }
}

fn sweep(class: BtClass, scale: f64) -> (Vec<RunResult>, Vec<RunResult>) {
    let jobs: Vec<BtioConfig> = PROCS_FULL
        .iter()
        .flat_map(|&p| [cfg(class, p, false, scale), cfg(class, p, true, scale)])
        .collect();
    let flat = map_parallel(jobs, default_threads(), run);
    let mut unopt = Vec::new();
    let mut opt = Vec::new();
    for pair in flat.chunks(2) {
        unopt.push(pair[0].clone());
        opt.push(pair[1].clone());
    }
    (unopt, opt)
}

/// Figure 6: BTIO Class A I/O time (a) and total time (b) on the SP-2.
pub fn fig6(scale: f64) -> ExperimentReport {
    let (unopt, opt) = sweep(BtClass::A, scale);
    let mut report = ExperimentReport::new(
        "Figure 6: BTIO on IBM SP-2, Class A (408.9 MB total I/O at full scale)",
    );
    for (title, io_axis) in [("(a) I/O time (s)", true), ("(b) total time (s)", false)] {
        let mut fig = TextFigure::new(title, "procs", "seconds");
        for (label, results) in [("original", &unopt), ("two-phase", &opt)] {
            let pts: Vec<(f64, f64)> = PROCS_FULL
                .iter()
                .enumerate()
                .map(|(pi, &p)| {
                    let r = &results[pi];
                    let y = if io_axis {
                        r.io_time.as_secs_f64()
                    } else {
                        r.exec_time.as_secs_f64()
                    };
                    (p as f64, y)
                })
                .collect();
            fig.push(Series::new(label, pts));
        }
        report.push_figure(fig);
    }

    let exec_u = |pi: usize| unopt[pi].exec_time.as_secs_f64();
    let exec_o = |pi: usize| opt[pi].exec_time.as_secs_f64();
    let io_u = |pi: usize| unopt[pi].io_time.as_secs_f64();
    let io_o = |pi: usize| opt[pi].io_time.as_secs_f64();

    // Unoptimized I/O time is erratic / drastically varying with P.
    let (io_min, io_max) = (0..PROCS_FULL.len()).fold((f64::MAX, 0.0f64), |(lo, hi), pi| {
        (lo.min(io_u(pi)), hi.max(io_u(pi)))
    });
    report.push(Comparison::claim(
        "unoptimized I/O time varies drastically with processors",
        "the I/O time in the unoptimized program changes drastically",
        io_max > 1.5 * io_min,
    ));
    // Optimized I/O time is stable.
    let (o_min, o_max) = (0..PROCS_FULL.len()).fold((f64::MAX, 0.0f64), |(lo, hi), pi| {
        (lo.min(io_o(pi)), hi.max(io_o(pi)))
    });
    report.push(Comparison::claim(
        "two-phase I/O time does not behave unpredictably",
        "it does not behave unpredictably with increasing compute nodes",
        o_max / o_min < io_max / io_min,
    ));
    // The 36- and 64-processor exec-time reductions (paper: 46% and 49%).
    let red36 = 100.0 * (1.0 - exec_o(4) / exec_u(4));
    let red64 = 100.0 * (1.0 - exec_o(6) / exec_u(6));
    report.push(Comparison::ratio(
        "exec-time reduction at 36 procs (%)",
        46.0,
        red36,
        0.35,
    ));
    report.push(Comparison::ratio(
        "exec-time reduction at 64 procs (%)",
        49.0,
        red64,
        0.35,
    ));
    // BTIO is not as I/O dominant as FFT.
    report.push(Comparison::claim(
        "BTIO is not I/O-dominant (I/O < 70% of exec, unoptimized, 36 procs)",
        "since the I/O does not constitute a large bulk of the execution time…",
        io_u(4) / exec_u(4) < 0.70,
    ));
    report
}

/// Figure 7: aggregate I/O bandwidths of the original and optimized BTIO
/// for Class A and Class B.
pub fn fig7(scale: f64) -> ExperimentReport {
    let mut report =
        ExperimentReport::new("Figure 7: BTIO I/O bandwidths on IBM SP-2 (Class A and B)");
    let mut bands = Vec::new();
    for class in [BtClass::A, BtClass::B] {
        let (unopt, opt) = sweep(class, scale);
        let mut fig = TextFigure::new(
            format!("I/O bandwidth (MB/s), {}", class.name()),
            "procs",
            "MB/s",
        );
        for (label, results) in [("original", &unopt), ("two-phase", &opt)] {
            let pts: Vec<(f64, f64)> = PROCS_FULL
                .iter()
                .enumerate()
                .map(|(pi, &p)| (p as f64, results[pi].bandwidth_mb_s()))
                .collect();
            fig.push(Series::new(label, pts));
        }
        report.push_figure(fig);
        let u_band: Vec<f64> = unopt.iter().map(|r| r.bandwidth_mb_s()).collect();
        let o_band: Vec<f64> = opt.iter().map(|r| r.bandwidth_mb_s()).collect();
        bands.push((u_band, o_band));
    }

    let (u_a, o_a) = &bands[0];
    let u_lo = u_a.iter().cloned().fold(f64::MAX, f64::min);
    let u_hi = u_a.iter().cloned().fold(0.0, f64::max);
    let o_lo = o_a.iter().cloned().fold(f64::MAX, f64::min);
    let o_hi = o_a.iter().cloned().fold(0.0, f64::max);
    report.push(Comparison::new(
        "original bandwidth band (MB/s), Class A",
        "0.97 – 1.5",
        format!("{u_lo:.2} – {u_hi:.2}"),
        if (0.4..=3.0).contains(&u_lo) && u_hi <= 4.0 {
            iosim_trace::report::Verdict::Holds
        } else {
            iosim_trace::report::Verdict::Partial
        },
    ));
    report.push(Comparison::new(
        "optimized bandwidth band (MB/s), Class A",
        "6.6 – 31.4",
        format!("{o_lo:.2} – {o_hi:.2}"),
        if o_lo >= 3.0 && (10.0..=60.0).contains(&o_hi) {
            iosim_trace::report::Verdict::Holds
        } else {
            iosim_trace::report::Verdict::Partial
        },
    ));
    report.push(Comparison::claim(
        "two-phase bandwidth ≫ original at every processor count (Class B too)",
        "the I/O bandwidth of the optimized version is 6.6–31.4 MB/s vs 0.97–1.5",
        bands
            .iter()
            .all(|(u, o)| u.iter().zip(o).all(|(ub, ob)| ob > &(3.0 * ub))),
    ));
    report
}

/// Table 5 helper: collective-I/O gain on a small BTIO.
pub fn collective_gain(scale: f64) -> f64 {
    let u = run(&cfg(BtClass::Custom(16), 9, false, scale));
    let o = run(&cfg(BtClass::Custom(16), 9, true, scale));
    u.exec_time.as_secs_f64() / o.exec_time.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::scf11::assert_shape;

    #[test]
    fn fig6_shape_holds_at_small_scale() {
        let r = fig6(0.1); // 4 dumps
                           // The exact 46/49% reductions need full scale; only require the
                           // qualitative claims to hold here.
        for c in &r.comparisons {
            if c.what.contains("reduction") {
                continue;
            }
            assert_ne!(
                c.verdict,
                iosim_trace::report::Verdict::Differs,
                "{}: {}",
                c.what,
                c.measured
            );
        }
        let _ = assert_shape; // full-shape asserted in the repro run
    }

    #[test]
    fn fig7_bandwidth_gap_holds_at_small_scale() {
        let r = fig7(0.05);
        let gap = r
            .comparisons
            .iter()
            .find(|c| c.what.contains("≫"))
            .expect("gap check present");
        assert_eq!(gap.verdict, iosim_trace::report::Verdict::Holds);
    }
}
