//! SCF 3.0 experiment: Figure 4 (percentage of cached integrals).

use iosim_apps::scf11::ScfInput;
use iosim_apps::scf30::{run, Scf30Config};
use iosim_trace::figure::{Series, TextFigure};
use iosim_trace::report::{Comparison, ExperimentReport};

use crate::parallel::{default_threads, map_parallel};

/// Cached-integral percentages swept in Figure 4.
pub const CACHED: [u32; 6] = [0, 25, 50, 75, 90, 100];
/// Processor counts swept in Figure 4.
pub const PROCS: [usize; 4] = [32, 64, 128, 256];

/// Figure 4: SCF 3.0 execution time vs percentage of cached integrals,
/// for 16 and 64 I/O nodes (MEDIUM input).
pub fn fig4(scale: f64) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "Figure 4: SCF 3.0 (MEDIUM) — % cached integrals × processors × I/O nodes",
    );
    let mut grids = Vec::new();
    for &sf in &[16usize, 64] {
        let mut jobs = Vec::new();
        for &p in &PROCS {
            for &f in &CACHED {
                jobs.push(Scf30Config {
                    io_nodes: sf,
                    scale,
                    ..Scf30Config::new(ScfInput::Medium, p, f)
                });
            }
        }
        let flat = map_parallel(jobs, default_threads(), run);
        let mut fig = TextFigure::new(
            format!("execution time (s), {sf} I/O nodes"),
            "% cached",
            "exec time (s)",
        );
        for (pi, &p) in PROCS.iter().enumerate() {
            let pts: Vec<(f64, f64)> = CACHED
                .iter()
                .enumerate()
                .map(|(fi, &f)| {
                    (
                        f as f64,
                        flat[pi * CACHED.len() + fi].run.exec_time.as_secs_f64(),
                    )
                })
                .collect();
            fig.push(Series::new(format!("{p} procs"), pts));
        }
        report.push_figure(fig);
        grids.push(flat);
    }

    // Shape checks on the 64-I/O-node grid (paper's main observations).
    let exec = |g: &[iosim_apps::scf30::Scf30Result], pi: usize, fi: usize| {
        g[pi * CACHED.len() + fi].run.exec_time.as_secs_f64()
    };
    let g64 = &grids[1];
    let g16 = &grids[0];
    let gain_0 = exec(g64, 0, 0) / exec(g64, 3, 0); // 32 -> 256 procs at 0%
    report.push(Comparison::claim(
        "0% cached: 32→256 procs is very effective",
        "for the full recompute version increasing processors is very effective",
        gain_0 > 3.0,
    ));
    // At 100% cached the read phase hits the I/O subsystem's floor, so
    // processors help much less. Strongest on the 16-I/O-node machine;
    // evaluated there, with the 64-node grid reported as a ratio.
    let gain_100_16 = exec(g16, 0, 5) / exec(g16, 3, 5);
    let gain_0_16 = exec(g16, 0, 0) / exec(g16, 3, 0);
    report.push(Comparison::claim(
        "100% cached: processors matter much less (16 I/O nodes)",
        "for the full disk version increasing processors does not make a significant difference",
        gain_100_16 < gain_0_16 / 2.0,
    ));
    let gain_100_64 = exec(g64, 0, 5) / exec(g64, 3, 5);
    report.push(Comparison::ratio(
        "processor-scaling benefit at 100% vs 0% cached (64 I/O nodes; <1 = disk version scales worse)",
        0.3, // paper: little observable gain at high cached fractions
        gain_100_64 / gain_0,
        1.5,
    ));
    // I/O-node count is secondary: compare 16 vs 64 nodes at 90% cached.

    let io_node_effect = (exec(g16, 1, 4) - exec(g64, 1, 4)).abs() / exec(g16, 1, 4);
    report.push(Comparison::claim(
        "I/O-node count is not very effective for SCF 3.0",
        "the number of I/O nodes is not very effective on the overall performance",
        io_node_effect < 0.30,
    ));
    // Caching more is better on this platform.
    report.push(Comparison::claim(
        "higher cached percentage improves time (64 procs, 64 I/O nodes)",
        "increasing the percentage of integrals stored on disk gave better performance",
        exec(g64, 1, 4) < exec(g64, 1, 0),
    ));
    report
}

/// Table 5 helper: gains from balancing and prefetching on SCF 3.0.
/// Balancing needs enough volume per rank for the call-count imbalance
/// to dominate its one-time cost, so the scale is floored.
pub fn technique_gains(scale: f64) -> (f64, f64) {
    let base = Scf30Config {
        scale: scale.max(0.3),
        io_nodes: 16,
        ..Scf30Config::new(ScfInput::Small, 4, 100)
    };
    let mut no_balance = base.clone();
    no_balance.balanced = false;
    no_balance.prefetch = false;
    let mut balance_only = no_balance.clone();
    balance_only.balanced = true;
    let mut with_prefetch = balance_only.clone();
    with_prefetch.prefetch = true;
    let a = run(&no_balance);
    let b = run(&balance_only);
    let c = run(&with_prefetch);
    (
        // Balancing targets the slowest rank's I/O time.
        a.run.io_time.as_secs_f64() / b.run.io_time.as_secs_f64().max(1e-9),
        b.run.exec_time.as_secs_f64() / c.run.exec_time.as_secs_f64(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::scf11::assert_shape;

    #[test]
    fn fig4_shape_holds_at_small_scale() {
        // Use a reduced processor sweep via scale only; the claims are
        // monotonic and survive scaling.
        let r = fig4(0.02);
        assert_shape(&r);
        assert!(r.body.contains("% cached"));
    }
}
