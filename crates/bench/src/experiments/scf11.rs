//! SCF 1.1 experiments: Tables 2–3 and Figures 1–3.

use iosim_apps::scf11::{run, Scf11Config, Scf11Result, Scf11Version, ScfInput};
use iosim_simkit::time::SimDuration;
use iosim_trace::figure::{Series, TextFigure};
use iosim_trace::report::{Comparison, ExperimentReport, Verdict};

use crate::parallel::{default_threads, map_parallel};

fn cfg(input: ScfInput, version: Scf11Version, scale: f64) -> Scf11Config {
    Scf11Config {
        scale,
        ..Scf11Config::new(input, version)
    }
}

/// Tables 2 and 3: the Pablo-style I/O breakdown of the original and
/// PASSION versions of SCF 1.1 (LARGE input, 4 processors, 12 I/O nodes).
pub fn table2_table3(scale: f64) -> (ExperimentReport, ExperimentReport) {
    let runs = map_parallel(
        vec![Scf11Version::Original, Scf11Version::Passion],
        2,
        |&v| run(&cfg(ScfInput::Large, v, scale)),
    );
    let orig = &runs[0];
    let pass = &runs[1];

    let mut t2 = ExperimentReport::new("Table 2: SCF 1.1 original (Fortran I/O), LARGE, 4 procs");
    t2.push_body(&orig.run.summary.render(
        &format!(
            "I/O summary, original version [total I/O time {:.1} h cumulative]",
            orig.run.cum_io_time.as_secs_f64() / 3600.0
        ),
        orig.run.cum_exec_time(),
    ));
    let read_row = orig.run.summary.rows[1];
    let io_total = orig.run.cum_io_time.as_secs_f64();
    t2.push(Comparison::ratio(
        "read share of I/O time (%)",
        95.56,
        100.0 * read_row.time.as_secs_f64() / io_total,
        0.08,
    ));
    t2.push(Comparison::ratio(
        "I/O share of exec time (%)",
        54.06,
        100.0 * io_total / orig.run.cum_exec_time().as_secs_f64(),
        0.20,
    ));
    t2.push(Comparison::ratio(
        "mean time per read (ms)",
        106.0,
        1e3 * read_row.time.as_secs_f64() / read_row.count.max(1) as f64,
        0.25,
    ));
    t2.push(Comparison::ratio(
        "read volume / write volume",
        37.0 / 2.5,
        read_row.bytes as f64 / orig.run.summary.rows[3].bytes.max(1) as f64,
        0.10,
    ));

    t2.push_body(&orig.run.read_sizes.render("read request sizes"));

    let mut t3 = ExperimentReport::new("Table 3: SCF 1.1 PASSION version, LARGE, 4 procs");
    t3.push_body(&pass.run.summary.render(
        &format!(
            "I/O summary, PASSION version [total I/O time {:.1} h cumulative]",
            pass.run.cum_io_time.as_secs_f64() / 3600.0
        ),
        pass.run.cum_exec_time(),
    ));
    t3.push(Comparison::ratio(
        "I/O-time improvement over original",
        63_087.11 / 35_443.72,
        orig.run.cum_io_time.as_secs_f64() / pass.run.cum_io_time.as_secs_f64(),
        0.25,
    ));
    t3.push(Comparison::ratio(
        "mean time per read (ms)",
        59.7,
        1e3 * pass.run.summary.rows[1].time.as_secs_f64()
            / pass.run.summary.rows[1].count.max(1) as f64,
        0.25,
    ));
    let seeks = pass.run.summary.rows[2].count as f64;
    let data_calls = (pass.run.summary.rows[1].count + pass.run.summary.rows[3].count) as f64;
    t3.push(Comparison::ratio(
        "seeks per data call (PASSION interface)",
        604_342.0 / 606_666.0,
        seeks / data_calls,
        0.15,
    ));
    (t2, t3)
}

/// The Figure 1 configuration tuples `(V, P, M, Su, Sf)`. Tuple V is
/// missing from the paper's caption; we use `(F,32,256,64,16)`
/// (documented in DESIGN.md).
pub fn fig1_tuples() -> Vec<Scf11Config> {
    let t = |version, procs, mem_kb, su, sf| Scf11Config {
        version,
        procs,
        mem_kb,
        stripe_unit_kb: su,
        io_nodes: sf,
        ..Scf11Config::new(ScfInput::Small, version)
    };
    use Scf11Version::{Original as O, Passion as P, PassionPrefetch as F};
    vec![
        t(O, 4, 64, 64, 12),    // I
        t(P, 4, 64, 64, 12),    // II
        t(F, 4, 64, 64, 12),    // III
        t(F, 32, 256, 64, 12),  // IV
        t(F, 32, 256, 64, 16),  // V (caption omits; our choice)
        t(F, 32, 256, 128, 12), // VI
        t(F, 32, 256, 128, 16), // VII
    ]
}

/// Figure 1: incremental optimization of SCF 1.1 across the three inputs.
pub fn fig1(scale: f64) -> ExperimentReport {
    let inputs = [ScfInput::Small, ScfInput::Medium, ScfInput::Large];
    let mut jobs = Vec::new();
    for input in inputs {
        for t in fig1_tuples() {
            jobs.push(Scf11Config { input, scale, ..t });
        }
    }
    let results = map_parallel(jobs.clone(), default_threads(), run);

    let mut report =
        ExperimentReport::new("Figure 1: impact of optimizations on SCF 1.1 (config tuples I–VII)");
    let labels = ["I", "II", "III", "IV", "V", "VI", "VII"];
    report.push_body(&format!(
        "tuples: {}\n",
        fig1_tuples()
            .iter()
            .zip(labels)
            .map(|(c, l)| format!("{l}={}", c.tuple()))
            .collect::<Vec<_>>()
            .join(" ")
    ));
    // The paper's bar charts show both execution and I/O time per tuple.
    for (title, io_axis) in [
        ("execution time (s) per configuration tuple", false),
        ("foreground I/O time (s) per configuration tuple", true),
    ] {
        let mut fig = TextFigure::new(
            title,
            "tuple",
            if io_axis {
                "I/O time (s)"
            } else {
                "exec time (s)"
            },
        );
        for (ii, input) in inputs.iter().enumerate() {
            let points: Vec<(f64, f64)> = (0..7)
                .map(|k| {
                    let r = &results[ii * 7 + k];
                    let y = if io_axis {
                        r.fg_io_time.as_secs_f64()
                    } else {
                        r.run.exec_time.as_secs_f64()
                    };
                    ((k + 1) as f64, y)
                })
                .collect();
            fig.push(Series::new(input.name(), points));
        }
        report.push_figure(fig);
    }

    // Shape checks, per input: each software step helps (I > II > III),
    // and the best large-memory prefetch tuple beats III.
    for (ii, input) in inputs.iter().enumerate() {
        let r = &results[ii * 7..(ii + 1) * 7];
        let exec = |k: usize| r[k].run.exec_time.as_secs_f64();
        report.push(Comparison::claim(
            format!("{}: PASSION (II) beats original (I)", input.name()),
            "II < I",
            exec(1) < exec(0),
        ));
        report.push(Comparison::claim(
            format!("{}: prefetch (III) beats PASSION (II)", input.name()),
            "III < II",
            exec(2) < exec(1),
        ));
        report.push(Comparison::claim(
            format!(
                "{}: application factors dominate system factors (III/I vs VII/IV)",
                input.name()
            ),
            "software steps I→III give larger gains than Su/Sf changes IV→VII",
            (exec(0) - exec(2)).abs() > (exec(3) - exec(6)).abs(),
        ));
    }
    report
}

/// The processor counts of Figures 2–3.
pub const FIG2_PROCS: [usize; 6] = [4, 16, 32, 64, 128, 256];

/// One Figure 2/3 series: (label, version, io_nodes).
fn scaling_series() -> Vec<(&'static str, Scf11Version, usize)> {
    vec![
        ("unopt, 16 I/O nodes", Scf11Version::Original, 16),
        ("unopt, 64 I/O nodes", Scf11Version::Original, 64),
        ("opt(F), 16 I/O nodes", Scf11Version::PassionPrefetch, 16),
        ("opt(F), 64 I/O nodes", Scf11Version::PassionPrefetch, 64),
    ]
}

/// Run the Figure 2/3 grid: `FIG2_PROCS × scaling_series`.
fn scaling_grid(scale: f64) -> Vec<Vec<Scf11Result>> {
    let series = scaling_series();
    let mut jobs = Vec::new();
    for &(_, version, io_nodes) in &series {
        for &p in &FIG2_PROCS {
            jobs.push(Scf11Config {
                procs: p,
                io_nodes,
                mem_kb: 256,
                scale,
                ..Scf11Config::new(ScfInput::Large, version)
            });
        }
    }
    let flat = map_parallel(jobs, default_threads(), run);
    flat.chunks(FIG2_PROCS.len()).map(|c| c.to_vec()).collect()
}

/// Figure 2: SCF 1.1 LARGE scaling — software optimization vs I/O nodes,
/// with the crossover beyond 64 processors.
pub fn fig2(scale: f64) -> ExperimentReport {
    let grid = scaling_grid(scale);
    let series = scaling_series();
    let mut report = ExperimentReport::new(
        "Figure 2: SCF 1.1 LARGE — optimized vs unoptimized across processor counts",
    );
    let mut fig = TextFigure::new(
        "execution time (s) vs compute nodes",
        "procs",
        "exec time (s)",
    );
    for (si, (label, _, _)) in series.iter().enumerate() {
        let pts: Vec<(f64, f64)> = FIG2_PROCS
            .iter()
            .enumerate()
            .map(|(pi, &p)| (p as f64, grid[si][pi].run.exec_time.as_secs_f64()))
            .collect();
        fig.push(Series::new(*label, pts));
    }
    report.push_figure(fig);

    let exec = |si: usize, pi: usize| grid[si][pi].run.exec_time.as_secs_f64();
    // Up to 32 procs, opt-16 beats unopt-64 (software wins).
    let small_p_sw_wins = (0..=2).all(|pi| exec(2, pi) < exec(1, pi));
    report.push(Comparison::claim(
        "small processor counts: optimized (16 I/O nodes) beats unoptimized (64 I/O nodes)",
        "up to 64 compute nodes optimized versions perform well",
        small_p_sw_wins,
    ));
    // At the largest count, unopt-64 overtakes opt-16.
    report.push(Comparison::claim(
        "256 procs: unoptimized with 64 I/O nodes beats optimized with 16",
        "beyond 64 nodes the unoptimized version with more I/O nodes performs better",
        exec(1, 5) < exec(2, 5),
    ));
    // Crossover location: the first processor count where unopt-64 wins.
    // The paper places it just beyond 64 (i.e. by 128).
    let crossover = FIG2_PROCS
        .iter()
        .enumerate()
        .find(|&(pi, _)| exec(1, pi) <= exec(2, pi))
        .map(|(_, &p)| p as f64)
        .unwrap_or(f64::INFINITY);
    report.push(Comparison::ratio(
        "crossover processor count (unopt-64 overtakes opt-16)",
        128.0,
        crossover,
        0.5,
    ));
    report
}

/// Figure 3: the effect of the number of I/O nodes on SCF 1.1.
pub fn fig3(scale: f64) -> ExperimentReport {
    let io_nodes = [12usize, 16, 64];
    let mut jobs = Vec::new();
    for &sf in &io_nodes {
        for &p in &FIG2_PROCS {
            jobs.push(Scf11Config {
                procs: p,
                io_nodes: sf,
                scale,
                ..Scf11Config::new(ScfInput::Large, Scf11Version::Original)
            });
        }
    }
    let flat = map_parallel(jobs, default_threads(), run);
    let grid: Vec<&[Scf11Result]> = flat.chunks(FIG2_PROCS.len()).collect();

    let mut report =
        ExperimentReport::new("Figure 3: effect of the number of I/O nodes on SCF 1.1 (LARGE)");
    let mut fig = TextFigure::new(
        "execution time (s) vs compute nodes",
        "procs",
        "exec time (s)",
    );
    for (si, &sf) in io_nodes.iter().enumerate() {
        let pts: Vec<(f64, f64)> = FIG2_PROCS
            .iter()
            .enumerate()
            .map(|(pi, &p)| (p as f64, grid[si][pi].run.exec_time.as_secs_f64()))
            .collect();
        fig.push(Series::new(format!("{sf} I/O nodes"), pts));
    }
    report.push_figure(fig);

    let exec = |si: usize, pi: usize| grid[si][pi].run.exec_time.as_secs_f64();
    report.push(Comparison::claim(
        "more I/O nodes help, most at large processor counts",
        "increase in I/O nodes translates into reduced contention",
        exec(2, 5) < exec(0, 5) && exec(2, 5) < exec(2, 0).max(exec(0, 5)),
    ));
    let gain_small = exec(0, 0) / exec(2, 0);
    let gain_large = exec(0, 5) / exec(2, 5);
    report.push(Comparison::claim(
        "I/O-node benefit grows with compute nodes",
        "especially when we use larger number of compute nodes",
        gain_large > gain_small,
    ));
    report
}

/// Table 5 synthesis: the interface gain (execution-time basis, original
/// vs PASSION) and the prefetch gain (foreground-I/O-time basis, PASSION
/// vs PASSION-prefetch — the paper counts wait + copy as the prefetch
/// version's I/O time, and the tick is about I/O effectiveness).
pub fn optimization_gains(scale: f64) -> (f64, f64) {
    let mut fcfg = cfg(ScfInput::Small, Scf11Version::PassionPrefetch, scale);
    fcfg.mem_kb = 256;
    let mut pcfg = cfg(ScfInput::Small, Scf11Version::Passion, scale);
    pcfg.mem_kb = 256;
    let configs = vec![
        cfg(ScfInput::Small, Scf11Version::Original, scale),
        cfg(ScfInput::Small, Scf11Version::Passion, scale),
        pcfg,
        fcfg,
    ];
    let runs = map_parallel(configs, default_threads(), run);
    let [o, p, p256, f] = &runs[..] else {
        unreachable!("map_parallel preserves arity")
    };
    (
        o.run.exec_time.as_secs_f64() / p.run.exec_time.as_secs_f64(),
        p256.fg_io_time.as_secs_f64() / f.fg_io_time.as_secs_f64().max(1e-9),
    )
}

/// Sanity: the default (paper) configuration for Tables 2–3.
pub fn default_table_config() -> Scf11Config {
    Scf11Config::new(ScfInput::Large, Scf11Version::Original)
}

/// Helper for tests and benches: assert a report's shape holds, with a
/// readable panic message.
pub fn assert_shape(report: &ExperimentReport) {
    for c in &report.comparisons {
        assert_ne!(
            c.verdict,
            Verdict::Differs,
            "{}: '{}' paper={} measured={}",
            report.id,
            c.what,
            c.paper,
            c.measured
        );
    }
    let _ = SimDuration::ZERO; // keep the import referenced in all cfgs
}

#[cfg(test)]
mod tests {
    use super::*;

    // Scaled-down smoke tests; the full-scale numbers come from `repro`.
    const S: f64 = 0.02;

    #[test]
    fn tables_2_and_3_have_expected_shape_at_small_scale() {
        let (t2, t3) = table2_table3(S);
        // At reduced scale the absolute per-op ratios still hold; the
        // exec-share check can drift, so only require no hard misses on
        // the op-level rows.
        let hard_miss = t2
            .comparisons
            .iter()
            .chain(&t3.comparisons)
            .filter(|c| c.what.contains("per read") || c.what.contains("volume"))
            .any(|c| c.verdict == Verdict::Differs);
        assert!(
            !hard_miss,
            "t2:\n{}\nt3:\n{}",
            t2.render_markdown(),
            t3.render_markdown()
        );
    }

    #[test]
    fn fig1_software_steps_all_help() {
        let r = fig1(S);
        assert_shape(&r);
    }

    #[test]
    fn fig1_has_21_series_points() {
        let r = fig1(S);
        assert!(r.body.contains("SMALL"));
        assert!(r.body.contains("LARGE"));
        assert!(r.body.contains("(F,32,256,128,16)"));
    }
}
