//! Extension experiments beyond the paper (DESIGN.md §9): failure
//! injection on the I/O subsystem, data sieving vs two-phase I/O, the
//! collective-buffer-size ablation, mesh-link contention, the
//! disk-based/re-compute crossover, and the 1998 playbook on modern
//! hardware.

use iosim_apps::common::run_ranks;
use iosim_apps::scf11::{Scf11Config, Scf11Version, ScfInput};
use iosim_core::sieve::write_sieved;
use iosim_core::two_phase::{write_collective, write_collective_buffered, Piece};
use iosim_machine::{presets, Interface};
use iosim_pfs::CreateOptions;
use iosim_trace::figure::{Series, TextFigure};
use iosim_trace::report::{Comparison, ExperimentReport};

use crate::parallel::{default_threads, map_parallel};

/// Extension 1: hot-spot sensitivity. Degrade one of 16 I/O nodes and
/// measure SCF 1.1. Round-robin striping drags every striped operation to
/// the slowest node, so a single degraded node costs far more than 1/16th
/// of the bandwidth — quantifying how fragile the "balanced architecture"
/// is to heterogeneity.
pub fn ext_hotspot(scale: f64) -> ExperimentReport {
    let speeds = [1.0f64, 0.5, 0.25, 0.1];
    let jobs: Vec<f64> = speeds.to_vec();
    let results = map_parallel(jobs, default_threads(), |&speed| {
        let cfg = Scf11Config {
            procs: 16,
            io_nodes: 16,
            scale,
            ..Scf11Config::new(ScfInput::Small, Scf11Version::Passion)
        };
        // Run through the generic harness with a degraded machine.
        run_scf11_degraded(&cfg, speed)
    });
    let mut report = ExperimentReport::new(
        "Extension 1: hot-spot sensitivity — one degraded I/O node (SCF 1.1, 16 procs, 16 I/O nodes)",
    );
    let mut fig = TextFigure::new(
        "execution time vs speed of the slowest I/O node",
        "node speed",
        "exec time (s)",
    );
    fig.push(Series::new(
        "1 of 16 nodes degraded",
        speeds.iter().zip(&results).map(|(&s, &t)| (s, t)).collect(),
    ));
    report.push_figure(fig);
    let nominal = results[0];
    let tenth = results[3];
    report.push(Comparison::claim(
        "a single 10%-speed node slows the whole run by >2x",
        "striping couples every operation to the slowest node (extension; no paper value)",
        tenth > 2.0 * nominal,
    ));
    // A node at 25% speed removes (1−0.25)/16 ≈ 4.7% of aggregate
    // capacity; the run should slow far more than that.
    let quarter_slowdown = (results[2] - nominal) / nominal;
    report.push(Comparison::claim(
        "degradation is superlinear in the lost capacity share",
        "losing ~5% of aggregate capacity costs several times that",
        quarter_slowdown > 3.0 * 0.047,
    ));
    report
}

fn run_scf11_degraded(cfg: &Scf11Config, hot_speed: f64) -> f64 {
    // scf11::run builds its machine internally; for the degraded variant
    // we reproduce its read phase shape with the generic harness.
    let mcfg = presets::paragon_large()
        .with_compute_nodes(cfg.procs)
        .with_io_nodes(cfg.io_nodes)
        .with_degraded_io_node(0, hot_speed);
    let volume =
        ((iosim_apps::scf11::integral_volume(cfg.input.basis()) as f64) * cfg.scale) as u64;
    let per_proc = volume / cfg.procs as u64;
    let res = run_ranks(mcfg, cfg.procs, move |ctx| {
        Box::pin(async move {
            let fh = ctx
                .fs
                .open(
                    ctx.rank,
                    Interface::Passion,
                    &format!("hot.{}", ctx.rank),
                    Some(CreateOptions::default()),
                )
                .await
                .expect("open");
            fh.preallocate(per_proc);
            for iter in 0..5u64 {
                let _ = iter;
                let mut off = 0u64;
                while off < per_proc {
                    let len = (64 << 10).min(per_proc - off);
                    fh.read_discard_at(off, len).await.expect("read");
                    off += len;
                }
            }
        })
    });
    res.exec_time.as_secs_f64()
}

/// Extension 2: data sieving vs two-phase I/O vs direct writes, on the
/// BTIO dump pattern. Sieving needs no peers but transfers the holes;
/// two-phase exchanges over the network and writes densely. On a
/// high-density pattern both beat direct I/O, and two-phase wins once
/// several processes interleave (its writes are hole-free).
pub fn ext_sieve_vs_two_phase(scale: f64) -> ExperimentReport {
    let _ = scale;
    let procs = 4usize;
    let records_per_rank = 200u64;
    let record = 512u64;
    let stride = 2048u64; // rank-interleaved: 25% density per rank

    let run_variant = |variant: &'static str| -> f64 {
        let res = run_ranks(
            presets::sp2().with_compute_nodes(procs),
            procs,
            move |ctx| {
                Box::pin(async move {
                    let fh = ctx
                        .fs
                        .open(
                            ctx.rank,
                            Interface::UnixStyle,
                            "sieve-cmp",
                            Some(CreateOptions::default()),
                        )
                        .await
                        .expect("open");
                    let pieces: Vec<Piece> = (0..records_per_rank)
                        .map(|k| Piece::synthetic(k * stride + ctx.rank as u64 * record, record))
                        .collect();
                    match variant {
                        "direct" => {
                            for p in pieces {
                                fh.seek(p.offset).await;
                                fh.write_discard(p.payload.len).await.expect("write");
                            }
                        }
                        "sieved" => {
                            write_sieved(&fh, pieces).await.expect("sieve");
                        }
                        "two-phase" => {
                            write_collective(&ctx.comm, &fh, pieces)
                                .await
                                .expect("collective");
                        }
                        _ => unreachable!(),
                    }
                    ctx.comm.barrier().await;
                })
            },
        );
        res.exec_time.as_secs_f64()
    };

    let direct = run_variant("direct");
    let sieved = run_variant("sieved");
    let two_phase = run_variant("two-phase");

    let mut report = ExperimentReport::new(
        "Extension 2: data sieving vs two-phase I/O (interleaved 25%-density writes, 4 procs)",
    );
    report.push_body(&format!(
        "{:>12} {:>12} {:>12}   [exec time (s)]\n{:>12.2} {:>12.2} {:>12.2}\n",
        "direct", "sieved", "two-phase", direct, sieved, two_phase
    ));
    report.push(Comparison::claim(
        "sieving beats direct per-record writes",
        "one RMW extent instead of hundreds of seeks (extension; no paper value)",
        sieved < direct / 2.0,
    ));
    report.push(Comparison::claim(
        "two-phase beats sieving when peers interleave",
        "exchange removes the hole transfers entirely",
        two_phase < sieved,
    ));
    report
}

/// Extension 3: the collective-buffer-size knob of
/// [`write_collective_buffered`] — the PASSION/ROMIO "cb_buffer_size"
/// trade-off.
pub fn ext_collective_buffer(scale: f64) -> ExperimentReport {
    let _ = scale;
    let procs = 8usize;
    let total: u64 = 16 << 20;
    let per_rank = total / procs as u64;
    let buffers = [64u64 << 10, 256 << 10, 1 << 20, 4 << 20];
    let times = map_parallel(buffers.to_vec(), default_threads(), |&buf| {
        let res = run_ranks(
            presets::paragon_large()
                .with_compute_nodes(procs)
                .with_io_nodes(16),
            procs,
            move |ctx| {
                Box::pin(async move {
                    let fh = ctx
                        .fs
                        .open(
                            ctx.rank,
                            Interface::Passion,
                            "cb",
                            Some(CreateOptions::default()),
                        )
                        .await
                        .expect("open");
                    // Rank-strided pieces of 8 KB.
                    let pieces: Vec<Piece> = (0..per_rank / 8192)
                        .map(|k| {
                            Piece::synthetic((k * procs as u64 + ctx.rank as u64) * 8192, 8192)
                        })
                        .collect();
                    write_collective_buffered(&ctx.comm, &fh, pieces, buf)
                        .await
                        .expect("buffered collective");
                    ctx.comm.barrier().await;
                })
            },
        );
        res.exec_time.as_secs_f64()
    });
    let mut report =
        ExperimentReport::new("Extension 3: collective buffer size (16 MB strided write, 8 procs)");
    let mut fig = TextFigure::new(
        "execution time vs per-process collective buffer",
        "buffer (KB)",
        "exec time (s)",
    );
    fig.push(Series::new(
        "two-phase, buffered",
        buffers
            .iter()
            .zip(&times)
            .map(|(&b, &t)| ((b >> 10) as f64, t))
            .collect(),
    ));
    report.push_figure(fig);
    report.push(Comparison::claim(
        "larger collective buffers are monotonically cheaper (fewer rounds)",
        "rounds = extent / (ranks x buffer) (extension; no paper value)",
        times.windows(2).all(|w| w[1] <= w[0] * 1.05),
    ));
    report
}

/// Extension 4: mesh-link contention and the two-phase exchange. The
/// collective's all-to-all is bisection-heavy; modelling per-link
/// bandwidth shows how much headroom the default NIC-only model leaves.
pub fn ext_link_contention(scale: f64) -> ExperimentReport {
    let _ = scale;
    let run_with = |contend: bool, procs: usize| -> f64 {
        let mut mcfg = presets::paragon_large()
            .with_compute_nodes(procs)
            .with_io_nodes(16);
        mcfg.net.link_contention = contend;
        let res = run_ranks(mcfg, procs, move |ctx| {
            Box::pin(async move {
                let fh = ctx
                    .fs
                    .open(
                        ctx.rank,
                        Interface::Passion,
                        "lc",
                        Some(CreateOptions::default()),
                    )
                    .await
                    .expect("open");
                // Strided pieces so the exchange is all-to-all heavy.
                let per_rank: u64 = 4 << 20;
                let pieces: Vec<Piece> = (0..per_rank / 65536)
                    .map(|k| {
                        Piece::synthetic(
                            (k * ctx.comm.size() as u64 + ctx.rank as u64) * 65536,
                            65536,
                        )
                    })
                    .collect();
                write_collective(&ctx.comm, &fh, pieces)
                    .await
                    .expect("collective");
                ctx.comm.barrier().await;
            })
        });
        res.exec_time.as_secs_f64()
    };
    let mut report = ExperimentReport::new(
        "Extension 4: mesh-link contention on the two-phase exchange (4 MB per process)",
    );
    let mut fig = TextFigure::new("execution time vs processes", "procs", "exec time (s)");
    let procs = [8usize, 32, 64];
    let mut at_64 = [0.0f64; 2];
    for (ci, contend) in [false, true].into_iter().enumerate() {
        let pts: Vec<(f64, f64)> = procs
            .iter()
            .map(|&p| (p as f64, run_with(contend, p)))
            .collect();
        at_64[ci] = pts.last().expect("procs non-empty").1;
        fig.push(Series::new(
            if contend {
                "with link contention"
            } else {
                "NIC-only model"
            },
            pts,
        ));
    }
    let slow_64 = at_64[1] / at_64[0];
    report.push_figure(fig);
    report.push(Comparison::claim(
        "link contention never speeds the exchange up",
        "per-link booking adds queueing on shared route links (extension; no paper value)",
        slow_64 >= 1.0,
    ));
    report
}

/// Extension 5: the paper's concluding SCF anecdote, quantified — "for
/// small numbers of compute nodes \[users\] use the version which makes
/// I/O; for large numbers they tend to use the re-compute version, as the
/// I/O version performs very poorly". Sweep processors for the disk-based
/// (100% cached) and direct (0% cached) variants and locate the
/// crossover.
pub fn ext_disk_vs_recompute(scale: f64) -> ExperimentReport {
    use iosim_apps::scf30::{run as scf30_run, Scf30Config};
    let procs = [8usize, 32, 128, 256];
    let sweep = |cached: u32| -> Vec<f64> {
        let jobs: Vec<Scf30Config> = procs
            .iter()
            .map(|&p| Scf30Config {
                io_nodes: 12,
                scale,
                ..Scf30Config::new(ScfInput::Medium, p, cached)
            })
            .collect();
        map_parallel(jobs, default_threads(), scf30_run)
            .into_iter()
            .map(|r| r.run.exec_time.as_secs_f64())
            .collect()
    };
    let disk = sweep(100);
    let direct = sweep(0);
    let mut report = ExperimentReport::new(
        "Extension 5: disk-based vs re-compute SCF across processor counts (12 I/O nodes)",
    );
    let mut fig = TextFigure::new("execution time vs processes", "procs", "exec time (s)");
    fig.push(Series::new(
        "disk-based (100% cached)",
        procs
            .iter()
            .zip(&disk)
            .map(|(&p, &t)| (p as f64, t))
            .collect(),
    ));
    fig.push(Series::new(
        "direct (full re-compute)",
        procs
            .iter()
            .zip(&direct)
            .map(|(&p, &t)| (p as f64, t))
            .collect(),
    ));
    report.push_figure(fig);
    report.push(Comparison::claim(
        "small processor counts favour the disk-based version",
        "for small number of compute nodes, use the version of the code which makes I/O",
        disk[0] < direct[0],
    ));
    report.push(Comparison::claim(
        "large processor counts favour the re-compute version",
        "for large number of compute nodes, they tend to use the re-compute version",
        direct[procs.len() - 1] < disk[procs.len() - 1],
    ));
    report
}

/// Extension 6: does the 1998 playbook survive modern hardware? Re-run
/// the technique-gain measurements on the anachronistic
/// [`presets::modern_cluster`] (50 GFLOPS nodes, NVMe-class storage,
/// microsecond interfaces) and compare against the period machines.
///
/// The measured finding is sharper than the folklore "flash killed
/// seeks, so layout stopped mattering": both techniques are *call-count*
/// optimizations, and per-call software cost outlived the disk heads —
/// the layout gain survives on the modern machine and only collapses
/// when the interface cost is artificially zeroed as well.
pub fn ext_modern_hardware(scale: f64) -> ExperimentReport {
    use iosim_apps::btio::{BtClass, BtioConfig};
    use iosim_apps::fft::FftConfig;
    let _ = scale;

    #[derive(Clone, Copy)]
    enum Flavor {
        Period,
        Modern,
        /// Modern with a (hypothetical) near-free I/O software path.
        ModernFreeCalls,
    }

    // FFT layout gain under each machine flavour (same logical workload).
    let fft_gain_on = |flavor: Flavor| -> f64 {
        let run_one = |optimized: bool| -> f64 {
            let mut cfg = FftConfig::new(512, 4, optimized);
            cfg.mem_per_proc = 256 << 10;
            cfg.io_nodes = 2;
            let mut mcfg = match flavor {
                Flavor::Period => presets::paragon_small()
                    .with_compute_nodes(4)
                    .with_io_nodes(2),
                _ => presets::modern_cluster()
                    .with_compute_nodes(4)
                    .with_io_nodes(2),
            };
            if matches!(flavor, Flavor::ModernFreeCalls) {
                let free = iosim_simkit::time::SimDuration::from_nanos(100);
                mcfg.unix.read_call = free;
                mcfg.unix.write_call = free;
                mcfg.unix.seek = free;
                mcfg.disk.per_request_overhead = free;
                mcfg.disk.seek_penalty = free;
            }
            run_ranks(mcfg, 4, move |ctx| {
                let cfg = cfg.clone();
                Box::pin(async move {
                    iosim_apps::fft::rank_program_on(ctx, cfg).await;
                })
            })
            .exec_time
            .as_secs_f64()
        };
        run_one(false) / run_one(true)
    };

    // BTIO collective gain, period vs modern.
    let btio_gain_on = |modern: bool| -> f64 {
        let run_one = |optimized: bool| -> f64 {
            let cfg = BtioConfig {
                dumps: 5,
                ..BtioConfig::new(BtClass::Custom(16), 9, optimized)
            };
            let mcfg = if modern {
                presets::modern_cluster().with_compute_nodes(9)
            } else {
                presets::sp2().with_compute_nodes(9)
            };
            run_ranks(mcfg, 9, move |ctx| {
                let cfg = cfg.clone();
                Box::pin(async move {
                    iosim_apps::btio::rank_program_on(ctx, cfg).await;
                })
            })
            .exec_time
            .as_secs_f64()
        };
        run_one(false) / run_one(true)
    };

    let fft_1998 = fft_gain_on(Flavor::Period);
    let fft_2026 = fft_gain_on(Flavor::Modern);
    let fft_free = fft_gain_on(Flavor::ModernFreeCalls);
    let btio_1998 = btio_gain_on(false);
    let btio_2026 = btio_gain_on(true);

    let mut report = ExperimentReport::new(
        "Extension 6: the 1998 optimizations on a modern (NVMe-class) cluster",
    );
    report.push_body(&format!(
        "{:<22} {:>13} {:>8} {:>18}\n{:<22} {:>12.2}x {:>7.2}x {:>17.2}x\n{:<22} {:>12.2}x {:>7.2}x {:>18}\n",
        "technique (speedup)", "1990s machine", "modern", "modern, free calls",
        "file layout (FFT)", fft_1998, fft_2026, fft_free,
        "collective I/O (BTIO)", btio_1998, btio_2026, "-",
    ));
    report.push(Comparison::claim(
        "collective I/O remains clearly effective on modern hardware",
        "request counts and per-call software costs outlived the hardware (extension)",
        btio_2026 > 1.3,
    ));
    report.push(Comparison::claim(
        "the layout optimization also survives — it is a call-count optimization",
        "per-call software cost, not the seek arm, carries the 1998 advice forward (extension)",
        fft_2026 > 1.5,
    ));
    report.push(Comparison::claim(
        "zeroing the software path (hypothetical) finally collapses the layout gain",
        "with free calls and free seeks only bandwidth remains (extension)",
        fft_free < fft_2026 / 2.0,
    ));
    report
}

/// Extension 7: I/O-node buffer-cache ablation. Sweep the per-node LRU
/// cache capacity (0 = the paper's uncached machine) over two workloads
/// that exercise different cache mechanisms: the unoptimized
/// out-of-core FFT (re-reads its panel files and benefits from LRU
/// residency, read-ahead, and write-behind) and the data-sieving
/// read-modify-write pattern (whose writes the cache absorbs). The
/// paper's machines ran the PFS I/O daemons without such a cache; this
/// quantifies what one would have bought.
pub fn ext_cache_ablation(scale: f64) -> ExperimentReport {
    use iosim_apps::fft::FftConfig;
    let _ = scale;
    let sizes_mb = [0u64, 1, 4, 16];

    let fft = map_parallel(sizes_mb.to_vec(), default_threads(), |&mb| {
        let mut cfg = FftConfig::new(512, 4, false);
        cfg.mem_per_proc = 256 << 10;
        cfg.io_nodes = 2;
        cfg.cache_mb = mb;
        let res = iosim_apps::fft::run(&cfg);
        (res.io_time.as_secs_f64(), res.cache.hit_rate())
    });
    let sieve = map_parallel(sizes_mb.to_vec(), default_threads(), |&mb| {
        run_sieve_cached(mb)
    });

    let mut report = ExperimentReport::new(
        "Extension 7: I/O-node buffer-cache ablation (LRU + write-behind + read-ahead)",
    );
    let mut fig = TextFigure::new(
        "I/O time vs per-I/O-node cache capacity",
        "cache (MB)",
        "I/O time (s)",
    );
    fig.push(Series::new(
        "FFT (unoptimized, 512^2)",
        sizes_mb
            .iter()
            .zip(&fft)
            .map(|(&mb, &(t, _))| (mb as f64, t))
            .collect(),
    ));
    fig.push(Series::new(
        "sieve RMW (4 procs)",
        sizes_mb
            .iter()
            .zip(&sieve)
            .map(|(&mb, &(t, _))| (mb as f64, t))
            .collect(),
    ));
    report.push_figure(fig);
    report.push_body(&format!(
        "hit rates: FFT {} / sieve {}\n",
        sizes_mb
            .iter()
            .zip(&fft)
            .filter(|(&mb, _)| mb > 0)
            .map(|(&mb, &(_, h))| format!("{mb}MB={:.0}%", 100.0 * h))
            .collect::<Vec<_>>()
            .join(" "),
        sizes_mb
            .iter()
            .zip(&sieve)
            .filter(|(&mb, _)| mb > 0)
            .map(|(&mb, &(_, h))| format!("{mb}MB={:.0}%", 100.0 * h))
            .collect::<Vec<_>>()
            .join(" "),
    ));
    report.push(Comparison::claim(
        "a 4 MB per-node cache strictly reduces FFT I/O time",
        "panel re-reads hit the LRU cache; write-behind absorbs the transpose writes (extension)",
        fft[2].0 < fft[0].0,
    ));
    report.push(Comparison::claim(
        "a 4 MB per-node cache strictly reduces the sieve RMW I/O time",
        "write-behind completes the sieved write-back at memory speed (extension)",
        sieve[2].0 < sieve[0].0,
    ));
    report.push(Comparison::claim(
        "growing the cache never hurts these workloads",
        "more residency, same background flush traffic (extension)",
        fft.windows(2).all(|w| w[1].0 <= w[0].0 * 1.05)
            && sieve.windows(2).all(|w| w[1].0 <= w[0].0 * 1.05),
    ));
    report
}

/// Extension 8: fragment loop vs vectored list-I/O ablation. Two
/// strided workloads — the out-of-core FFT column read (512 fragments
/// of 2 KB at an 8 KB stride per process) and the BTIO dump pattern
/// (interleaved 512-byte cell runs at a 2 KB stride) — issued either as
/// one `read_at`/`write_at` call per fragment or as a single
/// `readv`/`writev` request. Under PASSION the interface overhead is
/// charged once per *request* and the per-node disk queue is booked
/// once per request, so list-I/O strictly reduces I/O time; Unix-style
/// interfaces charge per *fragment* either way, so the vectored call
/// degenerates to the loop and gains exactly nothing.
pub fn ext_listio_ablation(scale: f64) -> ExperimentReport {
    use iosim_pfs::IoRequest;
    type ReqBuilder<'a> = &'a dyn Fn(usize) -> IoRequest;
    let _ = scale;
    let procs = 4usize;

    // Workload A: FFT column-block read. Row-major 512x512 complex
    // array; each rank reads its 128-column block — one fragment per
    // row.
    let fft_req = |rank: usize| -> IoRequest {
        let n = 512u64;
        let cols = n / procs as u64;
        IoRequest::strided(rank as u64 * cols * 16, cols * 16, n * 16, n)
    };
    // Workload B: BTIO dump. Rank-interleaved 512-byte cell runs, 25%
    // density per rank.
    let btio_req =
        |rank: usize| -> IoRequest { IoRequest::strided(rank as u64 * 512, 512, 2048, 200) };

    // Run one (workload, interface, style) cell and return I/O time.
    let run_cell =
        |iface: Interface, listio: bool, write: bool, build: &dyn Fn(usize) -> IoRequest| -> f64 {
            let reqs: Vec<IoRequest> = (0..procs).map(build).collect();
            let res = run_ranks(
                presets::paragon_large()
                    .with_compute_nodes(procs)
                    .with_io_nodes(8),
                procs,
                move |ctx| {
                    let req = reqs[ctx.rank].clone();
                    Box::pin(async move {
                        let fh = ctx
                            .fs
                            .open(ctx.rank, iface, "listio", Some(CreateOptions::default()))
                            .await
                            .expect("open");
                        fh.preallocate(req.end());
                        if listio {
                            if write {
                                fh.writev_discard(&req).await.expect("writev");
                            } else {
                                fh.readv_discard(&req).await.expect("readv");
                            }
                        } else {
                            for &(off, len) in req.extents() {
                                if write {
                                    fh.write_discard_at(off, len).await.expect("write");
                                } else {
                                    fh.read_discard_at(off, len).await.expect("read");
                                }
                            }
                        }
                        ctx.comm.barrier().await;
                    })
                },
            );
            res.io_time.as_secs_f64()
        };

    let workloads: [(&str, bool, ReqBuilder); 2] = [
        ("FFT column read", false, &fft_req),
        ("BTIO dump write", true, &btio_req),
    ];
    let ifaces = [Interface::Passion, Interface::UnixStyle];
    // ratios[w][i]: fragment-loop I/O time over list-I/O I/O time.
    let mut ratios = [[0.0f64; 2]; 2];
    let mut body = format!(
        "{:<18} {:>10} {:>14} {:>12} {:>8}\n",
        "workload", "interface", "fragment loop", "list-I/O", "ratio"
    );
    for (wi, (name, write, build)) in workloads.iter().enumerate() {
        for (ii, &iface) in ifaces.iter().enumerate() {
            let frag = run_cell(iface, false, *write, *build);
            let list = run_cell(iface, true, *write, *build);
            ratios[wi][ii] = frag / list;
            body.push_str(&format!(
                "{:<18} {:>10} {:>13.3}s {:>11.3}s {:>7.2}x\n",
                name,
                format!("{iface:?}"),
                frag,
                list,
                ratios[wi][ii]
            ));
        }
    }

    let mut report = ExperimentReport::new(
        "Extension 8: fragment loop vs vectored list-I/O (FFT column read, BTIO dump)",
    );
    report.push_body(&body);
    let mut fig = TextFigure::new(
        "fragment-loop / list-I/O time ratio per interface",
        "workload (1=FFT read, 2=BTIO write)",
        "ratio",
    );
    for (ii, &iface) in ifaces.iter().enumerate() {
        fig.push(Series::new(
            if iface == Interface::Passion {
                "PASSION (per-request overhead)"
            } else {
                "Unix-style (per-fragment overhead)"
            },
            (0..workloads.len())
                .map(|wi| ((wi + 1) as f64, ratios[wi][ii]))
                .collect(),
        ));
    }
    report.push_figure(fig);
    report.push(Comparison::claim(
        "PASSION list-I/O strictly reduces the FFT column-read I/O time",
        "one interface call and one disk-queue booking per node instead of 512 (extension)",
        ratios[0][0] > 1.0,
    ));
    report.push(Comparison::claim(
        "PASSION list-I/O strictly reduces the BTIO dump I/O time",
        "the 200 interleaved cell runs collapse into one request (extension)",
        ratios[1][0] > 1.0,
    ));
    report.push(Comparison::claim(
        "a Unix-style interface gains nothing from the vectored call",
        "per-fragment charging makes readv/writev degenerate to the loop exactly",
        ratios[0][1] == 1.0 && ratios[1][1] == 1.0,
    ));
    report
}

/// Extension 9: NCQ-style command-queue depth ablation. The FFT
/// column-read and BTIO dump patterns of `ext8`, but with each rank's
/// column block assigned in **reverse** rank order — so the legacy FIFO
/// disk queue services the concurrent ranks' commands in exactly the
/// wrong order (every dispatch seeks backward through the file), the
/// arrival pattern command queuing exists for. Three service styles —
/// per-fragment loop, vectored list I/O, and the batched two-phase
/// collective — are swept over queue depth 1, 2, 4, 8, 16. Depth 1 is
/// bit-identical to the legacy FIFO path; deeper queues let the
/// bounded-window elevator turn backward seeks into sequential head
/// continuations. The batched collective additionally books each I/O
/// node's queue exactly once per round, which the run's
/// [`iosim_trace::QueueSnapshot`] counters assert.
pub fn ext_queue_ablation(scale: f64) -> ExperimentReport {
    use iosim_apps::common::{with_queue_depth, RunResult};
    use iosim_pfs::IoRequest;
    let _ = scale;
    let procs = 4usize;
    let io_nodes = 8usize;
    let depths = [1usize, 2, 4, 8, 16];
    let styles = ["fragment", "list", "collective"];
    let workloads = ["FFT column read", "BTIO dump write"];

    // Reverse slot permutation: rank r takes column block procs-1-r, so
    // the booking order (rank order) descends through the file.
    let build = |wi: usize, rank: usize| -> IoRequest {
        let slot = (procs - 1 - rank) as u64;
        if wi == 0 {
            let n = 512u64;
            let cols = n / procs as u64;
            IoRequest::strided(slot * cols * 16, cols * 16, n * 16, n)
        } else {
            IoRequest::strided(slot * 512, 512, 2048, 200)
        }
    };

    let mut grid: Vec<(usize, usize, usize)> = Vec::new();
    for wi in 0..workloads.len() {
        for si in 0..styles.len() {
            for &d in &depths {
                grid.push((wi, si, d));
            }
        }
    }
    let results: Vec<RunResult> = map_parallel(grid, default_threads(), |&(wi, si, depth)| {
        // FFT is a read workload except in the collective arm (the
        // collective is the dump direction on both workloads).
        let is_write = wi == 1 || si == 2;
        let reqs: Vec<IoRequest> = (0..procs).map(|r| build(wi, r)).collect();
        let mcfg = with_queue_depth(
            presets::paragon_large()
                .with_compute_nodes(procs)
                .with_io_nodes(io_nodes),
            depth,
        );
        run_ranks(mcfg, procs, move |ctx| {
            let req = reqs[ctx.rank].clone();
            Box::pin(async move {
                let fh = ctx
                    .fs
                    .open(
                        ctx.rank,
                        Interface::Passion,
                        "queue",
                        Some(CreateOptions::default()),
                    )
                    .await
                    .expect("open");
                fh.preallocate(req.end());
                match si {
                    0 => {
                        for &(off, len) in req.extents() {
                            if is_write {
                                fh.write_discard_at(off, len).await.expect("write");
                            } else {
                                fh.read_discard_at(off, len).await.expect("read");
                            }
                        }
                    }
                    1 => {
                        if is_write {
                            fh.writev_discard(&req).await.expect("writev");
                        } else {
                            fh.readv_discard(&req).await.expect("readv");
                        }
                    }
                    _ => {
                        let pieces: Vec<Piece> = req
                            .extents()
                            .iter()
                            .map(|&(off, len)| Piece::synthetic(off, len))
                            .collect();
                        write_collective(&ctx.comm, &fh, pieces)
                            .await
                            .expect("collective");
                    }
                }
                ctx.comm.barrier().await;
            })
        })
    });
    let cell = |wi: usize, si: usize, di: usize| -> &RunResult { &results[(wi * 3 + si) * 5 + di] };
    let io = |wi: usize, si: usize, di: usize| -> f64 { cell(wi, si, di).io_time.as_secs_f64() };

    let mut body = format!("{:<18} {:<12}", "workload", "style");
    for d in depths {
        body.push_str(&format!(" {:>9}", format!("d={d}")));
    }
    body.push('\n');
    let mut fig = TextFigure::new(
        "wall-clock I/O time vs command-queue depth",
        "queue depth",
        "I/O time (s)",
    );
    for (wi, wname) in workloads.iter().enumerate() {
        for (si, sname) in styles.iter().enumerate() {
            body.push_str(&format!("{wname:<18} {sname:<12}"));
            for di in 0..depths.len() {
                body.push_str(&format!(" {:>8.3}s", io(wi, si, di)));
            }
            body.push('\n');
            fig.push(Series::new(
                format!("{wname} / {sname}"),
                depths
                    .iter()
                    .enumerate()
                    .map(|(di, &d)| (d as f64, io(wi, si, di)))
                    .collect::<Vec<_>>(),
            ));
        }
    }

    let mut report = ExperimentReport::new(
        "Extension 9: I/O-node command-queue depth ablation (reverse-interleaved FFT read, BTIO dump)",
    );
    report.push_body(&body);
    report.push_figure(fig);
    report.push(Comparison::claim(
        "depth > 1 strictly reduces the FFT column-read fragment-loop I/O time",
        "the elevator re-sorts the ranks' backward-interleaved reads into sequential sweeps (extension)",
        (1..depths.len()).all(|di| io(0, 0, di) < io(0, 0, 0)),
    ));
    report.push(Comparison::claim(
        "depth > 1 strictly reduces the BTIO dump fragment-loop I/O time",
        "same mechanism on the interleaved 512-byte cell writes (extension)",
        (1..depths.len()).all(|di| io(1, 0, di) < io(1, 0, 0)),
    ));
    report.push(Comparison::claim(
        "deeper queues never increase simulated I/O time on these workloads",
        "reordering is only applied when it does not lose the head position (extension)",
        (0..workloads.len()).all(|wi| {
            (0..styles.len())
                .all(|si| (1..depths.len()).all(|di| io(wi, si, di) <= io(wi, si, di - 1) * 1.001))
        }),
    ));
    // The once-per-round invariant: with queue depth > 1 the batched
    // collective books each touched I/O node exactly once per round.
    let unit = presets::paragon_large().default_stripe_unit;
    let once_per_round = (0..workloads.len()).all(|wi| {
        let end = (0..procs).map(|r| build(wi, r).end()).max().expect("ranks");
        let touched = (end.div_ceil(unit) as usize).min(io_nodes) as u64;
        (1..depths.len()).all(|di| {
            let q = &cell(wi, 2, di).queue;
            q.collective_rounds > 0 && q.bookings == q.collective_rounds * touched
        })
    });
    report.push(Comparison::claim(
        "a batched collective books each I/O node exactly once per round",
        "aggregators own whole I/O nodes, so bookings = rounds x touched nodes (extension)",
        once_per_round,
    ));
    report
}

/// The data-sieving read-modify-write pattern of `ext2`, on a machine
/// with `cache_mb` megabytes of per-I/O-node buffer cache. Returns
/// (I/O time in seconds, cache hit rate).
fn run_sieve_cached(cache_mb: u64) -> (f64, f64) {
    let procs = 4usize;
    let records_per_rank = 200u64;
    let record = 512u64;
    let stride = 2048u64;
    let mcfg =
        iosim_apps::common::with_cache_mb(presets::sp2().with_compute_nodes(procs), cache_mb);
    let res = run_ranks(mcfg, procs, move |ctx| {
        Box::pin(async move {
            let fh = ctx
                .fs
                .open(
                    ctx.rank,
                    Interface::UnixStyle,
                    "sieve-cache",
                    Some(CreateOptions::default()),
                )
                .await
                .expect("open");
            let pieces: Vec<Piece> = (0..records_per_rank)
                .map(|k| Piece::synthetic(k * stride + ctx.rank as u64 * record, record))
                .collect();
            write_sieved(&fh, pieces).await.expect("sieve");
            ctx.comm.barrier().await;
        })
    });
    (res.io_time.as_secs_f64(), res.cache.hit_rate())
}

/// Extension 10: open-loop overload sweep. Thousands of independent
/// clients offer load at a fixed rate regardless of completions (the
/// workload crate's open-loop generator), so latency and achieved
/// throughput can be measured *through* the saturation knee — something
/// the paper's closed-loop applications cannot show. Sweeps aggregate
/// offered rate against the paper's optimization repertoire: buffer
/// cache, list-I/O, NCQ-style queue depth, and two-phase exchange
/// windows. The headline shape: an optimization's advantage is a
/// property of the operating point, not of the technique — caching and
/// list-I/O look dramatic at low load and shrink (or invert) once the
/// disks saturate, while deeper queues only start paying off *at* the
/// knee, where a backlog exists to reorder.
pub fn ext_overload(scale: f64) -> ExperimentReport {
    use iosim_apps::common::{with_cache_mb, with_queue_depth};
    use iosim_simkit::time::SimDuration;
    use iosim_workload::{run_open_loop, saturation_knee, ReplaySpec, SweepPoint, SynthSpec};

    // Per-client Poisson rates; x24 clients for the aggregate offered
    // rate. The ladder is chosen to straddle the 2-I/O-node Paragon's
    // capacity (tens of ops/s at 32 KB) for every configuration. The
    // window is fixed rather than scaled: overload ratios only reach
    // their asymptotic shape once the backlog dwarfs per-op service
    // time, and the whole sweep costs tens of host milliseconds anyway.
    let _ = scale;
    let rates = [0.25f64, 1.0, 4.0, 16.0];
    let duration = 2.0;
    let machine = presets::paragon_small;
    let configs: Vec<(&'static str, ReplaySpec)> = vec![
        ("direct", ReplaySpec::direct(machine())),
        (
            "direct + 4 MB cache",
            ReplaySpec::direct(with_cache_mb(machine(), 4)),
        ),
        ("list-I/O", ReplaySpec::list_io(machine(), 8)),
        (
            "direct + queue depth 8",
            ReplaySpec::direct(with_queue_depth(machine(), 8)),
        ),
        (
            "two-phase (window 16)",
            ReplaySpec::two_phase(machine(), 16),
        ),
    ];
    let jobs: Vec<(usize, usize)> = (0..configs.len())
        .flat_map(|c| (0..rates.len()).map(move |r| (c, r)))
        .collect();
    let cells = map_parallel(jobs, default_threads(), |&(c, r)| {
        let mut synth = SynthSpec::small(rates[r], 4242);
        synth.clients = 24;
        synth.duration = SimDuration::from_secs_f64(duration);
        synth.op_bytes = 32 << 10;
        synth.fragments = 4;
        synth.files = 2;
        synth.file_bytes = 8 << 20;
        run_open_loop(&synth, &configs[c].1).sweep_point()
    });
    let sweeps: Vec<Vec<SweepPoint>> = (0..configs.len())
        .map(|c| cells[c * rates.len()..(c + 1) * rates.len()].to_vec())
        .collect();

    let mut report = ExperimentReport::new(
        "Extension 10: open-loop overload — offered load vs achieved throughput and tail latency \
         (24 clients, 32 KB strided ops, Paragon 2 I/O nodes)",
    );
    report.push_body("config | knee (ops/s offered) | achieved@max | p99@low (ms) | p99@max (ms)");
    report.push_body("-------|----------------------|--------------|--------------|-------------");
    let mut knees = Vec::new();
    for (i, (name, _)) in configs.iter().enumerate() {
        let s = &sweeps[i];
        let knee = saturation_knee(s);
        knees.push(knee);
        report.push_body(&format!(
            "{} | {} | {:.1} | {:.2} | {:.1}",
            name,
            match knee {
                Some(k) => format!("{:.0}", s[k].offered),
                None => "none".into(),
            },
            s[s.len() - 1].achieved,
            s[0].p99_ms,
            s[s.len() - 1].p99_ms,
        ));
    }
    let mut fig = TextFigure::new(
        "achieved vs offered rate (ops/s)",
        "offered (ops/s)",
        "achieved (ops/s)",
    );
    for (i, (name, _)) in configs.iter().enumerate() {
        fig.push(Series::new(
            *name,
            sweeps[i].iter().map(|p| (p.offered, p.achieved)).collect(),
        ));
    }
    report.push_figure(fig);
    let mut fig = TextFigure::new("p99 latency vs offered rate", "offered (ops/s)", "p99 (ms)");
    for (i, (name, _)) in configs.iter().enumerate() {
        fig.push(Series::new(
            *name,
            sweeps[i].iter().map(|p| (p.offered, p.p99_ms)).collect(),
        ));
    }
    report.push_figure(fig);

    // Advantage of configuration `i` over the direct baseline at sweep
    // index `r`, measured on tail latency (higher = better). The direct
    // baseline's knee sits at index 1 of the rate ladder; `last` is deep
    // overload (~12x the baseline's capacity).
    let adv = |i: usize, r: usize| sweeps[0][r].p99_ms / sweeps[i][r].p99_ms;
    let knee_ix = 1;
    let last = rates.len() - 1;
    report.push(Comparison::claim(
        "every configuration reaches a measured saturation knee within the sweep",
        "open-loop arrivals keep offering load past capacity (extension; no paper value)",
        knees.iter().all(|k| k.is_some()),
    ));
    report.push(Comparison::claim(
        "the buffer cache's tail-latency advantage shrinks as overload deepens past the knee",
        "write-behind absorbs bursts only until the dirty buffer itself saturates (extension)",
        adv(1, knee_ix) > adv(1, last),
    ));
    report.push(Comparison::claim(
        "list-I/O's tail-latency advantage shrinks as overload deepens past the knee",
        "coalescing buys a fixed per-op saving, while queueing delay grows without bound (extension)",
        adv(2, knee_ix) > adv(2, last),
    ));
    report.push(Comparison::claim(
        "the queue-depth advantage inverts at the knee: elevator reordering worsens p99 vs FIFO",
        "reordering for throughput starves whichever op sits at the wrong end of the sweep (extension)",
        sweeps[3][knee_ix].p99_ms > sweeps[0][knee_ix].p99_ms,
    ));
    report.push(Comparison::claim(
        "two-phase exchange windows hurt the tail at low load yet sustain higher throughput at max load",
        "window batching trades per-op latency for scheduling freedom (extension)",
        adv(4, 0) < 1.0 && sweeps[4][last].achieved > sweeps[0][last].achieved,
    ));
    report
}

/// Host-thread ladder of the shard-scaling ablation (extension 11).
pub const SHARD_THREADS: [usize; 4] = [1, 2, 4, 8];

/// Workloads of the shard-scaling ablation, in report order: two
/// multi-I/O-node applications and an ext10-style open-loop overload
/// replay.
pub const SHARD_SCALING_NAMES: [&str; 3] = ["fft", "btio", "openloop_overload"];

/// One measured cell of the shard-scaling ablation.
#[derive(Clone, Copy, Debug)]
pub struct ShardRunSample {
    /// Host threads requested.
    pub threads: usize,
    /// Host wall time of the simulation.
    pub wall: std::time::Duration,
    /// Task polls executed across all shards.
    pub sim_events: u64,
    /// Scheduler throughput: polls per host second.
    pub events_per_sec: f64,
    /// Virtual completion time — must be identical across thread counts.
    pub virtual_exec_s: f64,
    /// Combined schedule fingerprint — must be identical across thread
    /// counts.
    pub fingerprint: u64,
}

fn shard_scaling_fft_cfg() -> iosim_apps::fft::FftConfig {
    // 8 ranks over the small Paragon's 2 I/O nodes: a 2-shard plan.
    iosim_apps::fft::FftConfig::new(256, 8, true)
}

fn shard_scaling_btio_cfg() -> iosim_apps::btio::BtioConfig {
    use iosim_apps::btio::{BtClass, BtioConfig};
    // 9 ranks on the SP-2's 4 I/O nodes: a 4-shard plan.
    BtioConfig {
        dumps: 2,
        ..BtioConfig::new(BtClass::Custom(16), 9, false)
    }
}

fn shard_scaling_synth() -> (iosim_workload::SynthSpec, iosim_workload::ReplaySpec) {
    use iosim_simkit::time::SimDuration;
    use iosim_workload::{ReplaySpec, SynthSpec};
    // The ext10 overload population at a mid-ladder rate.
    let mut synth = SynthSpec::small(4.0, 4242);
    synth.clients = 24;
    synth.duration = SimDuration::from_secs_f64(2.0);
    synth.op_bytes = 32 << 10;
    synth.fragments = 4;
    synth.files = 2;
    synth.file_bytes = 8 << 20;
    (synth, ReplaySpec::direct(presets::paragon_small()))
}

/// Run one shard-scaling workload at `threads` host threads and sample
/// its schedule and throughput (shared by extension 11 and the
/// `bench wallclock` `shard_scaling` section).
pub fn run_shard_scaling_config(name: &str, threads: usize) -> ShardRunSample {
    use iosim_apps::{btio, fft};
    use iosim_workload::run_open_loop_threaded;
    let (fingerprint, sim_events, virtual_exec_s, wall) = match name {
        "fft" => {
            let r = fft::run_threaded(&shard_scaling_fft_cfg(), threads);
            (
                r.sched_fingerprint,
                r.sim_events,
                r.exec_time.as_secs_f64(),
                r.host_elapsed,
            )
        }
        "btio" => {
            let r = btio::run_threaded(&shard_scaling_btio_cfg(), threads);
            (
                r.sched_fingerprint,
                r.sim_events,
                r.exec_time.as_secs_f64(),
                r.host_elapsed,
            )
        }
        "openloop_overload" => {
            let (synth, spec) = shard_scaling_synth();
            let r = run_open_loop_threaded(&synth, &spec, threads);
            (
                r.stats.sched_fingerprint,
                r.stats.sim_events,
                r.stats.exec_time.as_secs_f64(),
                r.stats.host_elapsed,
            )
        }
        other => panic!("unknown shard-scaling config {other}"),
    };
    let s = wall.as_secs_f64();
    ShardRunSample {
        threads,
        wall,
        sim_events,
        events_per_sec: if s > 0.0 { sim_events as f64 / s } else { 0.0 },
        virtual_exec_s,
        fingerprint,
    }
}

/// The monolithic (single-executor) oracle fingerprint of a shard-scaling
/// workload — differs from the sharded fingerprint exactly when the
/// machine genuinely decomposed into more than one shard.
fn shard_scaling_monolithic_fingerprint(name: &str) -> u64 {
    use iosim_apps::{btio, fft};
    use iosim_workload::run_open_loop;
    match name {
        "fft" => fft::run(&shard_scaling_fft_cfg()).sched_fingerprint,
        "btio" => btio::run(&shard_scaling_btio_cfg()).sched_fingerprint,
        "openloop_overload" => {
            let (synth, spec) = shard_scaling_synth();
            run_open_loop(&synth, &spec).stats.sched_fingerprint
        }
        other => panic!("unknown shard-scaling config {other}"),
    }
}

/// Extension 11: shard-scaling ablation. The sharded conservative-
/// lookahead engine runs FFT (2 shards), BTIO (4 shards), and an
/// ext10-style open-loop overload replay (2 shards) at 1, 2, 4, and 8
/// host threads. The engine's contract is measured, not assumed: the
/// combined schedule fingerprint and the virtual completion time must be
/// bit-identical at every thread count (worker placement is invisible),
/// while events/sec and wall time are free to scale with the host.
/// Throughput ratios are honest measurements of *this* host — on a
/// single-core container threads cannot speed anything up, and the
/// report says so rather than faking a curve.
pub fn ext_shard_scaling(scale: f64) -> ExperimentReport {
    let _ = scale;
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut report = ExperimentReport::new(format!(
        "Extension 11: shard-scaling ablation — sharded conservative-lookahead engine \
         at 1/2/4/8 host threads (this host has {host_cores} core(s))"
    ));
    report.push_body("config | threads | events/sec | host wall (ms) | fingerprint");
    report.push_body("-------|---------|------------|----------------|------------");
    let mut fig = TextFigure::new(
        "scheduler throughput vs host threads",
        "threads",
        "events/sec",
    );
    let mut all_deterministic = true;
    let mut all_virtual_invariant = true;
    let mut all_multi_shard = true;
    let mut ratio_lines = Vec::new();
    for name in SHARD_SCALING_NAMES {
        let samples: Vec<ShardRunSample> = SHARD_THREADS
            .iter()
            .map(|&t| run_shard_scaling_config(name, t))
            .collect();
        for s in &samples {
            report.push_body(&format!(
                "{name} | {} | {:.0} | {:.1} | {:#018x}",
                s.threads,
                s.events_per_sec,
                s.wall.as_secs_f64() * 1e3,
                s.fingerprint,
            ));
        }
        all_deterministic &= samples
            .iter()
            .all(|s| s.fingerprint == samples[0].fingerprint);
        all_virtual_invariant &= samples
            .iter()
            .all(|s| s.virtual_exec_s == samples[0].virtual_exec_s);
        all_multi_shard &= samples[0].fingerprint != shard_scaling_monolithic_fingerprint(name);
        let base = samples[0].events_per_sec;
        let at4 = samples
            .iter()
            .find(|s| s.threads == 4)
            .map_or(0.0, |s| s.events_per_sec);
        ratio_lines.push(format!(
            "{name}: {:.2}x events/sec at 4 threads vs 1",
            if base > 0.0 { at4 / base } else { 0.0 }
        ));
        fig.push(Series::new(
            name,
            samples
                .iter()
                .map(|s| (s.threads as f64, s.events_per_sec))
                .collect(),
        ));
    }
    report.push_figure(fig);
    report.push_body(&format!(
        "threads=4 vs threads=1 on this {host_cores}-core host: {}",
        ratio_lines.join("; ")
    ));
    report.push(Comparison::claim(
        "the schedule fingerprint is bit-identical at 1, 2, 4, and 8 host threads",
        "conservative windows make worker placement invisible (tentpole determinism bar)",
        all_deterministic,
    ));
    report.push(Comparison::claim(
        "virtual completion times are identical across thread counts",
        "thread count is a host-side knob; the simulated machine never sees it (extension)",
        all_virtual_invariant,
    ));
    report.push(Comparison::claim(
        "every multi-I/O-node workload genuinely decomposes into multiple shards",
        "the sharded schedule differs from the monolithic oracle's on all three configs (extension)",
        all_multi_shard,
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::scf11::assert_shape;

    #[test]
    fn listio_ablation_extension_holds() {
        let r = ext_listio_ablation(1.0);
        assert_shape(&r);
    }

    #[test]
    fn queue_ablation_extension_holds() {
        let r = ext_queue_ablation(1.0);
        assert_shape(&r);
    }

    #[test]
    fn cache_ablation_extension_holds() {
        let r = ext_cache_ablation(1.0);
        assert_shape(&r);
    }

    #[test]
    fn modern_hardware_extension_holds() {
        let r = ext_modern_hardware(1.0);
        assert_shape(&r);
    }

    #[test]
    fn disk_vs_recompute_crossover_holds() {
        let r = ext_disk_vs_recompute(0.05);
        assert_shape(&r);
    }

    #[test]
    fn link_contention_extension_holds() {
        let r = ext_link_contention(1.0);
        assert_shape(&r);
    }

    #[test]
    fn hotspot_extension_holds() {
        let r = ext_hotspot(0.05);
        assert_shape(&r);
    }

    #[test]
    fn sieve_extension_holds() {
        let r = ext_sieve_vs_two_phase(1.0);
        assert_shape(&r);
    }

    #[test]
    fn collective_buffer_extension_holds() {
        let r = ext_collective_buffer(1.0);
        assert_shape(&r);
    }

    #[test]
    fn overload_extension_holds() {
        let r = ext_overload(1.0);
        assert_shape(&r);
    }

    #[test]
    fn shard_scaling_extension_holds() {
        let r = ext_shard_scaling(1.0);
        assert_shape(&r);
        assert!(r.body.contains("fingerprint"));
    }
}
