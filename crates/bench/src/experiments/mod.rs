//! One module per paper table/figure; each returns an
//! [`iosim_trace::report::ExperimentReport`] with the regenerated
//! rows/series and the shape checks against the paper's claims.

pub mod ast;
pub mod btio;
pub mod extensions;
pub mod fft;
pub mod scf11;
pub mod scf30;
pub mod summary;

use iosim_trace::report::ExperimentReport;

/// Run every experiment at the given scale (1.0 = paper scale) and return
/// the reports in paper order.
pub fn all(scale: f64) -> Vec<ExperimentReport> {
    let mut out = Vec::new();
    out.push(summary::table1());
    let (t2, t3) = scf11::table2_table3(scale);
    out.push(t2);
    out.push(t3);
    out.push(scf11::fig1(scale));
    out.push(scf11::fig2(scale));
    out.push(scf11::fig3(scale));
    out.push(scf30::fig4(scale));
    out.push(fft::fig5(scale));
    out.push(btio::fig6(scale));
    out.push(btio::fig7(scale));
    out.push(ast::table4(scale));
    out.push(summary::table5(scale.min(0.2)));
    out.push(extensions::ext_hotspot(scale.min(0.2)));
    out.push(extensions::ext_sieve_vs_two_phase(scale));
    out.push(extensions::ext_collective_buffer(scale));
    out.push(extensions::ext_link_contention(scale));
    out.push(extensions::ext_disk_vs_recompute(scale));
    out.push(extensions::ext_modern_hardware(scale));
    out.push(extensions::ext_cache_ablation(scale));
    out.push(extensions::ext_listio_ablation(scale));
    out.push(extensions::ext_queue_ablation(scale));
    out.push(extensions::ext_overload(scale));
    out.push(extensions::ext_shard_scaling(scale));
    out
}

/// Experiment ids accepted by the `repro` binary: the paper's tables and
/// figures in order, then the extension studies.
pub const IDS: [&str; 23] = [
    "table1", "table2", "table3", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "table4",
    "table5", "ext1", "ext2", "ext3", "ext4", "ext5", "ext6", "ext7", "ext8", "ext9", "ext10",
    "ext11",
];

/// Run one experiment by id.
pub fn by_id(id: &str, scale: f64) -> Option<ExperimentReport> {
    Some(match id {
        "table1" => summary::table1(),
        "table2" => scf11::table2_table3(scale).0,
        "table3" => scf11::table2_table3(scale).1,
        "fig1" => scf11::fig1(scale),
        "fig2" => scf11::fig2(scale),
        "fig3" => scf11::fig3(scale),
        "fig4" => scf30::fig4(scale),
        "fig5" => fft::fig5(scale),
        "fig6" => btio::fig6(scale),
        "fig7" => btio::fig7(scale),
        "table4" => ast::table4(scale),
        "table5" => summary::table5(scale.min(0.2)),
        "ext1" => extensions::ext_hotspot(scale.min(0.2)),
        "ext2" => extensions::ext_sieve_vs_two_phase(scale),
        "ext3" => extensions::ext_collective_buffer(scale),
        "ext4" => extensions::ext_link_contention(scale),
        "ext5" => extensions::ext_disk_vs_recompute(scale),
        "ext6" => extensions::ext_modern_hardware(scale),
        "ext7" => extensions::ext_cache_ablation(scale),
        "ext8" => extensions::ext_listio_ablation(scale),
        "ext9" => extensions::ext_queue_ablation(scale),
        "ext10" => extensions::ext_overload(scale),
        "ext11" => extensions::ext_shard_scaling(scale),
        _ => return None,
    })
}
