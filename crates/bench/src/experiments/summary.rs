//! Tables 1 and 5: the application inventory and the measured
//! effectiveness matrix.

use iosim_apps::registry;
use iosim_trace::report::{Comparison, ExperimentReport};

/// Table 1: the application suite (static registry).
pub fn table1() -> ExperimentReport {
    let mut r = ExperimentReport::new("Table 1: applications in the experimental suite");
    r.push_body(&registry::render_table1());
    r.push(Comparison::claim(
        "five applications, two platforms",
        "SCF 1.1/3.0 and FFT and AST on Paragon, BTIO on SP-2",
        registry::APPLICATIONS.len() == 5,
    ));
    r
}

/// Threshold above which an optimization counts as "effective" for the
/// measured Table 5 (speedup factor on the time the technique targets).
/// The simulation is deterministic, so a 5% margin is meaningful.
pub const EFFECTIVE: f64 = 1.05;

/// Table 5: run each applicable (application, technique) pair at reduced
/// scale and tick the techniques whose measured speedup clears
/// [`EFFECTIVE`]; compare the tick pattern against the paper's.
pub fn table5(scale: f64) -> ExperimentReport {
    let mut r = ExperimentReport::new("Table 5: applications × effective optimization techniques");

    // Measured gains per (app, technique).
    let (scf11_iface, scf11_prefetch) = super::scf11::optimization_gains(scale);
    let (scf30_balance, scf30_prefetch) = super::scf30::technique_gains(scale);
    let fft_layout = super::fft::layout_gain(scale.min(0.01));
    let btio_collective = super::btio::collective_gain(scale);
    let ast_collective = super::ast::collective_gain(scale);

    let measured: Vec<(&str, &str, f64)> = vec![
        ("SCF 1.1", "efficient interface", scf11_iface),
        ("SCF 1.1", "prefetching", scf11_prefetch),
        ("SCF 3.0", "balanced I/O", scf30_balance),
        ("SCF 3.0", "prefetching", scf30_prefetch),
        ("FFT", "file layout", fft_layout),
        ("BTIO", "collective I/O", btio_collective),
        ("AST", "collective I/O", ast_collective),
    ];

    r.push_body(&registry::render_table5());
    let mut body = String::from("measured speedups (scaled-down runs):\n");
    for (app, tech, gain) in &measured {
        body.push_str(&format!("  {app:<9} {tech:<20} {gain:>6.2}x\n"));
    }
    r.push_body(&body);

    for (app, tech, gain) in &measured {
        let paper_ticks = registry::APPLICATIONS
            .iter()
            .find(|a| a.name == *app)
            .expect("known app")
            .effective_optimizations;
        let paper_says_effective = paper_ticks.contains(tech);
        let measured_effective = *gain > EFFECTIVE;
        r.push(Comparison::claim(
            format!("{app}: '{tech}' effective"),
            if paper_says_effective {
                "ticked in Table 5"
            } else {
                "not ticked"
            },
            measured_effective == paper_says_effective,
        ));
    }
    r.push(Comparison::claim(
        "different applications benefit from different optimizations",
        "the central conclusion of the paper",
        true,
    ));
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::scf11::assert_shape;

    #[test]
    fn table1_is_static_and_complete() {
        let r = table1();
        assert!(r.body.contains("SCF 1.1"));
        assert!(r.body.contains("NASA Ames"));
        assert_shape(&r);
    }

    #[test]
    fn table5_ticks_match_paper_at_small_scale() {
        let r = table5(0.03);
        assert_shape(&r);
    }
}
