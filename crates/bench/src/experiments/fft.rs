//! FFT experiment: Figure 5 (file-layout optimization).

use iosim_apps::fft::{run, FftConfig};
use iosim_trace::figure::{Series, TextFigure};
use iosim_trace::report::{Comparison, ExperimentReport};

use crate::parallel::{default_threads, map_parallel};

/// Processor counts of Figure 5.
pub const PROCS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// The three program versions of Figure 5: (label, optimized, io_nodes).
pub fn versions() -> Vec<(&'static str, bool, usize)> {
    vec![
        ("original, 2 I/O nodes", false, 2),
        ("original, 4 I/O nodes", false, 4),
        ("optimized, 2 I/O nodes", true, 2),
    ]
}

/// Matrix dimension at full scale: n = 4096 moves ~1.6 GB total, matching
/// the paper's "1.5 GB total I/O amount". `scale` shrinks n (power of
/// two) for cheap runs.
pub fn n_for_scale(scale: f64) -> u64 {
    let target = (4096.0 * scale.sqrt()).max(64.0) as u64;
    target.next_power_of_two()
}

/// Figure 5: FFT I/O time (a) and total time (b) across processor counts.
pub fn fig5(scale: f64) -> ExperimentReport {
    let n = n_for_scale(scale);
    // Scale the per-process tile memory with the matrix so small runs
    // keep the full-scale tile-to-array ratio (32 MB nodes vs 4096²).
    let mem = ((16u64 << 20) * n * n / (4096 * 4096)).max(64 << 10);
    let mut jobs = Vec::new();
    for &(_, optimized, io_nodes) in &versions() {
        for &p in &PROCS {
            let mut c = FftConfig::new(n, p, optimized);
            c.io_nodes = io_nodes;
            c.mem_per_proc = mem;
            jobs.push(c);
        }
    }
    let flat = map_parallel(jobs, default_threads(), run);
    let grid: Vec<&[iosim_apps::RunResult]> = flat.chunks(PROCS.len()).collect();

    let mut report = ExperimentReport::new(format!(
        "Figure 5: FFT on Intel Paragon (n = {n}, {:.2} GB total I/O)",
        (6 * n * n * 16) as f64 / 1e9
    ));
    for (title, field) in [
        ("(a) I/O time (s)", true),
        ("(b) total execution time (s)", false),
    ] {
        let mut fig = TextFigure::new(title, "procs", "seconds");
        for (vi, (label, _, _)) in versions().iter().enumerate() {
            let pts: Vec<(f64, f64)> = PROCS
                .iter()
                .enumerate()
                .map(|(pi, &p)| {
                    let r = &grid[vi][pi];
                    let y = if field {
                        r.io_time.as_secs_f64()
                    } else {
                        r.exec_time.as_secs_f64()
                    };
                    (p as f64, y)
                })
                .collect();
            fig.push(Series::new(*label, pts));
        }
        report.push_figure(fig);
    }

    let io = |vi: usize, pi: usize| grid[vi][pi].io_time.as_secs_f64();
    let exec = |vi: usize, pi: usize| grid[vi][pi].exec_time.as_secs_f64();

    // Unoptimized I/O time rises beyond a small processor count.
    let min2 = (0..PROCS.len()).fold(f64::MAX, |m, pi| m.min(io(0, pi)));
    report.push(Comparison::claim(
        "unoptimized (2 I/O nodes): I/O time increases at large processor counts",
        "the I/O time actually increases when we use more than 4 compute nodes",
        io(0, PROCS.len() - 1) > 1.5 * min2,
    ));
    // With 4 I/O nodes the rise starts later / is smaller at mid counts.
    report.push(Comparison::claim(
        "4 I/O nodes delay the unoptimized rise",
        "with 4 I/O nodes the increase happens after 8 compute nodes",
        io(1, 3) <= io(0, 3),
    ));
    // The headline: optimized on 2 I/O nodes beats unoptimized on 4 at
    // every processor count.
    let opt_always_wins = (0..PROCS.len()).all(|pi| exec(2, pi) < exec(1, pi));
    report.push(Comparison::claim(
        "optimized 2 I/O nodes beats unoptimized 4 I/O nodes at all sizes",
        "the optimized version outperforms the unoptimized version which uses more I/O nodes",
        opt_always_wins,
    ));
    // The application is I/O dominated.
    let frac = grid[0][2].io_fraction();
    report.push(Comparison::claim(
        "I/O dominates FFT execution (~90–95%)",
        "the I/O time constitutes 90%-95% of the execution time",
        frac > 0.75,
    ));
    report
}

/// Table 5 helper: layout-optimization gain on a small FFT.
pub fn layout_gain(scale: f64) -> f64 {
    let n = n_for_scale(scale);
    let mut u = FftConfig::new(n, 4, false);
    u.mem_per_proc = (n * n * 16 / 16).clamp(64 << 10, 16 << 20);
    let mut o = FftConfig::new(n, 4, true);
    o.mem_per_proc = u.mem_per_proc;
    let ru = run(&u);
    let ro = run(&o);
    ru.exec_time.as_secs_f64() / ro.exec_time.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::scf11::assert_shape;

    #[test]
    fn fig5_shape_holds_at_small_scale() {
        let r = fig5(0.004); // n = 256
        assert_shape(&r);
        assert!(r.body.contains("I/O time"));
        assert!(r.body.contains("total execution time"));
    }

    #[test]
    fn n_for_scale_is_a_power_of_two() {
        for s in [1.0, 0.25, 0.01, 0.0001] {
            assert!(n_for_scale(s).is_power_of_two());
        }
        assert_eq!(n_for_scale(1.0), 4096);
    }
}
