//! AST experiment: Table 4 (execution times, unoptimized vs two-phase,
//! 16 vs 64 I/O nodes).

use iosim_apps::ast::{run, AstConfig};
use iosim_apps::RunResult;
use iosim_trace::report::{Comparison, ExperimentReport};

use crate::parallel::{default_threads, map_parallel};

/// Processor counts of Table 4.
pub const PROCS: [usize; 4] = [16, 36, 64, 121];

/// The paper's Table 4 rows use 16/32/64/128 processors; AST here uses a
/// square process grid, so we take the nearest squares 16/36/64/121 and
/// note the substitution in EXPERIMENTS.md.
pub fn table4(scale: f64) -> ExperimentReport {
    let dumps = ((10.0 * scale).round() as u32).clamp(1, 10);
    let grid_dim = if scale >= 0.99 { 2048 } else { 512 };
    let mk = |p: usize, io: usize, opt: bool| AstConfig {
        dumps,
        grid: grid_dim,
        ..AstConfig::new(p, io, opt)
    };
    let mut jobs = Vec::new();
    for &p in &PROCS {
        for (io, opt) in [(16, false), (64, false), (16, true), (64, true)] {
            jobs.push(mk(p, io, opt));
        }
    }
    let flat = map_parallel(jobs, default_threads(), run);
    let cell = |pi: usize, k: usize| -> &RunResult { &flat[pi * 4 + k] };

    let mut report = ExperimentReport::new(
        "Table 4: AST total execution times (s) — 2K×2K input, Intel Paragon",
    );
    let mut body = String::new();
    body.push_str(&format!(
        "{:>6} {:>18} {:>18} {:>18} {:>18}\n",
        "procs", "unopt 16 I/O", "unopt 64 I/O", "opt 16 I/O", "opt 64 I/O"
    ));
    for (pi, &p) in PROCS.iter().enumerate() {
        body.push_str(&format!(
            "{:>6} {:>18.0} {:>18.0} {:>18.0} {:>18.0}\n",
            p,
            cell(pi, 0).exec_time.as_secs_f64(),
            cell(pi, 1).exec_time.as_secs_f64(),
            cell(pi, 2).exec_time.as_secs_f64(),
            cell(pi, 3).exec_time.as_secs_f64(),
        ));
    }
    report.push_body(&body);

    // Paper claims:
    // 1. The optimized version is dramatically faster at every cell.
    let opt_wins_everywhere = (0..PROCS.len()).all(|pi| {
        cell(pi, 2).exec_time < cell(pi, 0).exec_time
            && cell(pi, 3).exec_time < cell(pi, 1).exec_time
    });
    report.push(Comparison::claim(
        "two-phase beats Chameleon-style I/O at every processor count",
        "significant performance improvement in the overall execution time",
        opt_wins_everywhere,
    ));
    let mid_gain = cell(1, 0).exec_time.as_secs_f64() / cell(1, 2).exec_time.as_secs_f64();
    report.push(Comparison::claim(
        "the improvement is large (≥3× at 36 procs)",
        "huge reduction in the I/O time (paper: 1203 s → 100 s at 32 procs)",
        mid_gain > 3.0,
    ));
    // 2. Going 16 → 64 I/O nodes changes little compared to the software fix.
    let hw_gain = cell(1, 0).exec_time.as_secs_f64() / cell(1, 1).exec_time.as_secs_f64();
    report.push(Comparison::claim(
        "collective I/O matters more than 4× the I/O nodes",
        "this factor is more important than increasing the I/O nodes",
        mid_gain > 2.0 * hw_gain,
    ));
    // 3. Unoptimized time keeps decreasing with processors.
    let unopt_decreasing =
        (1..PROCS.len()).all(|pi| cell(pi, 0).exec_time <= cell(pi - 1, 0).exec_time);
    report.push(Comparison::claim(
        "unoptimized time decreases with processors (compute-dominated tail)",
        "2557 → 1203 → 638 → 385 s",
        unopt_decreasing,
    ));
    report
}

/// Table 5 helper: collective-I/O gain on a small AST.
pub fn collective_gain(scale: f64) -> f64 {
    let mk = |opt: bool| AstConfig {
        grid: 128,
        arrays: 2,
        dumps: ((4.0 * scale).round() as u32).clamp(1, 4),
        ..AstConfig::new(16, 16, opt)
    };
    let u = run(&mk(false));
    let o = run(&mk(true));
    u.exec_time.as_secs_f64() / o.exec_time.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::scf11::assert_shape;

    #[test]
    fn table4_shape_holds_at_small_scale() {
        let r = table4(0.2);
        assert_shape(&r);
        assert!(r.body.contains("unopt 16 I/O"));
    }
}
