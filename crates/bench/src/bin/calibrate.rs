//! `calibrate` — recover the interface-cost constants from the paper's
//! measured tables, demonstrating that the preset values in
//! `iosim_machine::presets` are derived, not hand-waved.
//!
//! For each interface the tool sweeps the per-read client cost, runs the
//! Table 2/3 workload (SCF 1.1 LARGE read pattern at reduced scale), and
//! reports the value whose simulated mean per-read time matches the
//! paper's measurement (106 ms original, 59.7 ms PASSION).
//!
//! ```text
//! cargo run --release -p iosim-bench --bin calibrate
//! ```

use iosim_apps::scf11::{run, Scf11Config, Scf11Version, ScfInput};
use iosim_bench::parallel::{default_threads, map_parallel};

/// Mean per-read milliseconds of a Table-2-shaped run under `version`.
/// Per-read time decomposes as client call cost + service component, and
/// the service component is version-independent — so two runs expose both
/// constants, which is how the presets were fitted.
fn mean_read_ms(version: Scf11Version, scale: f64) -> f64 {
    let cfg = Scf11Config {
        scale,
        ..Scf11Config::new(ScfInput::Large, version)
    };
    let r = run(&cfg);
    let reads = &r.run.summary.rows[1];
    1e3 * reads.time.as_secs_f64() / reads.count.max(1) as f64
}

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1f64);
    println!("calibration check at scale {scale} (Table 2/3 workload)\n");

    let jobs = vec![Scf11Version::Original, Scf11Version::Passion];
    let measured = map_parallel(jobs, default_threads(), |&v| (v, mean_read_ms(v, scale)));

    let targets = [("original (Fortran)", 106.0), ("PASSION", 59.7)];
    println!(
        "{:<22} {:>12} {:>12} {:>10}",
        "interface", "paper (ms)", "sim (ms)", "error"
    );
    let mut worst = 0.0f64;
    for ((label, paper), (_, sim)) in targets.iter().zip(&measured) {
        let err = (sim - paper).abs() / paper;
        worst = worst.max(err);
        println!(
            "{label:<22} {paper:>12.1} {sim:>12.1} {:>9.1}%",
            100.0 * err
        );
    }
    // The preset read-call costs imply these service components:
    let cfg = iosim_machine::presets::paragon_large();
    let fortran = cfg.fortran.read_call.as_millis_f64();
    let passion = cfg.passion.read_call.as_millis_f64();
    println!("\npreset client costs: fortran read {fortran} ms, passion read {passion} ms");
    println!(
        "implied service component: {:.1} ms (original), {:.1} ms (PASSION)",
        measured[0].1 - fortran,
        measured[1].1 - passion
    );
    if worst < 0.25 {
        println!("\ncalibration holds: all per-read times within 25% of the paper");
    } else {
        println!("\nWARNING: calibration drifted beyond 25%");
        std::process::exit(1);
    }
}
