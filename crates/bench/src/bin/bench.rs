//! `bench` — host wall-clock benchmark driver.
//!
//! ```text
//! bench wallclock [--smoke] [--scale F] [--out PATH]
//! bench check PATH
//! ```
//!
//! `wallclock` runs the scheduler microbenchmarks (current executor vs the
//! pre-rewrite Mutex+HashMap baseline), times the five applications and
//! the full repro suite, prints a summary, and writes the report as JSON
//! (default `BENCH_wallclock.json`; `--smoke` defaults to
//! `target/BENCH_wallclock.smoke.json` so a CI smoke run never clobbers
//! the committed trajectory file).
//!
//! `check` parses an existing report and validates its layout (schema
//! marker, all storms, all apps, every repro id). It never judges the
//! timings themselves — wall-clock numbers are machine-dependent and the
//! CI gate is "runs without panicking and emits a well-formed document".

use std::process::ExitCode;

use iosim_bench::wallclock;

fn usage() -> ExitCode {
    eprintln!("usage: bench wallclock [--smoke] [--scale F] [--out PATH]");
    eprintln!("       bench check PATH");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("wallclock") => {
            let mut smoke = false;
            let mut scale: Option<f64> = None;
            let mut out: Option<String> = None;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--smoke" => smoke = true,
                    "--scale" => match it.next().and_then(|v| v.parse().ok()) {
                        Some(v) => scale = Some(v),
                        None => return usage(),
                    },
                    "--out" => match it.next() {
                        Some(v) => out = Some(v.clone()),
                        None => return usage(),
                    },
                    _ => return usage(),
                }
            }
            let scale = scale.unwrap_or(if smoke { 0.02 } else { 0.1 });
            let out = out.unwrap_or_else(|| {
                if smoke {
                    "target/BENCH_wallclock.smoke.json".into()
                } else {
                    "BENCH_wallclock.json".into()
                }
            });
            let report = wallclock::run_suite(smoke, scale);
            print!("{}", wallclock::render_summary(&report));
            let doc = wallclock::emit_json(&report);
            if let Err(e) = wallclock::validate(&doc) {
                eprintln!("bench: emitted document failed validation: {e}");
                return ExitCode::FAILURE;
            }
            if let Some(dir) = std::path::Path::new(&out).parent() {
                if !dir.as_os_str().is_empty() {
                    let _ = std::fs::create_dir_all(dir);
                }
            }
            if let Err(e) = std::fs::write(&out, doc) {
                eprintln!("bench: cannot write {out}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {out}");
            ExitCode::SUCCESS
        }
        Some("check") => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            let doc = match std::fs::read_to_string(path) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("bench: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match wallclock::validate(&doc) {
                Ok(()) => {
                    println!("{path}: well-formed wall-clock report");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{path}: invalid: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
