//! Criterion benches for the paper's tables. Each bench group regenerates
//! its table once (printed to stdout) and then measures the underlying
//! simulation at reduced scale, so `cargo bench` both reproduces the
//! table's rows and tracks the simulator's host-side performance.

use criterion::{criterion_group, criterion_main, Criterion};
use iosim_bench::experiments;

/// Reduced scale keeps one bench iteration in the tens of milliseconds.
const SCALE: f64 = 0.02;

fn bench_table1(c: &mut Criterion) {
    let report = experiments::summary::table1();
    println!("{}", report.render_markdown());
    c.bench_function("table1/registry", |b| {
        b.iter(|| std::hint::black_box(experiments::summary::table1().body.len()))
    });
}

fn bench_table2_3(c: &mut Criterion) {
    let (t2, t3) = experiments::scf11::table2_table3(SCALE);
    println!("{}", t2.render_markdown());
    println!("{}", t3.render_markdown());
    let mut g = c.benchmark_group("table2_3");
    g.sample_size(10);
    g.bench_function("scf11_original_and_passion", |b| {
        b.iter(|| {
            let (a, bb) = experiments::scf11::table2_table3(SCALE);
            std::hint::black_box((a.comparisons.len(), bb.comparisons.len()))
        })
    });
    g.finish();
}

fn bench_table4(c: &mut Criterion) {
    let report = experiments::ast::table4(0.2);
    println!("{}", report.render_markdown());
    let mut g = c.benchmark_group("table4");
    g.sample_size(10);
    g.bench_function("ast_grid", |b| {
        b.iter(|| std::hint::black_box(experiments::ast::table4(0.1).comparisons.len()))
    });
    g.finish();
}

fn bench_table5(c: &mut Criterion) {
    let report = experiments::summary::table5(SCALE);
    println!("{}", report.render_markdown());
    let mut g = c.benchmark_group("table5");
    g.sample_size(10);
    g.bench_function("effectiveness_matrix", |b| {
        b.iter(|| std::hint::black_box(experiments::summary::table5(SCALE).comparisons.len()))
    });
    g.finish();
}

criterion_group!(
    tables,
    bench_table1,
    bench_table2_3,
    bench_table4,
    bench_table5
);
criterion_main!(tables);
