//! Ablation benches for the design choices DESIGN.md calls out: stripe
//! unit, seek penalty, prefetch depth, flat vs geometric disk model, and
//! the raw event rate of the simulation engine. Each group prints its
//! sweep once and benches one representative point.

use criterion::{criterion_group, criterion_main, Criterion};
use iosim_apps::fft::FftConfig;
use iosim_apps::scf11::{run as scf_run, Scf11Config, Scf11Version, ScfInput};
use iosim_machine::presets;
use iosim_simkit::prelude::*;
use std::rc::Rc;

/// Ablation 1: stripe-unit size on SCF 1.1 (the paper varies Su in its
/// Figure 1 tuples VI–VII).
fn ablation_stripe_unit(c: &mut Criterion) {
    println!("\nablation: SCF 1.1 exec time vs stripe unit (KB)");
    for su in [16u64, 32, 64, 128, 256] {
        let cfg = Scf11Config {
            stripe_unit_kb: su,
            scale: 0.02,
            ..Scf11Config::new(ScfInput::Small, Scf11Version::Passion)
        };
        let r = scf_run(&cfg);
        println!(
            "  Su={su:>4} KB  exec={:>10.3}s",
            r.run.exec_time.as_secs_f64()
        );
    }
    let mut g = c.benchmark_group("ablation_stripe_unit");
    g.sample_size(10);
    g.bench_function("su64", |b| {
        let cfg = Scf11Config {
            scale: 0.02,
            ..Scf11Config::new(ScfInput::Small, Scf11Version::Passion)
        };
        b.iter(|| std::hint::black_box(scf_run(&cfg).run.io_ops))
    });
    g.finish();
}

/// Ablation 2: disk seek penalty on the FFT layout gap. The layout
/// optimization's value collapses when seeks are free.
fn ablation_seek_penalty(c: &mut Criterion) {
    println!("\nablation: FFT unopt/opt exec ratio vs seek penalty (ms)");
    for seek_ms in [0u64, 4, 12, 24] {
        let run_with = |optimized: bool| {
            let mut cfg = FftConfig::new(256, 4, optimized);
            cfg.mem_per_proc = 64 << 10;
            // Rebuild the run with a modified machine: FftConfig owns the
            // machine preset internally, so emulate via custom runner.
            custom_fft(cfg, seek_ms)
        };
        let ratio = run_with(false) / run_with(true);
        println!("  seek={seek_ms:>2} ms  unopt/opt={ratio:>6.2}x");
    }
    let mut g = c.benchmark_group("ablation_seek_penalty");
    g.sample_size(10);
    g.bench_function("fft_seek12", |b| {
        let mut cfg = FftConfig::new(256, 4, false);
        cfg.mem_per_proc = 64 << 10;
        b.iter(|| std::hint::black_box(custom_fft(cfg.clone(), 12)))
    });
    g.finish();
}

/// Run the FFT on a small-Paragon machine with an overridden seek penalty
/// and return the execution time in seconds.
fn custom_fft(cfg: FftConfig, seek_ms: u64) -> f64 {
    // The public fft::run uses the stock preset; replicate it with a
    // tweaked machine through the generic harness.
    use iosim_apps::common::run_ranks;
    let mut mcfg = presets::paragon_small()
        .with_compute_nodes(cfg.procs)
        .with_io_nodes(cfg.io_nodes);
    mcfg.disk.seek_penalty = SimDuration::from_millis(seek_ms);
    let res = run_ranks(mcfg, cfg.procs, move |ctx| {
        let cfg = cfg.clone();
        Box::pin(async move {
            iosim_apps::fft::rank_program_on(ctx, cfg).await;
        })
    });
    res.exec_time.as_secs_f64()
}

/// Ablation 3: prefetch pipeline depth.
fn ablation_prefetch_depth(c: &mut Criterion) {
    println!("\nablation: sequential 32 MB scan time vs prefetch depth");
    for depth in [1usize, 2, 4, 8] {
        let t = scan_with_depth(depth);
        println!("  depth={depth}  scan={t:>8.3}s");
    }
    let mut g = c.benchmark_group("ablation_prefetch_depth");
    g.sample_size(10);
    g.bench_function("depth2", |b| {
        b.iter(|| std::hint::black_box(scan_with_depth(2)))
    });
    g.finish();
}

fn scan_with_depth(depth: usize) -> f64 {
    use iosim_core::prefetch::Prefetcher;
    use iosim_machine::{Interface, Machine};
    use iosim_pfs::{CreateOptions, FileSystem};
    use iosim_trace::TraceCollector;
    let mut sim = Sim::new();
    let m = Machine::new(sim.handle(), presets::paragon_large());
    let fs = FileSystem::new(m, TraceCollector::new());
    let jh = sim.spawn(async move {
        let fh = Rc::new(
            fs.open(
                0,
                Interface::Passion,
                "scan",
                Some(CreateOptions::default()),
            )
            .await
            .unwrap(),
        );
        fh.preallocate(32 << 20);
        let mut pf = Prefetcher::new(Rc::clone(&fh), 0, 32 << 20, 1 << 20, depth);
        pf.drain().await.unwrap();
    });
    let end = sim.run();
    jh.try_take().expect("completed");
    end.as_secs_f64()
}

/// Ablation 4: flat disk costs vs the geometric model (seek curve +
/// rotational latency) on a random-access workload.
fn ablation_disk_model(c: &mut Criterion) {
    use iosim_machine::{DiskGeometry, Interface, Machine};
    use iosim_pfs::{CreateOptions, FileSystem};
    use iosim_trace::TraceCollector;

    let run_model = |geometric: bool| -> f64 {
        let mut sim = Sim::new();
        let mut cfg = presets::paragon_small();
        if geometric {
            cfg = cfg.with_disk_geometry(DiskGeometry::classic_1995());
        }
        let m = Machine::new(sim.handle(), cfg);
        let fs = FileSystem::new(m, TraceCollector::new());
        let jh = sim.spawn(async move {
            let fh = fs
                .open(
                    0,
                    Interface::UnixStyle,
                    "rnd",
                    Some(CreateOptions::default()),
                )
                .await
                .unwrap();
            fh.preallocate(256 << 20);
            // Deterministic "random" stride pattern: large jumps.
            let mut off = 0u64;
            for k in 0..500u64 {
                off = (off + 37 * (1 << 20) + k * 4096) % (255 << 20);
                fh.read_discard_at(off, 8192).await.unwrap();
            }
        });
        let end = sim.run();
        jh.try_take().expect("completed");
        end.as_secs_f64()
    };
    println!("\nablation: random 8 KB reads, flat vs geometric disk model");
    println!("  flat     : {:>8.3}s", run_model(false));
    println!("  geometric: {:>8.3}s", run_model(true));
    let mut g = c.benchmark_group("ablation_disk_model");
    g.sample_size(10);
    g.bench_function("geometric", |b| {
        b.iter(|| std::hint::black_box(run_model(true)))
    });
    g.finish();
}

/// Ablation 5: raw engine event rate — timer churn through a contended
/// resource, the dominant event pattern in the experiments.
fn engine_event_rate(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.bench_function("100k_queued_services", |b| {
        b.iter(|| {
            let mut sim = Sim::new();
            let h = sim.handle();
            let disk = Rc::new(Resource::new(h.clone(), "disk", 2));
            for _ in 0..10 {
                let disk = Rc::clone(&disk);
                sim.spawn(async move {
                    for _ in 0..10_000 {
                        disk.serve(SimDuration::from_micros(10)).await;
                    }
                });
            }
            std::hint::black_box(sim.run())
        })
    });
    g.finish();
}

criterion_group!(
    ablations,
    ablation_stripe_unit,
    ablation_seek_penalty,
    ablation_prefetch_depth,
    ablation_disk_model,
    engine_event_rate
);
criterion_main!(ablations);
