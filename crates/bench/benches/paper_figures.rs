//! Criterion benches for the paper's figures. Each bench group
//! regenerates its figure once (printed to stdout) and measures the
//! underlying simulation at reduced scale.

use criterion::{criterion_group, criterion_main, Criterion};
use iosim_bench::experiments;

const SCALE: f64 = 0.02;

fn bench_fig1(c: &mut Criterion) {
    println!("{}", experiments::scf11::fig1(SCALE).render_markdown());
    let mut g = c.benchmark_group("fig1");
    g.sample_size(10);
    g.bench_function("scf11_tuples", |b| {
        b.iter(|| std::hint::black_box(experiments::scf11::fig1(SCALE).comparisons.len()))
    });
    g.finish();
}

fn bench_fig2(c: &mut Criterion) {
    println!("{}", experiments::scf11::fig2(SCALE).render_markdown());
    let mut g = c.benchmark_group("fig2");
    g.sample_size(10);
    g.bench_function("scf11_scaling", |b| {
        b.iter(|| std::hint::black_box(experiments::scf11::fig2(SCALE).comparisons.len()))
    });
    g.finish();
}

fn bench_fig3(c: &mut Criterion) {
    println!("{}", experiments::scf11::fig3(SCALE).render_markdown());
    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    g.bench_function("scf11_io_nodes", |b| {
        b.iter(|| std::hint::black_box(experiments::scf11::fig3(SCALE).comparisons.len()))
    });
    g.finish();
}

fn bench_fig4(c: &mut Criterion) {
    println!("{}", experiments::scf30::fig4(SCALE).render_markdown());
    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    g.bench_function("scf30_cached_fraction", |b| {
        b.iter(|| std::hint::black_box(experiments::scf30::fig4(SCALE).comparisons.len()))
    });
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    println!("{}", experiments::fft::fig5(0.004).render_markdown());
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    g.bench_function("fft_layouts", |b| {
        b.iter(|| std::hint::black_box(experiments::fft::fig5(0.004).comparisons.len()))
    });
    g.finish();
}

fn bench_fig6(c: &mut Criterion) {
    println!("{}", experiments::btio::fig6(0.1).render_markdown());
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    g.bench_function("btio_times", |b| {
        b.iter(|| std::hint::black_box(experiments::btio::fig6(0.05).comparisons.len()))
    });
    g.finish();
}

fn bench_fig7(c: &mut Criterion) {
    println!("{}", experiments::btio::fig7(0.1).render_markdown());
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    g.bench_function("btio_bandwidths", |b| {
        b.iter(|| std::hint::black_box(experiments::btio::fig7(0.05).comparisons.len()))
    });
    g.finish();
}

criterion_group!(
    figures, bench_fig1, bench_fig2, bench_fig3, bench_fig4, bench_fig5, bench_fig6, bench_fig7
);
criterion_main!(figures);
