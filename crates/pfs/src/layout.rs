//! Striping arithmetic: mapping a file byte range onto per-I/O-node
//! contiguous runs.
//!
//! PFS and PIOFS stripe a file round-robin across the I/O nodes in units
//! of the stripe unit (PFS default 64 KB, PIOFS BSU 32 KB). Consecutive
//! stripe units land on consecutive I/O nodes; the units assigned to one
//! node are stored contiguously in that node's fragment. Hence a single
//! contiguous file request decomposes into **at most one contiguous local
//! run per I/O node**, which is what the service model books on each
//! node's disk queue.

/// Striping description of one file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Striping {
    /// Stripe unit in bytes.
    pub unit: u64,
    /// Number of I/O nodes the file is striped across (stripe factor).
    pub factor: usize,
    /// I/O node holding stripe unit 0.
    pub start_node: usize,
}

/// One contiguous run of bytes on a single I/O node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Run {
    /// The I/O node index.
    pub io_node: usize,
    /// Offset within that node's fragment of the file.
    pub local_offset: u64,
    /// Length in bytes.
    pub bytes: u64,
}

impl Striping {
    /// Create a striping; panics on degenerate parameters.
    pub fn new(unit: u64, factor: usize, start_node: usize) -> Striping {
        assert!(unit > 0, "stripe unit must be positive");
        assert!(factor > 0, "stripe factor must be positive");
        assert!(start_node < factor, "start node must be < factor");
        Striping {
            unit,
            factor,
            start_node,
        }
    }

    /// I/O node holding global stripe unit `u`.
    #[inline]
    pub fn node_of_unit(&self, u: u64) -> usize {
        ((self.start_node as u64 + u) % self.factor as u64) as usize
    }

    /// Index of global unit `u` within its node's fragment.
    #[inline]
    pub fn local_unit_index(&self, u: u64) -> u64 {
        u / self.factor as u64
    }

    /// Local fragment offset of global file offset `off`.
    #[inline]
    pub fn local_offset(&self, off: u64) -> u64 {
        let u = off / self.unit;
        self.local_unit_index(u) * self.unit + off % self.unit
    }

    /// Decompose `[offset, offset+len)` into per-node contiguous runs.
    ///
    /// Runs are returned ordered by I/O node of the first touched unit,
    /// then increasing. A zero-length request yields no runs.
    pub fn runs(&self, offset: u64, len: u64) -> Vec<Run> {
        if len == 0 {
            return Vec::new();
        }
        let first_unit = offset / self.unit;
        let last_unit = (offset + len - 1) / self.unit;
        let touched_nodes = ((last_unit - first_unit + 1) as usize).min(self.factor);
        let mut runs: Vec<Option<Run>> = vec![None; self.factor];
        // Walk the touched units of each node: they are consecutive in the
        // local fragment, so each node contributes one run. Only the first
        // `touched_nodes` nodes starting at `first_unit` participate.
        for i in 0..touched_nodes as u64 {
            let u0 = first_unit + i; // first touched unit on this node
            let node = self.node_of_unit(u0);
            // Bytes of the first touched unit on this node:
            let u0_start = (u0 * self.unit).max(offset);
            let u0_end = ((u0 + 1) * self.unit).min(offset + len);
            let mut bytes = u0_end - u0_start;
            // Subsequent units on this node: u0 + k*factor, fully or
            // partially covered.
            let mut u = u0 + self.factor as u64;
            while u <= last_unit {
                let s = u * self.unit; // always >= offset here
                let e = ((u + 1) * self.unit).min(offset + len);
                bytes += e - s;
                u += self.factor as u64;
            }
            runs[node] = Some(Run {
                io_node: node,
                local_offset: self.local_unit_index(u0) * self.unit + (u0_start - u0 * self.unit),
                bytes,
            });
        }
        runs.into_iter().flatten().collect()
    }

    /// Number of distinct I/O nodes a request touches.
    pub fn nodes_touched(&self, offset: u64, len: u64) -> usize {
        self.runs(offset, len).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_unit_request_hits_one_node() {
        let s = Striping::new(64, 4, 0);
        let runs = s.runs(0, 64);
        assert_eq!(
            runs,
            vec![Run {
                io_node: 0,
                local_offset: 0,
                bytes: 64
            }]
        );
    }

    #[test]
    fn request_spanning_all_nodes() {
        let s = Striping::new(64, 4, 0);
        let runs = s.runs(0, 256);
        assert_eq!(runs.len(), 4);
        for (i, r) in runs.iter().enumerate() {
            assert_eq!(r.io_node, i);
            assert_eq!(r.local_offset, 0);
            assert_eq!(r.bytes, 64);
        }
    }

    #[test]
    fn large_request_wraps_round_robin() {
        let s = Striping::new(64, 2, 0);
        // Units 0..6: node0 gets 0,2,4 (local 0..192), node1 gets 1,3,5.
        let runs = s.runs(0, 6 * 64);
        assert_eq!(runs.len(), 2);
        assert_eq!(
            runs[0],
            Run {
                io_node: 0,
                local_offset: 0,
                bytes: 192
            }
        );
        assert_eq!(
            runs[1],
            Run {
                io_node: 1,
                local_offset: 0,
                bytes: 192
            }
        );
    }

    #[test]
    fn partial_units_at_both_ends() {
        let s = Striping::new(100, 3, 0);
        // [50, 250): 50 B of unit 0 (node 0), 100 B of unit 1 (node 1),
        // 50 B of unit 2 (node 2).
        let runs = s.runs(50, 200);
        assert_eq!(runs.len(), 3);
        assert_eq!(
            runs[0],
            Run {
                io_node: 0,
                local_offset: 50,
                bytes: 50
            }
        );
        assert_eq!(
            runs[1],
            Run {
                io_node: 1,
                local_offset: 0,
                bytes: 100
            }
        );
        assert_eq!(
            runs[2],
            Run {
                io_node: 2,
                local_offset: 0,
                bytes: 50
            }
        );
    }

    #[test]
    fn start_node_shifts_mapping() {
        let s = Striping::new(64, 4, 2);
        let runs = s.runs(0, 64);
        assert_eq!(runs[0].io_node, 2);
        let runs = s.runs(64, 64);
        assert_eq!(runs[0].io_node, 3);
        let runs = s.runs(128, 64);
        assert_eq!(runs[0].io_node, 0);
    }

    #[test]
    fn local_offset_accounts_for_round_robin() {
        let s = Striping::new(64, 4, 0);
        // Unit 4 is node 0's second unit: local offset 64.
        assert_eq!(s.local_offset(4 * 64), 64);
        assert_eq!(s.local_offset(4 * 64 + 10), 74);
    }

    #[test]
    fn zero_length_request_has_no_runs() {
        let s = Striping::new(64, 4, 0);
        assert!(s.runs(123, 0).is_empty());
    }

    #[test]
    fn mid_file_request_local_offsets() {
        let s = Striping::new(64, 2, 0);
        // Units: n0 ← 0,2,4,…  n1 ← 1,3,5,…
        // Request units 3..=4: node1 unit 3 (local idx 1), node0 unit 4
        // (local idx 2).
        let runs = s.runs(3 * 64, 128);
        assert_eq!(runs.len(), 2);
        let n0 = runs.iter().find(|r| r.io_node == 0).unwrap();
        let n1 = runs.iter().find(|r| r.io_node == 1).unwrap();
        assert_eq!(n1.local_offset, 64);
        assert_eq!(n0.local_offset, 128);
    }

    #[cfg(feature = "heavy-tests")]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
        #[test]
        fn runs_cover_exactly_len(
            unit in 1u64..256,
            factor in 1usize..9,
            start in 0usize..8,
            offset in 0u64..10_000,
            len in 0u64..10_000,
        ) {
            let start = start % factor;
            let s = Striping::new(unit, factor, start);
            let runs = s.runs(offset, len);
            let total: u64 = runs.iter().map(|r| r.bytes).sum();
            prop_assert_eq!(total, len);
            // At most one run per node.
            let mut nodes: Vec<usize> = runs.iter().map(|r| r.io_node).collect();
            nodes.sort_unstable();
            nodes.dedup();
            prop_assert_eq!(nodes.len(), runs.len());
        }

        #[test]
        fn adjacent_requests_have_adjacent_local_offsets(
            unit in 1u64..128,
            factor in 1usize..5,
            offset in 0u64..5_000,
            len in 1u64..2_000,
        ) {
            // Reading [offset, offset+len) then [offset+len, …) must
            // continue each node's fragment without gaps: the second
            // request's run on a node starts exactly at the end of the
            // first request's run when that node had one ending at a unit
            // boundary shared by both.
            let s = Striping::new(unit, factor, 0);
            let a = s.runs(offset, len);
            let b = s.runs(offset + len, len.max(unit * factor as u64));
            for rb in &b {
                if let Some(ra) = a.iter().find(|r| r.io_node == rb.io_node) {
                    prop_assert!(rb.local_offset >= ra.local_offset,
                        "fragment must move forward: {:?} then {:?}", ra, rb);
                }
            }
        }

        #[test]
        fn local_offset_is_monotone_per_node(
            unit in 1u64..128,
            factor in 1usize..6,
            a in 0u64..100_000,
            b in 0u64..100_000,
        ) {
            let s = Striping::new(unit, factor, 0);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let u_lo = lo / unit;
            let u_hi = hi / unit;
            if s.node_of_unit(u_lo) == s.node_of_unit(u_hi) {
                prop_assert!(s.local_offset(lo) <= s.local_offset(hi));
            }
        }
        }
    }
}
