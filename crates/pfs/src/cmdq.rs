//! NCQ-style per-I/O-node command queues.
//!
//! When `MachineConfig::io_queue_depth > 1` (and no buffer cache is
//! configured), the file system routes disk work through one queue
//! daemon per I/O node instead of reserving the node's FIFO
//! [`iosim_simkit::sync::Resource`] at booking time. The booking path
//! submits a [`DiskCommand`] carrying the request's network-arrival
//! instant and its sorted local runs; the daemon holds arrived commands,
//! dispatches whenever a disk server frees up, and picks the next
//! command with the bounded-window elevator policy of
//! [`iosim_machine::pick_command`] — so commands from different ranks
//! can be serviced out of FIFO order when that turns a seek into a
//! sequential head continuation. The window is the configured queue
//! depth and a command bypassed [`iosim_machine::STARVATION_BOUND`]
//! times is dispatched unconditionally.
//!
//! Like the legacy `Resource` path, service is *virtual*: a dispatch
//! computes the completion instant analytically (multi-disk nodes are a
//! min-heap of server free times, the head position is shared per node)
//! and resolves the command's [`Event`] immediately, so submitters
//! sleep until the completion instant without the daemon blocking for
//! the service duration. All scheduling decisions feed the
//! [`QueueCounters`] of the run's trace collector.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll};

use iosim_machine::{pick_command, CommandView, Machine};
use iosim_simkit::executor::Sleep;
use iosim_simkit::sync::{channel, Event, Receiver, Recv, Sender};
use iosim_simkit::time::SimTime;
use iosim_trace::QueueCounters;

/// One disk command submitted to an I/O node's queue.
pub(crate) struct DiskCommand {
    /// Instant the request reaches the node over the network; the
    /// command is not eligible for dispatch before it.
    pub arrival: SimTime,
    /// File identity (head continuations exist only within one file).
    pub uid: u64,
    /// Sorted, merged `(local_offset, bytes)` runs serviced in order.
    pub runs: Vec<(u64, u64)>,
    /// Resolved with the command's completion instant at dispatch.
    pub done: Event<SimTime>,
}

/// The per-node command queues of one file system.
pub(crate) struct CommandQueues {
    senders: Vec<Sender<DiskCommand>>,
    counters: QueueCounters,
}

impl CommandQueues {
    /// Spawn one queue daemon per I/O node of `machine`. The daemons
    /// live for the whole simulation; they park on their channel when
    /// idle and are dropped with the simulation.
    pub fn new(machine: &Rc<Machine>, counters: QueueCounters) -> CommandQueues {
        let depth = machine.io_queue_depth();
        let senders = (0..machine.io_nodes())
            .map(|node| {
                let (tx, rx) = channel();
                let m = Rc::clone(machine);
                let c = counters.clone();
                machine.handle().spawn(node_daemon(m, node, depth, rx, c));
                tx
            })
            .collect();
        CommandQueues { senders, counters }
    }

    /// Submit one command to `node`'s queue, counting the booking.
    pub fn submit(&self, node: usize, cmd: DiskCommand) {
        debug_assert!(!cmd.runs.is_empty(), "empty command");
        self.counters.add_booking(node);
        self.senders[node].send(cmd);
    }
}

/// A queued command plus its scheduler bookkeeping.
struct Queued {
    cmd: DiskCommand,
    seq: u64,
    bypassed: u32,
}

/// The queue daemon of one I/O node.
async fn node_daemon(
    m: Rc<Machine>,
    node: usize,
    depth: usize,
    rx: Receiver<DiskCommand>,
    counters: QueueCounters,
) {
    let h = m.handle().clone();
    // Virtual free instants of the node's disks (min-heap): a dispatch
    // occupies the earliest-free server, exactly like the capacity-N
    // FIFO `Resource` the legacy path books.
    let mut free: BinaryHeap<Reverse<SimTime>> = (0..m.cfg().disks_per_io_node)
        .map(|_| Reverse(SimTime::ZERO))
        .collect();
    // All queued commands, kept in ascending submission (seq) order.
    let mut queue: Vec<Queued> = Vec::new();
    let mut head: Option<(u64, u64)> = None;
    let mut next_seq = 0u64;
    let push = |queue: &mut Vec<Queued>, next_seq: &mut u64, cmd: DiskCommand| {
        queue.push(Queued {
            cmd,
            seq: *next_seq,
            bypassed: 0,
        });
        *next_seq += 1;
    };
    loop {
        while let Some(cmd) = rx.try_recv() {
            push(&mut queue, &mut next_seq, cmd);
        }
        if queue.is_empty() {
            // Park until the next submission (or the end of the sim).
            match rx.recv().await {
                Some(cmd) => push(&mut queue, &mut next_seq, cmd),
                None => return,
            }
            continue;
        }
        // The next dispatch can happen no earlier than a server freeing
        // up and a queued command's request arriving at the node.
        let server_free = free.peek().expect("at least one disk").0;
        let min_arrival = queue
            .iter()
            .map(|q| q.cmd.arrival)
            .min()
            .expect("non-empty queue");
        let start_at = server_free.max(min_arrival);
        let now = h.now();
        if start_at > now {
            // Sleep to the dispatch instant, waking early on a new
            // submission (it may make an earlier dispatch possible).
            if let Wake::Cmd(cmd) = recv_or_deadline(&rx, h.sleep_until(start_at)).await {
                push(&mut queue, &mut next_seq, cmd);
            }
            continue;
        }
        // Dispatch one command from the arrived set (non-empty: the
        // min-arrival command has arrived). `queue` is seq-sorted, so
        // the filtered view is too.
        let arrived: Vec<CommandView> = queue
            .iter()
            .filter(|q| q.cmd.arrival <= now)
            .map(|q| CommandView {
                uid: q.cmd.uid,
                offset: q.cmd.runs[0].0,
                seq: q.seq,
                bypassed: q.bypassed,
            })
            .collect();
        let decision = pick_command(head, &arrived, depth);
        let picked_seq = arrived[decision.index].seq;
        let idx = queue
            .iter()
            .position(|q| q.seq == picked_seq)
            .expect("picked command is queued");
        let picked = queue.remove(idx);
        for q in queue.iter_mut() {
            if q.seq < picked_seq && q.cmd.arrival <= now {
                q.bypassed += 1;
            }
        }
        let prev_end = match head {
            Some((huid, hend)) if huid == picked.cmd.uid => Some(hend),
            _ => None,
        };
        let end = now + m.disk_service_runs(node, prev_end, &picked.cmd.runs);
        free.pop();
        free.push(Reverse(end));
        let (last_off, last_len) = *picked.cmd.runs.last().expect("runs non-empty");
        head = Some((picked.cmd.uid, last_off + last_len));
        counters.add_dispatch(
            node,
            arrived.len(),
            decision.reordered,
            decision.starvation_forced,
            decision.seek_avoided,
            decision.seek_bytes_saved,
        );
        picked.cmd.done.set(end);
    }
}

/// What woke the daemon first: a submission or the dispatch deadline.
enum Wake<T> {
    Cmd(T),
    Deadline,
}

/// Await whichever happens first: the next channel message or a sleep
/// deadline. Both component futures are plain `Unpin` state machines, so
/// polling them side by side is safe.
fn recv_or_deadline<'a, T>(rx: &'a Receiver<T>, sleep: Sleep) -> RecvOrDeadline<'a, T> {
    RecvOrDeadline {
        recv: rx.recv(),
        sleep,
    }
}

struct RecvOrDeadline<'a, T> {
    recv: Recv<'a, T>,
    sleep: Sleep,
}

impl<T> Future for RecvOrDeadline<'_, T> {
    type Output = Wake<T>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Wake<T>> {
        let this = self.get_mut();
        // A closed channel (senders gone) is not a wake-up: the daemon
        // still owes its queued commands, so wait for the deadline.
        if let Poll::Ready(Some(cmd)) = Pin::new(&mut this.recv).poll(cx) {
            return Poll::Ready(Wake::Cmd(cmd));
        }
        match Pin::new(&mut this.sleep).poll(cx) {
            Poll::Ready(()) => Poll::Ready(Wake::Deadline),
            Poll::Pending => Poll::Pending,
        }
    }
}
