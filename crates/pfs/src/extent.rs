//! Extent-tree storage for stored files: the zero-copy backing store.
//!
//! A stored file's content is a set of non-overlapping extents keyed by
//! file offset, each an [`Bytes`] view into a shared buffer. A write
//! **adopts** the incoming segments — the application's buffer becomes
//! the file's backing store, no memcpy — trimming any overlapped older
//! extents with O(1) slices. A read assembles the requested range as a
//! rope of shared views, filling holes (never-written gaps and
//! `preallocate`d tails) from a shared zero page.
//!
//! Adjacent extents are deliberately **not** merged: merging would copy,
//! and the simulator's timing engine never looks at extents — virtual
//! time depends only on (offset, length) geometry, which is unchanged.

use std::collections::BTreeMap;

use iosim_buf::{zeros, Bytes, BytesList};

/// Non-overlapping byte extents of one stored file, keyed by start
/// offset.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExtentTree {
    extents: BTreeMap<u64, Bytes>,
}

impl ExtentTree {
    /// An empty tree.
    pub fn new() -> ExtentTree {
        ExtentTree::default()
    }

    /// Number of extents currently held (diagnostics).
    pub fn extent_count(&self) -> usize {
        self.extents.len()
    }

    /// Store `data` at `offset`, adopting the buffer without copying.
    /// Overlapped parts of existing extents are trimmed away (O(1)
    /// slices of their shared backing).
    pub fn write(&mut self, offset: u64, data: Bytes) {
        if data.is_empty() {
            return;
        }
        let end = offset + data.len() as u64;
        // An older extent overhanging the new range from the left is
        // split: its prefix survives, and — if it outlives the new range
        // on the right too — so does its suffix.
        if let Some((&s, e)) = self.extents.range(..offset).next_back() {
            let e_end = s + e.len() as u64;
            if e_end > offset {
                let e = self.extents.remove(&s).expect("just found");
                self.extents.insert(s, e.slice(0, (offset - s) as usize));
                if e_end > end {
                    self.extents
                        .insert(end, e.slice((end - s) as usize, (e_end - end) as usize));
                }
            }
        }
        // Extents starting inside the new range lose their overlapped
        // prefix; a suffix outliving the range is re-keyed at `end`.
        let inside: Vec<u64> = self.extents.range(offset..end).map(|(&s, _)| s).collect();
        for s in inside {
            let e = self.extents.remove(&s).expect("just listed");
            let e_end = s + e.len() as u64;
            if e_end > end {
                self.extents
                    .insert(end, e.slice((end - s) as usize, (e_end - end) as usize));
            }
        }
        self.extents.insert(offset, data);
    }

    /// Store a rope at `offset`: each segment becomes (or trims into)
    /// its own extent, still without copying.
    pub fn write_list(&mut self, offset: u64, data: &BytesList) {
        let mut at = offset;
        for seg in data.segments() {
            let len = seg.len() as u64;
            self.write(at, seg.clone());
            at += len;
        }
    }

    /// Assemble `[offset, offset + len)` as a rope of shared views,
    /// zero-filling any holes. Never copies stored bytes.
    pub fn read(&self, offset: u64, len: u64) -> BytesList {
        let end = offset + len;
        let mut out = BytesList::new();
        if len == 0 {
            return out;
        }
        let mut cursor = offset;
        // An extent straddling `offset` from the left contributes first.
        if let Some((&s, e)) = self.extents.range(..offset).next_back() {
            let e_end = s + e.len() as u64;
            if e_end > offset {
                let take = e_end.min(end) - offset;
                out.push(e.slice((offset - s) as usize, take as usize));
                cursor += take;
            }
        }
        for (&s, e) in self.extents.range(offset..end) {
            if s > cursor {
                out.append(zeros(s - cursor));
            }
            let take = (s + e.len() as u64).min(end) - s;
            out.push(e.slice(0, take as usize));
            cursor = s + take;
        }
        if cursor < end {
            out.append(zeros(end - cursor));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iosim_buf::tally;

    fn bytes(v: Vec<u8>) -> Bytes {
        Bytes::from_vec(v)
    }

    #[test]
    fn writes_adopt_buffers_and_reads_share_them() {
        let mut t = ExtentTree::new();
        let payload: Vec<u8> = (0..100u8).collect();
        t.write(50, bytes(payload.clone()));
        tally::reset();
        let got = t.read(50, 100);
        assert_eq!(got, payload);
        // Reading shares the stored extent: no allocation, no copy.
        assert_eq!(tally::snapshot(), tally::DataPlaneTally::default());
    }

    #[test]
    fn holes_read_as_zeros() {
        let mut t = ExtentTree::new();
        t.write(10, bytes(vec![7; 5]));
        t.write(25, bytes(vec![9; 5]));
        let got = t.read(0, 40).to_vec();
        let mut want = vec![0u8; 40];
        want[10..15].fill(7);
        want[25..30].fill(9);
        assert_eq!(got, want);
    }

    #[test]
    fn overlapping_write_trims_older_extents() {
        let mut t = ExtentTree::new();
        t.write(0, bytes((0..30u8).collect()));
        // Overwrite the middle; prefix and suffix of the old extent
        // survive as trimmed views.
        t.write(10, bytes(vec![255; 10]));
        assert_eq!(t.extent_count(), 3);
        let got = t.read(0, 30).to_vec();
        let mut want: Vec<u8> = (0..30u8).collect();
        want[10..20].fill(255);
        assert_eq!(got, want);
        // Overwrite spanning several extents collapses them.
        t.write(5, bytes(vec![1; 20]));
        assert_eq!(t.read(0, 30).to_vec()[5..25], [1u8; 20]);
    }

    #[test]
    fn exact_overwrite_replaces_in_place() {
        let mut t = ExtentTree::new();
        t.write(0, bytes(vec![1; 16]));
        t.write(0, bytes(vec![2; 16]));
        assert_eq!(t.extent_count(), 1);
        assert_eq!(t.read(0, 16), vec![2u8; 16]);
    }

    #[test]
    fn straddling_read_clips_to_range() {
        let mut t = ExtentTree::new();
        t.write(0, bytes((0..50u8).collect()));
        let got = t.read(20, 10);
        assert_eq!(got, (20..30u8).collect::<Vec<_>>());
        assert_eq!(got.segments().len(), 1);
    }
}
