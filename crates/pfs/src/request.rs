//! The vectored list-I/O request descriptor.
//!
//! An [`IoRequest`] is the single I/O currency of the workspace: an
//! ordered list of `(offset, len)` extents in a file's global byte
//! space. The optimization runtime, the out-of-core array layer, and
//! the applications all describe noncontiguous accesses with one of
//! these and hand it to [`crate::FileHandle::readv`] /
//! [`crate::FileHandle::writev`], which decide — per interface — whether
//! the request is serviced as true list I/O (one call, coalesced
//! extents, one disk-queue booking per I/O node) or degenerates to the
//! historical per-fragment loop.
//!
//! Extent order is meaningful for the scatter-gather payload: `readv`
//! returns bytes concatenated in extent order and `writev` consumes its
//! buffer in extent order. Timing, by contrast, always works on the
//! sorted, coalesced view ([`IoRequest::coalesced`]).

/// A noncontiguous file request: an ordered list of `(offset, len)`
/// extents. Zero-length extents are dropped at construction (and by
/// [`IoRequest::push`]), so `fragments()` counts only real fragments.
///
/// Overlapping extents are legal and handled deterministically:
///
/// - **Timing** always uses [`IoRequest::coalesced`], which merges
///   overlapping (and adjacent) ranges, so overlapped bytes are charged
///   exactly once on the disk queues.
/// - **Payload** is scatter-gathered in extent-list order: `readv`
///   returns each fragment's bytes independently (overlapped bytes are
///   returned once per extent that covers them) and `writev` applies
///   fragments first to last, so on overlapped ranges the **last**
///   extent's bytes win.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IoRequest {
    extents: Vec<(u64, u64)>,
}

impl IoRequest {
    /// A single contiguous extent (empty request when `len == 0`).
    pub fn contiguous(offset: u64, len: u64) -> IoRequest {
        IoRequest::from_extents(vec![(offset, len)])
    }

    /// `count` fragments of `frag_len` bytes, the k-th at
    /// `start + k * stride`. The classic column-strip / strided-array
    /// pattern (stride ≥ frag_len gives disjoint fragments;
    /// stride == frag_len coalesces to one extent).
    pub fn strided(start: u64, frag_len: u64, stride: u64, count: u64) -> IoRequest {
        IoRequest::from_extents((0..count).map(|k| (start + k * stride, frag_len)).collect())
    }

    /// `count` records of a block-cyclic distribution: record `k`
    /// (for `k` in `first..first + count`) of the round-robin slot
    /// `slot` out of `slots`, each record `record_len` bytes — the
    /// layout of [`crate::modes::RecordFile`].
    pub fn block_cyclic(
        record_len: u64,
        slot: u64,
        slots: u64,
        first: u64,
        count: u64,
    ) -> IoRequest {
        IoRequest::from_extents(
            (first..first + count)
                .map(|k| ((k * slots + slot) * record_len, record_len))
                .collect(),
        )
    }

    /// An arbitrary extent list, in scatter-gather order. Zero-length
    /// extents are filtered out; overlapping extents are kept verbatim
    /// (see the type-level docs for their deterministic semantics).
    pub fn from_extents(extents: Vec<(u64, u64)>) -> IoRequest {
        IoRequest {
            extents: extents.into_iter().filter(|&(_, len)| len > 0).collect(),
        }
    }

    /// Append one extent (ignored when `len == 0`).
    pub fn push(&mut self, offset: u64, len: u64) {
        if len > 0 {
            self.extents.push((offset, len));
        }
    }

    /// The extents in scatter-gather order.
    pub fn extents(&self) -> &[(u64, u64)] {
        &self.extents
    }

    /// Number of fragments.
    pub fn fragments(&self) -> usize {
        self.extents.len()
    }

    /// Whether the request carries no bytes.
    pub fn is_empty(&self) -> bool {
        self.extents.is_empty()
    }

    /// Sum of fragment lengths (the payload size of `readv`/`writev`).
    pub fn total_bytes(&self) -> u64 {
        self.extents.iter().map(|&(_, len)| len).sum()
    }

    /// One past the last byte touched (0 for an empty request).
    pub fn end(&self) -> u64 {
        self.extents
            .iter()
            .map(|&(off, len)| off + len)
            .max()
            .unwrap_or(0)
    }

    /// The timing view: extents sorted by offset with adjacent and
    /// overlapping ranges merged. This is what the list-I/O service
    /// path splits per I/O node and books on the disk queues.
    pub fn coalesced(&self) -> Vec<(u64, u64)> {
        let mut sorted = self.extents.clone();
        sorted.sort_unstable();
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(sorted.len());
        for (off, len) in sorted {
            match merged.last_mut() {
                Some((moff, mlen)) if off <= *moff + *mlen => {
                    *mlen = (*mlen).max(off + len - *moff);
                }
                _ => merged.push((off, len)),
            }
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_is_one_extent() {
        let r = IoRequest::contiguous(100, 50);
        assert_eq!(r.extents(), &[(100, 50)]);
        assert_eq!(r.fragments(), 1);
        assert_eq!(r.total_bytes(), 50);
        assert_eq!(r.end(), 150);
        assert!(!r.is_empty());
        assert!(IoRequest::contiguous(100, 0).is_empty());
    }

    #[test]
    fn strided_lays_out_fragments() {
        let r = IoRequest::strided(10, 4, 16, 3);
        assert_eq!(r.extents(), &[(10, 4), (26, 4), (42, 4)]);
        assert_eq!(r.total_bytes(), 12);
        // stride == frag_len: fragments are adjacent, coalesce to one.
        let dense = IoRequest::strided(0, 8, 8, 4);
        assert_eq!(dense.fragments(), 4);
        assert_eq!(dense.coalesced(), vec![(0, 32)]);
    }

    #[test]
    fn block_cyclic_matches_record_layout() {
        // slot 1 of 3, records 2..4, 100-byte records:
        // record k lives at (k*3 + 1) * 100.
        let r = IoRequest::block_cyclic(100, 1, 3, 2, 2);
        assert_eq!(r.extents(), &[(700, 100), (1000, 100)]);
        // One slot of one: degenerates to a contiguous run.
        let solo = IoRequest::block_cyclic(64, 0, 1, 0, 4);
        assert_eq!(solo.coalesced(), vec![(0, 256)]);
    }

    #[test]
    fn coalesced_merges_adjacent_overlapping_and_reorders() {
        let r = IoRequest::from_extents(vec![(40, 10), (0, 10), (10, 5), (45, 10), (100, 1)]);
        assert_eq!(r.coalesced(), vec![(0, 15), (40, 15), (100, 1)]);
        // Containment: a small extent inside a big one disappears.
        let c = IoRequest::from_extents(vec![(0, 100), (10, 5)]);
        assert_eq!(c.coalesced(), vec![(0, 100)]);
        assert!(IoRequest::default().coalesced().is_empty());
    }

    #[test]
    fn push_skips_empty_fragments() {
        let mut r = IoRequest::default();
        r.push(5, 0);
        r.push(5, 3);
        assert_eq!(r.extents(), &[(5, 3)]);
    }

    #[test]
    fn constructors_filter_zero_length_extents() {
        let r = IoRequest::from_extents(vec![(0, 0), (10, 4), (20, 0), (30, 2), (40, 0)]);
        assert_eq!(r.extents(), &[(10, 4), (30, 2)]);
        assert_eq!(r.fragments(), 2);
        // Zero-length fragments of a strided pattern vanish entirely.
        assert!(IoRequest::strided(0, 0, 16, 8).is_empty());
        assert!(IoRequest::block_cyclic(0, 1, 3, 0, 5).is_empty());
        // An all-empty list has a well-defined end.
        assert_eq!(IoRequest::from_extents(vec![(100, 0)]).end(), 0);
    }

    #[test]
    fn overlapping_extents_are_kept_but_charged_once() {
        // Identical, contained, and partially overlapping fragments all
        // survive in scatter-gather order...
        let r = IoRequest::from_extents(vec![(0, 10), (0, 10), (4, 2), (8, 6)]);
        assert_eq!(r.extents(), &[(0, 10), (0, 10), (4, 2), (8, 6)]);
        // ...and the payload size counts every fragment...
        assert_eq!(r.total_bytes(), 28);
        // ...but the timing view merges the overlaps to one range, so
        // the disk queues are charged for 14 distinct bytes.
        assert_eq!(r.coalesced(), vec![(0, 14)]);
        assert_eq!(r.end(), 14);
    }

    #[test]
    fn coalescing_overlaps_is_order_independent() {
        let fwd = IoRequest::from_extents(vec![(0, 8), (4, 8), (12, 4)]);
        let rev = IoRequest::from_extents(vec![(12, 4), (4, 8), (0, 8)]);
        assert_eq!(fwd.coalesced(), rev.coalesced());
        assert_eq!(fwd.coalesced(), vec![(0, 16)]);
    }
}
