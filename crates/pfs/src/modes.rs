//! PFS/PIOFS I/O modes.
//!
//! The paper's platform section notes that "both PFS and PIOFS have
//! different I/O modes which make the programming for I/O very difficult
//! for the user". This module models the Paragon PFS modes beyond the
//! default independent-pointer mode (`M_UNIX`, which is what a plain
//! [`FileHandle`] provides):
//!
//! - **`M_LOG`** ([`LogFile`]): one *shared* file pointer; every write
//!   appends atomically at the current end, in operation order —
//!   first-come-first-served interleaving across compute nodes.
//! - **`M_RECORD`** ([`RecordFile`]): fixed-size records interleaved
//!   round-robin by node — node `r`'s `k`-th record lands in slot
//!   `k · nodes + r`, giving coordinated access without synchronization.
//! - **`M_GLOBAL`** ([`GlobalFile`]): every node reads the same data; the
//!   file system performs one disk read and broadcasts, so `n` readers
//!   cost one disk access plus network fan-out.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use iosim_buf::Bytes;
use iosim_simkit::sync::Event;
use iosim_simkit::time::SimTime;

use crate::fs::{FileHandle, FsError};
use crate::request::IoRequest;

/// `M_LOG`: shared-pointer atomic appends.
///
/// All participating handles share one [`LogCursor`]; appends allocate
/// their region at the cursor in call order (the simulation executor is
/// deterministic, so "call order" is well defined) and then perform an
/// ordinary positioned write.
#[derive(Clone, Default)]
pub struct LogCursor {
    pos: Rc<RefCell<u64>>,
}

impl LogCursor {
    /// A cursor starting at offset 0.
    pub fn new() -> LogCursor {
        LogCursor::default()
    }

    /// A cursor starting at `pos` (e.g. appending after a header).
    pub fn starting_at(pos: u64) -> LogCursor {
        LogCursor {
            pos: Rc::new(RefCell::new(pos)),
        }
    }

    /// Current end-of-log offset.
    pub fn position(&self) -> u64 {
        *self.pos.borrow()
    }

    fn allocate(&self, len: u64) -> u64 {
        let mut p = self.pos.borrow_mut();
        let off = *p;
        *p += len;
        off
    }
}

/// A handle participating in `M_LOG` mode.
pub struct LogFile {
    fh: FileHandle,
    cursor: LogCursor,
}

impl LogFile {
    /// Wrap `fh` with the shared `cursor`.
    pub fn new(fh: FileHandle, cursor: LogCursor) -> LogFile {
        LogFile { fh, cursor }
    }

    /// Atomically append `data`; returns the offset it landed at.
    pub async fn append(&self, data: &[u8]) -> Result<u64, FsError> {
        let off = self.cursor.allocate(data.len() as u64);
        self.fh.write_at(off, data).await?;
        Ok(off)
    }

    /// Atomically append `len` synthetic bytes; returns the offset.
    pub async fn append_discard(&self, len: u64) -> Result<u64, FsError> {
        let off = self.cursor.allocate(len);
        self.fh.write_discard_at(off, len).await?;
        Ok(off)
    }

    /// The underlying handle.
    pub fn handle(&self) -> &FileHandle {
        &self.fh
    }

    /// Close the handle.
    pub async fn close(self) {
        self.fh.close().await;
    }
}

/// `M_RECORD`: fixed-size records, round-robin by node slot.
pub struct RecordFile {
    fh: FileHandle,
    record_size: u64,
    slot: u64,
    slots: u64,
    next_record: u64,
}

impl RecordFile {
    /// Wrap `fh` for node `slot` of `slots`, with `record_size`-byte
    /// records.
    ///
    /// # Panics
    /// Panics on a zero record size, zero slots, or `slot >= slots`.
    pub fn new(fh: FileHandle, slot: u64, slots: u64, record_size: u64) -> RecordFile {
        assert!(record_size > 0, "record size must be positive");
        assert!(slots > 0 && slot < slots, "slot must be < slots");
        RecordFile {
            fh,
            record_size,
            slot,
            slots,
            next_record: 0,
        }
    }

    /// File offset of this node's `k`-th record.
    pub fn offset_of(&self, k: u64) -> u64 {
        (k * self.slots + self.slot) * self.record_size
    }

    /// Write this node's next record.
    pub async fn write_record(&mut self, data: &[u8]) -> Result<u64, FsError> {
        assert_eq!(
            data.len() as u64,
            self.record_size,
            "record must be exactly {} bytes",
            self.record_size
        );
        let off = self.offset_of(self.next_record);
        self.next_record += 1;
        self.fh.write_at(off, data).await?;
        Ok(off)
    }

    /// Write this node's next record, timing-only.
    pub async fn write_record_discard(&mut self) -> Result<u64, FsError> {
        let off = self.offset_of(self.next_record);
        self.next_record += 1;
        self.fh.write_discard_at(off, self.record_size).await?;
        Ok(off)
    }

    /// Read this node's `k`-th record.
    pub async fn read_record(&self, k: u64) -> Result<Bytes, FsError> {
        self.fh.read_at(self.offset_of(k), self.record_size).await
    }

    /// Describe this node's records `k0 .. k0+count` as one vectored
    /// request (the node's round-robin slots in the shared file).
    pub fn records_request(&self, k0: u64, count: u64) -> IoRequest {
        IoRequest::block_cyclic(self.record_size, self.slot, self.slots, k0, count)
    }

    /// Read this node's records `k0 .. k0+count` with one vectored
    /// request; under the PASSION interface the whole batch is one list-I/O
    /// call. Returns one buffer per record, all views of the same read.
    pub async fn read_records(&self, k0: u64, count: u64) -> Result<Vec<Bytes>, FsError> {
        let flat = self.fh.readv(&self.records_request(k0, count)).await?;
        let rs = self.record_size as usize;
        Ok((0..count as usize)
            .map(|k| flat.slice(k * rs, rs))
            .collect())
    }

    /// Timing-only batch read of records `k0 .. k0+count`.
    pub async fn read_records_discard(&self, k0: u64, count: u64) -> Result<(), FsError> {
        self.fh
            .readv_discard(&self.records_request(k0, count))
            .await
    }

    /// Records written through this handle so far.
    pub fn records_written(&self) -> u64 {
        self.next_record
    }

    /// Close the handle.
    pub async fn close(self) {
        self.fh.close().await;
    }
}

/// `M_SYNC`: synchronized shared-pointer writes in strict node order.
///
/// Unlike `M_LOG` (first-come-first-served), `M_SYNC` serializes the
/// nodes' operations round-robin by node index: node `k`'s `i`-th write
/// lands after node `k−1`'s `i`-th write, whatever the arrival order —
/// the mode PFS offers for deterministic shared-file construction.
pub struct SyncFile {
    fh: FileHandle,
    cursor: LogCursor,
    turnstile: iosim_simkit::sync::Turnstile,
    slot: usize,
}

impl SyncFile {
    /// Wrap `fh` for participant `slot`; all participants must share the
    /// same `cursor` and `turnstile`.
    pub fn new(
        fh: FileHandle,
        cursor: LogCursor,
        turnstile: iosim_simkit::sync::Turnstile,
        slot: usize,
    ) -> SyncFile {
        SyncFile {
            fh,
            cursor,
            turnstile,
            slot,
        }
    }

    /// Write `data` at the shared pointer, in node order. Returns the
    /// offset it landed at.
    pub async fn write_ordered(&self, data: &[u8]) -> Result<u64, FsError> {
        self.turnstile.wait_turn(self.slot).await;
        let off = self.cursor.allocate(data.len() as u64);
        let res = self.fh.write_at(off, data).await;
        self.turnstile.advance();
        res.map(|()| off)
    }

    /// Timing-only ordered write.
    pub async fn write_ordered_discard(&self, len: u64) -> Result<u64, FsError> {
        self.turnstile.wait_turn(self.slot).await;
        let off = self.cursor.allocate(len);
        let res = self.fh.write_discard_at(off, len).await;
        self.turnstile.advance();
        res.map(|()| off)
    }

    /// The underlying handle.
    pub fn handle(&self) -> &FileHandle {
        &self.fh
    }

    /// Close the handle.
    pub async fn close(self) {
        self.fh.close().await;
    }
}

type GlobalMap = HashMap<(u64, u64), Event<SimTime>>;

/// Shared coordination state of `M_GLOBAL` mode: which regions have been
/// read, and when their data became available.
#[derive(Clone, Default)]
pub struct GlobalState {
    done: Rc<RefCell<GlobalMap>>,
}

impl GlobalState {
    /// Fresh state (one per file per read phase).
    pub fn new() -> GlobalState {
        GlobalState::default()
    }
}

/// A handle participating in `M_GLOBAL` mode: all nodes issue the same
/// reads; the file system reads once and broadcasts.
pub struct GlobalFile {
    fh: FileHandle,
    state: GlobalState,
}

impl GlobalFile {
    /// Wrap `fh` with the shared `state`.
    pub fn new(fh: FileHandle, state: GlobalState) -> GlobalFile {
        GlobalFile { fh, state }
    }

    /// Globally read `[offset, offset+len)`: the first caller performs
    /// the disk read; the others wait for it and pay only the broadcast
    /// transfer. Returns `true` for the caller that hit the disk.
    pub async fn read_discard(&self, offset: u64, len: u64) -> Result<bool, FsError> {
        let h = self.fh.sim_handle();
        let event = {
            let mut done = self.state.done.borrow_mut();
            match done.get(&(offset, len)) {
                Some(ev) => Some(ev.clone()),
                None => {
                    done.insert((offset, len), Event::new());
                    None
                }
            }
        };
        match event {
            None => {
                // First reader: hit the disks, then publish.
                self.fh.read_discard_at(offset, len).await?;
                let ev = self.state.done.borrow()[&(offset, len)].clone();
                ev.set(h.now());
                Ok(true)
            }
            Some(ev) => {
                let ready = ev.wait().await;
                h.sleep_until(ready).await;
                // Broadcast leg: payload over the mesh from the reader.
                let t = self.fh.broadcast_time(len);
                h.sleep(t).await;
                Ok(false)
            }
        }
    }

    /// The underlying handle.
    pub fn handle(&self) -> &FileHandle {
        &self.fh
    }

    /// Close the handle.
    pub async fn close(self) {
        self.fh.close().await;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::{CreateOptions, FileSystem};
    use iosim_machine::{presets, Interface, Machine};
    use iosim_simkit::executor::{join_all, Sim};
    use iosim_trace::TraceCollector;

    fn fixture(sim: &Sim) -> Rc<FileSystem> {
        let m = Machine::new(sim.handle(), presets::paragon_small().with_io_nodes(4));
        FileSystem::new(m, TraceCollector::new())
    }

    #[test]
    fn m_log_appends_never_overlap() {
        let mut sim = Sim::new();
        let fs = fixture(&sim);
        let h = sim.handle();
        let cursor = LogCursor::new();
        let futs: Vec<_> = (0..4usize)
            .map(|rank| {
                let fs = Rc::clone(&fs);
                let cursor = cursor.clone();
                async move {
                    let fh = fs
                        .open(
                            rank,
                            Interface::UnixStyle,
                            "log",
                            Some(CreateOptions {
                                stored: true,
                                ..Default::default()
                            }),
                        )
                        .await
                        .unwrap();
                    let log = LogFile::new(fh, cursor);
                    let mut offsets = Vec::new();
                    for i in 0..5u64 {
                        let data = vec![(rank as u8) * 10 + i as u8; 100];
                        offsets.push(log.append(&data).await.unwrap());
                    }
                    offsets
                }
            })
            .collect();
        let jh = sim.spawn(async move { join_all(&h, futs).await });
        sim.run();
        let all: Vec<u64> = jh.try_take().unwrap().into_iter().flatten().collect();
        let mut sorted = all.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20, "offsets must be unique: {all:?}");
        // Dense packing: offsets are exactly 0, 100, …, 1900.
        assert_eq!(sorted, (0..20).map(|k| k * 100).collect::<Vec<u64>>());
        assert_eq!(cursor.position(), 2000);
    }

    #[test]
    fn m_record_interleaves_round_robin() {
        let mut sim = Sim::new();
        let fs = fixture(&sim);
        let h = sim.handle();
        let futs: Vec<_> = (0..3usize)
            .map(|rank| {
                let fs = Rc::clone(&fs);
                async move {
                    let fh = fs
                        .open(
                            rank,
                            Interface::UnixStyle,
                            "rec",
                            Some(CreateOptions {
                                stored: true,
                                ..Default::default()
                            }),
                        )
                        .await
                        .unwrap();
                    let mut rf = RecordFile::new(fh, rank as u64, 3, 64);
                    for k in 0..4u64 {
                        let data = vec![(rank as u8) ^ (k as u8); 64];
                        rf.write_record(&data).await.unwrap();
                    }
                    assert_eq!(rf.records_written(), 4);
                }
            })
            .collect();
        let fs_check = Rc::clone(&fs);
        let jh = sim.spawn(async move {
            join_all(&h, futs).await;
            // Read back: record j (file order) came from slot j % 3 in
            // round k = j / 3, holding bytes (slot ^ k).
            let fh = fs_check
                .open(0, Interface::UnixStyle, "rec", None)
                .await
                .unwrap();
            fh.read_at(0, 12 * 64).await.unwrap()
        });
        sim.run();
        let bytes = jh.try_take().expect("completed");
        for j in 0..12u64 {
            let want = ((j % 3) as u8) ^ ((j / 3) as u8);
            let rec = &bytes[(j * 64) as usize..((j + 1) * 64) as usize];
            assert!(
                rec.iter().all(|&b| b == want),
                "record {j} should be {want}: {rec:?}"
            );
        }
    }

    #[test]
    fn m_record_batch_read_matches_singles() {
        let mut sim = Sim::new();
        let fs = fixture(&sim);
        let jh = sim.spawn(async move {
            let fh = fs
                .open(
                    0,
                    Interface::Passion,
                    "batch",
                    Some(CreateOptions {
                        stored: true,
                        ..Default::default()
                    }),
                )
                .await
                .unwrap();
            let mut rf = RecordFile::new(fh, 0, 2, 64);
            for k in 0..4u64 {
                rf.write_record(&[k as u8; 64]).await.unwrap();
            }
            let batch = rf.read_records(0, 4).await.unwrap();
            let mut singles = Vec::new();
            for k in 0..4u64 {
                singles.push(rf.read_record(k).await.unwrap());
            }
            assert_eq!(batch, singles);
            // The request strides over the interleaved slots.
            let req = rf.records_request(1, 2);
            assert_eq!(req.extents(), &[(128, 64), (256, 64)]);
        });
        sim.run();
        jh.try_take().expect("completed");
    }

    #[test]
    fn m_sync_writes_land_in_node_order() {
        let mut sim = Sim::new();
        let fs = fixture(&sim);
        let h = sim.handle();
        let cursor = LogCursor::new();
        let ts = iosim_simkit::sync::Turnstile::new(3);
        let futs: Vec<_> = (0..3usize)
            .map(|rank| {
                let fs = Rc::clone(&fs);
                let cursor = cursor.clone();
                let ts = ts.clone();
                let h = h.clone();
                async move {
                    let fh = fs
                        .open(
                            rank,
                            Interface::UnixStyle,
                            "sync",
                            Some(CreateOptions {
                                stored: true,
                                ..Default::default()
                            }),
                        )
                        .await
                        .unwrap();
                    let sf = SyncFile::new(fh, cursor, ts, rank);
                    // Arrive out of order: higher ranks are ready first.
                    h.sleep(iosim_simkit::time::SimDuration::from_millis(
                        (3 - rank) as u64 * 5,
                    ))
                    .await;
                    for round in 0..2u8 {
                        let data = vec![rank as u8 * 10 + round; 8];
                        sf.write_ordered(&data).await.unwrap();
                    }
                }
            })
            .collect();
        let jh = sim.spawn(async move { join_all(&h, futs).await });
        sim.run();
        jh.try_take().expect("completed");
        // Six 8-byte records packed densely; ordering enforced by the
        // turnstile (content verified in m_sync_content_is_round_robin).
        assert_eq!(cursor.position(), 48);
    }

    #[test]
    fn m_sync_content_is_round_robin() {
        // Same as above but verify the actual bytes, keeping the
        // file system alive.
        let mut sim = Sim::new();
        let fs = fixture(&sim);
        let h = sim.handle();
        let cursor = LogCursor::new();
        let ts = iosim_simkit::sync::Turnstile::new(2);
        let futs: Vec<_> = (0..2usize)
            .map(|rank| {
                let fs = Rc::clone(&fs);
                let cursor = cursor.clone();
                let ts = ts.clone();
                let h = h.clone();
                async move {
                    let fh = fs
                        .open(
                            rank,
                            Interface::UnixStyle,
                            "sync2",
                            Some(CreateOptions {
                                stored: true,
                                ..Default::default()
                            }),
                        )
                        .await
                        .unwrap();
                    let sf = SyncFile::new(fh, cursor, ts, rank);
                    h.sleep(iosim_simkit::time::SimDuration::from_millis(
                        (2 - rank) as u64 * 9,
                    ))
                    .await;
                    sf.write_ordered(&[rank as u8; 4]).await.unwrap();
                }
            })
            .collect();
        let fs_check = Rc::clone(&fs);
        let jh = sim.spawn(async move {
            join_all(&h, futs).await;
            let fh = fs_check
                .open(0, Interface::UnixStyle, "sync2", None)
                .await
                .unwrap();
            fh.read_at(0, 8).await.unwrap()
        });
        sim.run();
        let bytes = jh.try_take().unwrap();
        assert_eq!(bytes, vec![0, 0, 0, 0, 1, 1, 1, 1]);
    }

    #[test]
    fn m_global_reads_disk_once() {
        let mut sim = Sim::new();
        let trace = TraceCollector::new();
        let m = Machine::new(sim.handle(), presets::paragon_small().with_io_nodes(4));
        let fs = FileSystem::new(m, trace.clone());
        let h = sim.handle();
        let state = GlobalState::new();
        let futs: Vec<_> = (0..8usize)
            .map(|rank| {
                let fs = Rc::clone(&fs);
                let state = state.clone();
                async move {
                    let fh = fs
                        .open(
                            rank,
                            Interface::UnixStyle,
                            "global",
                            Some(CreateOptions::default()),
                        )
                        .await
                        .unwrap();
                    fh.preallocate(4 << 20);
                    let gf = GlobalFile::new(fh, state);
                    gf.read_discard(0, 4 << 20).await.unwrap()
                }
            })
            .collect();
        let jh = sim.spawn(async move { join_all(&h, futs).await });
        sim.run();
        let hits: Vec<bool> = jh.try_take().unwrap();
        assert_eq!(hits.iter().filter(|&&b| b).count(), 1, "{hits:?}");
        // Exactly one data read hit the file system.
        assert_eq!(trace.count(iosim_trace::OpKind::Read), 1);
    }

    #[test]
    fn m_global_is_cheaper_than_independent_reads() {
        let run = |global: bool| -> f64 {
            let mut sim = Sim::new();
            let fs = fixture(&sim);
            let h = sim.handle();
            let state = GlobalState::new();
            let futs: Vec<_> = (0..8usize)
                .map(|rank| {
                    let fs = Rc::clone(&fs);
                    let state = state.clone();
                    async move {
                        let fh = fs
                            .open(
                                rank,
                                Interface::UnixStyle,
                                "g",
                                Some(CreateOptions::default()),
                            )
                            .await
                            .unwrap();
                        fh.preallocate(8 << 20);
                        if global {
                            GlobalFile::new(fh, state)
                                .read_discard(0, 8 << 20)
                                .await
                                .unwrap();
                        } else {
                            fh.read_discard_at(0, 8 << 20).await.unwrap();
                        }
                    }
                })
                .collect();
            let jh = sim.spawn(async move { join_all(&h, futs).await });
            let end = sim.run();
            jh.try_take().expect("completed");
            end.as_secs_f64()
        };
        let independent = run(false);
        let global = run(true);
        assert!(
            global < independent / 2.0,
            "M_GLOBAL should amortize the disk read: {global} vs {independent}"
        );
    }

    #[test]
    #[should_panic(expected = "record must be exactly")]
    fn wrong_record_size_rejected() {
        let mut sim = Sim::new();
        let fs = fixture(&sim);
        let jh = sim.spawn(async move {
            let fh = fs
                .open(
                    0,
                    Interface::UnixStyle,
                    "r",
                    Some(CreateOptions {
                        stored: true,
                        ..Default::default()
                    }),
                )
                .await
                .unwrap();
            let mut rf = RecordFile::new(fh, 0, 2, 32);
            rf.write_record(&[0u8; 16]).await.unwrap();
        });
        sim.run();
        jh.try_take().expect("task panicked before here");
    }
}
