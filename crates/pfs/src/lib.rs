//! # iosim-pfs — parallel file system model (Intel PFS / IBM PIOFS)
//!
//! Files are striped round-robin across the machine's I/O nodes in units
//! of the stripe unit (PFS: 64 KB; PIOFS "BSU": 32 KB). A data operation:
//!
//! 1. charges the client-side per-call cost of the chosen [`Interface`]
//!    (Fortran / UNIX-style / PASSION),
//! 2. decomposes into at most one contiguous run per I/O node
//!    ([`layout::Striping::runs`]),
//! 3. books each run on the owning I/O node's FIFO disk queue — paying a
//!    seek penalty when discontiguous with that node's previous access —
//! 4. and completes when the last response returns over the mesh.
//!
//! Noncontiguous accesses are described by an [`IoRequest`] extent list
//! and serviced by [`FileHandle::readv`] / [`FileHandle::writev`]: under
//! [`Interface::Passion`] the whole list is one call — extents are
//! coalesced and each I/O node's disk queue is booked once per request —
//! while UNIX-style/Fortran interfaces degenerate to the per-fragment
//! loop above, preserving the paper's interface contrast.
//!
//! Every operation is recorded with an [`iosim_trace::TraceCollector`],
//! which reproduces the paper's Pablo trace tables.
//!
//! [`Interface`]: iosim_machine::Interface
//! [`Interface::Passion`]: iosim_machine::Interface::Passion

mod cmdq;
pub mod extent;
pub mod fs;
pub mod layout;
pub mod modes;
pub mod request;

pub use extent::ExtentTree;
pub use fs::{Content, CreateOptions, FileHandle, FileSystem, FsError, STORED_FILE_CAP};
pub use layout::{Run, Striping};
pub use modes::{GlobalFile, GlobalState, LogCursor, LogFile, RecordFile, SyncFile};
pub use request::IoRequest;
